#![warn(missing_docs)]

//! # simany-stats — measurement aggregation and reporting
//!
//! Everything the paper's evaluation section computes from raw runs:
//!
//! * **Virtual-time speedups** (`vtime(1 core) / vtime(n cores)`), the
//!   y-axis of Fig. 5/6/8/9/12/13 ([`SpeedupSeries`]).
//! * **Geometric-mean relative errors** between two simulators' speedups
//!   (the 8.8 % / 18.8 % / 22.9 % numbers of §VI) ([`geomean_error`]).
//! * **Normalized simulation time** — simulator wall time divided by
//!   native execution time, Fig. 7 ([`normalized_time`]).
//! * A **power-law fit** (`y = a·x^b`) for the paper's observation that
//!   "the average simulation time increases as a square law with a small
//!   coefficient" ([`power_law_fit`]).
//! * Plain-text/Markdown table rendering for experiment reports
//!   ([`Table`]).

use std::fmt::Write as _;

/// One benchmark's speedups across a sweep of core counts.
#[derive(Clone, Debug)]
pub struct SpeedupSeries {
    /// Benchmark name.
    pub name: String,
    /// `(cores, virtual completion cycles)` pairs; must contain the
    /// baseline entry (1 core).
    pub points: Vec<(u32, u64)>,
}

impl SpeedupSeries {
    /// Build from raw `(cores, cycles)` measurements.
    pub fn new(name: impl Into<String>, points: Vec<(u32, u64)>) -> Self {
        SpeedupSeries {
            name: name.into(),
            points,
        }
    }

    /// Virtual cycles of the 1-core baseline.
    pub fn baseline(&self) -> Option<u64> {
        self.points.iter().find(|&&(c, _)| c == 1).map(|&(_, v)| v)
    }

    /// `(cores, speedup)` pairs relative to the 1-core baseline.
    pub fn speedups(&self) -> Vec<(u32, f64)> {
        let Some(base) = self.baseline() else {
            return Vec::new();
        };
        self.points
            .iter()
            .map(|&(c, v)| (c, base as f64 / v.max(1) as f64))
            .collect()
    }

    /// Speedup at a given core count, if measured.
    pub fn speedup_at(&self, cores: u32) -> Option<f64> {
        let base = self.baseline()? as f64;
        self.points
            .iter()
            .find(|&&(c, _)| c == cores)
            .map(|&(_, v)| base / v.max(1) as f64)
    }

    /// The core count with the best speedup (the "peak" the paper
    /// discusses for Connected Components).
    pub fn peak(&self) -> Option<(u32, f64)> {
        self.speedups()
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Geometric mean of per-point relative errors between two speedup sets,
/// the paper's validation metric (§VI): each error is
/// `|vt - cl| / cl`; errors are floored at 0.01 % so that exact matches
/// (possible on tiny integer workloads) do not drag the geometric mean to
/// zero — the conventional treatment in architecture papers.
pub fn geomean_error(vt: &[f64], cl: &[f64]) -> f64 {
    assert_eq!(vt.len(), cl.len(), "mismatched series");
    assert!(!vt.is_empty(), "empty series");
    let mut log_sum = 0.0;
    for (&a, &b) in vt.iter().zip(cl) {
        let err = ((a - b).abs() / b.abs().max(1e-12)).max(1e-4);
        log_sum += err.ln();
    }
    (log_sum / vt.len() as f64).exp()
}

/// Mean relative error (arithmetic), a secondary comparison metric.
pub fn mean_error(vt: &[f64], cl: &[f64]) -> f64 {
    assert_eq!(vt.len(), cl.len());
    assert!(!vt.is_empty());
    vt.iter()
        .zip(cl)
        .map(|(&a, &b)| (a - b).abs() / b.abs().max(1e-12))
        .sum::<f64>()
        / vt.len() as f64
}

/// Normalized simulation time: simulator wall-clock divided by native
/// wall-clock for the same workload (Fig. 7's y-axis).
pub fn normalized_time(sim: std::time::Duration, native: std::time::Duration) -> f64 {
    sim.as_secs_f64() / native.as_secs_f64().max(1e-9)
}

/// Least-squares fit of `y = a·x^b` in log-log space. Returns `(a, b)`.
/// The paper's claim "simulation time increases as a square law" means
/// `b ≈ 2` when fitting normalized time against core count.
pub fn power_law_fit(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points to fit");
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        assert!(x > 0.0 && y > 0.0, "power-law fit needs positive data");
        let lx = x.ln();
        let ly = y.ln();
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = ((sy - b * sx) / n).exp();
    (a, b)
}

/// Find the crossover core count between two series of `(cores, cycles)`
/// measurements: the smallest measured core count from which `b` completes
/// faster (fewer cycles) than `a`, interpolated geometrically between the
/// bracketing measured points when the flip happens between them. Returns
/// `None` when `b` never wins. This quantifies the paper's clustered-mesh
/// observation: "The average turning point for all benchmarks is around 78
/// cores" (§VI).
pub fn crossover(a: &[(u32, u64)], b: &[(u32, u64)]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "mismatched sweeps");
    let mut prev: Option<(u32, f64)> = None;
    for (&(ca, va), &(cb, vb)) in a.iter().zip(b) {
        assert_eq!(ca, cb, "sweeps must share core counts");
        let ratio = vb as f64 / va.max(1) as f64; // < 1 means b wins
        if ratio < 1.0 {
            return Some(match prev {
                // Geometric interpolation of the crossover point in
                // log(cores)-log(ratio) space.
                Some((c0, r0)) if r0 > 1.0 => {
                    let lr0 = r0.ln();
                    let lr1 = ratio.ln();
                    let f = lr0 / (lr0 - lr1);
                    ((c0 as f64).ln() * (1.0 - f) + (ca as f64).ln() * f).exp()
                }
                _ => ca as f64,
            });
        }
        prev = Some((ca, ratio));
    }
    None
}

/// Geometric mean of a positive sample.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A rendered table: header plus rows, emitted as Markdown or aligned
/// plain text.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Render as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r, &widths));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Format a float with 2 decimals (helper for table cells).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a signed percentage variation (the ± style of the paper's
/// Fig. 10/11 tables).
pub fn pct_signed(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Summary of a latency sample set (cycles), used for the protocol
/// resilience metrics: convergence / commit / lookup latencies under
/// fault plans.
#[derive(Clone, Debug, Default)]
pub struct LatencyDist {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean (cycles).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum sample.
    pub max: u64,
}

impl LatencyDist {
    /// Summarize a sample set. An empty set yields the all-zero dist.
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencyDist::default();
        }
        let mut s = samples.to_vec();
        s.sort_unstable();
        let n = s.len();
        // Nearest-rank percentile: ceil(p/100 * n), 1-indexed.
        let rank = |p: usize| -> u64 { s[((p * n).div_ceil(100)).clamp(1, n) - 1] };
        LatencyDist {
            count: n as u64,
            mean: s.iter().map(|&x| x as f64).sum::<f64>() / n as f64,
            p50: rank(50),
            p90: rank(90),
            p99: rank(99),
            max: s[n - 1],
        }
    }

    /// Render as a compact `p50/p90/p99/max` string.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "no samples".to_string();
        }
        format!(
            "p50={} p90={} p99={} max={} (n={})",
            self.p50, self.p90, self.p99, self.max, self.count
        )
    }

    /// Render as a JSON object fragment.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// Per-protocol resilience report: the metrics the resilience testbed
/// tracks for every protocol workload under a fault plan (ISSUE 9).
#[derive(Clone, Debug)]
pub struct ResilienceReport {
    /// Protocol name ("Gossip", "DHT Lookup", "Quorum").
    pub protocol: String,
    /// Payloads the protocol set out to deliver (rumors x live nodes,
    /// lookups issued, commands proposed).
    pub expected: u64,
    /// Payloads actually delivered / committed / resolved.
    pub delivered: u64,
    /// Application messages spent in total.
    pub payload_msgs: u64,
    /// Timeout-driven re-issues (lookup retries, election restarts...).
    pub reissues: u64,
    /// Operations that fell back to a degraded mode (flooding, ...).
    pub degraded: u64,
    /// Distinct leaders observed (quorum protocol; 0 otherwise).
    pub leader_changes: u64,
    /// End-to-end latency distribution of delivered payloads.
    pub latency: LatencyDist,
}

impl ResilienceReport {
    /// Delivery coverage in [0, 1]; 1.0 when nothing was expected.
    pub fn coverage(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.expected as f64
        }
    }

    /// Messages spent per delivered payload (cost of resilience).
    pub fn msgs_per_delivery(&self) -> f64 {
        if self.delivered == 0 {
            self.payload_msgs as f64
        } else {
            self.payload_msgs as f64 / self.delivered as f64
        }
    }

    /// Render as a JSON object fragment (hand-rolled; no serde in tree).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"protocol\":\"{}\",\"expected\":{},\"delivered\":{},\"coverage\":{:.4},\
             \"payload_msgs\":{},\"msgs_per_delivery\":{:.2},\"reissues\":{},\
             \"degraded\":{},\"leader_changes\":{},\"latency\":{}}}",
            self.protocol,
            self.expected,
            self.delivered,
            self.coverage(),
            self.payload_msgs,
            self.msgs_per_delivery(),
            self.reissues,
            self.degraded,
            self.leader_changes,
            self.latency.to_json()
        )
    }

    /// One row for the standard resilience table (see [`Self::table`]).
    pub fn table_row(&self) -> Vec<String> {
        vec![
            self.protocol.clone(),
            format!("{}/{}", self.delivered, self.expected),
            pct(self.coverage()),
            f2(self.msgs_per_delivery()),
            self.reissues.to_string(),
            self.degraded.to_string(),
            self.leader_changes.to_string(),
            self.latency.summary(),
        ]
    }

    /// Build the standard resilience table over a set of reports.
    pub fn table(reports: &[ResilienceReport]) -> Table {
        let mut t = Table::new(&[
            "protocol",
            "delivered",
            "coverage",
            "msgs/delivery",
            "reissues",
            "degraded",
            "leaders",
            "latency (cycles)",
        ]);
        for r in reports {
            t.row(r.table_row());
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_relative_to_baseline() {
        let s = SpeedupSeries::new("k", vec![(1, 1000), (2, 500), (4, 300)]);
        let sp = s.speedups();
        assert_eq!(sp[0], (1, 1.0));
        assert_eq!(sp[1], (2, 2.0));
        assert!((sp[2].1 - 3.3333).abs() < 1e-3);
        assert_eq!(s.speedup_at(2), Some(2.0));
        assert_eq!(s.speedup_at(8), None);
        assert_eq!(s.peak().unwrap().0, 4);
    }

    #[test]
    fn missing_baseline_gives_empty() {
        let s = SpeedupSeries::new("k", vec![(2, 500)]);
        assert!(s.speedups().is_empty());
    }

    #[test]
    fn geomean_error_basics() {
        // 10% error everywhere -> geomean 10%.
        let cl = [1.0, 2.0, 4.0];
        let vt = [1.1, 2.2, 4.4];
        let e = geomean_error(&vt, &cl);
        assert!((e - 0.1).abs() < 1e-9, "{e}");
        // Identical series -> floored near zero.
        assert!(geomean_error(&cl, &cl) <= 1e-4 + 1e-12);
        // Mixed errors: geomean between min and max.
        let vt2 = [1.05, 2.4, 4.0];
        let e2 = geomean_error(&vt2, &cl);
        assert!(e2 > 0.001 && e2 < 0.2);
    }

    #[test]
    fn mean_error_basics() {
        let cl = [2.0, 4.0];
        let vt = [2.2, 3.6];
        assert!((mean_error(&vt, &cl) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn power_law_recovers_square() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = (1u64 << i) as f64;
                (x, 3.0 * x * x)
            })
            .collect();
        let (a, b) = power_law_fit(&pts);
        assert!((b - 2.0).abs() < 1e-9, "exponent {b}");
        assert!((a - 3.0).abs() < 1e-6, "coefficient {a}");
    }

    #[test]
    fn geomean_of_sample() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn crossover_detection() {
        // b loses at 8 cores (ratio 2) and wins at 64 (ratio 0.5):
        // crossover interpolates between them.
        let a = [(8u32, 100u64), (64, 100)];
        let b = [(8u32, 200u64), (64, 50)];
        let x = crossover(&a, &b).unwrap();
        assert!(x > 8.0 && x < 64.0, "crossover {x}");
        // b never wins.
        assert_eq!(crossover(&a, &[(8, 200), (64, 150)]), None);
        // b wins from the start.
        assert_eq!(crossover(&a, &[(8, 50), (64, 50)]), Some(8.0));
    }

    #[test]
    fn table_renderers() {
        let mut t = Table::new(&["kernel", "speedup"]);
        t.row(vec!["qs".into(), "2.00".into()]);
        t.row(vec!["cc, hard".into(), "1.50".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| kernel | speedup |"));
        assert!(md.contains("| qs | 2.00 |"));
        let txt = t.to_text();
        assert!(txt.contains("kernel"));
        let csv = t.to_csv();
        assert!(csv.contains("\"cc, hard\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn normalized_time_ratio() {
        let r = normalized_time(
            std::time::Duration::from_millis(500),
            std::time::Duration::from_millis(5),
        );
        assert!((r - 100.0).abs() < 1e-9);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.188), "18.8%");
        assert_eq!(pct_signed(-0.644), "-64.4%");
        assert_eq!(pct_signed(0.32), "+32.0%");
    }

    #[test]
    fn latency_dist_percentiles() {
        let samples: Vec<u64> = (1..=100).collect();
        let d = LatencyDist::from_samples(&samples);
        assert_eq!(d.count, 100);
        assert_eq!(d.p50, 50);
        assert_eq!(d.p90, 90);
        assert_eq!(d.p99, 99);
        assert_eq!(d.max, 100);
        assert!((d.mean - 50.5).abs() < 1e-9);

        let single = LatencyDist::from_samples(&[7]);
        assert_eq!(
            (single.p50, single.p90, single.p99, single.max),
            (7, 7, 7, 7)
        );

        let empty = LatencyDist::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.summary(), "no samples");
    }

    #[test]
    fn resilience_report_coverage_and_json() {
        let r = ResilienceReport {
            protocol: "Gossip".into(),
            expected: 64,
            delivered: 60,
            payload_msgs: 300,
            reissues: 12,
            degraded: 1,
            leader_changes: 0,
            latency: LatencyDist::from_samples(&[100, 200, 300]),
        };
        assert!((r.coverage() - 60.0 / 64.0).abs() < 1e-9);
        assert!((r.msgs_per_delivery() - 5.0).abs() < 1e-9);
        let json = r.to_json();
        assert!(json.contains("\"protocol\":\"Gossip\""));
        assert!(json.contains("\"coverage\":0.9375"));
        assert!(json.contains("\"p99\":300"));

        // Degenerate cases do not divide by zero.
        let z = ResilienceReport {
            protocol: "x".into(),
            expected: 0,
            delivered: 0,
            payload_msgs: 5,
            reissues: 0,
            degraded: 0,
            leader_changes: 0,
            latency: LatencyDist::default(),
        };
        assert!((z.coverage() - 1.0).abs() < 1e-9);
        assert!((z.msgs_per_delivery() - 5.0).abs() < 1e-9);

        let t = ResilienceReport::table(&[r]);
        assert!(t.to_markdown().contains("msgs/delivery"));
    }
}
