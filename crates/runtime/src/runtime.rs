//! The run-time system object: protocol message handlers and task
//! dispatching, as `RuntimeHooks` for the engine.

use crate::msg::RtMsg;
use crate::params::RuntimeParams;
use crate::state::{Group, LockState, QueuedTask, RtState, RtStats};
use crate::task_ctx::{TaskBody, TaskCtx};
use parking_lot::Mutex;
use simany_core::activity::TaskFn;
use simany_core::{Envelope, ExecCtx, Ops, Payload, RuntimeHooks, VirtualTime};
use simany_mem::DirectoryTiming;
use simany_topology::CoreId;
use std::any::Any;
use std::sync::Arc;

/// Activity descriptor: which group the task decrements at termination.
pub(crate) struct TaskMeta {
    pub group: Option<crate::state::GroupId>,
}

/// Outcome delivered to a blocked prober.
pub(crate) struct ProbeOutcome {
    pub granted: bool,
    pub target: CoreId,
}

/// The task run-time system (paper §IV). One instance drives one
/// simulation; it owns all protocol state behind an uncontended mutex (the
/// engine serializes every entry).
pub struct TaskRuntime {
    pub(crate) params: RuntimeParams,
    pub(crate) st: Mutex<RtState>,
    /// Back-reference to our own Arc so hooks (which receive `&self`) can
    /// re-wrap queued task bodies into engine closures.
    me: std::sync::Weak<TaskRuntime>,
}

impl TaskRuntime {
    /// Create the run-time system for `n_cores` cores.
    pub fn new(n_cores: u32, params: RuntimeParams) -> Arc<Self> {
        let directory = if params.arch.coherence_enabled() {
            Some(DirectoryTiming::new(n_cores, params.mem.line_bytes))
        } else {
            None
        };
        Arc::new_cyclic(|me| TaskRuntime {
            params,
            st: Mutex::new(RtState::new(n_cores, directory)),
            me: me.clone(),
        })
    }

    fn self_arc(&self) -> Arc<TaskRuntime> {
        self.me.upgrade().expect("runtime Arc gone")
    }

    /// Run-time parameters.
    pub fn params(&self) -> &RuntimeParams {
        &self.params
    }

    /// Snapshot of the run-time statistics.
    pub fn stats(&self) -> RtStats {
        self.st.lock().stats.clone()
    }

    /// Wrap a user task body into an engine activity closure.
    pub(crate) fn wrap(self: &Arc<Self>, body: TaskBody) -> TaskFn {
        let rt = Arc::clone(self);
        Box::new(move |ec: &mut ExecCtx| {
            let mut tc = TaskCtx::new(ec, rt);
            body(&mut tc);
        })
    }

    /// Charge the fixed runtime processing cost on `core`.
    fn charge_handler(&self, ops: &mut Ops<'_>, core: CoreId) {
        ops.advance_core(core, self.params.handler_cost.cycles());
    }

    /// Send a protocol message, retrying lost attempts with exponential
    /// backoff per [`crate::params::RetryPolicy`]. The k-th retry departs
    /// `timeout(k)` after the previous failure — modeling a sender-side
    /// timeout without engine timer machinery (the fate of each attempt is
    /// known at send time). On success returns the arrival time; after
    /// exhausting the budget returns the payload and the virtual time of
    /// the final failed attempt so the caller can degrade gracefully.
    ///
    /// With no fault plan the first attempt always succeeds and this is
    /// exactly one `try_send_at` — bit-identical to the old direct send.
    pub(crate) fn retry_send(
        &self,
        ops: &mut Ops<'_>,
        src: CoreId,
        dst: CoreId,
        bytes: u32,
        at: VirtualTime,
        payload: Payload,
    ) -> Result<VirtualTime, (Payload, VirtualTime)> {
        let retry = self.params.retry;
        let mut t = at;
        let mut payload = match ops.try_send_at(src, dst, bytes, t, payload) {
            Ok(arrival) => return Ok(arrival),
            Err(p) => p,
        };
        for k in 0..retry.max_retries {
            t += retry.timeout(k);
            self.st.lock().stats.send_retries += 1;
            ops.note_retry(src, dst, t);
            payload = match ops.try_send_at(src, dst, bytes, t, payload) {
                Ok(arrival) => return Ok(arrival),
                Err(p) => p,
            };
        }
        self.st.lock().stats.send_failures += 1;
        Err((payload, t))
    }

    /// Broadcast `core`'s occupancy to its neighbors (paper §IV: the
    /// accepting core "broadcasts its new task queue's state to its own
    /// neighbors").
    pub(crate) fn broadcast_occupancy(&self, ops: &mut Ops<'_>, st: &mut RtState, core: CoreId) {
        if !self.params.occupancy_broadcasts {
            return;
        }
        let occ = st.cores[core.index()].occupancy();
        for n in ops.neighbors(core) {
            st.stats.occupancy_msgs += 1;
            // Best-effort: a lost occupancy hint only stales a proxy.
            let _ = ops.send(
                core,
                n,
                self.params.ctrl_msg_bytes,
                Payload::new(RtMsg::Occupancy {
                    from: core,
                    occupancy: occ,
                }),
            );
        }
    }
}

impl RuntimeHooks for TaskRuntime {
    /// Fold the runtime's mutable state into a deterministic digest for
    /// verification checkpoints: protocol counters, per-core queue state,
    /// and the id allocators. Hash maps are folded order-independently
    /// (per-entry hashes summed) because iteration order is unspecified.
    fn state_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let put = |h: &mut u64, x: u64| {
            for b in x.to_le_bytes() {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(PRIME);
            }
        };
        let st = self.st.lock();
        let mut h = OFFSET;
        let s = &st.stats;
        for x in [
            s.probes,
            s.probe_acks,
            s.probe_nacks,
            s.probe_skips,
            s.spawns,
            s.sequential_fallbacks,
            s.task_migrations,
            s.occupancy_msgs,
            s.joiner_notifies,
            s.joins_immediate,
            s.joins_suspended,
            s.sm_loads,
            s.sm_stores,
            s.coherence_legs,
            s.cell_local,
            s.cell_remote,
            s.cell_forwards,
            s.lock_fast,
            s.lock_waits,
            s.send_retries,
            s.send_failures,
            s.probe_unavailable,
            s.fault_local_runs,
            s.cell_access_failures,
            s.app_sends,
            s.app_deliveries,
            s.app_send_failures,
            s.timers_set,
            s.timer_fires,
            s.timers_stale,
            s.pinned_spawns,
            s.pinned_spawn_drops,
        ] {
            put(&mut h, x);
        }
        for core in &st.cores {
            put(&mut h, core.queue.len() as u64);
            put(&mut h, u64::from(core.reserved));
            let mut fold: u64 = 0;
            for (&c, &occ) in &core.proxy {
                let mut eh = OFFSET;
                put(&mut eh, u64::from(c.0));
                put(&mut eh, u64::from(occ));
                fold = fold.wrapping_add(eh);
            }
            put(&mut h, fold);
            // Mailbox order is deterministic (delivery order), so fold it
            // order-dependently; the waiter registration and token are part
            // of the resumable state too.
            put(&mut h, core.mailbox.len() as u64);
            for m in &core.mailbox {
                put(&mut h, u64::from(m.from.0));
                put(&mut h, u64::from(m.tag));
                for w in m.data {
                    put(&mut h, w);
                }
            }
            put(&mut h, core.recv_token);
            match core.recv_waiter {
                Some((aid, token)) => {
                    put(&mut h, 1);
                    put(&mut h, aid.0);
                    put(&mut h, token);
                }
                None => put(&mut h, 0),
            }
        }
        put(&mut h, st.next_group);
        put(&mut h, st.next_cell);
        put(&mut h, st.next_lock);
        let mut gfold: u64 = 0;
        for (&gid, g) in &st.groups {
            let mut eh = OFFSET;
            put(&mut eh, gid);
            put(&mut eh, u64::from(g.active));
            put(&mut eh, g.joiners.len() as u64);
            gfold = gfold.wrapping_add(eh);
        }
        put(&mut h, gfold);
        h
    }

    fn on_message(&self, ops: &mut Ops<'_>, mut env: Envelope) {
        let me = env.dst;
        self.charge_handler(ops, me);
        // Replies are dated from the request's arrival plus the local
        // processing time (paper §II.A), never from the responder's own
        // clock, which may have drifted arbitrarily.
        let reply_at = env.arrival + self.params.handler_cost;
        let msg = env.payload.take::<RtMsg>();
        match msg {
            RtMsg::Probe { prober, reply_to } => {
                // A failed core accepts no new work: every probe is denied
                // (the prober falls back to running the task locally —
                // the paper's conditional-spawn model).
                let failed = ops.core_failed(me, env.arrival);
                let mut st = self.st.lock();
                let granted = if failed {
                    st.stats.probe_unavailable += 1;
                    false
                } else {
                    let core = &mut st.cores[me.index()];
                    if core.occupancy() < self.params.queue_capacity {
                        core.reserved += 1;
                        true
                    } else {
                        false
                    }
                };
                if granted {
                    st.stats.probe_acks += 1;
                } else {
                    st.stats.probe_nacks += 1;
                }
                let occupancy = st.cores[me.index()].occupancy();
                drop(st);
                let sent = self.retry_send(
                    ops,
                    me,
                    reply_to,
                    self.params.ctrl_msg_bytes,
                    reply_at,
                    Payload::new(RtMsg::ProbeReply {
                        prober,
                        granted,
                        responder: me,
                        occupancy,
                    }),
                );
                if let Err((_, fail_t)) = sent {
                    // The reply is gone for good: revoke the reservation
                    // and deny the prober directly (it blocked before this
                    // handler ran — the run-token protocol guarantees it).
                    if granted {
                        self.st.lock().cores[me.index()].reserved -= 1;
                    }
                    ops.wake(
                        prober,
                        Box::new(ProbeOutcome {
                            granted: false,
                            target: me,
                        }),
                        fail_t,
                    );
                }
            }
            RtMsg::ProbeReply {
                prober,
                granted,
                responder,
                occupancy,
            } => {
                {
                    let mut st = self.st.lock();
                    st.cores[me.index()].proxy.insert(responder, occupancy);
                }
                let at = ops.now(me);
                ops.wake(
                    prober,
                    Box::new(ProbeOutcome {
                        granted,
                        target: responder,
                    }),
                    at,
                );
            }
            RtMsg::TaskSpawn {
                body,
                group,
                birth,
                parent,
                name,
                reserved,
                pinned,
                hops,
            } => {
                ops.discard_birth(parent, birth);
                let mut st = self.st.lock();
                if reserved {
                    let core = &mut st.cores[me.index()];
                    assert!(core.reserved > 0, "TASK_SPAWN without reservation");
                    core.reserved -= 1;
                }
                // Progressive task migration (paper §IV: tasks "migrate to
                // other cores if the local ones are overloaded"): if this
                // task would wait behind queued work and a neighbor looks
                // idle, pass it along instead of enqueueing. Pinned tasks
                // never move — their placement is the program's contract.
                const MAX_MIGRATION_HOPS: u32 = 16;
                let busy =
                    ops.current_activity(me).is_some() || !st.cores[me.index()].queue.is_empty();
                if busy && !pinned && hops < MAX_MIGRATION_HOPS {
                    let target = ops
                        .neighbors(me)
                        .into_iter()
                        .filter(|&n| n != env.src)
                        .find(|n| *st.cores[me.index()].proxy.get(n).unwrap_or(&0) == 0)
                        // Never migrate onto a failed core.
                        .filter(|&n| !ops.core_failed(n, env.arrival));
                    if let Some(t) = target {
                        st.stats.task_migrations += 1;
                        // Optimistically bump the proxy so repeated arrivals
                        // do not all pile onto the same neighbor before its
                        // occupancy broadcast comes back.
                        st.cores[me.index()].proxy.insert(t, 1);
                        drop(st);
                        let birth2 = ops.record_birth(me, reply_at);
                        let sent = self.retry_send(
                            ops,
                            me,
                            t,
                            self.params.spawn_msg_bytes,
                            reply_at,
                            Payload::new(RtMsg::TaskSpawn {
                                body,
                                group,
                                birth: birth2,
                                parent: me,
                                name,
                                reserved: false,
                                pinned: false,
                                hops: hops + 1,
                            }),
                        );
                        if let Err((mut payload, _)) = sent {
                            // Migration impossible: keep the task here.
                            ops.discard_birth(me, birth2);
                            let RtMsg::TaskSpawn {
                                body, group, name, ..
                            } = payload.take::<RtMsg>()
                            else {
                                unreachable!("spawn payload round-trips")
                            };
                            let mut st = self.st.lock();
                            st.stats.fault_local_runs += 1;
                            st.cores[me.index()].queue.push_back(QueuedTask {
                                body,
                                group,
                                name,
                                pinned: false,
                            });
                            ops.queue_hint_add(me, 1);
                            self.broadcast_occupancy(ops, &mut st, me);
                        }
                        return;
                    }
                }
                st.cores[me.index()].queue.push_back(QueuedTask {
                    body,
                    group,
                    name,
                    pinned,
                });
                ops.queue_hint_add(me, 1);
                self.broadcast_occupancy(ops, &mut st, me);
            }
            RtMsg::Occupancy { from, occupancy } => {
                let mut st = self.st.lock();
                st.cores[me.index()].proxy.insert(from, occupancy);
                // Progressive migration, pull-triggered: a neighbor just
                // announced an empty queue while we have more than one task
                // waiting — hand one over (paper §IV: tasks migrate when
                // the local cores are overloaded).
                if occupancy == 0
                    && st.cores[me.index()].queue.len() > 1
                    && st.cores[me.index()].queue.back().is_some_and(|t| !t.pinned)
                    && !ops.core_failed(from, env.arrival)
                {
                    let task = st.cores[me.index()].queue.pop_back().expect("len > 1");
                    st.stats.task_migrations += 1;
                    st.cores[me.index()].proxy.insert(from, 1);
                    drop(st);
                    ops.queue_hint_sub(me, 1);
                    let birth = ops.record_birth(me, reply_at);
                    let sent = self.retry_send(
                        ops,
                        me,
                        from,
                        self.params.spawn_msg_bytes,
                        reply_at,
                        Payload::new(RtMsg::TaskSpawn {
                            body: task.body,
                            group: task.group,
                            birth,
                            parent: me,
                            name: task.name,
                            reserved: false,
                            pinned: false,
                            hops: 0,
                        }),
                    );
                    if let Err((mut payload, _)) = sent {
                        // Undo: the task stays in our queue.
                        ops.discard_birth(me, birth);
                        let RtMsg::TaskSpawn {
                            body, group, name, ..
                        } = payload.take::<RtMsg>()
                        else {
                            unreachable!("spawn payload round-trips")
                        };
                        let mut st = self.st.lock();
                        st.stats.fault_local_runs += 1;
                        st.cores[me.index()].queue.push_back(QueuedTask {
                            body,
                            group,
                            name,
                            pinned: false,
                        });
                        drop(st);
                        ops.queue_hint_add(me, 1);
                    }
                    // Our own occupancy changed: tell the neighborhood.
                    let mut st = self.st.lock();
                    self.broadcast_occupancy(ops, &mut st, me);
                }
            }
            RtMsg::JoinerRequest { joiner } => {
                let at = ops.now(me);
                ops.wake(joiner, Box::new(()), at);
            }
            RtMsg::DataRequest {
                cell,
                requester,
                activity,
                hops,
            } => {
                let mut st = self.st.lock();
                let info = st.cells.get_mut(&cell.0).expect("unknown cell");
                if info.location == me {
                    info.location = requester;
                    let size = info.size_bytes;
                    drop(st);
                    let sent = self.retry_send(
                        ops,
                        me,
                        requester,
                        size,
                        reply_at,
                        Payload::new(RtMsg::DataResponse { activity }),
                    );
                    if let Err((_, fail_t)) = sent {
                        // The response is lost for good: unblock the
                        // requester anyway so the run can finish (it already
                        // charged the request leg; the cell moved).
                        self.st.lock().stats.cell_access_failures += 1;
                        ops.wake(activity, Box::new(()), fail_t);
                    }
                } else {
                    // Stale location: chase the cell.
                    let loc = info.location;
                    st.stats.cell_forwards += 1;
                    drop(st);
                    let sent = self.retry_send(
                        ops,
                        me,
                        loc,
                        self.params.ctrl_msg_bytes,
                        reply_at,
                        Payload::new(RtMsg::DataRequest {
                            cell,
                            requester,
                            activity,
                            hops: hops + 1,
                        }),
                    );
                    if let Err((_, fail_t)) = sent {
                        // Chasing failed: give up and unblock the requester
                        // with a degraded (backing-store) access.
                        self.st.lock().stats.cell_access_failures += 1;
                        ops.wake(activity, Box::new(()), fail_t);
                    }
                }
            }
            RtMsg::DataResponse { activity } => {
                let at = ops.now(me);
                ops.wake(activity, Box::new(()), at);
            }
            RtMsg::LockRequest {
                lock,
                activity,
                requester,
            } => {
                let mut st = self.st.lock();
                let ls = st.locks.get_mut(&lock.0).expect("unknown lock");
                debug_assert_eq!(ls.home, me);
                if ls.held {
                    ls.waiters.push_back((activity, requester));
                    st.stats.lock_waits += 1;
                } else {
                    ls.held = true;
                    // Grants never predate the previous release.
                    let grant_at = reply_at.max(ls.free_at);
                    st.stats.lock_fast += 1;
                    drop(st);
                    let sent = self.retry_send(
                        ops,
                        me,
                        requester,
                        self.params.ctrl_msg_bytes,
                        grant_at,
                        Payload::new(RtMsg::LockAck { activity }),
                    );
                    if let Err((_, fail_t)) = sent {
                        // Grant message lost: hand over directly (the lock
                        // stays held by the requester; correctness of the
                        // virtual serialization is preserved by free_at).
                        ops.wake(activity, Box::new(()), fail_t);
                    }
                }
            }
            RtMsg::LockAck { activity } => {
                let at = ops.now(me);
                ops.wake(activity, Box::new(()), at);
            }
            RtMsg::LockRelease { lock } => {
                let mut st = self.st.lock();
                let ls = st.locks.get_mut(&lock.0).expect("unknown lock");
                debug_assert_eq!(ls.home, me);
                ls.free_at = ls.free_at.max(env.arrival);
                if let Some((activity, core)) = ls.waiters.pop_front() {
                    // Hand over directly; the lock stays held.
                    drop(st);
                    let sent = self.retry_send(
                        ops,
                        me,
                        core,
                        self.params.ctrl_msg_bytes,
                        reply_at,
                        Payload::new(RtMsg::LockAck { activity }),
                    );
                    if let Err((_, fail_t)) = sent {
                        // Handoff message lost: wake the waiter directly so
                        // the lock chain keeps moving.
                        ops.wake(activity, Box::new(()), fail_t);
                    }
                } else {
                    ls.held = false;
                }
            }
            RtMsg::App { from, tag, data } => {
                let mut st = self.st.lock();
                st.stats.app_deliveries += 1;
                let core = &mut st.cores[me.index()];
                core.mailbox
                    .push_back(crate::state::AppMsg { from, tag, data });
                // Wake the registered receiver (its armed timer goes stale:
                // the token was consumed with the registration).
                if let Some((waiter, _token)) = core.recv_waiter.take() {
                    drop(st);
                    let at = ops.now(me);
                    ops.wake(waiter, Box::new(()), at);
                }
            }
            RtMsg::Deadline { token } => {
                let mut st = self.st.lock();
                let core = &mut st.cores[me.index()];
                match core.recv_waiter {
                    Some((waiter, t)) if t == token => {
                        core.recv_waiter = None;
                        st.stats.timer_fires += 1;
                        drop(st);
                        let at = ops.now(me);
                        ops.wake(waiter, Box::new(()), at);
                    }
                    // The wait this timer was armed for is already over
                    // (a message arrived first, or a newer wait replaced
                    // it): ignore.
                    _ => st.stats.timers_stale += 1,
                }
            }
        }
    }

    fn on_idle(&self, ops: &mut Ops<'_>, core: CoreId) {
        let task = {
            let mut st = self.st.lock();
            let task = st.cores[core.index()]
                .queue
                .pop_front()
                .expect("on_idle with empty queue");
            self.broadcast_occupancy(ops, &mut st, core);
            task
        };
        ops.queue_hint_sub(core, 1);
        // "Starting a task on a core has an overhead of 10 cycles in
        // addition to the time to receive the spawn message" (§V).
        ops.advance_core(core, self.params.task_start_cost.cycles());
        let meta = TaskMeta { group: task.group };
        let body = task.body;
        let this = self.self_arc();
        ops.start_activity(core, task.name, Box::new(meta), this.wrap(body));
    }

    fn on_activity_end(&self, ops: &mut Ops<'_>, core: CoreId, meta: Box<dyn Any + Send>) {
        let meta = meta.downcast::<TaskMeta>().expect("foreign activity meta");
        if let Some(g) = meta.group {
            let joiners = {
                let mut st = self.st.lock();
                let group = st.groups.get_mut(&g.0).expect("unknown group");
                assert!(group.active > 0, "group counter underflow");
                group.active -= 1;
                if group.active == 0 {
                    std::mem::take(&mut group.joiners)
                } else {
                    Vec::new()
                }
            };
            for (joiner, jcore) in joiners {
                self.st.lock().stats.joiner_notifies += 1;
                let at = ops.now(core);
                let sent = self.retry_send(
                    ops,
                    core,
                    jcore,
                    self.params.ctrl_msg_bytes,
                    at,
                    Payload::new(RtMsg::JoinerRequest { joiner }),
                );
                if let Err((_, fail_t)) = sent {
                    // Notification lost: wake the joiner directly so the
                    // join never deadlocks.
                    ops.wake(joiner, Box::new(()), fail_t);
                }
            }
        }
    }
}

/// Group / lock / cell creation helpers shared by `TaskCtx` and
/// `run_program`.
impl TaskRuntime {
    pub(crate) fn create_group(&self) -> crate::state::GroupId {
        let mut st = self.st.lock();
        let id = st.next_group;
        st.next_group += 1;
        st.groups.insert(
            id,
            Group {
                active: 0,
                joiners: Vec::new(),
            },
        );
        crate::state::GroupId(id)
    }

    pub(crate) fn create_lock(&self, home: CoreId) -> crate::state::LockId {
        let mut st = self.st.lock();
        let id = st.next_lock;
        st.next_lock += 1;
        st.locks.insert(
            id,
            LockState {
                home,
                held: false,
                free_at: simany_core::VirtualTime::ZERO,
                waiters: std::collections::VecDeque::new(),
            },
        );
        crate::state::LockId(id)
    }

    pub(crate) fn create_cell(&self, location: CoreId, size_bytes: u32) -> crate::state::CellId {
        let mut st = self.st.lock();
        let id = st.next_cell;
        st.next_cell += 1;
        st.cells.insert(
            id,
            crate::state::CellInfo {
                location,
                size_bytes,
            },
        );
        crate::state::CellId(id)
    }
}
