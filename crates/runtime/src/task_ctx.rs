//! `TaskCtx` — the API task bodies program against.
//!
//! A task is an ordinary Rust closure over `&mut TaskCtx`; between calls it
//! runs natively at host speed. `TaskCtx` provides the paper's programming
//! model: timing annotations, conditional spawning (`probe`/`spawn`), task
//! groups and `join`, shared-memory accesses timed by the memory models,
//! distributed-memory cells, and simulated locks.

use crate::msg::RtMsg;
use crate::runtime::{ProbeOutcome, TaskRuntime};
use crate::state::{CellId, GroupId, LockId};
use simany_core::{BlockCost, ExecCtx, Payload, VirtualTime};
use simany_mem::{Addr, ScopedL1};
use simany_time::{VDuration, Xoshiro256StarStar};
use simany_topology::CoreId;
use std::sync::Arc;

/// A task body: what `spawn` ships to another core.
pub type TaskBody = Box<dyn FnOnce(&mut TaskCtx<'_>) + Send>;

/// Execution context of one task.
pub struct TaskCtx<'a> {
    ec: &'a mut ExecCtx,
    rt: Arc<TaskRuntime>,
    /// Pessimistic L1 presence (reads or writes).
    l1: ScopedL1,
    /// Write-permission presence (first write in scope upgrades the line
    /// through the directory when coherence timings are on).
    l1w: ScopedL1,
    rng: Xoshiro256StarStar,
}

impl<'a> TaskCtx<'a> {
    pub(crate) fn new(ec: &'a mut ExecCtx, rt: Arc<TaskRuntime>) -> Self {
        let seed = ec.with_ops(|ops| ops.seed());
        let line = rt.params.mem.line_bytes;
        let rng = Xoshiro256StarStar::stream(seed, 0x7A5C_0000 ^ ec.id().0);
        TaskCtx {
            ec,
            rt,
            l1: ScopedL1::new(line),
            l1w: ScopedL1::new(line),
            rng,
        }
    }

    // ----- introspection ---------------------------------------------------

    /// The core this task runs on.
    pub fn core(&self) -> CoreId {
        self.ec.core()
    }

    /// Current virtual time of this core.
    pub fn now(&self) -> VirtualTime {
        self.ec.now()
    }

    /// Number of simulated cores.
    pub fn n_cores(&self) -> u32 {
        self.ec.n_cores()
    }

    /// Run-time parameters (architecture type, costs...).
    pub fn params(&self) -> &crate::params::RuntimeParams {
        self.rt.params()
    }

    /// Deterministic per-task random number in `[0, bound)`.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        self.rng.next_below(bound)
    }

    /// Deterministic per-task Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    // ----- timing annotations ----------------------------------------------

    /// Execute a timing annotation for an instruction block (paper §II.A).
    /// With a detailed timing plug-in installed (cycle-level reference),
    /// the block is timed by the detailed pipeline/predictor model instead
    /// of the abstract cost table.
    pub fn compute(&mut self, block: &BlockCost) {
        if let Some(detailed) = self.rt.params.detailed.clone() {
            let core = self.core();
            let cycles = detailed.block_cycles(core, block);
            self.ec.advance_cycles(cycles);
        } else {
            self.ec.compute(block);
        }
    }

    /// Shorthand: charge `n` simple-integer-op cycles.
    pub fn work(&mut self, n: u64) {
        self.ec.advance_cycles(n);
    }

    // ----- conditional spawning (paper §IV) ---------------------------------

    /// Create a task group.
    pub fn make_group(&mut self) -> GroupId {
        self.rt.create_group()
    }

    /// The `probe` primitive: consult the occupancy proxies; if a neighbor
    /// looks free, send it a PROBE reservation and wait for the reply.
    /// Returns the reserved core on success.
    pub fn probe(&mut self) -> Option<CoreId> {
        let rt = Arc::clone(&self.rt);
        let params = rt.params();
        let me = self.core();
        let my_aid = self.ec.id();
        let candidate = self.ec.with_ops(|ops| {
            let now = ops.now(me);
            // Failed cores accept no new work: drop them from the candidate
            // set up front instead of wasting a probe round-trip.
            let neighbors: Vec<CoreId> = ops
                .neighbors(me)
                .into_iter()
                .filter(|&n| {
                    let failed = ops.core_failed(n, now);
                    if failed {
                        rt.st.lock().stats.probe_unavailable += 1;
                    }
                    !failed
                })
                .collect();
            let mut st = rt.st.lock();
            if neighbors.is_empty() {
                st.stats.probe_skips += 1;
                return None;
            }
            // Order candidates per the spawn policy using the proxies.
            let pick = match params.spawn_policy {
                crate::params::SpawnPolicy::LeastLoaded => neighbors
                    .iter()
                    .copied()
                    .min_by_key(|n| (*st.cores[me.index()].proxy.get(n).unwrap_or(&0), n.0)),
                crate::params::SpawnPolicy::RoundRobin => {
                    let cur = st.spawn_cursor[me.index()] as usize % neighbors.len();
                    st.spawn_cursor[me.index()] += 1;
                    Some(neighbors[cur])
                }
                crate::params::SpawnPolicy::FavorFast => {
                    neighbors.iter().copied().min_by_key(|n| {
                        let occ = *st.cores[me.index()].proxy.get(n).unwrap_or(&0);
                        let speed = ops.speed(*n);
                        // Effective load: queue length divided by speed —
                        // compare occ * den/num via cross-multiplied key.
                        (
                            u64::from(occ + 1) * u64::from(speed.den) * 1000 / u64::from(speed.num),
                            n.0,
                        )
                    })
                }
            }?;
            // Only probe when the proxy suggests a free slot.
            let believed = *st.cores[me.index()].proxy.get(&pick).unwrap_or(&0);
            if believed >= params.queue_capacity {
                st.stats.probe_skips += 1;
                return None;
            }
            st.stats.probes += 1;
            drop(st);
            let sent = rt.retry_send(
                ops,
                me,
                pick,
                params.ctrl_msg_bytes,
                now,
                Payload::new(RtMsg::Probe {
                    prober: my_aid,
                    reply_to: me,
                }),
            );
            match sent {
                Ok(_) => Some(pick),
                Err((_, fail_t)) => {
                    // The probe never got through: treat it as denied (the
                    // caller falls back to sequential execution) and charge
                    // the time spent retrying.
                    ops.advance_core_to(me, fail_t);
                    None
                }
            }
        });
        candidate?;
        let outcome = self.ec.block("probe");
        let outcome = outcome.downcast::<ProbeOutcome>().expect("probe outcome");
        if outcome.granted {
            Some(outcome.target)
        } else {
            None
        }
    }

    /// Ship a task to a core previously reserved with [`Self::probe`]. The
    /// task's birth time is recorded on this core until it lands
    /// (paper §II.A).
    pub fn spawn(&mut self, target: CoreId, group: Option<GroupId>, body: TaskBody) {
        self.spawn_named(target, group, "task", body)
    }

    /// [`Self::spawn`] with a debug name.
    pub fn spawn_named(
        &mut self,
        target: CoreId,
        group: Option<GroupId>,
        name: &'static str,
        body: TaskBody,
    ) {
        let rt = Arc::clone(&self.rt);
        let me = self.core();
        self.ec.with_ops(|ops| {
            if let Some(g) = group {
                let mut st = rt.st.lock();
                st.groups.get_mut(&g.0).expect("unknown group").active += 1;
                st.stats.spawns += 1;
            } else {
                rt.st.lock().stats.spawns += 1;
            }
            let at = ops.now(me);
            let birth = ops.record_birth(me, at);
            let sent = rt.retry_send(
                ops,
                me,
                target,
                rt.params().spawn_msg_bytes,
                at,
                Payload::new(RtMsg::TaskSpawn {
                    body,
                    group,
                    birth,
                    parent: me,
                    name,
                    reserved: true,
                    pinned: false,
                    hops: 0,
                }),
            );
            if let Err((mut payload, fail_t)) = sent {
                // The spawn cannot reach its reserved target (failed core /
                // partition): run the task on this core instead. The remote
                // reservation leaks, which is harmless — the target is
                // unreachable anyway.
                ops.discard_birth(me, birth);
                let RtMsg::TaskSpawn {
                    body, group, name, ..
                } = payload.take::<RtMsg>()
                else {
                    unreachable!("spawn payload round-trips")
                };
                ops.advance_core_to(me, fail_t);
                let mut st = rt.st.lock();
                st.stats.fault_local_runs += 1;
                st.cores[me.index()]
                    .queue
                    .push_back(crate::state::QueuedTask {
                        body,
                        group,
                        name,
                        pinned: false,
                    });
                ops.queue_hint_add(me, 1);
                rt.broadcast_occupancy(ops, &mut st, me);
            }
        });
    }

    /// Place a task on an exact core. Unlike [`Self::spawn`], the task is
    /// *pinned* — it never migrates, and no queue reservation is made — so
    /// a protocol node lands on precisely the core it models. If the target
    /// is unreachable after the retry budget, the task is **dropped** (its
    /// group counter is rolled back and `pinned_spawn_drops` counts it)
    /// rather than run on the wrong core. Returns whether the spawn message
    /// got through.
    pub fn spawn_pinned(
        &mut self,
        target: CoreId,
        group: Option<GroupId>,
        name: &'static str,
        body: TaskBody,
    ) -> bool {
        let rt = Arc::clone(&self.rt);
        let me = self.core();
        self.ec.with_ops(|ops| {
            {
                let mut st = rt.st.lock();
                if let Some(g) = group {
                    st.groups.get_mut(&g.0).expect("unknown group").active += 1;
                }
                st.stats.spawns += 1;
                st.stats.pinned_spawns += 1;
            }
            let at = ops.now(me);
            let birth = ops.record_birth(me, at);
            let sent = rt.retry_send(
                ops,
                me,
                target,
                rt.params().spawn_msg_bytes,
                at,
                Payload::new(RtMsg::TaskSpawn {
                    body,
                    group,
                    birth,
                    parent: me,
                    name,
                    reserved: false,
                    pinned: true,
                    hops: 0,
                }),
            );
            match sent {
                Ok(_) => true,
                Err((_, fail_t)) => {
                    ops.discard_birth(me, birth);
                    ops.advance_core_to(me, fail_t);
                    let mut st = rt.st.lock();
                    st.stats.pinned_spawn_drops += 1;
                    let mut orphaned_joiners = Vec::new();
                    if let Some(g) = group {
                        let grp = st.groups.get_mut(&g.0).expect("unknown group");
                        assert!(grp.active > 0, "group counter underflow");
                        grp.active -= 1;
                        if grp.active == 0 {
                            orphaned_joiners = std::mem::take(&mut grp.joiners);
                        }
                    }
                    drop(st);
                    // No sane program joins before it finished spawning, but
                    // keep the group sound regardless.
                    for (joiner, _jcore) in orphaned_joiners {
                        ops.wake(joiner, Box::new(()), fail_t);
                    }
                    false
                }
            }
        })
    }

    // ----- protocol messaging (protocol workload pack) -----------------------

    /// Send an application-level protocol message to `dst`, retrying lost
    /// attempts with the runtime's exponential-backoff [`RetryPolicy`]
    /// (`crate::params::RetryPolicy`). Returns `true` when some attempt got
    /// through (the sender knows each attempt's fate at send time — the
    /// engine's out-of-order send model). On failure this core's clock is
    /// advanced past the final attempt, so protocol-level timeouts measured
    /// from `now()` stay meaningful.
    pub fn send_app(&mut self, dst: CoreId, tag: u32, data: [u64; 4]) -> bool {
        let rt = Arc::clone(&self.rt);
        let me = self.core();
        let bytes = rt.params().ctrl_msg_bytes;
        self.ec.with_ops(|ops| {
            rt.st.lock().stats.app_sends += 1;
            let at = ops.now(me);
            let sent = rt.retry_send(
                ops,
                me,
                dst,
                bytes,
                at,
                Payload::new(RtMsg::App {
                    from: me,
                    tag,
                    data,
                }),
            );
            match sent {
                Ok(_) => true,
                Err((_, fail_t)) => {
                    rt.st.lock().stats.app_send_failures += 1;
                    ops.advance_core_to(me, fail_t);
                    false
                }
            }
        })
    }

    /// Pop the next mailbox message without blocking.
    pub fn try_recv(&mut self) -> Option<crate::state::AppMsg> {
        let me = self.core();
        self.rt.st.lock().cores[me.index()].mailbox.pop_front()
    }

    /// Wait for an application message until `deadline` (an absolute
    /// virtual time). Returns the message, or `None` once this core's clock
    /// reaches the deadline with an empty mailbox.
    ///
    /// The timeout is a **self-addressed deadline message**: a same-core
    /// send traverses no links, so it is immune to the fault plan and
    /// arrives at exactly `deadline` — the protocol re-issue primitive works
    /// identically under partitions, lossy links and core churn. A message
    /// arriving first consumes the waiter registration; the now-stale timer
    /// is recognized by its token and ignored.
    pub fn recv_deadline(&mut self, deadline: VirtualTime) -> Option<crate::state::AppMsg> {
        loop {
            let rt = Arc::clone(&self.rt);
            let me = self.core();
            let my_aid = self.ec.id();
            if let Some(m) = rt.st.lock().cores[me.index()].mailbox.pop_front() {
                return Some(m);
            }
            if self.now() >= deadline {
                return None;
            }
            self.ec.with_ops(|ops| {
                let mut st = rt.st.lock();
                let core = &mut st.cores[me.index()];
                assert!(
                    core.recv_waiter.is_none(),
                    "one recv_deadline waiter per core"
                );
                core.recv_token += 1;
                let token = core.recv_token;
                core.recv_waiter = Some((my_aid, token));
                st.stats.timers_set += 1;
                drop(st);
                let sent =
                    ops.try_send_at(me, me, 0, deadline, Payload::new(RtMsg::Deadline { token }));
                debug_assert!(sent.is_ok(), "self-send timers are infallible");
            });
            let _ = self.ec.block("recv");
        }
    }

    /// True iff this core has permanently failed (crash-stop churn) by its
    /// current virtual time. Protocol nodes use this to fall silent when
    /// the fault plan kills their core.
    pub fn core_failed(&mut self) -> bool {
        let me = self.core();
        self.ec.with_ops(|ops| {
            let now = ops.now(me);
            ops.core_failed(me, now)
        })
    }

    /// Conditional spawn: probe, and either ship `body` to the reserved
    /// neighbor or run it sequentially right here (the paper's fallback:
    /// "When the probe is denied, no task is spawned and the program
    /// executes the code of the task sequentially").
    pub fn spawn_or_run(
        &mut self,
        group: GroupId,
        body: impl FnOnce(&mut TaskCtx<'_>) + Send + 'static,
    ) {
        let body: TaskBody = Box::new(body);
        match self.probe() {
            Some(target) => self.spawn(target, Some(group), body),
            None => {
                self.rt.st.lock().stats.sequential_fallbacks += 1;
                body(self);
            }
        }
    }

    /// Wait until every task in `group` has terminated. If tasks are still
    /// active the execution context is saved and the core freed until the
    /// JOINER_REQUEST arrives (paper §IV); resuming costs the engine's
    /// 15-cycle context switch.
    pub fn join(&mut self, group: GroupId) {
        let rt = Arc::clone(&self.rt);
        let me_aid = self.ec.id();
        let me = self.core();
        let suspended = self.ec.with_ops(|_ops| {
            let mut st = rt.st.lock();
            let g = st.groups.get_mut(&group.0).expect("unknown group");
            if g.active == 0 {
                st.stats.joins_immediate += 1;
                false
            } else {
                g.joiners.push((me_aid, me));
                st.stats.joins_suspended += 1;
                true
            }
        });
        if suspended {
            // Full suspension: resuming costs the paper's 15-cycle context
            // switch.
            let _ = self.ec.block_with("join", true);
        }
    }

    // ----- shared-memory accesses (paper §V, shared-memory type) ------------

    /// Enter/exit a function scope around `f`: the pessimistic L1 forgets
    /// all lines touched inside once `f` returns (paper §V).
    pub fn scope<R>(&mut self, f: impl FnOnce(&mut TaskCtx<'_>) -> R) -> R {
        self.l1.enter_scope();
        self.l1w.enter_scope();
        let r = f(self);
        self.l1.exit_scope();
        self.l1w.exit_scope();
        r
    }

    /// Timed shared-memory load of `addr`.
    pub fn load(&mut self, addr: Addr) {
        let hit = self.l1.access(addr);
        self.mem_access(addr, hit, false);
    }

    /// Timed shared-memory store to `addr`.
    pub fn store(&mut self, addr: Addr) {
        let whit = self.l1w.access(addr);
        if !whit {
            self.l1.access(addr);
        }
        self.mem_access(addr, whit, true);
    }

    fn mem_access(&mut self, addr: Addr, l1_hit: bool, write: bool) {
        let rt = Arc::clone(&self.rt);
        let me = self.core();
        let params = rt.params().clone();
        if let Some(detailed) = params.detailed.clone() {
            self.ec.with_ops_synced(|ops| {
                {
                    let mut st = rt.st.lock();
                    if write {
                        st.stats.sm_stores += 1;
                    } else {
                        st.stats.sm_loads += 1;
                    }
                }
                detailed.mem_access(ops, me, addr, write);
            });
            return;
        }
        self.ec.with_ops_synced(|ops| {
            let mut st = rt.st.lock();
            if write {
                st.stats.sm_stores += 1;
            } else {
                st.stats.sm_loads += 1;
            }
            if l1_hit {
                st.stats.l1_hits += 1;
                drop(st);
                ops.advance_core(me, params.mem.l1_latency.cycles());
                return;
            }
            st.stats.l1_misses += 1;
            // Coherence-effect timings (validation mode): charge the legs a
            // real MSI directory would exchange.
            let mut extra = VDuration::ZERO;
            if let Some(dir) = st.directory.as_mut() {
                let legs = if write {
                    dir.write(me, addr)
                } else {
                    dir.read(me, addr)
                };
                st.stats.coherence_legs += legs.len() as u64;
                for leg in legs {
                    extra += ops.uncontended_latency(leg.from, leg.to, leg.bytes);
                }
            }
            drop(st);
            ops.advance_core(me, params.mem.backing_latency.cycles());
            if !extra.is_zero() {
                ops.advance_core_raw(me, extra);
            }
        });
    }

    // ----- distributed-memory cells (paper §IV) ------------------------------

    /// Allocate a cell of `size_bytes`, initially located on this core.
    pub fn alloc_cell(&mut self, size_bytes: u32) -> CellId {
        self.rt.create_cell(self.core(), size_bytes)
    }

    /// Access a cell (read or write — the run-time system implements both
    /// "as an exclusive operation", §VI): if remote, DATA_REQUEST /
    /// DATA_RESPONSE move it into this core's L2 first.
    pub fn cell_access(&mut self, cell: CellId) {
        let rt = Arc::clone(&self.rt);
        let me = self.core();
        let my_aid = self.ec.id();
        let params = rt.params().clone();
        let local = self.ec.with_ops(|ops| {
            let mut st = rt.st.lock();
            let loc = st.cells.get(&cell.0).expect("unknown cell").location;
            if loc == me {
                st.stats.cell_local += 1;
                true
            } else {
                st.stats.cell_remote += 1;
                drop(st);
                let at = ops.now(me);
                let sent = rt.retry_send(
                    ops,
                    me,
                    loc,
                    params.ctrl_msg_bytes,
                    at,
                    Payload::new(RtMsg::DataRequest {
                        cell,
                        requester: me,
                        activity: my_aid,
                        hops: 0,
                    }),
                );
                match sent {
                    Ok(_) => false,
                    Err((_, fail_t)) => {
                        // The cell's home is unreachable: degrade to a
                        // backing-store access without moving the cell.
                        rt.st.lock().stats.cell_access_failures += 1;
                        ops.advance_core_to(me, fail_t);
                        true
                    }
                }
            }
        });
        if !local {
            let _ = self.ec.block("cell");
        }
        // The data now sits in this core's L2 (paper §V: "the requested
        // data are stored in the initiating core's L2 cache, where they can
        // be accessed with the usual 10-cycle latency").
        let backing = params.mem.backing_latency.cycles();
        self.ec.advance_cycles(backing);
    }

    /// Broadcast `size_bytes` from this core to every other core along a
    /// breadth-first tree over the topology, charging all link traversals
    /// (with contention) and advancing this core to the completion time.
    /// Models bulk distribution phases such as Barnes-Hut's "the built
    /// tree has been broadcasted to all cores" (paper §V) when a program
    /// wants that phase *inside* the measured region.
    pub fn broadcast(&mut self, size_bytes: u32) {
        let me = self.core();
        self.ec.with_ops_synced(|ops| {
            let n = ops.n_cores();
            let start = ops.now(me);
            let mut arrival = vec![None; n as usize];
            arrival[me.index()] = Some(start);
            let mut queue = std::collections::VecDeque::from([me]);
            let mut last = start;
            while let Some(c) = queue.pop_front() {
                let at = arrival[c.index()].expect("visited");
                for nb in ops.neighbors(c) {
                    if arrival[nb.index()].is_none() {
                        let t = ops.transit(c, nb, size_bytes, at);
                        arrival[nb.index()] = Some(t);
                        last = last.max(t);
                        queue.push_back(nb);
                    }
                }
            }
            ops.advance_core_to(me, last);
        });
    }

    /// Where a cell currently lives (placement diagnostics).
    pub fn cell_location(&self, cell: CellId) -> CoreId {
        self.rt
            .st
            .lock()
            .cells
            .get(&cell.0)
            .expect("unknown cell")
            .location
    }

    // ----- locks (paper §II.B) -----------------------------------------------

    /// Create a lock homed on this core.
    pub fn make_lock(&mut self) -> LockId {
        self.rt.create_lock(self.core())
    }

    /// Acquire a simulated lock. While held, the synchronization policy
    /// never stalls this core (the waiver of paper §II.B).
    pub fn lock(&mut self, lock: LockId) {
        let rt = Arc::clone(&self.rt);
        let me = self.core();
        let my_aid = self.ec.id();
        let params = rt.params().clone();
        let acquired_locally = self.ec.with_ops(|ops| {
            let mut st = rt.st.lock();
            let ls = st.locks.get_mut(&lock.0).expect("unknown lock");
            if ls.home == me {
                if ls.held {
                    ls.waiters.push_back((my_aid, me));
                    st.stats.lock_waits += 1;
                    Some(false)
                } else {
                    ls.held = true;
                    // The lock may have been virtually free only in the
                    // future (out-of-order processing): wait for it.
                    let free_at = ls.free_at;
                    st.stats.lock_fast += 1;
                    drop(st);
                    ops.advance_core_to(me, free_at);
                    Some(true)
                }
            } else {
                let home = ls.home;
                drop(st);
                let at = ops.now(me);
                let sent = rt.retry_send(
                    ops,
                    me,
                    home,
                    params.ctrl_msg_bytes,
                    at,
                    Payload::new(RtMsg::LockRequest {
                        lock,
                        activity: my_aid,
                        requester: me,
                    }),
                );
                match sent {
                    Ok(_) => None,
                    Err((_, fail_t)) => {
                        // The lock's home is unreachable: proceed as if
                        // acquired (degraded mutual exclusion — the home is
                        // partitioned away, so no reachable core contends
                        // through it either).
                        ops.advance_core_to(me, fail_t);
                        Some(true)
                    }
                }
            }
        });
        match acquired_locally {
            Some(true) => {}
            Some(false) | None => {
                let _ = self.ec.block("lock");
            }
        }
        self.ec.critical_enter();
    }

    /// Release a simulated lock; the next waiter (if any) is granted.
    pub fn unlock(&mut self, lock: LockId) {
        let rt = Arc::clone(&self.rt);
        let me = self.core();
        let params = rt.params().clone();
        self.ec.with_ops(|ops| {
            let mut st = rt.st.lock();
            let now = ops.now(me);
            let ls = st.locks.get_mut(&lock.0).expect("unknown lock");
            if ls.home == me {
                ls.free_at = ls.free_at.max(now);
                if let Some((activity, core)) = ls.waiters.pop_front() {
                    drop(st);
                    let sent = rt.retry_send(
                        ops,
                        me,
                        core,
                        params.ctrl_msg_bytes,
                        now,
                        Payload::new(RtMsg::LockAck { activity }),
                    );
                    if let Err((_, fail_t)) = sent {
                        // Handoff lost: wake the waiter directly so the
                        // lock chain keeps moving.
                        ops.wake(activity, Box::new(()), fail_t);
                    }
                } else {
                    ls.held = false;
                }
            } else {
                let home = ls.home;
                drop(st);
                // Best effort: if the release never reaches the home core,
                // it is unreachable anyway — retry_send already counted the
                // failure.
                let _ = rt.retry_send(
                    ops,
                    me,
                    home,
                    params.ctrl_msg_bytes,
                    now,
                    Payload::new(RtMsg::LockRelease { lock }),
                );
            }
        });
        self.ec.critical_exit();
    }

    /// Escape hatch to the raw engine context (advanced use: custom
    /// runtimes layered on top, instrumentation).
    pub fn raw(&mut self) -> &mut ExecCtx {
        self.ec
    }
}
