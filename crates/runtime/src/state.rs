//! Run-time system state: task queues, occupancy proxies, groups, cells,
//! locks and statistics.

use crate::task_ctx::TaskBody;
use simany_core::ActivityId;
use simany_topology::CoreId;
use std::collections::{HashMap, VecDeque};

/// Identifier of a task group (coarse synchronization unit, paper §IV).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GroupId(pub u64);

/// Identifier of a distributed-memory cell.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CellId(pub u64);

/// Identifier of a simulated lock.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LockId(pub u64);

/// An application-level message delivered to a core's protocol mailbox
/// (the protocol workload pack's `send_app`/`recv_deadline` seam).
#[derive(Clone, Copy, Debug)]
pub struct AppMsg {
    /// Sending core.
    pub from: CoreId,
    /// Protocol-defined message discriminator.
    pub tag: u32,
    /// Protocol-defined payload words.
    pub data: [u64; 4],
}

/// A task waiting in a core's queue.
pub(crate) struct QueuedTask {
    pub body: TaskBody,
    pub group: Option<GroupId>,
    pub name: &'static str,
    /// Pinned tasks are excluded from pull-migration.
    pub pinned: bool,
}

/// Per-core run-time state.
pub(crate) struct RtCore {
    /// Tasks accepted but not yet started.
    pub queue: VecDeque<QueuedTask>,
    /// Slots promised to in-flight probes.
    pub reserved: u32,
    /// Occupancy proxies: believed queue occupation of each neighbor
    /// (paper §IV: "the run-time system maintains proxies to neighbors'
    /// occupation status").
    pub proxy: HashMap<CoreId, u32>,
    /// Application messages awaiting a `recv_deadline` on this core.
    pub mailbox: VecDeque<AppMsg>,
    /// The task (and its timer token) currently blocked in `recv_deadline`.
    pub recv_waiter: Option<(ActivityId, u64)>,
    /// Monotonic token distinguishing the live deadline timer from stale
    /// ones still in flight.
    pub recv_token: u64,
}

impl RtCore {
    pub fn new() -> Self {
        RtCore {
            queue: VecDeque::new(),
            reserved: 0,
            proxy: HashMap::new(),
            mailbox: VecDeque::new(),
            recv_waiter: None,
            recv_token: 0,
        }
    }

    /// Occupation counted against the queue capacity.
    pub fn occupancy(&self) -> u32 {
        self.queue.len() as u32 + self.reserved
    }
}

/// A task group: active-task counter plus registered joiners.
pub(crate) struct Group {
    pub active: u32,
    pub joiners: Vec<(ActivityId, CoreId)>,
}

/// A distributed-memory cell: current location and architectural size.
pub(crate) struct CellInfo {
    pub location: CoreId,
    pub size_bytes: u32,
}

/// A simulated lock living on its home core.
pub(crate) struct LockState {
    pub home: CoreId,
    pub held: bool,
    /// Virtual time at which the lock was last released. Grants are never
    /// stamped earlier: even when the simulator processes a request after
    /// the previous critical section completed in *simulation* order, the
    /// virtual serialization of the resource is preserved (the paper's
    /// out-of-order biases apply to message timing, but a lock cannot be
    /// virtually free before its holder released it).
    pub free_at: simany_core::VirtualTime,
    /// Blocked requesters in arrival order.
    pub waiters: VecDeque<(ActivityId, CoreId)>,
}

/// Run-time–level statistics, complementing `simany_core::SimStats`.
#[derive(Clone, Debug, Default)]
pub struct RtStats {
    /// PROBE messages sent.
    pub probes: u64,
    /// Probes granted (PROBE_ACK).
    pub probe_acks: u64,
    /// Probes denied (PROBE_NACK).
    pub probe_nacks: u64,
    /// Probes never sent because no proxy looked free.
    pub probe_skips: u64,
    /// Tasks shipped with TASK_SPAWN.
    pub spawns: u64,
    /// Conditional spawns that fell back to sequential execution.
    pub sequential_fallbacks: u64,
    /// Queued tasks forwarded to an idle-looking neighbor (the paper's
    /// progressive task migration under overload, §IV).
    pub task_migrations: u64,
    /// OCCUPANCY broadcasts sent.
    pub occupancy_msgs: u64,
    /// JOINER_REQUEST notifications sent.
    pub joiner_notifies: u64,
    /// join() calls that found the group already finished.
    pub joins_immediate: u64,
    /// join() calls that had to suspend.
    pub joins_suspended: u64,
    /// Shared-memory loads / stores timed.
    pub sm_loads: u64,
    /// Shared-memory stores timed.
    pub sm_stores: u64,
    /// L1 hits across all tasks.
    pub l1_hits: u64,
    /// L1 misses across all tasks.
    pub l1_misses: u64,
    /// Coherence protocol legs charged (validation mode).
    pub coherence_legs: u64,
    /// Cell accesses satisfied locally.
    pub cell_local: u64,
    /// Cell accesses that required a data transfer.
    pub cell_remote: u64,
    /// DATA_REQUEST forwards due to stale location.
    pub cell_forwards: u64,
    /// Lock acquisitions granted immediately.
    pub lock_fast: u64,
    /// Lock acquisitions that had to wait.
    pub lock_waits: u64,
    /// Protocol sends retried after a fault-plan loss (timeout + backoff).
    pub send_retries: u64,
    /// Protocol sends abandoned after exhausting the retry budget.
    pub send_failures: u64,
    /// Probe targets skipped (or probes answered NACK) because the target
    /// core had failed.
    pub probe_unavailable: u64,
    /// Spawns that fell back to running locally because the spawn message
    /// could not be delivered (failed core / partition).
    pub fault_local_runs: u64,
    /// Cell accesses degraded to a backing-store charge because the data
    /// request could not be delivered.
    pub cell_access_failures: u64,
    /// Application (protocol-pack) messages sent with `send_app`.
    pub app_sends: u64,
    /// Application messages delivered into a core mailbox.
    pub app_deliveries: u64,
    /// Application sends abandoned after exhausting the retry budget.
    pub app_send_failures: u64,
    /// Deadline timers armed by `recv_deadline`.
    pub timers_set: u64,
    /// Deadline timers that fired and woke their waiter.
    pub timer_fires: u64,
    /// Deadline timers that arrived stale (their wait was already over).
    pub timers_stale: u64,
    /// Pinned node tasks shipped with `spawn_pinned`.
    pub pinned_spawns: u64,
    /// Pinned spawns dropped because the target core was unreachable.
    pub pinned_spawn_drops: u64,
}

/// All mutable run-time state, owned by the hooks object behind a mutex
/// (uncontended: the engine serializes every entry path).
pub(crate) struct RtState {
    pub cores: Vec<RtCore>,
    pub groups: HashMap<u64, Group>,
    pub next_group: u64,
    pub cells: HashMap<u64, CellInfo>,
    pub next_cell: u64,
    pub locks: HashMap<u64, LockState>,
    pub next_lock: u64,
    pub directory: Option<simany_mem::DirectoryTiming>,
    pub stats: RtStats,
    /// Round-robin cursor per core for `SpawnPolicy::RoundRobin`.
    pub spawn_cursor: Vec<u32>,
}

impl RtState {
    pub fn new(n_cores: u32, directory: Option<simany_mem::DirectoryTiming>) -> Self {
        RtState {
            cores: (0..n_cores).map(|_| RtCore::new()).collect(),
            groups: HashMap::new(),
            next_group: 0,
            cells: HashMap::new(),
            next_cell: 0,
            locks: HashMap::new(),
            next_lock: 0,
            directory,
            stats: RtStats::default(),
            spawn_cursor: vec![0; n_cores as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_counts_queue_and_reservations() {
        let mut c = RtCore::new();
        assert_eq!(c.occupancy(), 0);
        c.reserved = 2;
        assert_eq!(c.occupancy(), 2);
        c.queue.push_back(QueuedTask {
            body: Box::new(|_| {}),
            group: None,
            name: "t",
            pinned: false,
        });
        assert_eq!(c.occupancy(), 3);
    }
}
