#![warn(missing_docs)]

//! # simany-runtime — the task-based programming model
//!
//! The paper runs its benchmarks on a programming model "in the spirit of
//! TBB that solves [the task granularity problem] through conditional
//! spawning" (§IV, citing Capsule). This crate implements that run-time
//! system on top of the `simany-core` engine:
//!
//! * **Conditional spawning** — [`TaskCtx::spawn_or_run`]: the program
//!   calls `probe`; the run-time system consults its *occupancy proxies*
//!   of the neighbors' task queues and, only when a free slot is likely,
//!   sends a `PROBE` reservation message. On `PROBE_ACK` the task is
//!   shipped with `TASK_SPAWN`; on `PROBE_NACK` (or when no proxy looks
//!   free) the code runs sequentially in the caller.
//! * **Task groups and `join`** — tasks decrement their group's counter at
//!   termination; a joiner's "execution context is saved until it receives
//!   a notification (`JOINER_REQUEST`) from the last active task".
//! * **Distributed-memory cells** — shared data live in *cells* referenced
//!   by *links*; remote access triggers `DATA_REQUEST`/`DATA_RESPONSE` and
//!   moves the cell into the requester's L2 ("data access as an exclusive
//!   operation, requiring data transfer to the core that needs them,
//!   whether the access is a read or a write", §VI).
//! * **Simulated locks** with home-node queuing and the engine's
//!   stall-waiver for holders (paper §II.B).
//! * **Shared-memory accesses** timed by the pessimistic L1 model, the
//!   uniform-latency banks, and optionally the MSI directory timings used
//!   for validation.
//!
//! Costs follow §V: starting a task costs 10 cycles on top of the spawn
//! message, resuming a joiner costs 15 (charged by the engine), remote
//! data lands in the requester's L2 with the usual 10-cycle latency.
//!
//! Tasks are ordinary Rust closures over [`TaskCtx`]; everything between
//! `TaskCtx` calls executes natively.

pub mod msg;
pub mod params;
pub mod program;
pub mod runtime;
pub mod state;
pub mod task_ctx;

pub use msg::RtMsg;
pub use params::RetryPolicy;
pub use params::{DetailedTiming, RuntimeParams, SpawnPolicy};
pub use program::{run_program, ProgramSpec, RunOutput};
pub use runtime::TaskRuntime;
pub use state::{AppMsg, CellId, GroupId, LockId, RtStats};
pub use task_ctx::{TaskBody, TaskCtx};

// Common vocabulary re-exports for kernel writers.
pub use simany_core::{BlockCost, CoreId, SimError, SimStats, VDuration, VirtualTime};
pub use simany_mem::{Addr, MemoryArch, MemoryParams};
