//! Top-level program driver: build a machine, run a root task, collect
//! statistics.

use crate::params::RuntimeParams;
use crate::runtime::{TaskMeta, TaskRuntime};
use crate::state::RtStats;
use crate::task_ctx::TaskCtx;
use simany_core::{simulate, EngineConfig, SimError, SimStats};
use simany_topology::{CoreId, Topology};
use std::sync::Arc;

/// Everything that defines one simulated machine + run-time configuration.
#[derive(Clone)]
pub struct ProgramSpec {
    /// The interconnect.
    pub topo: Topology,
    /// Engine configuration (synchronization policy, seed, speeds...).
    pub engine: EngineConfig,
    /// Run-time system parameters (memory architecture, queue sizes...).
    pub runtime: RuntimeParams,
    /// Core the root task starts on.
    pub root_core: CoreId,
}

impl ProgramSpec {
    /// Spec with default engine and runtime parameters on `topo`.
    pub fn new(topo: Topology) -> Self {
        ProgramSpec {
            topo,
            engine: EngineConfig::default(),
            runtime: RuntimeParams::default(),
            root_core: CoreId(0),
        }
    }
}

/// Result of a program run.
#[derive(Debug)]
pub struct RunOutput {
    /// Engine statistics (final virtual time, messages, stalls...).
    pub stats: SimStats,
    /// Run-time system statistics (probes, spawns, cell moves...).
    pub rt: RtStats,
}

impl RunOutput {
    /// Program completion time in cycles (the quantity the paper's
    /// speedups are computed from).
    pub fn vtime_cycles(&self) -> u64 {
        self.stats.final_vtime.cycles()
    }
}

/// Run `root` as the initial task on `spec.root_core` and simulate to
/// completion.
///
/// The root closure typically builds workloads, spawns task trees with
/// [`TaskCtx::spawn_or_run`], joins them, and writes results into captured
/// `Arc<Mutex<...>>` state for verification after the run.
pub fn run_program(
    spec: ProgramSpec,
    root: impl FnOnce(&mut TaskCtx<'_>) + Send + 'static,
) -> Result<RunOutput, SimError> {
    let rt = TaskRuntime::new(spec.topo.n_cores(), spec.runtime);
    let rt_for_setup = Arc::clone(&rt);
    let rt_hooks: Arc<dyn simany_core::RuntimeHooks> = Arc::clone(&rt) as _;
    let root_core = spec.root_core;
    let stats = simulate(spec.topo, spec.engine, rt_hooks, move |ops| {
        let body: crate::task_ctx::TaskBody = Box::new(root);
        ops.start_activity(
            root_core,
            "root",
            Box::new(TaskMeta { group: None }),
            rt_for_setup.wrap(body),
        );
    })?;
    let rt_stats = rt.stats();
    Ok(RunOutput {
        stats,
        rt: rt_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_topology::mesh_2d;

    #[test]
    fn trivial_program_runs() {
        let out = run_program(ProgramSpec::new(mesh_2d(4)), |tc| {
            tc.work(42);
        })
        .unwrap();
        assert_eq!(out.vtime_cycles(), 42);
        assert_eq!(out.stats.activities_started, 1);
    }
}
