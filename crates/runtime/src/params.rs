//! Run-time system parameters (costs, queue sizes, message sizes).

use simany_core::Ops;
use simany_mem::{Addr, MemoryArch, MemoryParams};
use simany_time::{BlockCost, VDuration};
use simany_topology::CoreId;
use std::sync::Arc;

/// Plug-in replacement for the abstract timing models, used by the
/// cycle-level reference simulator (`simany-cyclelevel`): when installed,
/// `TaskCtx::compute` and `TaskCtx::load`/`store` route through this trait
/// instead of the probabilistic predictor / pessimistic-L1 / flat-bank
/// models, so the *same kernels* run under detailed microarchitectural
/// timing without modification.
pub trait DetailedTiming: Send + Sync {
    /// Total cycles for one instruction block on `core` (including branch
    /// penalties from whatever predictor state the model keeps).
    fn block_cycles(&self, core: CoreId, block: &BlockCost) -> u64;

    /// Charge a data memory access on `core` (cache lookup, coherence
    /// traffic, NoC contention...). The implementation advances `core`'s
    /// clock through `ops`.
    fn mem_access(&self, ops: &mut Ops<'_>, core: CoreId, addr: Addr, write: bool);
}

/// How the run-time system orders spawn candidates among the neighbors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpawnPolicy {
    /// Prefer the neighbor whose occupancy proxy shows the emptiest queue
    /// (ties by core id). The paper's default behavior: "dispatching
    /// spawned tasks to neighboring cores only".
    LeastLoaded,
    /// Rotate deterministically over the neighbors regardless of load.
    RoundRobin,
    /// Like `LeastLoaded` but weight the queue length by the inverse core
    /// speed, preferring fast cores — the scheduling-policy improvement the
    /// paper's conclusion suggests for polymorphic architectures (§VIII).
    FavorFast,
}

/// Timeout/retry policy for protocol messages on faulty machines
/// (paper-shaped resilience: a lost `DATA_REQUEST`, probe or spawn is
/// retried with exponential backoff before the caller degrades locally).
///
/// The k-th retry (k = 0 for the first) departs `timeout(k)` after the
/// failed attempt, doubling each time and capped at `max_timeout`. With an
/// empty fault plan no send ever fails, so this policy is never consulted —
/// the no-fault path stays bit-exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of retries after the initial attempt.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_timeout: VDuration,
    /// Backoff cap.
    pub max_timeout: VDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_timeout: VDuration::from_cycles(200),
            max_timeout: VDuration::from_cycles(3_200),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `k` (0-based): `base << k`, saturating, capped
    /// at `max_timeout`.
    pub fn timeout(&self, k: u32) -> VDuration {
        let scaled = self.base_timeout.ticks().checked_shl(k).unwrap_or(u64::MAX);
        VDuration(scaled.min(self.max_timeout.ticks()))
    }
}

/// All run-time system parameters.
#[derive(Clone)]
pub struct RuntimeParams {
    /// Memory architecture type (paper §V).
    pub arch: MemoryArch,
    /// Memory timing parameters.
    pub mem: MemoryParams,
    /// Task-queue slots per core (bounds conditional spawning).
    pub queue_capacity: u32,
    /// Overhead of starting a task on a core, "in addition to the time to
    /// receive the spawn message" (paper §V: 10 cycles).
    pub task_start_cost: VDuration,
    /// Run-time processing cost charged when handling a protocol message
    /// (probe, occupancy update, join notification...).
    pub handler_cost: VDuration,
    /// Spawn candidate ordering.
    pub spawn_policy: SpawnPolicy,
    /// Size in bytes of control messages (PROBE, ACK/NACK, OCCUPANCY,
    /// JOINER_REQUEST, LOCK_*, DATA_REQUEST).
    pub ctrl_msg_bytes: u32,
    /// Size in bytes of a TASK_SPAWN message (task arguments).
    pub spawn_msg_bytes: u32,
    /// Broadcast queue occupancy to neighbors whenever it changes. The
    /// paper broadcasts after accepting a spawned task; disabling trades
    /// proxy freshness for less traffic.
    pub occupancy_broadcasts: bool,
    /// Detailed microarchitectural timing plug-in (cycle-level reference);
    /// `None` selects SiMany's abstract models.
    pub detailed: Option<Arc<dyn DetailedTiming>>,
    /// Timeout/retry policy for protocol messages lost to the fault plan.
    pub retry: RetryPolicy,
}

impl std::fmt::Debug for RuntimeParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeParams")
            .field("arch", &self.arch)
            .field("mem", &self.mem)
            .field("queue_capacity", &self.queue_capacity)
            .field("task_start_cost", &self.task_start_cost)
            .field("handler_cost", &self.handler_cost)
            .field("spawn_policy", &self.spawn_policy)
            .field("ctrl_msg_bytes", &self.ctrl_msg_bytes)
            .field("spawn_msg_bytes", &self.spawn_msg_bytes)
            .field("occupancy_broadcasts", &self.occupancy_broadcasts)
            .field("detailed", &self.detailed.as_ref().map(|_| "..."))
            .field("retry", &self.retry)
            .finish()
    }
}

impl Default for RuntimeParams {
    fn default() -> Self {
        RuntimeParams {
            arch: MemoryArch::SharedUniform {
                coherence_timings: false,
            },
            mem: MemoryParams::default(),
            queue_capacity: 4,
            task_start_cost: VDuration::from_cycles(10),
            handler_cost: VDuration::from_cycles(2),
            spawn_policy: SpawnPolicy::LeastLoaded,
            ctrl_msg_bytes: 8,
            spawn_msg_bytes: 64,
            occupancy_broadcasts: true,
            detailed: None,
            retry: RetryPolicy::default(),
        }
    }
}

impl RuntimeParams {
    /// The paper's optimistic shared-memory architecture type.
    pub fn shared_memory() -> Self {
        RuntimeParams::default()
    }

    /// Shared memory with coherence-effect timings enabled (validation
    /// configuration of Fig. 5/6).
    pub fn shared_memory_coherent() -> Self {
        RuntimeParams {
            arch: MemoryArch::SharedUniform {
                coherence_timings: true,
            },
            ..RuntimeParams::default()
        }
    }

    /// The paper's realistic distributed-memory architecture type.
    pub fn distributed_memory() -> Self {
        RuntimeParams {
            arch: MemoryArch::Distributed,
            ..RuntimeParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_match_paper() {
        let p = RuntimeParams::default();
        assert_eq!(p.task_start_cost, VDuration::from_cycles(10));
        assert_eq!(p.mem.backing_latency, VDuration::from_cycles(10));
        assert!(!p.arch.is_distributed());
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.timeout(0), VDuration::from_cycles(200));
        assert_eq!(r.timeout(1), VDuration::from_cycles(400));
        assert_eq!(r.timeout(3), VDuration::from_cycles(1_600));
        assert_eq!(r.timeout(4), VDuration::from_cycles(3_200));
        assert_eq!(r.timeout(10), VDuration::from_cycles(3_200));
        assert_eq!(r.timeout(200), VDuration::from_cycles(3_200));
    }

    #[test]
    fn presets() {
        assert!(RuntimeParams::distributed_memory().arch.is_distributed());
        assert!(RuntimeParams::shared_memory_coherent()
            .arch
            .coherence_enabled());
        assert!(!RuntimeParams::shared_memory().arch.coherence_enabled());
    }
}
