//! Run-time protocol messages (paper §IV, *Semantics and Messages*).

use crate::state::{CellId, GroupId, LockId};
use crate::task_ctx::TaskBody;
use simany_core::state::BirthId;
use simany_core::ActivityId;
use simany_topology::CoreId;

/// Every message the run-time system exchanges. Travels as the opaque
/// payload of a `simany_net::Envelope`.
pub enum RtMsg {
    /// Reservation request for one task-queue slot (paper: PROBE).
    Probe {
        /// The probing task, to be woken with the outcome.
        prober: ActivityId,
        /// Core the reply goes to.
        reply_to: CoreId,
    },
    /// Reservation reply (paper: PROBE_ACK / PROBE_NACK).
    ProbeReply {
        /// The probing task.
        prober: ActivityId,
        /// Granted or denied.
        granted: bool,
        /// The responding core (so the prober can refresh its proxy).
        responder: CoreId,
        /// The responder's occupancy after the decision.
        occupancy: u32,
    },
    /// The new task itself (paper: TASK_SPAWN).
    TaskSpawn {
        /// Task closure.
        body: TaskBody,
        /// Group whose counter the task will decrement at termination.
        group: Option<GroupId>,
        /// Birth-ledger entry to discard on the spawning core once the
        /// task lands (paper §II.A).
        birth: BirthId,
        /// The spawning core.
        parent: CoreId,
        /// Debug name.
        name: &'static str,
        /// Whether this message consumes a PROBE reservation at the
        /// destination (false for migration forwards).
        reserved: bool,
        /// Pinned tasks never migrate: protocol node tasks must run on the
        /// exact core they were placed on, so both push- and pull-migration
        /// skip them.
        pinned: bool,
        /// Migration hops so far (bounded to stop pathological bouncing).
        hops: u32,
    },
    /// Queue occupancy broadcast to neighbors (paper: the accepting core
    /// "broadcasts its new task queue's state to its own neighbors").
    Occupancy {
        /// Sender core.
        from: CoreId,
        /// Its occupancy (queue + reservations).
        occupancy: u32,
    },
    /// Group-completion notification to a joiner (paper: JOINER_REQUEST).
    JoinerRequest {
        /// The suspended joiner to wake.
        joiner: ActivityId,
    },
    /// Request to move a cell to the requester (paper: DATA_REQUEST).
    DataRequest {
        /// Cell to fetch.
        cell: CellId,
        /// Requesting core (destination of the data).
        requester: CoreId,
        /// Requesting task, woken by the DATA_RESPONSE.
        activity: ActivityId,
        /// Forwarding count (stale location chasing).
        hops: u32,
    },
    /// The cell content (paper: DATA_RESPONSE).
    DataResponse {
        /// Requesting task to wake.
        activity: ActivityId,
    },
    /// Lock acquisition request sent to the lock's home core.
    LockRequest {
        /// Lock to acquire.
        lock: LockId,
        /// Requesting task (woken by the LOCK_ACK) and its core.
        activity: ActivityId,
        /// Requester core.
        requester: CoreId,
    },
    /// Lock granted.
    LockAck {
        /// The task that now holds the lock.
        activity: ActivityId,
    },
    /// Lock released (sent to the home core).
    LockRelease {
        /// Lock being released.
        lock: LockId,
    },
    /// Application-level protocol payload (the protocol workload pack):
    /// the run-time system delivers it into the destination core's mailbox
    /// and wakes the registered `recv_deadline` waiter, if any.
    App {
        /// Sending core.
        from: CoreId,
        /// Protocol-defined message discriminator.
        tag: u32,
        /// Protocol-defined payload words.
        data: [u64; 4],
    },
    /// Self-addressed deadline timer. A same-core send traverses no links,
    /// so it bypasses every fault mechanism (drop/corrupt/delay/reroute)
    /// and arrives at exactly the requested instant regardless of the
    /// active fault plan; the token guards against a stale timer waking a
    /// later wait.
    Deadline {
        /// Matches the waiter registration that armed this timer.
        token: u64,
    },
}

impl std::fmt::Debug for RtMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RtMsg::Probe { .. } => "PROBE",
            RtMsg::ProbeReply { granted: true, .. } => "PROBE_ACK",
            RtMsg::ProbeReply { granted: false, .. } => "PROBE_NACK",
            RtMsg::TaskSpawn { .. } => "TASK_SPAWN",
            RtMsg::Occupancy { .. } => "OCCUPANCY",
            RtMsg::JoinerRequest { .. } => "JOINER_REQUEST",
            RtMsg::DataRequest { .. } => "DATA_REQUEST",
            RtMsg::DataResponse { .. } => "DATA_RESPONSE",
            RtMsg::LockRequest { .. } => "LOCK_REQUEST",
            RtMsg::LockAck { .. } => "LOCK_ACK",
            RtMsg::LockRelease { .. } => "LOCK_RELEASE",
            RtMsg::App { .. } => "APP",
            RtMsg::Deadline { .. } => "DEADLINE",
        };
        write!(f, "{name}")
    }
}
