//! Property tests for the task programming model: arbitrary task trees
//! complete, verify, stay deterministic and never deadlock — across
//! machine shapes, memory architectures and drift bounds.

use proptest::prelude::*;
use simany_runtime::{run_program, ProgramSpec, RuntimeParams, TaskCtx};
use simany_topology::{mesh_2d, ring};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A randomized task-tree shape: at each node, some work, some children.
#[derive(Clone, Debug)]
struct TreeShape {
    work: u64,
    children: Vec<TreeShape>,
}

fn tree_strategy(depth: u32) -> BoxedStrategy<TreeShape> {
    let leaf = (1u64..200).prop_map(|work| TreeShape {
        work,
        children: Vec::new(),
    });
    leaf.prop_recursive(depth, 24, 3, |inner| {
        ((1u64..200), prop::collection::vec(inner, 0..3))
            .prop_map(|(work, children)| TreeShape { work, children })
    })
    .boxed()
}

fn count_nodes(t: &TreeShape) -> u64 {
    1 + t.children.iter().map(count_nodes).sum::<u64>()
}

fn total_work(t: &TreeShape) -> u64 {
    t.work + t.children.iter().map(total_work).sum::<u64>()
}

fn run_tree(
    tc: &mut TaskCtx<'_>,
    shape: &TreeShape,
    group: simany_runtime::GroupId,
    visited: &Arc<AtomicU64>,
) {
    // Work in small chunks so spatial sync sees fine-grained annotations.
    let mut left = shape.work;
    while left > 0 {
        let step = left.min(32);
        tc.work(step);
        left -= step;
    }
    visited.fetch_add(1, Ordering::SeqCst);
    for child in shape.children.clone() {
        let visited = Arc::clone(visited);
        tc.spawn_or_run(group, move |tc: &mut TaskCtx<'_>| {
            run_tree(tc, &child, group, &visited);
        });
    }
}

fn execute(shape: &TreeShape, spec: ProgramSpec) -> (u64, u64, u64) {
    let visited = Arc::new(AtomicU64::new(0));
    let visited2 = Arc::clone(&visited);
    let shape = shape.clone();
    let out = run_program(spec, move |tc| {
        let group = tc.make_group();
        run_tree(tc, &shape, group, &visited2);
        tc.join(group);
    })
    .expect("simulation must complete");
    (
        visited.load(Ordering::SeqCst),
        out.vtime_cycles(),
        out.stats.scheduler_picks,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every node of an arbitrary task tree runs exactly once, on any
    /// machine, and the virtual time is at least the critical path and at
    /// most the sequential sum (plus overheads).
    #[test]
    fn arbitrary_task_trees_complete(
        shape in tree_strategy(4),
        cores in prop::sample::select(vec![1u32, 4, 9, 16]),
        use_ring in any::<bool>(),
        distributed in any::<bool>(),
    ) {
        let topo = if use_ring && cores >= 2 { ring(cores) } else { mesh_2d(cores) };
        let mut spec = ProgramSpec::new(topo);
        if distributed {
            spec.runtime = RuntimeParams::distributed_memory();
        }
        let (visited, cycles, _) = execute(&shape, spec);
        prop_assert_eq!(visited, count_nodes(&shape));
        // Lower bound: someone had to do the root's own work.
        prop_assert!(cycles >= shape.work);
        // Upper bound: sequential work plus generous per-task overhead.
        let bound = total_work(&shape) + count_nodes(&shape) * 400;
        prop_assert!(cycles <= bound, "cycles {} > bound {}", cycles, bound);
    }

    /// Same seed, same machine => bit-identical timing and scheduling.
    #[test]
    fn task_trees_are_deterministic(
        shape in tree_strategy(3),
        seed in 0u64..500,
    ) {
        let mk = || {
            let mut spec = ProgramSpec::new(mesh_2d(9));
            spec.engine = spec.engine.with_seed(seed);
            spec
        };
        let a = execute(&shape, mk());
        let b = execute(&shape, mk());
        prop_assert_eq!(a, b);
    }

    /// The drift bound never affects correctness, only timing: any T
    /// produces the same completed-task count.
    #[test]
    fn drift_bound_is_timing_only(
        shape in tree_strategy(3),
        t_cycles in prop::sample::select(vec![25u64, 100, 2000]),
    ) {
        let mut spec = ProgramSpec::new(mesh_2d(8));
        spec.engine = spec.engine.with_drift_cycles(t_cycles);
        let (visited, _, _) = execute(&shape, spec);
        prop_assert_eq!(visited, count_nodes(&shape));
    }
}
