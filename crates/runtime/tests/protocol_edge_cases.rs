//! Edge-case tests of the run-time protocol: lock handover order, cell
//! chasing under contention, group reuse, and guard rails.

use parking_lot::Mutex;
use simany_runtime::{run_program, ProgramSpec, RuntimeParams, TaskCtx};
use simany_topology::mesh_2d;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn contended_lock_serializes_many_tasks() {
    // 6 tasks across the mesh all take the same lock; critical sections
    // must be pairwise disjoint in virtual time.
    let spans = Arc::new(Mutex::new(Vec::<(u64, u64)>::new()));
    let spans2 = spans.clone();
    let out = run_program(ProgramSpec::new(mesh_2d(9)), move |tc| {
        let lock = tc.make_lock();
        let g = tc.make_group();
        for _ in 0..6 {
            let spans = spans2.clone();
            tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
                tc.work(50);
                tc.lock(lock);
                let t0 = tc.now().cycles();
                tc.work(200);
                let t1 = tc.now().cycles();
                tc.unlock(lock);
                spans.lock().push((t0, t1));
            });
        }
        tc.join(g);
    })
    .unwrap();
    let mut spans = spans.lock().clone();
    assert_eq!(spans.len(), 6);
    spans.sort();
    for w in spans.windows(2) {
        assert!(
            w[0].1 <= w[1].0,
            "critical sections overlap: {:?} vs {:?}",
            w[0],
            w[1]
        );
    }
    assert!(out.rt.lock_fast + out.rt.lock_waits >= 6);
    // With 6 contenders someone must have waited.
    assert!(out.rt.lock_waits > 0, "no lock contention observed");
}

#[test]
fn cell_chase_under_contention() {
    // Many tasks race for one cell: in-flight requests may reach a stale
    // location and must be forwarded until they catch the cell.
    let mut spec = ProgramSpec::new(mesh_2d(16));
    spec.runtime = RuntimeParams::distributed_memory();
    let accesses = Arc::new(AtomicU64::new(0));
    let accesses2 = accesses.clone();
    let out = run_program(spec, move |tc| {
        let cell = tc.alloc_cell(512);
        let g = tc.make_group();
        for _ in 0..12 {
            let accesses = accesses2.clone();
            tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
                tc.work(20);
                tc.cell_access(cell);
                tc.work(20);
                accesses.fetch_add(1, Ordering::SeqCst);
            });
        }
        tc.join(g);
    })
    .unwrap();
    assert_eq!(accesses.load(Ordering::SeqCst), 12);
    assert!(
        out.rt.cell_remote > 0,
        "expected remote accesses: {:?}",
        out.rt
    );
    // Every data request eventually lands: remote accesses == responses,
    // and the run terminated (no lost requests).
}

#[test]
fn group_can_be_joined_multiple_times() {
    let out = run_program(ProgramSpec::new(mesh_2d(4)), |tc| {
        let g = tc.make_group();
        tc.spawn_or_run(g, |tc: &mut TaskCtx<'_>| tc.work(100));
        tc.join(g);
        // Joining a drained group again returns immediately.
        tc.join(g);
        tc.join(g);
        // And the group can be refilled and re-joined.
        tc.spawn_or_run(g, |tc: &mut TaskCtx<'_>| tc.work(100));
        tc.join(g);
    })
    .unwrap();
    assert!(out.rt.joins_immediate >= 2);
}

#[test]
fn multiple_groups_are_independent() {
    let done = Arc::new(AtomicU64::new(0));
    let done2 = done.clone();
    run_program(ProgramSpec::new(mesh_2d(9)), move |tc| {
        let g1 = tc.make_group();
        let g2 = tc.make_group();
        let d1 = done2.clone();
        tc.spawn_or_run(g1, move |tc: &mut TaskCtx<'_>| {
            tc.work(500);
            d1.fetch_add(1, Ordering::SeqCst);
        });
        let d2 = done2.clone();
        tc.spawn_or_run(g2, move |tc: &mut TaskCtx<'_>| {
            tc.work(50);
            d2.fetch_add(100, Ordering::SeqCst);
        });
        // Join only g2: its task must be done, g1's may or may not be.
        tc.join(g2);
        let snapshot = done2.load(Ordering::SeqCst);
        assert!(snapshot >= 100, "g2 task not finished at join: {snapshot}");
        tc.join(g1);
    })
    .unwrap();
    assert_eq!(done.load(Ordering::SeqCst), 101);
}

#[test]
fn migrated_tasks_still_decrement_their_group() {
    // Flood one neighborhood so tasks migrate; the join must still cover
    // every task (migration preserves group bookkeeping).
    let done = Arc::new(AtomicU64::new(0));
    let done2 = done.clone();
    let out = run_program(ProgramSpec::new(mesh_2d(16)), move |tc| {
        let g = tc.make_group();
        for _ in 0..40 {
            let done = done2.clone();
            tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
                // Fine-grained annotations keep the task inside the drift
                // window, so it stays running while more spawns arrive and
                // queues actually build up behind it.
                for _ in 0..15 {
                    tc.work(20);
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        tc.join(g);
    })
    .unwrap();
    assert_eq!(done.load(Ordering::SeqCst), 40);
    assert!(
        out.rt.task_migrations > 0,
        "expected migrations under flood: {:?}",
        out.rt
    );
}

#[test]
fn distributed_memory_quicksort_style_pipeline() {
    // Cells created by a parent and consumed by grandchildren (transitive
    // movement) keep their identity.
    let mut spec = ProgramSpec::new(mesh_2d(8));
    spec.runtime = RuntimeParams::distributed_memory();
    let hops = Arc::new(AtomicU64::new(0));
    let hops2 = hops.clone();
    run_program(spec, move |tc| {
        let cell = tc.alloc_cell(64);
        let g = tc.make_group();
        let hops3 = hops2.clone();
        tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
            tc.cell_access(cell);
            hops3.fetch_add(1, Ordering::SeqCst);
            let g2 = tc.make_group();
            let hops4 = hops3.clone();
            tc.spawn_or_run(g2, move |tc: &mut TaskCtx<'_>| {
                tc.cell_access(cell);
                hops4.fetch_add(1, Ordering::SeqCst);
            });
            tc.join(g2);
        });
        tc.join(g);
        // Final access from the root: the cell comes back.
        tc.cell_access(cell);
    })
    .unwrap();
    assert_eq!(hops.load(Ordering::SeqCst), 2);
}
