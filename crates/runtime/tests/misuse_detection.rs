//! Failure injection: API misuse must surface as clean, diagnosable
//! errors — never hangs, never silent corruption.

use simany_runtime::{run_program, CellId, GroupId, LockId, ProgramSpec, SimError, TaskCtx};
use simany_topology::mesh_2d;

fn expect_panic_containing(what: &str, body: impl FnOnce(&mut TaskCtx<'_>) + Send + 'static) {
    let err = run_program(ProgramSpec::new(mesh_2d(4)), body).unwrap_err();
    let msg = format!("{err}");
    assert!(
        matches!(err, SimError::TaskPanic { .. }),
        "expected TaskPanic, got: {msg}"
    );
    assert!(msg.contains(what), "message '{msg}' lacks '{what}'");
}

#[test]
fn join_on_unknown_group_panics_cleanly() {
    expect_panic_containing("unknown group", |tc| {
        tc.join(GroupId(9999));
    });
}

#[test]
fn spawn_into_unknown_group_panics_cleanly() {
    expect_panic_containing("unknown group", |tc| {
        if let Some(target) = tc.probe() {
            tc.spawn(target, Some(GroupId(777)), Box::new(|_| {}));
        } else {
            panic!("unknown group (probe failed before reaching the check)");
        }
    });
}

#[test]
fn unknown_lock_panics_cleanly() {
    expect_panic_containing("unknown lock", |tc| {
        tc.lock(LockId(4242));
    });
}

#[test]
fn unknown_cell_panics_cleanly() {
    expect_panic_containing("unknown cell", |tc| {
        tc.cell_access(CellId(31337));
    });
}

#[test]
fn unreleased_lock_still_terminates() {
    // Holding a lock at task end is sloppy but must not wedge the engine:
    // the run completes (the waiver ends with the activity; nobody else
    // wants the lock).
    let out = run_program(ProgramSpec::new(mesh_2d(4)), |tc| {
        let lock = tc.make_lock();
        tc.lock(lock);
        tc.work(100);
        // ... oops, never unlocked.
    });
    // The engine finishes; the leak only matters if someone else blocks on
    // the lock (which would then be a reported deadlock).
    assert!(out.is_ok());
}

#[test]
fn deadlock_from_leaked_lock_is_reported() {
    let err = run_program(ProgramSpec::new(mesh_2d(4)), |tc| {
        let lock = tc.make_lock();
        let g = tc.make_group();
        tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
            tc.lock(lock);
            // Leaked: the next acquirer waits forever.
        });
        tc.join(g);
        tc.lock(lock);
    })
    .unwrap_err();
    let msg = format!("{err}");
    assert!(
        matches!(err, SimError::Deadlock(_)),
        "expected Deadlock, got {msg}"
    );
    assert!(msg.contains("lock"), "report should name the wait: {msg}");
}

#[test]
fn critical_exit_without_enter_panics_cleanly() {
    expect_panic_containing("critical_exit", |tc| {
        tc.raw().critical_exit();
    });
}
