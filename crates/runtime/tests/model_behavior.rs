//! Behavioral tests of the task programming model: conditional spawning,
//! groups/joins, distributed cells, locks and memory timing.

use parking_lot::Mutex;
use simany_runtime::{run_program, MemoryArch, ProgramSpec, RuntimeParams, SpawnPolicy, TaskCtx};
use simany_topology::{mesh_2d, Topology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn spec(n: u32) -> ProgramSpec {
    ProgramSpec::new(mesh_2d(n))
}

#[test]
fn spawn_and_join_runs_children_in_parallel() {
    // Root spawns 3 children, each burning 1000 cycles. On a 4-core mesh
    // they run concurrently: completion well under the sequential 4000.
    let ran = Arc::new(AtomicU64::new(0));
    let ran2 = ran.clone();
    let out = run_program(spec(4), move |tc| {
        let g = tc.make_group();
        for _ in 0..3 {
            let ran = ran2.clone();
            tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
                tc.work(1000);
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        tc.join(g);
        tc.work(10);
    })
    .unwrap();
    assert_eq!(ran.load(Ordering::SeqCst), 3);
    let cycles = out.vtime_cycles();
    assert!(cycles < 2500, "no parallelism: {cycles} cycles");
    assert!(cycles >= 1010, "impossible speedup: {cycles} cycles");
    assert!(out.rt.spawns >= 1, "at least one real spawn expected");
}

#[test]
fn single_core_machine_falls_back_to_sequential() {
    // One core has no neighbors: every conditional spawn runs inline.
    let out = run_program(ProgramSpec::new(Topology::new(1)), |tc| {
        let g = tc.make_group();
        for _ in 0..5 {
            tc.spawn_or_run(g, |tc: &mut TaskCtx<'_>| tc.work(100));
        }
        tc.join(g);
    })
    .unwrap();
    assert_eq!(out.rt.spawns, 0);
    assert_eq!(out.rt.sequential_fallbacks, 5);
    assert_eq!(out.rt.joins_immediate, 1);
    assert_eq!(out.vtime_cycles(), 500);
}

#[test]
fn join_waits_for_nested_spawns() {
    // Children spawn grandchildren into the same group; join must cover all.
    let count = Arc::new(AtomicU64::new(0));
    let count2 = count.clone();
    let joined_after = Arc::new(AtomicU64::new(0));
    let joined_after2 = joined_after.clone();
    run_program(spec(16), move |tc| {
        let g = tc.make_group();
        for _ in 0..3 {
            let count = count2.clone();
            tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
                tc.work(50);
                for _ in 0..2 {
                    let count = count.clone();
                    tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
                        tc.work(50);
                        count.fetch_add(1, Ordering::SeqCst);
                    });
                }
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        tc.join(g);
        joined_after2.store(count2.load(Ordering::SeqCst), Ordering::SeqCst);
    })
    .unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 9);
    assert_eq!(
        joined_after.load(Ordering::SeqCst),
        9,
        "join returned before all group tasks finished"
    );
}

#[test]
fn queue_capacity_limits_acks() {
    // With queue capacity 1 and many rapid probes from one core, some
    // probes must be denied or skipped.
    let mut s = spec(4);
    s.runtime.queue_capacity = 1;
    let out = run_program(s, |tc| {
        let g = tc.make_group();
        for _ in 0..20 {
            // Fine-grained annotations: the targets stay inside the drift
            // window, so their queues stay occupied while we keep probing.
            tc.spawn_or_run(g, |tc: &mut TaskCtx<'_>| {
                for _ in 0..100 {
                    tc.work(50);
                }
            });
        }
        tc.join(g);
    })
    .unwrap();
    assert!(
        out.rt.probe_nacks + out.rt.probe_skips > 0,
        "expected some probes to fail: {:?}",
        out.rt
    );
    assert!(out.rt.sequential_fallbacks > 0);
}

#[test]
fn occupancy_proxies_are_updated() {
    let out = run_program(spec(4), |tc| {
        let g = tc.make_group();
        for _ in 0..8 {
            tc.spawn_or_run(g, |tc: &mut TaskCtx<'_>| tc.work(200));
        }
        tc.join(g);
    })
    .unwrap();
    assert!(out.rt.occupancy_msgs > 0, "occupancy broadcasts expected");
}

#[test]
fn cells_move_to_the_accessor() {
    let out = run_program(spec(4), |tc| {
        let cell = tc.alloc_cell(256);
        assert_eq!(tc.cell_location(cell), tc.core());
        // Local access: no transfer.
        tc.cell_access(cell);
        let g = tc.make_group();
        // A child on another core accesses the cell: it must migrate.
        let home = tc.core();
        tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
            tc.cell_access(cell);
            if tc.core() != home {
                assert_eq!(tc.cell_location(cell), tc.core());
            }
        });
        tc.join(g);
    })
    .unwrap();
    assert!(out.rt.cell_local >= 1);
}

#[test]
fn remote_cell_access_is_slower_than_local() {
    // Compare virtual completion time of a program doing local accesses
    // with one doing ping-pong remote accesses.
    let run = |remote: bool| {
        let mut s = spec(4);
        s.runtime = RuntimeParams::distributed_memory();
        run_program(s, move |tc| {
            let cell = tc.alloc_cell(1024);
            if !remote {
                for _ in 0..10 {
                    tc.cell_access(cell);
                }
            } else {
                let g = tc.make_group();
                for _ in 0..10 {
                    tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
                        tc.cell_access(cell);
                    });
                    tc.join(g);
                }
            }
        })
        .unwrap()
    };
    let local = run(false);
    let remote = run(true);
    assert!(
        remote.vtime_cycles() > local.vtime_cycles(),
        "remote {} <= local {}",
        remote.vtime_cycles(),
        local.vtime_cycles()
    );
    assert!(remote.rt.cell_remote > 0);
}

#[test]
fn locks_serialize_critical_sections() {
    // Two tasks increment a shared host counter under a simulated lock;
    // the lock must serialize them in virtual time: total completion is at
    // least the sum of both critical sections.
    let order = Arc::new(Mutex::new(Vec::new()));
    let order2 = order.clone();
    let out = run_program(spec(4), move |tc| {
        let lock = tc.make_lock();
        let g = tc.make_group();
        for i in 0..2 {
            let order = order2.clone();
            tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
                tc.lock(lock);
                order.lock().push((i, "in", tc.now().cycles()));
                tc.work(500);
                order.lock().push((i, "out", tc.now().cycles()));
                tc.unlock(lock);
            });
        }
        tc.join(g);
    })
    .unwrap();
    let events = order.lock().clone();
    assert_eq!(events.len(), 4);
    // Critical sections must not interleave in virtual time: sort by time
    // and check in/out alternation.
    let mut sorted = events.clone();
    sorted.sort_by_key(|&(_, _, t)| t);
    assert_eq!(sorted[0].1, "in");
    assert_eq!(sorted[1].1, "out");
    assert_eq!(sorted[2].1, "in");
    assert_eq!(sorted[3].1, "out");
    assert!(out.rt.lock_fast + out.rt.lock_waits >= 2);
}

#[test]
fn shared_memory_access_timing() {
    // 1 load miss (10cy) + repeated hits (1cy each).
    let out = run_program(spec(4), |tc| {
        tc.load(0x1000); // miss: 10
        tc.load(0x1000); // hit: 1
        tc.load(0x1008); // same line: hit, 1
        tc.store(0x1000); // first write: miss path, 10
        tc.store(0x1000); // write hit: 1
    })
    .unwrap();
    assert_eq!(out.vtime_cycles(), 10 + 1 + 1 + 10 + 1);
    assert_eq!(out.rt.sm_loads, 3);
    assert_eq!(out.rt.sm_stores, 2);
}

#[test]
fn scope_exit_forgets_cached_lines() {
    let out = run_program(spec(4), |tc| {
        tc.scope(|tc| {
            tc.load(0x2000); // miss 10
            tc.load(0x2000); // hit 1
        });
        tc.load(0x2000); // miss again after scope exit: 10
    })
    .unwrap();
    assert_eq!(out.vtime_cycles(), 21);
}

#[test]
fn coherence_timings_add_latency() {
    // Same sharing pattern with and without coherence-effect timings: the
    // coherent run must be slower (invalidations + remote fetches).
    let run = |coherent: bool| {
        let mut s = spec(4);
        s.runtime.arch = MemoryArch::SharedUniform {
            coherence_timings: coherent,
        };
        run_program(s, |tc| {
            let g = tc.make_group();
            for _ in 0..4 {
                tc.spawn_or_run(g, |tc: &mut TaskCtx<'_>| {
                    for i in 0..20 {
                        tc.store(0x4000 + (i % 4) * 8);
                        tc.load(0x4000 + (i % 4) * 8);
                    }
                });
                tc.join(g);
            }
        })
        .unwrap()
    };
    let plain = run(false);
    let coherent = run(true);
    assert!(coherent.rt.coherence_legs > 0);
    assert!(
        coherent.vtime_cycles() >= plain.vtime_cycles(),
        "coherence {} < plain {}",
        coherent.vtime_cycles(),
        plain.vtime_cycles()
    );
}

#[test]
fn spawn_policies_all_complete() {
    for policy in [
        SpawnPolicy::LeastLoaded,
        SpawnPolicy::RoundRobin,
        SpawnPolicy::FavorFast,
    ] {
        let mut s = spec(16);
        s.runtime.spawn_policy = policy;
        let done = Arc::new(AtomicU64::new(0));
        let done2 = done.clone();
        run_program(s, move |tc| {
            let g = tc.make_group();
            for _ in 0..10 {
                let done = done2.clone();
                tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
                    tc.work(100);
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            tc.join(g);
        })
        .unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 10, "{policy:?}");
    }
}

#[test]
fn deterministic_program_runs() {
    let run = |seed: u64| {
        let mut s = spec(16);
        s.engine = s.engine.with_seed(seed);
        run_program(s, |tc| {
            let g = tc.make_group();
            for _ in 0..10 {
                tc.spawn_or_run(g, |tc: &mut TaskCtx<'_>| {
                    tc.compute(
                        &simany_runtime::BlockCost::new()
                            .int_alu(100)
                            .cond_branches(20),
                    );
                });
            }
            tc.join(g);
        })
        .unwrap()
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.vtime_cycles(), b.vtime_cycles());
    assert_eq!(a.rt.spawns, b.rt.spawns);
    assert_eq!(a.stats.scheduler_picks, b.stats.scheduler_picks);
}

#[test]
fn deep_recursion_divide_and_conquer() {
    // A fib-like task tree exercising recursion + conditional spawning at
    // every level, with a host-side accumulator for correctness.
    fn tree(tc: &mut TaskCtx<'_>, depth: u32, acc: Arc<AtomicU64>) {
        tc.work(10);
        if depth == 0 {
            acc.fetch_add(1, Ordering::SeqCst);
            return;
        }
        let g = tc.make_group();
        let acc2 = acc.clone();
        tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
            tree(tc, depth - 1, acc2);
        });
        tree(tc, depth - 1, acc);
        tc.join(g);
    }
    let acc = Arc::new(AtomicU64::new(0));
    let acc2 = acc.clone();
    let out = run_program(spec(16), move |tc| tree(tc, 8, acc2)).unwrap();
    assert_eq!(acc.load(Ordering::SeqCst), 256);
    assert!(out.rt.spawns > 0);
    assert!(out.stats.peak_live_activities > 1);
}

#[test]
fn broadcast_charges_flood_time() {
    // 16-core mesh, 128-byte payload: the farthest corner is 6 hops away;
    // each hop is 1 cy latency + 1 cy serialization, so completion is at
    // least 12 cycles (more on contended tree edges).
    let out = run_program(spec(16), |tc| {
        tc.broadcast(128);
    })
    .unwrap();
    assert!(
        out.vtime_cycles() >= 12,
        "broadcast too cheap: {}",
        out.vtime_cycles()
    );
    assert!(out.vtime_cycles() < 100, "broadcast absurdly expensive");
    // A single-core machine broadcasts for free.
    let solo = run_program(ProgramSpec::new(simany_topology::mesh_2d(1)), |tc| {
        tc.broadcast(4096);
    })
    .unwrap();
    assert_eq!(solo.vtime_cycles(), 0);
}

#[test]
fn broadcast_scales_with_payload() {
    let run = |bytes: u32| {
        run_program(spec(16), move |tc| tc.broadcast(bytes))
            .unwrap()
            .vtime_cycles()
    };
    assert!(run(4096) > run(64), "bigger payloads must take longer");
}
