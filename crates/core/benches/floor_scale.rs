//! Global-floor microbenchmark: the O(cores) naive sweep against the
//! incrementally-maintained reduction pyramid ([`GlobalFloor`]), across
//! core counts from 2^12 to 2^20.
//!
//! Both structures process the *same* deterministic update stream (an LCG
//! picks which core's floor key changes and to what). Before anything is
//! timed, one untimed pass replays the stream through both and asserts the
//! floors agree after every single update — the timed loops then measure
//! pure cost, not correctness. The naive side pays a full `min` sweep per
//! update (what `sync::global_floor_naive` used to cost per floor query);
//! the incremental side pays one `set` + one O(1) `floor` read.

use criterion::{criterion_group, criterion_main, Criterion};
use simany_core::floor::GlobalFloor;
use simany_time::VirtualTime;
use std::hint::black_box;

/// Updates replayed per timed iteration. Small enough that the 2^20-core
/// naive sweep finishes in seconds, large enough to amortize loop setup.
const UPDATES: usize = 32;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// The deterministic update stream for `n` cores: (core index, new key).
/// Roughly 1/16th of updates set the key to `MAX` (core went idle) so the
/// pyramid's repair path — not just the strict-decrease fast path — gets
/// exercised.
fn updates(n: usize, rounds: usize) -> Vec<(usize, VirtualTime)> {
    let mut state: u64 = 0x5EED_0F10_0D ^ n as u64;
    (0..rounds * UPDATES)
        .map(|_| {
            let i = (lcg(&mut state) as usize) % n;
            let r = lcg(&mut state);
            let key = if r % 16 == 0 {
                VirtualTime::MAX
            } else {
                VirtualTime(r >> 20)
            };
            (i, key)
        })
        .collect()
}

fn naive_min(keys: &[VirtualTime]) -> VirtualTime {
    keys.iter().copied().min().unwrap_or(VirtualTime::MAX)
}

fn bench_floor_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("global_floor");
    g.sample_size(10);
    for exp in [12u32, 14, 16, 18, 20] {
        let n = 1usize << exp;
        let stream = updates(n, 4);

        // Untimed equivalence pass: after *every* update the incremental
        // floor must equal the naive sweep of the same key array.
        let mut keys = vec![VirtualTime::MAX; n];
        let mut inc = GlobalFloor::new(n);
        for &(i, key) in &stream {
            keys[i] = key;
            inc.set(i, key);
            assert_eq!(
                inc.floor(),
                naive_min(&keys),
                "incremental floor diverged from naive sweep at n=2^{exp}"
            );
        }

        g.bench_function(&format!("naive_sweep/2pow{exp}"), |b| {
            let mut keys = vec![VirtualTime::MAX; n];
            let mut cursor = 0usize;
            b.iter(|| {
                let mut floor = VirtualTime::MAX;
                for _ in 0..UPDATES {
                    let (i, key) = stream[cursor % stream.len()];
                    cursor += 1;
                    keys[i] = key;
                    floor = naive_min(&keys);
                }
                black_box(floor)
            });
        });

        g.bench_function(&format!("incremental/2pow{exp}"), |b| {
            let mut inc = GlobalFloor::new(n);
            let mut cursor = 0usize;
            b.iter(|| {
                let mut floor = VirtualTime::MAX;
                for _ in 0..UPDATES {
                    let (i, key) = stream[cursor % stream.len()];
                    cursor += 1;
                    inc.set(i, key);
                    floor = inc.floor();
                }
                black_box(floor)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_floor_scale);
criterion_main!(benches);
