#![allow(clippy::field_reassign_with_default)]

//! End-to-end tracing: the engine reports the events a real run produces.

use simany_core::{
    simulate, CoreId, EngineConfig, Envelope, ExecCtx, MemoryTracer, Ops, Payload, RuntimeHooks,
    TraceEvent,
};
use simany_topology::mesh_2d;
use std::sync::Arc;

struct WakeHooks;
impl RuntimeHooks for WakeHooks {
    fn on_message(&self, ops: &mut Ops<'_>, mut env: Envelope) {
        let aid = env.payload.take::<simany_core::ActivityId>();
        let at = ops.now(env.dst);
        ops.wake(aid, Box::new(()), at);
    }
    fn on_idle(&self, _: &mut Ops<'_>, _: CoreId) {}
    fn on_activity_end(&self, _: &mut Ops<'_>, _: CoreId, _: Box<dyn std::any::Any + Send>) {}
}

#[test]
fn trace_covers_the_event_vocabulary() {
    let tracer = MemoryTracer::new();
    let mut config = EngineConfig::default().with_drift_cycles(50);
    config.tracer = Some(tracer.clone());
    simulate(mesh_2d(4), config, Arc::new(WakeHooks), |ops| {
        // A waiter that blocks until woken by a message.
        let waiter = ops.start_activity(
            CoreId(1),
            "waiter",
            Box::new(()),
            Box::new(|ctx: &mut ExecCtx| {
                let _ = ctx.block("demo-wait");
                ctx.advance_cycles(10);
            }),
        );
        // A runner that outruns the drift bound (stall + resume) and then
        // wakes the waiter.
        ops.start_activity(
            CoreId(0),
            "runner",
            Box::new(()),
            Box::new(move |ctx: &mut ExecCtx| {
                for _ in 0..50 {
                    ctx.advance_cycles(10);
                }
                ctx.send(CoreId(1), 8, Payload::new(waiter));
            }),
        );
        // A third worker so someone lags behind the runner.
        ops.start_activity(
            CoreId(2),
            "slow",
            Box::new(()),
            Box::new(|ctx: &mut ExecCtx| {
                for _ in 0..100 {
                    ctx.advance_cycles(3);
                }
            }),
        );
    })
    .unwrap();

    let events = tracer.events();
    assert!(!tracer.is_empty());
    let has = |pred: &dyn Fn(&TraceEvent) -> bool| events.iter().any(pred);
    assert!(has(&|e| matches!(
        e,
        TraceEvent::ActivityStart { name: "runner", .. }
    )));
    assert!(has(&|e| matches!(
        e,
        TraceEvent::ActivityEnd { name: "waiter", .. }
    )));
    assert!(
        has(&|e| matches!(e, TraceEvent::Stall { .. })),
        "no stall traced"
    );
    assert!(
        has(&|e| matches!(e, TraceEvent::Resume { .. })),
        "no resume traced"
    );
    assert!(has(&|e| matches!(e, TraceEvent::Send { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::Process { .. })));
    assert!(has(&|e| matches!(
        e,
        TraceEvent::Block {
            reason: "demo-wait",
            ..
        }
    )));
    assert!(has(&|e| matches!(e, TraceEvent::Wake { .. })));

    // Renderers produce something sensible.
    let dump = tracer.dump();
    assert!(dump.contains("START runner"));
    let tl = tracer.timeline(4, 40);
    assert_eq!(tl.lines().count(), 4);
    let (starts, stalls, _, _) = tracer.core_summary(CoreId(0));
    assert_eq!(starts, 1);
    assert!(stalls >= 1);
}

#[test]
fn activity_spans_pair_up() {
    let tracer = MemoryTracer::new();
    let mut config = EngineConfig::default();
    config.tracer = Some(tracer.clone());
    simulate(mesh_2d(2), config, Arc::new(WakeHooks), |ops| {
        ops.start_activity(
            CoreId(0),
            "short",
            Box::new(()),
            Box::new(|ctx: &mut ExecCtx| ctx.advance_cycles(10)),
        );
        ops.start_activity(
            CoreId(1),
            "long",
            Box::new(()),
            Box::new(|ctx: &mut ExecCtx| {
                for _ in 0..10 {
                    ctx.advance_cycles(10);
                }
            }),
        );
    })
    .unwrap();
    let spans = tracer.activity_spans();
    assert_eq!(spans.len(), 2);
    let longest = tracer.longest_activity().unwrap();
    assert_eq!(longest.name, "long");
    assert_eq!(longest.length().cycles(), 100);
    let short = spans.iter().find(|s| s.name == "short").unwrap();
    assert_eq!(short.length().cycles(), 10);
    assert_eq!(short.core, CoreId(0));
}

#[test]
fn no_tracer_means_no_overhead_path() {
    // Smoke: identical run without a tracer still works (the engine's
    // trace calls are no-ops).
    let stats = simulate(
        mesh_2d(2),
        EngineConfig::default(),
        Arc::new(WakeHooks),
        |ops| {
            ops.start_activity(
                CoreId(0),
                "t",
                Box::new(()),
                Box::new(|ctx: &mut ExecCtx| ctx.advance_cycles(5)),
            );
        },
    )
    .unwrap();
    assert_eq!(stats.final_vtime.cycles(), 5);
}
