//! Stall-watchdog regression: a seeded livelock must surface as a typed
//! [`SimError::Stalled`] with a diagnostic report — never a hang.
//!
//! The trap: a message handler that re-sends the message to its own core
//! stamped at the same arrival instant. Local messages arrive immediately
//! (zero network cost), so virtual time never advances, yet a message is
//! always due — the quiet-state deadlock detector never fires because the
//! machine is never quiet. Only the watchdog's "no virtual-time progress
//! in N scheduler picks" budget can catch it.

use simany_core::{simulate, CoreId, EngineConfig, Envelope, Ops, Payload, RuntimeHooks, SimError};
use simany_topology::mesh_2d;
use std::sync::Arc;

struct PingSelfForever;

impl RuntimeHooks for PingSelfForever {
    fn on_message(&self, ops: &mut Ops<'_>, env: Envelope) {
        // Re-send to self at the same instant: arrival == sent for a local
        // message, so max_vtime is frozen while the scheduler spins.
        let _ = ops.send_at(env.dst, env.dst, 0, env.arrival, Payload::none());
    }
    fn on_idle(&self, _: &mut Ops<'_>, _: CoreId) {}
    fn on_activity_end(&self, _: &mut Ops<'_>, _: CoreId, _: Box<dyn std::any::Any + Send>) {}
}

fn livelocked_run(config: EngineConfig) -> Result<simany_core::SimStats, SimError> {
    simulate(mesh_2d(2), config, Arc::new(PingSelfForever), |ops| {
        ops.send_at(
            CoreId(0),
            CoreId(0),
            0,
            simany_core::VirtualTime::ZERO,
            Payload::none(),
        );
    })
}

#[test]
fn watchdog_catches_livelock_as_typed_error() {
    // A tight pick budget keeps the test fast; any budget terminates.
    let err = livelocked_run(EngineConfig::default().with_watchdog_picks(Some(10_000)))
        .expect_err("livelocked run must not complete");
    match err {
        SimError::Stalled { at, picks, report } => {
            assert_eq!(picks, 10_000, "reported budget should match the config");
            assert_eq!(at.cycles(), 0, "no virtual time should have passed");
            // The diagnostic snapshot names the machine state.
            assert!(
                report.contains("max_vtime="),
                "report lacks header: {report}"
            );
            assert!(
                report.contains("core0:"),
                "report lacks core dump: {report}"
            );
        }
        other => panic!("expected Stalled, got: {other}"),
    }
}

#[test]
fn watchdog_message_is_actionable() {
    let err = livelocked_run(EngineConfig::default().with_watchdog_picks(Some(5_000)))
        .expect_err("livelocked run must not complete");
    let msg = format!("{err}");
    assert!(
        msg.contains("stalled") || msg.contains("Stalled") || msg.contains("progress"),
        "error display should say what happened: {msg}"
    );
}

/// The watchdog never fires on a healthy run, even with a small budget:
/// progress resets the counter.
#[test]
fn watchdog_is_quiet_on_progress() {
    use simany_core::ExecCtx;
    let stats = simulate(
        mesh_2d(4),
        EngineConfig::default().with_watchdog_picks(Some(16)),
        Arc::new(PingSelfForever),
        |ops| {
            for i in 0..4u32 {
                ops.start_activity(
                    CoreId(i),
                    "walk",
                    Box::new(()),
                    Box::new(|ctx: &mut ExecCtx| {
                        for _ in 0..1_000 {
                            ctx.advance_cycles(5);
                        }
                    }),
                );
            }
        },
    )
    .expect("healthy run must complete");
    assert_eq!(stats.final_vtime.cycles(), 5_000);
}
