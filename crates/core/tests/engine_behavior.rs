#![allow(clippy::field_reassign_with_default)]

//! Engine-level behavioral tests: run-token protocol, spatial
//! synchronization (stall/wake, shadow time, birth ledger, lock waiver),
//! blocking/waking, message timing, failure paths and determinism.

use simany_core::{
    simulate, BlockCost, CoreId, EngineConfig, Envelope, ExecCtx, Ops, Payload, PickPolicy,
    RuntimeHooks, SyncPolicy, VDuration, VirtualTime,
};
use simany_topology::{mesh_2d, ring, Topology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hooks that understand two message payloads:
/// * `WakeOrder(aid)` — wake the given activity with the message arrival
///   time as value;
/// * any `u64` — advance the receiving core by that many cycles.
struct TestHooks;

struct WakeOrder(simany_core::ActivityId);

impl RuntimeHooks for TestHooks {
    fn on_message(&self, ops: &mut Ops<'_>, mut env: Envelope) {
        if env.payload.downcast_ref::<WakeOrder>().is_some() {
            let WakeOrder(aid) = env.payload.take::<WakeOrder>();
            let at = ops.now(env.dst);
            ops.wake(aid, Box::new(at), at);
        } else if env.payload.downcast_ref::<u64>().is_some() {
            let cycles = env.payload.take::<u64>();
            ops.advance_core(env.dst, cycles);
        }
    }
    fn on_idle(&self, _ops: &mut Ops<'_>, _core: CoreId) {}
    fn on_activity_end(
        &self,
        _ops: &mut Ops<'_>,
        _core: CoreId,
        _meta: Box<dyn std::any::Any + Send>,
    ) {
    }
}

fn pair() -> Topology {
    let mut t = Topology::new(2);
    t.add_default_link(CoreId(0), CoreId(1));
    t
}

type TestTasks = Vec<(u32, Box<dyn FnOnce(&mut ExecCtx) + Send>)>;

fn run_with(topo: Topology, config: EngineConfig, tasks: TestTasks) -> simany_core::SimStats {
    simulate(topo, config, Arc::new(TestHooks), move |ops| {
        for (core, job) in tasks {
            ops.start_activity(CoreId(core), "test", Box::new(()), job);
        }
    })
    .expect("simulation failed")
}

#[test]
fn single_core_advance() {
    let topo = Topology::new(1);
    let stats = run_with(
        topo,
        EngineConfig::default(),
        vec![(0, Box::new(|ctx: &mut ExecCtx| ctx.advance_cycles(123)))],
    );
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(123));
    assert_eq!(stats.activities_started, 1);
    assert_eq!(stats.stall_events, 0);
}

#[test]
fn lone_worker_never_stalls_thanks_to_shadow_time() {
    // Only core 0 works; all the others are idle. Shadow virtual time must
    // relay the drift window through the idle region so core 0 free-runs.
    let stats = run_with(
        mesh_2d(16),
        EngineConfig::default().with_drift_cycles(100),
        vec![(
            0,
            Box::new(|ctx: &mut ExecCtx| {
                for _ in 0..100 {
                    ctx.advance_cycles(50);
                }
            }),
        )],
    );
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(5000));
    assert_eq!(stats.stall_events, 0);
}

#[test]
fn two_workers_respect_drift_bound() {
    // Core 0 advances in large steps, core 1 in small steps; spatial sync
    // must interleave them so neither runs away.
    let t = 100u64;
    let step0 = 40u64;
    let stats = run_with(
        pair(),
        EngineConfig::default().with_drift_cycles(t),
        vec![
            (
                0,
                Box::new(move |ctx: &mut ExecCtx| {
                    for _ in 0..250 {
                        ctx.advance_cycles(step0);
                    }
                }),
            ),
            (
                1,
                Box::new(|ctx: &mut ExecCtx| {
                    for _ in 0..1000 {
                        ctx.advance_cycles(10);
                    }
                }),
            ),
        ],
    );
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(10_000));
    assert!(
        stats.stall_events > 0,
        "drift control should have stalled someone"
    );
    // Instantaneous drift can overshoot by at most one advance step.
    assert!(
        stats.max_neighbor_drift <= VDuration::from_cycles(t + step0),
        "observed drift {} exceeds T + step",
        stats.max_neighbor_drift
    );
}

#[test]
fn unbounded_policy_never_stalls() {
    let mut config = EngineConfig::default();
    config.sync = SyncPolicy::Unbounded;
    let stats = run_with(
        pair(),
        config,
        vec![
            (
                0,
                Box::new(|ctx: &mut ExecCtx| {
                    for _ in 0..100 {
                        ctx.advance_cycles(100);
                    }
                }),
            ),
            (1, Box::new(|ctx: &mut ExecCtx| ctx.advance_cycles(1))),
        ],
    );
    assert_eq!(stats.stall_events, 0);
}

#[test]
fn conservative_policy_interleaves_exactly() {
    let mut config = EngineConfig::default();
    config.sync = SyncPolicy::Conservative;
    let stats = run_with(
        pair(),
        config,
        vec![
            (
                0,
                Box::new(|ctx: &mut ExecCtx| {
                    for _ in 0..50 {
                        ctx.advance_cycles(10);
                    }
                }),
            ),
            (
                1,
                Box::new(|ctx: &mut ExecCtx| {
                    for _ in 0..50 {
                        ctx.advance_cycles(10);
                    }
                }),
            ),
        ],
    );
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(500));
    assert!(stats.stall_events > 0);
}

#[test]
fn bounded_slack_policy_runs_to_completion() {
    let mut config = EngineConfig::default();
    config.sync = SyncPolicy::BoundedSlack {
        window: VDuration::from_cycles(50),
    };
    let stats = run_with(
        ring(4),
        config,
        vec![
            (
                0,
                Box::new(|ctx: &mut ExecCtx| {
                    for _ in 0..100 {
                        ctx.advance_cycles(20);
                    }
                }),
            ),
            (
                2,
                Box::new(|ctx: &mut ExecCtx| {
                    for _ in 0..100 {
                        ctx.advance_cycles(5);
                    }
                }),
            ),
        ],
    );
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(2000));
    assert!(stats.stall_events > 0);
}

#[test]
fn random_referee_policy_runs_to_completion() {
    let mut config = EngineConfig::default();
    config.sync = SyncPolicy::RandomReferee {
        slack: VDuration::from_cycles(50),
    };
    let stats = run_with(
        ring(4),
        config,
        vec![
            (
                0,
                Box::new(|ctx: &mut ExecCtx| {
                    for _ in 0..200 {
                        ctx.advance_cycles(20);
                    }
                }),
            ),
            (
                1,
                Box::new(|ctx: &mut ExecCtx| {
                    for _ in 0..200 {
                        ctx.advance_cycles(5);
                    }
                }),
            ),
        ],
    );
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(4000));
}

#[test]
fn lock_waiver_lets_holder_run_ahead() {
    // Core 0 enters a critical section and then advances far beyond T
    // without ever stalling; core 1 plods along slowly.
    let stats = run_with(
        pair(),
        EngineConfig::default().with_drift_cycles(100),
        vec![
            (
                0,
                Box::new(|ctx: &mut ExecCtx| {
                    ctx.critical_enter();
                    for _ in 0..100 {
                        ctx.advance_cycles(50); // 5000 cycles >> T
                    }
                    ctx.critical_exit();
                }),
            ),
            (
                1,
                Box::new(|ctx: &mut ExecCtx| {
                    for _ in 0..10 {
                        ctx.advance_cycles(1);
                    }
                }),
            ),
        ],
    );
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(5000));
}

#[test]
fn message_arrival_sets_receiver_clock() {
    // Core 0 sends "advance by 7" to core 1 after computing 100 cycles.
    // 64-byte message over one default link: 1 cy latency + 1 cy
    // serialization => arrival 102; handler advances 7 => 109.
    let stats = run_with(
        pair(),
        EngineConfig::default(),
        vec![(
            0,
            Box::new(|ctx: &mut ExecCtx| {
                ctx.advance_cycles(100);
                ctx.send(CoreId(1), 64, Payload::new(7u64));
            }),
        )],
    );
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(109));
    assert_eq!(stats.on_time_messages, 1);
    assert_eq!(stats.late_messages, 0);
}

#[test]
fn block_and_wake_across_cores() {
    // The activity on core 1 blocks; core 0 computes 500 cycles then sends
    // a wake order. Core 1 resumes at the arrival time + context switch.
    let resumed_at = Arc::new(AtomicU64::new(0));
    let resumed_at2 = resumed_at.clone();

    struct Hooks;
    impl RuntimeHooks for Hooks {
        fn on_message(&self, ops: &mut Ops<'_>, mut env: Envelope) {
            let aid = env.payload.take::<simany_core::ActivityId>();
            let at = ops.now(env.dst);
            ops.wake(aid, Box::new(at), at);
        }
        fn on_idle(&self, _: &mut Ops<'_>, _: CoreId) {}
        fn on_activity_end(&self, _: &mut Ops<'_>, _: CoreId, _: Box<dyn std::any::Any + Send>) {}
    }

    let stats = simulate(
        pair(),
        EngineConfig::default(),
        Arc::new(Hooks),
        move |ops| {
            // Waiter on core 1: blocks immediately and records its resume time.
            let waiter = ops.start_activity(
                CoreId(1),
                "waiter",
                Box::new(()),
                Box::new(move |ctx: &mut ExecCtx| {
                    // Full suspension semantics: charge the context switch.
                    let v = ctx.block_with("test-wake", true);
                    let woken_at = *v.downcast::<VirtualTime>().unwrap();
                    assert!(ctx.now() >= woken_at);
                    resumed_at2.store(ctx.now().ticks(), Ordering::SeqCst);
                }),
            );
            // Sender on core 0.
            ops.start_activity(
                CoreId(0),
                "sender",
                Box::new(()),
                Box::new(move |ctx: &mut ExecCtx| {
                    ctx.advance_cycles(500);
                    ctx.send(CoreId(1), 8, Payload::new(waiter));
                }),
            );
        },
    )
    .unwrap();

    // Arrival: 500 + 1 latency + 1 serialization = 502; resume adds the
    // 15-cycle context switch.
    let resumed = VirtualTime(resumed_at.load(Ordering::SeqCst));
    assert_eq!(resumed, VirtualTime::from_cycles(517));
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(517));
}

#[test]
fn deadlock_is_detected_and_reported() {
    let err = simulate(
        pair(),
        EngineConfig::default(),
        Arc::new(TestHooks),
        |ops| {
            ops.start_activity(
                CoreId(0),
                "forever",
                Box::new(()),
                Box::new(|ctx: &mut ExecCtx| {
                    let _ = ctx.block("never-woken");
                }),
            );
        },
    )
    .unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("deadlock"), "unexpected error: {msg}");
    assert!(
        msg.contains("never-woken"),
        "report should name the wait: {msg}"
    );
}

#[test]
fn task_panic_is_reported() {
    let err = simulate(
        Topology::new(1),
        EngineConfig::default(),
        Arc::new(TestHooks),
        |ops| {
            ops.start_activity(
                CoreId(0),
                "boom",
                Box::new(()),
                Box::new(|_ctx: &mut ExecCtx| panic!("kaboom-12345")),
            );
        },
    )
    .unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("kaboom-12345"), "unexpected error: {msg}");
}

#[test]
fn birth_ledger_limits_parent_drift() {
    // Core 0 records a birth at its current time and then tries to run far
    // ahead; the ledger must stall it even though core 1 (its only
    // neighbor) is idle with a rising shadow time. After discarding the
    // birth the core free-runs again.
    let stats = run_with(
        pair(),
        EngineConfig::default().with_drift_cycles(100),
        vec![(
            0,
            Box::new(|ctx: &mut ExecCtx| {
                ctx.advance_cycles(10);
                let birth_time = ctx.now();
                let id = ctx.with_ops(|ops| ops.record_birth(CoreId(0), birth_time));
                // Advance up to the bound: fine.
                ctx.advance_cycles(100);
                // Drop the birth from a helper closure later; first verify the
                // drift machinery sees the ledger: one more step would stall us
                // forever (deadlock) if we didn't discard. Discard, then run.
                ctx.with_ops(|ops| ops.discard_birth(CoreId(0), id));
                ctx.advance_cycles(1000);
            }),
        )],
    );
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(1110));
}

#[test]
fn deterministic_across_runs_and_pick_policies_vary() {
    let build_tasks = || -> TestTasks {
        vec![
            (
                0,
                Box::new(|ctx: &mut ExecCtx| {
                    for i in 0..100 {
                        ctx.compute(&BlockCost::new().int_alu(10).cond_branches(i % 5));
                    }
                }),
            ),
            (
                1,
                Box::new(|ctx: &mut ExecCtx| {
                    for _ in 0..100 {
                        ctx.compute(&BlockCost::new().fp_mul(3).cond_branches(2));
                    }
                }),
            ),
        ]
    };
    let a = run_with(pair(), EngineConfig::default().with_seed(11), build_tasks());
    let b = run_with(pair(), EngineConfig::default().with_seed(11), build_tasks());
    assert_eq!(a.final_vtime, b.final_vtime);
    assert_eq!(a.stall_events, b.stall_events);
    assert_eq!(a.scheduler_picks, b.scheduler_picks);

    // A different seed changes branch outcomes and hence the exact clock.
    let c = run_with(pair(), EngineConfig::default().with_seed(12), build_tasks());
    assert_ne!(a.final_vtime, c.final_vtime);
}

#[test]
fn round_robin_and_random_picks_complete() {
    for pick in [PickPolicy::RoundRobin, PickPolicy::Random] {
        let mut config = EngineConfig::default();
        config.pick = pick;
        let stats = run_with(
            ring(4),
            config,
            vec![
                (
                    0,
                    Box::new(|ctx: &mut ExecCtx| {
                        for _ in 0..50 {
                            ctx.advance_cycles(10);
                        }
                    }),
                ),
                (
                    2,
                    Box::new(|ctx: &mut ExecCtx| {
                        for _ in 0..50 {
                            ctx.advance_cycles(10);
                        }
                    }),
                ),
            ],
        );
        assert_eq!(stats.final_vtime, VirtualTime::from_cycles(500));
    }
}

#[test]
fn polymorphic_speeds_scale_elapsed_time() {
    let mut config = EngineConfig::default();
    config.speeds = Some(EngineConfig::polymorphic_speeds(2));
    let stats = run_with(
        pair(),
        config,
        vec![
            // Core 0 is half speed: 100 base cycles take 200.
            (0, Box::new(|ctx: &mut ExecCtx| ctx.advance_cycles(100))),
        ],
    );
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(200));
}

#[test]
fn queue_hint_drives_on_idle() {
    // A runtime whose on_idle starts tasks from a shared countdown.
    struct QueueHooks {
        remaining: parking_lot::Mutex<u32>,
        started: AtomicU64,
    }
    impl RuntimeHooks for QueueHooks {
        fn on_message(&self, _: &mut Ops<'_>, _: Envelope) {}
        fn on_idle(&self, ops: &mut Ops<'_>, core: CoreId) {
            let mut rem = self.remaining.lock();
            assert!(*rem > 0);
            *rem -= 1;
            ops.queue_hint_sub(core, 1);
            self.started.fetch_add(1, Ordering::SeqCst);
            ops.start_activity(
                core,
                "queued",
                Box::new(()),
                Box::new(|ctx: &mut ExecCtx| ctx.advance_cycles(10)),
            );
        }
        fn on_activity_end(&self, _: &mut Ops<'_>, _: CoreId, _: Box<dyn std::any::Any + Send>) {}
    }
    let hooks = Arc::new(QueueHooks {
        remaining: parking_lot::Mutex::new(5),
        started: AtomicU64::new(0),
    });
    let hooks2 = hooks.clone();
    let stats = simulate(Topology::new(1), EngineConfig::default(), hooks2, |ops| {
        ops.queue_hint_add(CoreId(0), 5);
    })
    .unwrap();
    assert_eq!(hooks.started.load(Ordering::SeqCst), 5);
    assert_eq!(stats.activities_started, 5);
    // Tasks ran sequentially on the single core.
    assert_eq!(stats.final_vtime, VirtualTime::from_cycles(50));
}

#[test]
fn late_messages_are_counted() {
    // Core 1 runs ahead within the drift bound; core 0 sends it a message
    // stamped in core 1's past.
    let stats = run_with(
        pair(),
        EngineConfig::default().with_drift_cycles(1000),
        vec![
            (1, Box::new(|ctx: &mut ExecCtx| ctx.advance_cycles(900))),
            (
                0,
                Box::new(|ctx: &mut ExecCtx| {
                    ctx.advance_cycles(1);
                    ctx.send(CoreId(1), 8, Payload::new(1u64));
                    ctx.advance_cycles(1);
                }),
            ),
        ],
    );
    // Depending on interleaving the message may or may not be late, but the
    // counters must account for exactly one message.
    assert_eq!(stats.late_messages + stats.on_time_messages, 1);
    assert_eq!(stats.net.messages, 1);
}
