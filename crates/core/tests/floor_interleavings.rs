//! Property test for the incremental global floor under engine-shaped
//! update streams.
//!
//! The engine maintains, per core, the floor key
//! `min(published-if-working, earliest-pending-birth)` and pushes it into
//! [`GlobalFloor`] whenever any input changes (publish, idle transition,
//! birth recorded or discarded). This test replays arbitrary interleavings
//! of exactly those events against a plain model — a key array recomputed
//! from scratch — and asserts the incremental floor equals the O(cores)
//! recompute after *every* event, not just at the end. The engine-side
//! equivalent runs in every debug build via the `debug_assert_eq!` in
//! `sync::global_floor`.

use proptest::prelude::*;
use simany_core::floor::GlobalFloor;
use simany_time::VirtualTime;

/// One engine-shaped floor-key event.
#[derive(Clone, Debug)]
enum Ev {
    /// The core published a new clock value.
    Publish(usize, u64),
    /// The core went idle (no activity, no reservations, no queue hints).
    Idle(usize),
    /// The core became busy again.
    Work(usize),
    /// A birth was recorded on the core's ledger.
    Birth(usize, u64),
    /// The earliest pending birth was consumed or discarded.
    PopBirth(usize),
}

/// Per-core model state mirroring what `sync::note_floor_key` reads.
#[derive(Clone)]
struct Core {
    published: VirtualTime,
    idle: bool,
    births: Vec<u64>, // unsorted; min is the birth floor
}

impl Core {
    fn key(&self) -> VirtualTime {
        let birth = self
            .births
            .iter()
            .copied()
            .min()
            .map_or(VirtualTime::MAX, VirtualTime);
        let clock = if self.idle {
            VirtualTime::MAX
        } else {
            self.published
        };
        clock.min(birth)
    }
}

fn ev_strategy(n: usize) -> impl Strategy<Value = Ev> {
    (0u8..5, 0..n, 0u64..1_000_000).prop_map(|(kind, i, t)| match kind {
        0 => Ev::Publish(i, t),
        1 => Ev::Idle(i),
        2 => Ev::Work(i),
        3 => Ev::Birth(i, t),
        _ => Ev::PopBirth(i),
    })
}

fn check_interleaving(n: usize, events: Vec<Ev>) {
    let mut model = vec![
        Core {
            published: VirtualTime(0),
            idle: true,
            births: Vec::new(),
        };
        n
    ];
    let mut inc = GlobalFloor::new(n);
    // Engine cores start idle with empty ledgers: every key is MAX, which
    // is GlobalFloor's initial state too.
    assert_eq!(inc.floor(), VirtualTime::MAX);

    for ev in events {
        let touched = match ev {
            Ev::Publish(i, t) => {
                model[i].published = VirtualTime(t);
                i
            }
            Ev::Idle(i) => {
                model[i].idle = true;
                i
            }
            Ev::Work(i) => {
                model[i].idle = false;
                i
            }
            Ev::Birth(i, t) => {
                model[i].births.push(t);
                i
            }
            Ev::PopBirth(i) => {
                if let Some(pos) = model[i]
                    .births
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &t)| t)
                    .map(|(pos, _)| pos)
                {
                    model[i].births.swap_remove(pos);
                }
                i
            }
        };
        inc.set(touched, model[touched].key());
        let naive = model
            .iter()
            .map(Core::key)
            .min()
            .unwrap_or(VirtualTime::MAX);
        assert_eq!(
            inc.floor(),
            naive,
            "incremental floor != O(cores) recompute"
        );
        assert_eq!(inc.floor(), inc.naive_floor(), "pyramid internally stale");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary publish/idle/birth interleavings on a small machine.
    #[test]
    fn incremental_floor_matches_recompute_small(
        events in proptest::collection::vec(ev_strategy(7), 1..200)
    ) {
        check_interleaving(7, events);
    }

    /// Same, on a machine spanning multiple reduction blocks (FANOUT=64),
    /// so cross-block repair paths get exercised.
    #[test]
    fn incremental_floor_matches_recompute_multiblock(
        events in proptest::collection::vec(ev_strategy(130), 1..120)
    ) {
        check_interleaving(130, events);
    }
}
