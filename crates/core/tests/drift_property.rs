//! Property tests for the spatial-synchronization invariant.
//!
//! The paper's guarantee (§II.A): under spatial synchronization with drift
//! bound `T`, a core never runs ahead of its most-late neighbor by more
//! than `T` — up to the granularity of one timing annotation, since the
//! check happens after the advance. We verify the instantaneous observed
//! drift never exceeds `T + max_step` across randomized programs, and that
//! runs are bit-identical for a fixed seed.

use proptest::prelude::*;
use simany_core::{
    simulate, CoreId, EngineConfig, Envelope, ExecCtx, Ops, RuntimeHooks, SimStats, SyncPolicy,
    VDuration, VirtualTime,
};
use simany_topology::{mesh_2d, ring, Topology};
use std::sync::Arc;

struct NoHooks;
impl RuntimeHooks for NoHooks {
    fn on_message(&self, _: &mut Ops<'_>, _: Envelope) {}
    fn on_idle(&self, _: &mut Ops<'_>, _: CoreId) {}
    fn on_activity_end(&self, _: &mut Ops<'_>, _: CoreId, _: Box<dyn std::any::Any + Send>) {}
}

fn run_program(topo: Topology, t_cycles: u64, seed: u64, plans: Vec<Vec<u64>>) -> SimStats {
    let config = EngineConfig::default()
        .with_drift_cycles(t_cycles)
        .with_seed(seed);
    run_config(topo, config, plans)
}

fn run_config(topo: Topology, config: EngineConfig, plans: Vec<Vec<u64>>) -> SimStats {
    simulate(topo, config, Arc::new(NoHooks), move |ops| {
        for (i, plan) in plans.into_iter().enumerate() {
            if plan.is_empty() {
                continue;
            }
            ops.start_activity(
                CoreId(i as u32),
                "plan",
                Box::new(()),
                Box::new(move |ctx: &mut ExecCtx| {
                    for step in plan {
                        ctx.advance_cycles(step);
                    }
                }),
            );
        }
    })
    .expect("simulation must complete")
}

/// Like [`run_config`] but with message traffic: each step advances the
/// core's clock and optionally fires a 64-byte message at another core —
/// in parallel mode many of these cross tile boundaries and exercise the
/// epoch outbox/replay machinery.
fn run_msg_config(
    topo: Topology,
    config: EngineConfig,
    plans: Vec<Vec<(u64, u32, bool)>>,
) -> SimStats {
    let n = topo.n_cores();
    simulate(topo, config, Arc::new(NoHooks), move |ops| {
        for (i, plan) in plans.into_iter().enumerate() {
            if plan.is_empty() {
                continue;
            }
            ops.start_activity(
                CoreId(i as u32),
                "plan",
                Box::new(()),
                Box::new(move |ctx: &mut ExecCtx| {
                    for (step, dst, do_send) in plan {
                        ctx.advance_cycles(step);
                        let dst = dst % n;
                        if do_send && dst != i as u32 {
                            ctx.send(CoreId(dst), 64, simany_core::Payload::none());
                        }
                    }
                }),
            );
        }
    })
    .expect("simulation must complete")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel host execution is a pure function of (program, config,
    /// seed): across random topologies, thread counts and every policy —
    /// with cross-tile message traffic — repeated runs are bit-identical,
    /// the spatial drift bound holds, and the online sanitizer re-derives
    /// every invariant (drift, FIFO, causality, birth floors) and finds
    /// nothing.
    #[test]
    fn parallel_execution_is_deterministic_and_sound(
        n in 4u32..12,
        use_ring in any::<bool>(),
        threads in 2u32..5,
        which_policy in 0usize..5,
        seed in 0u64..1000,
        plans in prop::collection::vec(
            prop::collection::vec((1u64..40, 0u32..12, any::<bool>()), 1..20), 2..12),
    ) {
        let topo = if use_ring { ring(n) } else { mesh_2d(n) };
        let slack = VDuration::from_cycles(50);
        let policy = [
            SyncPolicy::Spatial { t: slack },
            SyncPolicy::BoundedSlack { window: slack },
            SyncPolicy::RandomReferee { slack },
            SyncPolicy::Conservative,
            SyncPolicy::Unbounded,
        ][which_policy];
        let mut plans = plans;
        plans.truncate(n as usize);

        let mut config = EngineConfig::default().with_seed(seed).with_sanitize(true);
        config.sync = policy;
        config.threads = threads;
        let a = run_msg_config(topo.clone(), config.clone(), plans.clone());
        let b = run_msg_config(topo.clone(), config.clone(), plans.clone());
        prop_assert_eq!(a.final_vtime, b.final_vtime);
        prop_assert_eq!(a.stall_events, b.stall_events);
        prop_assert_eq!(a.scheduler_picks, b.scheduler_picks);
        prop_assert_eq!(a.activities_started, b.activities_started);
        prop_assert_eq!(a.late_messages, b.late_messages);
        prop_assert_eq!(a.on_time_messages, b.on_time_messages);
        prop_assert_eq!(a.net.messages, b.net.messages);
        prop_assert_eq!(a.net.bytes, b.net.bytes);
        prop_assert_eq!(a.parallel_epochs, b.parallel_epochs);

        // The sanitizer independently re-derives the drift bound (message
        // receives may legitimately jump a clock to the arrival time, so
        // the static `T + step` bound of the pure-compute tests does not
        // apply here — the online invariant checks do).
        prop_assert_eq!(a.sanitizer_violations, 0,
            "parallel sanitizer violations under {:?}", policy);
        prop_assert!(a.sanitizer_checks > 0);

        // `threads = 1` never constructs a partition (no epochs) and — the
        // workload being message-racy across tiles — still reaches the same
        // program outcome: every started activity completes.
        let mut seq = config;
        seq.threads = 1;
        let s = run_msg_config(topo, seq, plans);
        prop_assert_eq!(s.parallel_epochs, 0);
        prop_assert_eq!(s.activities_started, a.activities_started);
        prop_assert_eq!(s.net.messages, a.net.messages);
        prop_assert_eq!(s.net.bytes, a.net.bytes);
    }

    #[test]
    fn drift_never_exceeds_t_plus_step(
        n in 2u32..10,
        use_ring in any::<bool>(),
        t_cycles in prop::sample::select(vec![20u64, 50, 100]),
        seed in 0u64..1000,
        plans in prop::collection::vec(
            prop::collection::vec(1u64..40, 0..30), 2..10),
    ) {
        let topo = if use_ring { ring(n) } else { mesh_2d(n) };
        let mut plans = plans;
        plans.truncate(n as usize);
        let max_step = plans.iter().flatten().copied().max().unwrap_or(0);
        let expected_final = plans.iter()
            .map(|p| p.iter().sum::<u64>())
            .max()
            .unwrap_or(0);
        let stats = run_program(topo, t_cycles, seed, plans);
        prop_assert_eq!(stats.final_vtime, VirtualTime::from_cycles(expected_final));
        prop_assert!(
            stats.max_neighbor_drift <= VDuration::from_cycles(t_cycles + max_step),
            "drift {} > T({}) + step({})",
            stats.max_neighbor_drift, t_cycles, max_step
        );
    }

    #[test]
    fn identical_seeds_give_identical_runs(
        n in 2u32..7,
        seed in 0u64..1000,
        plans in prop::collection::vec(
            prop::collection::vec(1u64..40, 1..20), 2..7),
    ) {
        let mut plans = plans;
        plans.truncate(n as usize);
        let a = run_program(mesh_2d(n), 100, seed, plans.clone());
        let b = run_program(mesh_2d(n), 100, seed, plans);
        prop_assert_eq!(a.final_vtime, b.final_vtime);
        prop_assert_eq!(a.stall_events, b.stall_events);
        prop_assert_eq!(a.scheduler_picks, b.scheduler_picks);
        prop_assert_eq!(a.activities_started, b.activities_started);
    }

    /// The sanitizer independently re-derives every invariant and finds
    /// nothing on a correct engine, across random topologies, every
    /// synchronization policy and randomized programs — while changing no
    /// observable counter.
    #[test]
    fn sanitizer_is_quiet_across_policies(
        n in 2u32..10,
        use_ring in any::<bool>(),
        which_policy in 0usize..5,
        seed in 0u64..1000,
        plans in prop::collection::vec(
            prop::collection::vec(1u64..40, 0..30), 2..10),
    ) {
        let topo = if use_ring { ring(n) } else { mesh_2d(n) };
        let slack = VDuration::from_cycles(50);
        let policy = [
            SyncPolicy::Spatial { t: slack },
            SyncPolicy::BoundedSlack { window: slack },
            SyncPolicy::RandomReferee { slack },
            SyncPolicy::Conservative,
            SyncPolicy::Unbounded,
        ][which_policy];
        let mut plans = plans;
        plans.truncate(n as usize);

        let mut config = EngineConfig::default().with_seed(seed);
        config.sync = policy;
        let plain = run_config(topo.clone(), config.clone(), plans.clone());
        let checked = run_config(topo, config.with_sanitize(true), plans);

        prop_assert_eq!(checked.sanitizer_violations, 0,
            "sanitizer violations under {:?}", policy);
        prop_assert!(checked.sanitizer_checks > 0);
        prop_assert_eq!(plain.final_vtime, checked.final_vtime);
        prop_assert_eq!(plain.stall_events, checked.stall_events);
        prop_assert_eq!(plain.scheduler_picks, checked.scheduler_picks);
        prop_assert_eq!(plain.max_neighbor_drift, checked.max_neighbor_drift);
    }

    /// End-of-run global drift bound (paper §II.A): under spatial
    /// synchronization the spread between any two *working* cores is at
    /// most `diameter x T` — up to one annotation of granularity per hop.
    /// `max_global_drift` is measured by the sanitizer's periodic scans.
    #[test]
    fn global_drift_bounded_by_diameter(
        n in 2u32..10,
        use_ring in any::<bool>(),
        t_cycles in prop::sample::select(vec![20u64, 50, 100]),
        seed in 0u64..1000,
        plans in prop::collection::vec(
            prop::collection::vec(1u64..40, 1..30), 2..10),
    ) {
        let topo = if use_ring { ring(n) } else { mesh_2d(n) };
        let diameter = topo.diameter_hops();
        let mut plans = plans;
        plans.truncate(n as usize);
        let max_step = plans.iter().flatten().copied().max().unwrap_or(0);
        let config = EngineConfig::default()
            .with_drift_cycles(t_cycles)
            .with_seed(seed)
            .with_sanitize(true);
        let stats = run_config(topo, config, plans);
        prop_assert_eq!(stats.sanitizer_violations, 0);
        let bound = VDuration::from_cycles((t_cycles + max_step) * u64::from(diameter).max(1));
        prop_assert!(
            stats.max_global_drift <= bound,
            "global drift {} > diameter({}) x (T({}) + step({}))",
            stats.max_global_drift, diameter, t_cycles, max_step
        );
    }
}
