//! The simulation engine: shared state, the scheduler loop and the worker
//! threads that execute task code natively.
//!
//! ## Run-token protocol
//!
//! Exactly one thread executes simulation work at any instant, mirroring
//! the paper's single-process, non-preemptive userland scheduling (§III).
//! All simulator state lives in one mutex; a *run token* designates who may
//! proceed — the scheduler or exactly one activity. Handoffs:
//!
//! * scheduler → activity: the scheduler sets the token, notifies the
//!   activity's worker condvar and waits on its own condvar until the token
//!   comes back;
//! * activity → scheduler: at a stall, a block or task completion, the
//!   activity returns the token and waits on its worker condvar until
//!   re-granted.
//!
//! Between `ExecCtx` calls task code runs natively without holding the
//! mutex — that is the "sequential pieces of code are executed natively for
//! maximal speed" of the paper — but since no other simulation thread can
//! hold the token concurrently, the simulation stays sequential and
//! deterministic.
//!
//! ## Parallel host execution
//!
//! With [`EngineConfig::threads`] ` > 1` the topology is partitioned into
//! contiguous tiles and the token protocol gains a third state,
//! [`Token::Epoch`]: the coordinator (see [`crate::parallel`]) grants a
//! *batch* of activities — at most one per tile — that execute user code
//! concurrently, each confined to mutating its own core. Workers are
//! coordinated lock-free through frames (see [`crate::frame`]): the
//! coordinator publishes each epoch as a frame, workers spin/park on an
//! atomic frame counter and claim tiles off an atomic cursor, and a
//! countdown of outstanding members signals quiescence — the simulation
//! mutex is not held while the batch executes. Everything that crosses
//! core boundaries (message routing, compound `Ops`, failed
//! synchronization checks) is deposited into per-tile lanes and replayed
//! in deterministic tile order once the batch quiesces — commuting
//! per-core effects in a parallel replay frame, the rest on a serial
//! tail. `threads <= 1` never enters any of these paths and is
//! bit-identical to the sequential engine described above.

use crate::activity::{Activity, ActivityId, ActivityMeta, ActivityState, TaskFn};
use crate::config::{EngineConfig, SyncPolicy};
use crate::hooks::RuntimeHooks;
use crate::ops::Ops;
use crate::ready::ReadyQueue;
use crate::state::Cores;
use crate::stats::SimStats;
use crate::sync;
use crate::trace::TraceEvent;
use parking_lot::{Condvar, Mutex};
use simany_net::{Envelope, InboxPool, NetworkModel};
use simany_time::{VirtualTime, Xoshiro256StarStar};
use simany_topology::{CoreId, Topology};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Who currently holds the run token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Token {
    Scheduler,
    Act(ActivityId),
    /// Parallel mode: an epoch is in flight — every activity of the
    /// current batch (at most one per tile) holds a share of the token and
    /// may execute concurrently, confined to its own core.
    Epoch,
}

/// Panic payload used to unwind parked activities at simulation teardown.
pub(crate) struct ShutdownSignal;

/// Record a trace event if a tracer is installed.
pub(crate) fn trace(shared: &Shared, make: impl FnOnce() -> TraceEvent) {
    if let Some(tr) = &shared.config.tracer {
        tr.record(make());
    }
}

/// Immutable run-wide context shared by the scheduler and all workers.
pub(crate) struct Shared {
    pub(crate) sim: Mutex<Sim>,
    pub(crate) sched_cv: Condvar,
    pub(crate) hooks: Arc<dyn RuntimeHooks>,
    pub(crate) config: EngineConfig,
    pub(crate) topo: Topology,
    /// Tile partition of the topology; `Some` iff `config.threads > 1`.
    pub(crate) partition: Option<simany_topology::Partition>,
    /// Lock-free frame coordinator for parallel epochs; `Some` iff
    /// `config.threads > 1` (see [`crate::frame`]).
    pub(crate) frame: Option<crate::frame::FrameSync>,
}

impl Shared {
    /// Tile of core `c` (always 0 under the sequential engine).
    #[inline]
    pub(crate) fn tile_of(&self, c: CoreId) -> usize {
        self.partition.as_ref().map_or(0, |p| p.tile_of(c))
    }
}

/// A message buffered by a confined `ExecCtx::send` during an epoch (into
/// the sender tile's lane, lock-free — the sender is its tile's sole
/// executor). Routing consumes shared network state (link occupancy, the
/// global send sequence), so the coordinator routes buffered messages in
/// tile order at the epoch's serial phase. Per-sender FIFO survives: one
/// activity per tile runs at a time, the lane preserves its program
/// order, and its clock (the send stamps) is monotone.
pub(crate) struct OutMsg {
    pub(crate) src: CoreId,
    pub(crate) dst: CoreId,
    pub(crate) size_bytes: u32,
    pub(crate) sent: VirtualTime,
    pub(crate) payload: simany_net::Payload,
}

/// Work a confined activity handed off to the coordinator's serial phase,
/// deposited into its tile's lane. At most one entry per tile per epoch
/// (an activity parks, finishes or panics at most once before leaving
/// phase A), so draining lanes in tile order gives a unique deterministic
/// order.
pub(crate) enum EpochPending {
    /// The activity hit an interaction it could not complete confined —
    /// a failed or undecidable frozen synchronization check, a due
    /// message, or an operation needing exclusive shared-state access
    /// (compound `Ops`, blocking, a policy consuming the engine RNG).
    /// Re-grant it the run token exclusively; its own code path then
    /// replays the authoritative sequential logic (publish, drain,
    /// policy check with stall bookkeeping, or the compound operation)
    /// and runs until it yields.
    Resume(ActivityId),
    /// The activity's closure returned.
    Finish(ActivityId),
    /// The activity's closure panicked. Recorded as a pending entry
    /// rather than an immediate failure so the "first" panic of an epoch
    /// is chosen by tile order, not by a thread race.
    Panic {
        core: CoreId,
        name: &'static str,
        msg: String,
    },
}

/// All mutable simulator state.
pub(crate) struct Sim {
    pub(crate) cores: Cores,
    pub(crate) net: NetworkModel,
    pub(crate) acts: HashMap<u64, Activity>,
    pub(crate) next_act: u64,
    pub(crate) next_birth: u64,
    pub(crate) token: Token,
    pub(crate) ready: ReadyQueue,
    pub(crate) stats: SimStats,
    pub(crate) worker_cvs: Vec<Arc<Condvar>>,
    pub(crate) worker_assigned: Vec<Option<ActivityId>>,
    pub(crate) free_workers: Vec<usize>,
    pub(crate) shutdown: bool,
    pub(crate) failure: Option<Failure>,
    pub(crate) live_activities: usize,
    /// Machine-wide sum of every core's `queue_hint`, maintained at the
    /// two mutation sites in `Ops`. Gives the scheduler an O(1)
    /// nothing-queued check (together with the inbox pool's message total)
    /// instead of an O(cores) sweep per empty pick.
    pub(crate) total_queue_hint: u64,
    pub(crate) floor_dirty: bool,
    /// Largest clock any core has reached (monotone). Bounds shadow-time
    /// propagation: shadows above `max_vtime + T` cannot influence any
    /// stall decision, so relaxation stops there instead of diverging in
    /// fully idle regions.
    pub(crate) max_vtime: VirtualTime,
    pub(crate) rng: Xoshiro256StarStar,
    /// Per core: waiter set — cores stalled on this one (spatial: blocked
    /// neighbors registered on their argmin laggard; random-referee: cores
    /// watching this referee). A rising publish rechecks only these.
    pub(crate) waiters: Vec<Vec<u32>>,
    /// Scratch for `sync::publish` relaxation: `(core, published before the
    /// sweep)` for every core whose value changed. Reused across calls so
    /// the steady state allocates nothing.
    pub(crate) scratch_changed: Vec<(CoreId, VirtualTime)>,
    /// Scratch worklist for the shadow relaxation.
    pub(crate) scratch_work: Vec<CoreId>,
    /// Scratch for draining one waiter set without holding a borrow on it.
    pub(crate) scratch_waiters: Vec<u32>,
    /// Visit stamps (epoch per core) used to dedup scratch traversals
    /// without clearing a bitmap each sweep.
    pub(crate) stamp: Vec<u64>,
    /// Current stamp epoch; incremented at the start of each traversal.
    pub(crate) stamp_cur: u64,
    /// Per core: whether its fault-plan failure has been announced
    /// (CoreFailed trace emitted, counter bumped).
    pub(crate) core_fail_announced: Vec<bool>,
    /// Online invariant sanitizer state; `Some` iff
    /// [`EngineConfig::sanitize`] is on (see [`crate::sanitizer`]).
    pub(crate) sanitizer: Option<Box<crate::sanitizer::SanitizerState>>,
    /// Parallel mode: frame worker threads spawned so far (frame workers
    /// are dedicated to epochs and never touch the sequential
    /// assignment/free-list machinery above).
    pub(crate) frame_workers: usize,
    /// Parallel mode: frame workers currently pinned by a parked activity
    /// (the activity's native stack lives on the worker's thread until its
    /// closure returns, so the worker cannot claim tiles meanwhile). The
    /// coordinator keeps `frame_workers - pinned_workers` at least the
    /// claimable-tile count of every frame it launches.
    pub(crate) pinned_workers: usize,
    /// Parallel mode: per-tile shards of the synchronization hot-path
    /// counters (empty — length 0 — under the sequential engine). Merged
    /// into `stats` in tile order at teardown.
    pub(crate) tile_stats: Vec<crate::stats::TileStats>,
    /// Scratch for the random-referee candidate sweep in `sync_ok`;
    /// reused across picks so the steady state allocates nothing.
    pub(crate) scratch_ready: Vec<u32>,
    /// Incrementally-maintained global floor (tournament tree over per-core
    /// floor keys). `Some` iff the policy queries the global floor on the
    /// hot path (BoundedSlack / Conservative); `None` costs nothing.
    /// Maintained via `sync::note_floor_key` at every `floor_dirty` site.
    pub(crate) gfloor: Option<crate::floor::GlobalFloor>,
    /// Floor-threshold wake structure for the global policies: min-heap of
    /// `(threshold, core)` — once the global floor reaches `threshold`,
    /// the core's stalled activity must be rechecked. Entries are lazy
    /// (stale ones trigger harmless no-op rechecks); see
    /// `sync::wake_stalled_by_floor`.
    pub(crate) stall_wakes: std::collections::BinaryHeap<std::cmp::Reverse<(VirtualTime, u32)>>,
}

impl Sim {
    pub(crate) fn act(&self, aid: ActivityId) -> &Activity {
        self.acts.get(&aid.0).expect("unknown activity")
    }

    pub(crate) fn act_mut(&mut self, aid: ActivityId) -> &mut Activity {
        self.acts.get_mut(&aid.0).expect("unknown activity")
    }

    // Hot-path counter routing: in parallel mode several confined
    // activities bump these concurrently under distinct tiles, so each
    // write goes to the bumping core's tile shard; sequentially (empty
    // shard vector) the machine-wide counter is written directly.

    #[inline]
    pub(crate) fn count_fast_path(&mut self, shared: &Shared, c: CoreId) {
        if self.tile_stats.is_empty() {
            self.stats.fast_path_advances += 1;
        } else {
            self.tile_stats[shared.tile_of(c)].fast_path_advances += 1;
        }
    }

    #[inline]
    pub(crate) fn count_fast_path_n(&mut self, shared: &Shared, c: CoreId, n: u64) {
        if self.tile_stats.is_empty() {
            self.stats.fast_path_advances += n;
        } else {
            self.tile_stats[shared.tile_of(c)].fast_path_advances += n;
        }
    }

    #[inline]
    pub(crate) fn count_full_sync(&mut self, shared: &Shared, c: CoreId) {
        if self.tile_stats.is_empty() {
            self.stats.full_sync_checks += 1;
        } else {
            self.tile_stats[shared.tile_of(c)].full_sync_checks += 1;
        }
    }

    #[inline]
    pub(crate) fn count_floor_recompute(&mut self, shared: &Shared, c: CoreId) {
        if self.tile_stats.is_empty() {
            self.stats.floor_recomputes += 1;
        } else {
            self.tile_stats[shared.tile_of(c)].floor_recomputes += 1;
        }
    }

    #[inline]
    pub(crate) fn note_neighbor_drift(
        &mut self,
        shared: &Shared,
        c: CoreId,
        drift: simany_time::VDuration,
    ) {
        let slot = if self.tile_stats.is_empty() {
            &mut self.stats.max_neighbor_drift
        } else {
            &mut self.tile_stats[shared.tile_of(c)].max_neighbor_drift
        };
        if drift > *slot {
            *slot = drift;
        }
    }
}

/// Result of a simulation run.
#[derive(Debug)]
pub struct SimResult {
    /// Run statistics (final virtual time, counters, network stats...).
    pub stats: SimStats,
}

/// Why a simulation failed.
#[derive(Debug)]
pub enum SimError {
    /// No core could make progress while work remained (a program bug: the
    /// engine itself is deadlock-free by the argument of paper §II.B).
    Deadlock(String),
    /// A task panicked.
    TaskPanic {
        /// Core the panicking task was bound to.
        core: CoreId,
        /// The core's virtual time when the panic was recorded.
        at: VirtualTime,
        /// Name of the panicking task.
        name: &'static str,
        /// The panic payload, stringified.
        message: String,
    },
    /// The stall watchdog fired: `watchdog_picks` consecutive scheduler
    /// picks completed without any virtual-time progress (livelock — e.g. a
    /// bad fault plan or a synchronization-policy bug). Carries a
    /// diagnostic snapshot of the stuck machine.
    Stalled {
        /// The stuck maximum virtual time.
        at: VirtualTime,
        /// How many progress-free picks the watchdog tolerated.
        picks: u64,
        /// Diagnostic snapshot: per-core clocks/shadow times, waiter sets,
        /// lock ownership and in-flight messages.
        report: String,
    },
    /// Checkpoint machinery failed outside the simulation proper: an
    /// unreadable/malformed checkpoint file, a configuration that does not
    /// match the one the checkpoint was written under, an I/O error while
    /// writing, or a resume watermark the program never reached.
    Checkpoint(String),
    /// A resumed run diverged from its checkpoint at the watermark
    /// (changed binary, configuration drift, or a nondeterminism bug).
    CheckpointMismatch(String),
    /// The run was preempted by the external-preemption budget
    /// ([`crate::EngineConfig::preempt_after_checkpoints`]): the budgeted
    /// number of fresh-ground checkpoints was written and the engine
    /// stopped cleanly. Not a failure — the checkpoint on disk is valid and
    /// the run can be completed later via
    /// [`crate::EngineConfig::resume_from`].
    Preempted {
        /// Virtual-time watermark of the last checkpoint written (where a
        /// resumed run will verify).
        at: VirtualTime,
        /// Fresh-ground checkpoints written before stopping (the budget).
        checkpoints: u64,
    },
}

impl SimError {
    /// Typed process exit code for embedding binaries (`simulate`,
    /// `simany-serve` workers): lets a driving scheduler classify worker
    /// failures without parsing stderr. Success is `0` by convention;
    /// usage errors are `2` (the binaries' own convention); everything
    /// here is `>= 10` so the three ranges cannot collide.
    pub fn exit_code(&self) -> i32 {
        match self {
            SimError::Stalled { .. } => 10,
            SimError::CheckpointMismatch(_) => 11,
            SimError::Checkpoint(_) => 12,
            SimError::TaskPanic { .. } => 13,
            SimError::Deadlock(_) => 14,
            SimError::Preempted { .. } => 15,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(d) => write!(f, "simulation deadlock: {d}"),
            SimError::TaskPanic {
                core,
                at,
                name,
                message,
            } => write!(f, "task '{name}' on {core} panicked at {at}: {message}"),
            SimError::Stalled { at, picks, report } => write!(
                f,
                "simulation stalled at {at} ({picks} scheduler picks without progress): {report}"
            ),
            SimError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            SimError::CheckpointMismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            SimError::Preempted { at, checkpoints } => write!(
                f,
                "preempted at {at} after {checkpoints} checkpoint(s); resume from the checkpoint file to continue"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Internal failure record set under the simulation lock; converted into
/// the public [`SimError`] at teardown.
#[derive(Debug)]
pub(crate) enum Failure {
    Deadlock(String),
    Stalled {
        at: VirtualTime,
        picks: u64,
        report: String,
    },
    TaskPanic {
        core: CoreId,
        at: VirtualTime,
        name: &'static str,
        msg: String,
    },
    Checkpoint(String),
    CheckpointMismatch(String),
    Preempted {
        at: VirtualTime,
        checkpoints: u64,
    },
}

impl Failure {
    fn into_error(self) -> SimError {
        match self {
            Failure::Deadlock(d) => SimError::Deadlock(d),
            Failure::Stalled { at, picks, report } => SimError::Stalled { at, picks, report },
            Failure::TaskPanic {
                core,
                at,
                name,
                msg,
            } => SimError::TaskPanic {
                core,
                at,
                name,
                message: msg,
            },
            Failure::Checkpoint(m) => SimError::Checkpoint(m),
            Failure::CheckpointMismatch(m) => SimError::CheckpointMismatch(m),
            Failure::Preempted { at, checkpoints } => SimError::Preempted { at, checkpoints },
        }
    }
}

/// True iff the scheduler has (or may have) work to perform on `c`.
pub(crate) fn is_ready(sim: &Sim, c: CoreId) -> bool {
    if !sim.cores.inboxes.is_empty(c) {
        return true;
    }
    match sim.cores.current[c.index()] {
        Some(a) => sim.act(a).grantable(),
        None => !sim.cores.res_is_empty(c.index()) || sim.cores.queue_hint[c.index()] > 0,
    }
}

/// Scheduling priority of core `c`: its next-event time — the earlier of
/// its pending messages' first arrival and its own clock. Using the raw
/// published time would starve blocked cores (whose shadow time is high by
/// construction) of their pending replies behind running neighbors.
fn ready_priority(sim: &Sim, c: CoreId) -> VirtualTime {
    let vtime = sim.cores.vtime[c.index()];
    match sim.cores.inboxes.earliest_arrival(c) {
        Some(a) => a.min(vtime),
        None => vtime,
    }
}

/// Queue `c` for scheduling if it is not already queued.
pub(crate) fn push_ready(sim: &mut Sim, c: CoreId) {
    if !sim.cores.in_ready[c.index()] {
        sim.cores.in_ready[c.index()] = true;
        let t = ready_priority(sim, c);
        sim.ready.push(c, t);
    }
}

/// Deposit a routed envelope into its destination inbox and requeue the
/// destination core. If the core is already queued at a later priority,
/// push a second entry so the new message's arrival takes effect now
/// (stale duplicates are skipped by the pop-revalidate loop).
pub(crate) fn deliver(sim: &mut Sim, shared: &Shared, env: Envelope) {
    trace(shared, || TraceEvent::Send {
        t: env.sent,
        src: env.src,
        dst: env.dst,
        bytes: env.size_bytes,
    });
    let dst = env.dst;
    let arrival = env.arrival;
    if sim.sanitizer.is_some() {
        crate::sanitizer::on_deliver(sim, shared, &env);
    }
    sim.cores.inboxes.push(dst, env);
    if sim.cores.in_ready[dst.index()] {
        // Possible priority raise: re-push with the (possibly earlier)
        // next-event time.
        if arrival < sim.cores.vtime[dst.index()] {
            let t = ready_priority(sim, dst);
            sim.ready.push(dst, t);
        }
    } else {
        push_ready(sim, dst);
    }
}

/// Make `aid` the current activity of its core, charging the context-switch
/// cost if it is resuming from a wake.
pub(crate) fn make_current(sim: &mut Sim, shared: &Shared, aid: ActivityId) {
    let c = sim.act(aid).core;
    debug_assert!(sim.cores.current[c.index()].is_none());
    sim.cores.current[c.index()] = Some(aid);
    sim.floor_dirty = true;
    sync::note_floor_key(sim, c.index());
    let woken = matches!(sim.act(aid).state, ActivityState::Woken);
    if woken {
        let wake_time = sim
            .act_mut(aid)
            .wake_time
            .take()
            .unwrap_or(VirtualTime::ZERO);
        let charge = sim.act(aid).charge_resume;
        sim.cores.advance_to(c.index(), wake_time);
        if charge {
            let cost = sim.cores.speed[c.index()].scale_duration(shared.config.resume_cost);
            sim.cores.advance(c.index(), cost);
        }
    }
    sim.act_mut(aid).state = ActivityState::Resumable;
    if woken {
        sync::publish(sim, shared, c);
    }
}

/// Create a new activity as the current activity of `core` (engine-level;
/// the runtime's `Ops::start_activity` wraps this).
pub(crate) fn start_activity_impl(
    sim: &mut Sim,
    shared: &Shared,
    core: CoreId,
    name: &'static str,
    meta: ActivityMeta,
    job: TaskFn,
) -> ActivityId {
    assert!(
        sim.cores.current[core.index()].is_none(),
        "start_activity on a busy core {core}"
    );
    let was_idle = sim.cores.is_idle(core.index());
    let aid = ActivityId(sim.next_act);
    sim.next_act += 1;
    sim.acts.insert(
        aid.0,
        Activity {
            id: aid,
            core,
            state: ActivityState::Pending,
            job: Some(job),
            worker: None,
            wake_value: None,
            wake_time: None,
            charge_resume: false,
            meta: Some(meta),
            name,
        },
    );
    sim.cores.current[core.index()] = Some(aid);
    sim.cores.resident[core.index()] += 1;
    sim.live_activities += 1;
    sim.floor_dirty = true;
    sync::note_floor_key(sim, core.index());
    sim.stats.activities_started += 1;
    trace(shared, || TraceEvent::ActivityStart {
        t: sim.cores.vtime[core.index()],
        core,
        aid: aid.0,
        name,
    });
    if sim.live_activities > sim.stats.peak_live_activities {
        sim.stats.peak_live_activities = sim.live_activities;
    }
    assert!(
        sim.live_activities <= shared.config.max_live_activities,
        "activity explosion: more than {} live tasks",
        shared.config.max_live_activities
    );
    if was_idle {
        // The core transitions from shadow time back to a real clock.
        sync::publish(sim, shared, core);
    }
    push_ready(sim, core);
    aid
}

/// Wake a blocked activity with a value available at virtual time `at`.
pub(crate) fn wake_impl(
    sim: &mut Sim,
    shared: &Shared,
    aid: ActivityId,
    value: Box<dyn std::any::Any + Send>,
    at: VirtualTime,
) {
    let act = sim.act_mut(aid);
    assert!(
        matches!(act.state, ActivityState::Blocked(_)),
        "wake of non-blocked activity {aid:?} in state {:?}",
        act.state
    );
    act.state = ActivityState::Woken;
    act.wake_value = Some(value);
    act.wake_time = Some(at);
    let c = act.core;
    trace(shared, || TraceEvent::Wake { t: at, core: c });
    if sim.cores.current[c.index()].is_none() {
        make_current(sim, shared, aid);
    } else {
        sim.cores.res_push_back(c.index(), aid);
    }
    push_ready(sim, c);
}

/// Bookkeeping when an activity's closure returns (worker thread, under the
/// simulation lock).
pub(crate) fn finish_activity(sim: &mut Sim, shared: &Shared, aid: ActivityId) {
    let mut act = sim.acts.remove(&aid.0).expect("finishing unknown activity");
    let c = act.core;
    // The end-of-task hooks below observe published values; make any
    // fast-path deferred publish visible first.
    sync::flush_deferred(sim, shared, c);
    debug_assert_eq!(sim.cores.current[c.index()], Some(aid));
    sim.cores.current[c.index()] = None;
    sim.cores.resident[c.index()] -= 1;
    sim.live_activities -= 1;
    // The working set changed: global-policy floors must be recomputed.
    sim.floor_dirty = true;
    sync::note_floor_key(sim, c.index());
    let meta = act.meta.take().expect("activity meta missing at end");
    trace(shared, || TraceEvent::ActivityEnd {
        t: sim.cores.vtime[c.index()],
        core: c,
        aid: aid.0,
        name: act.name,
    });
    {
        let mut ops = Ops::new(sim, shared);
        shared.hooks.on_activity_end(&mut ops, c, meta);
    }
    // Possible idle transition; also the hooks may have advanced the clock.
    sync::publish(sim, shared, c);
    if is_ready(sim, c) {
        push_ready(sim, c);
    }
}

/// Process every message whose virtual arrival time has already passed on
/// core `c`. Called from `ExecCtx` at each timing-annotation boundary: a
/// running task's core handles due protocol requests (probes, lock
/// requests, occupancy updates...) at its runtime entry points instead of
/// making senders wait until the task yields. Handlers may advance the
/// clock, making further messages due — the loop keeps going until none
/// remain.
pub(crate) fn drain_due_messages(sim: &mut Sim, shared: &Shared, c: CoreId) {
    loop {
        let now = sim.cores.vtime[c.index()];
        let Some(env) = sim.cores.inboxes.pop_arrived(c, now) else {
            return;
        };
        let late = now.saturating_since(env.arrival);
        if env.arrival < now {
            sim.stats.late_messages += 1;
            sim.stats.late_by_total += now - env.arrival;
        } else {
            sim.stats.on_time_messages += 1;
        }
        trace(shared, || TraceEvent::Process {
            arrival: env.arrival,
            t: now,
            core: c,
            late_by: late.ticks(),
        });
        let mut ops = Ops::new(sim, shared);
        shared.hooks.on_message(&mut ops, env);
    }
}

/// One message-processing step on core `c`.
///
/// A message is processed at `max(core clock, arrival)`: the clock records
/// how long the core has been busy in virtual time, so work cannot start
/// before the core frees up; a message whose arrival stamp is already in
/// the core's past is processed late (the accuracy-loss mechanism of paper
/// §II.A — replies still carry request-relative stamps, so the lateness
/// does not leak into the requester's timeline).
pub(crate) fn process_message(sim: &mut Sim, shared: &Shared, c: CoreId) {
    let env = sim.cores.inboxes.pop(c).expect("no message");
    let pre = sim.cores.vtime[c.index()];
    if env.arrival < pre {
        sim.stats.late_messages += 1;
        sim.stats.late_by_total += pre - env.arrival;
    } else {
        sim.stats.on_time_messages += 1;
    }
    sim.cores.advance_to(c.index(), env.arrival);
    trace(shared, || TraceEvent::Process {
        arrival: env.arrival,
        t: sim.cores.vtime[c.index()],
        core: c,
        late_by: pre.saturating_since(env.arrival).ticks(),
    });
    sync::publish(sim, shared, c);
    let mut ops = Ops::new(sim, shared);
    shared.hooks.on_message(&mut ops, env);
}

/// What the scheduler decided to do with a popped ready core.
pub(crate) enum Action {
    Message,
    Grant(ActivityId),
    ResumeParked,
    Idle,
    Nothing,
}

pub(crate) fn decide(sim: &Sim, c: CoreId) -> Action {
    let i = c.index();
    let vtime = sim.cores.vtime[i];
    let cur_grantable = sim.cores.current[i].map(|a| sim.act(a).grantable());
    if let Some(arr) = sim.cores.inboxes.earliest_arrival(c) {
        // Prefer the message unless something runnable on this core is
        // earlier in virtual time than the message's arrival: the current
        // activity's clock, or the front resumable's wake time (processing
        // a future-stamped message first would needlessly inflate the
        // resumed task's clock to the message's arrival).
        let prefer_msg = match cur_grantable {
            Some(true) => arr <= vtime,
            Some(false) => true,
            None => match sim.cores.res_front(i).and_then(|a| sim.act(a).wake_time) {
                Some(wake) => arr <= wake.max(vtime),
                None => true,
            },
        };
        if prefer_msg {
            return Action::Message;
        }
    }
    match sim.cores.current[i] {
        Some(a) if cur_grantable == Some(true) => Action::Grant(a),
        Some(_) => Action::Nothing, // stalled current; wait for drift event
        None => {
            if !sim.cores.res_is_empty(i) {
                Action::ResumeParked
            } else if sim.cores.queue_hint[i] > 0 {
                Action::Idle
            } else {
                Action::Nothing
            }
        }
    }
}

pub(crate) fn deadlock_report(sim: &Sim) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("no runnable core but work remains;");
    let _ = write!(s, " live_activities={}", sim.live_activities);
    // Live (distinct queued cores) vs raw (entries incl. lazy-deleted
    // duplicates): the raw figure alone over-reports ready cores.
    let _ = write!(
        s,
        " ready_queued={}/{}",
        sim.ready.live_len(),
        sim.ready.len()
    );
    append_core_dump(sim, &mut s);
    s
}

/// Diagnostic snapshot for the stall watchdog: everything
/// `deadlock_report` shows, plus shadow times and waiter sets (a livelock,
/// unlike a deadlock, has cores that *look* runnable — the useful signal is
/// who is stalled on whom and which messages are in flight).
pub(crate) fn diagnostic_snapshot(sim: &Sim) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "max_vtime={} live_activities={} picks={} ready_queued={}/{}",
        sim.max_vtime,
        sim.live_activities,
        sim.stats.scheduler_picks,
        sim.ready.live_len(),
        sim.ready.len()
    );
    append_core_dump(sim, &mut s);
    for (idx, ws) in sim.waiters.iter().enumerate() {
        if !ws.is_empty() {
            let _ = write!(s, "\n  waiters-on-core{idx}: {ws:?}");
        }
    }
    s
}

/// Shared body of `deadlock_report` and `diagnostic_snapshot`: one line per
/// core with any interesting state, then every blocked activity.
fn append_core_dump(sim: &Sim, s: &mut String) {
    use std::fmt::Write as _;
    for idx in 0..sim.cores.len() {
        if sim.cores.resident[idx] > 0
            || sim.cores.queue_hint[idx] > 0
            || !sim.cores.inboxes.is_empty(CoreId(idx as u32))
            || sim.cores.lock_depth[idx] > 0
            || sim.cores.waiting_on[idx].is_some()
        {
            let _ = write!(s, "\n  core{idx}: {}", sim.cores.debug_line(idx));
            if let Some(a) = sim.cores.current[idx] {
                let act = sim.act(a);
                let _ = write!(s, " current={:?}({}) {:?}", act.id, act.name, act.state);
            }
        }
    }
    for act in sim.acts.values() {
        if let ActivityState::Blocked(reason) = act.state {
            let _ = write!(
                s,
                "\n  blocked {:?}({}) on {} @{}",
                act.id, act.name, reason, act.core
            );
        }
    }
}

/// Run a simulation.
///
/// * `topo` — the interconnect (see `simany-topology`).
/// * `config` — engine configuration (synchronization policy, seeds,
///   per-core speeds, cost model...).
/// * `hooks` — the task run-time system (see [`RuntimeHooks`]).
/// * `setup` — runs once before the first scheduler pick, with full [`Ops`]
///   access; typically starts the root task on core 0.
///
/// Returns run statistics, or an error if the program deadlocked or a task
/// panicked.
pub fn simulate(
    topo: Topology,
    config: EngineConfig,
    hooks: Arc<dyn RuntimeHooks>,
    setup: impl FnOnce(&mut Ops<'_>),
) -> Result<SimStats, SimError> {
    let n = topo.n_cores();
    silence_shutdown_panics();
    if let Some(speeds) = &config.speeds {
        assert_eq!(
            speeds.len(),
            n as usize,
            "speeds length must match core count"
        );
    }
    // Checkpoint/resume preflight: fail before spawning anything.
    if config.checkpoint_every.is_some() && config.checkpoint_path.is_none() {
        return Err(SimError::Checkpoint(
            "checkpoint_every set without checkpoint_path".to_string(),
        ));
    }
    if config.preempt_after_checkpoints.is_some() && config.checkpoint_every.is_none() {
        return Err(SimError::Checkpoint(
            "preempt_after_checkpoints set without checkpoint_every".to_string(),
        ));
    }
    let cfg_digest = crate::checkpoint::config_digest(&config);
    let resume_target = match &config.resume_from {
        Some(path) => {
            let cp = crate::checkpoint::Checkpoint::load(path).map_err(SimError::Checkpoint)?;
            if cp.config_digest != cfg_digest {
                return Err(SimError::Checkpoint(format!(
                    "checkpoint {} was written under configuration {:016x}, \
                     this run is {:016x} (policy/seed/network/fault must match)",
                    path.display(),
                    cp.config_digest,
                    cfg_digest
                )));
            }
            Some(cp)
        }
        None => None,
    };
    let start_wall = std::time::Instant::now();
    // Parallel host execution: partition the topology into contiguous
    // tiles, one concurrent activity per tile (see `crate::parallel`).
    let partition = (config.threads > 1)
        .then(|| simany_topology::partition_bfs(&topo, config.threads as usize));
    let n_tiles = partition.as_ref().map_or(0, |p| p.n_tiles());
    // One inbox-pool shard per tile so the parallel replay lanes push into
    // disjoint shards; shard assignment is invisible to message order.
    let inboxes = match &partition {
        Some(part) if part.n_tiles() > 1 => {
            let shard_of = (0..n)
                .map(|i| part.tile_of(CoreId(i)) as u32)
                .collect::<Vec<u32>>();
            InboxPool::with_shards(shard_of)
        }
        _ => InboxPool::new(n),
    };
    let speeds = (0..n).map(|i| config.speed_of(i)).collect();
    let cores = Cores::new(
        speeds,
        inboxes,
        config.cost_model.branch_accuracy,
        config.cost_model.pipeline_depth,
        config.seed,
    );
    if let Some(plan) = &config.fault {
        assert_eq!(
            plan.n_cores(),
            n,
            "fault plan compiled against a different topology"
        );
    }
    let mut ready = ReadyQueue::new(config.pick, config.seed);
    if let Some(part) = &partition {
        // Equal-time cores would otherwise pop in core-id order — a whole
        // contiguous tile before the next one — making the epoch collector
        // defer O(tile size) cores per epoch on tied wavefronts. Interleave
        // the tie-break so one core of every tile surfaces first.
        let mut ranks = vec![0u32; n as usize];
        for t in 0..part.n_tiles() {
            for (i, &c) in part.tile(t).iter().enumerate() {
                ranks[c.index()] = (i * part.n_tiles() + t) as u32;
            }
        }
        ready.set_tiebreak_ranks(ranks);
    }
    let sim = Sim {
        cores,
        net: NetworkModel::with_faults(topo.clone(), config.net, config.fault.clone(), config.seed),
        acts: HashMap::new(),
        next_act: 0,
        next_birth: 0,
        token: Token::Scheduler,
        ready,
        stats: SimStats::default(),
        worker_cvs: Vec::new(),
        worker_assigned: Vec::new(),
        free_workers: Vec::new(),
        shutdown: false,
        failure: None,
        live_activities: 0,
        total_queue_hint: 0,
        floor_dirty: false,
        max_vtime: VirtualTime::ZERO,
        rng: Xoshiro256StarStar::stream(config.seed, 0x5EED),
        waiters: vec![Vec::new(); n as usize],
        scratch_changed: Vec::new(),
        scratch_work: Vec::new(),
        scratch_waiters: Vec::new(),
        stamp: vec![0; n as usize],
        stamp_cur: 0,
        core_fail_announced: vec![false; n as usize],
        sanitizer: None,
        frame_workers: 0,
        pinned_workers: 0,
        tile_stats: vec![crate::stats::TileStats::default(); n_tiles],
        scratch_ready: Vec::new(),
        // All cores start idle with empty birth ledgers: every key is MAX,
        // which is exactly `GlobalFloor::new`'s initial state.
        gfloor: matches!(
            config.sync,
            SyncPolicy::BoundedSlack { .. } | SyncPolicy::Conservative
        )
        .then(|| crate::floor::GlobalFloor::new(n as usize)),
        stall_wakes: std::collections::BinaryHeap::new(),
    };
    let frame = (n_tiles > 0).then(|| crate::frame::FrameSync::new(n_tiles, config.threads));
    let shared = Arc::new(Shared {
        sim: Mutex::new(sim),
        sched_cv: Condvar::new(),
        hooks,
        config,
        topo,
        partition,
        frame,
    });

    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    {
        let mut sim = shared.sim.lock();
        if shared.config.sanitize {
            crate::sanitizer::install(&mut sim, &shared);
        }
        {
            let mut ops = Ops::new(&mut sim, &shared);
            setup(&mut ops);
        }

        // Everything up to here — topology, routing, partition, core
        // arrays, workload setup — is construction; the pick loop is the
        // simulation. Scale benchmarks need the two separated, or setup
        // cost masquerades as per-event cost.
        let build = start_wall.elapsed();
        let run_start = std::time::Instant::now();
        sim = if shared.config.threads > 1 {
            crate::parallel::run_scheduler(&shared, sim, &mut handles, cfg_digest, resume_target)
        } else {
            run_sequential(&shared, sim, &mut handles, cfg_digest, resume_target)
        };
        sim.stats.build_ns = build.as_nanos() as u64;
        sim.stats.run_ns = run_start.elapsed().as_nanos() as u64;

        // Teardown: release every parked worker, and every frame worker
        // spinning or parked at the frame gate.
        sim.shutdown = true;
        for cv in &sim.worker_cvs {
            cv.notify_one();
        }
        if let Some(fs) = &shared.frame {
            fs.request_shutdown();
        }
    }
    for h in handles {
        let _ = h.join();
    }

    // All workers have exited; harvest the result under the lock instead of
    // insisting on sole ownership of the `Arc` (a panicking teardown path
    // must not be able to turn into a second panic here).
    let mut sim = shared.sim.lock();
    if let Some(f) = sim.failure.take() {
        return Err(f.into_error());
    }
    let mut stats = std::mem::take(&mut sim.stats);
    // Hot-structure hygiene counters live on the structures themselves;
    // harvest them into the stats now that the run is over.
    stats.ready_compactions = sim.ready.compactions();
    stats.ready_compacted = sim.ready.compaction_dropped();
    if let Some(g) = &sim.gfloor {
        stats.floor_key_updates = g.updates();
    }
    // Merge the per-tile hot-path counter shards (deterministic: tile
    // order). Empty — a no-op — under the sequential engine.
    for shard in &sim.tile_stats {
        stats.absorb_tile(shard);
    }
    // Fold the frame workers' contention diagnostics (spin/park/claim
    // counts). The values are host-scheduling races — diagnostics only —
    // but the fold order is fixed (worker spawn order) so the vector shape
    // is stable.
    if let Some(fs) = &shared.frame {
        let mut ws = fs.take_worker_stats();
        ws.sort_by_key(|w| w.0);
        for (_, claimed, spins, parks) in ws {
            stats.tiles_claimed.push(claimed);
            stats.frame_spins += spins;
            stats.frame_parks += parks;
        }
    }
    // Single teardown pass over the core arrays: the final virtual time and
    // a streaming busy-time summary (total, max, top cores) — no O(cores)
    // vector is retained in the stats.
    let mut busy = crate::stats::BusySummary::default();
    let mut final_vtime = VirtualTime::ZERO;
    for i in 0..sim.cores.len() {
        final_vtime = final_vtime.max(sim.cores.vtime[i]);
        busy.record(CoreId(i as u32), sim.cores.busy[i]);
    }
    stats.final_vtime = final_vtime;
    stats.busy = busy;
    stats.net = sim.net.stats().clone();
    stats.msgs_dropped = stats.net.dropped + stats.net.corrupted + stats.net.unreachable;
    stats.msgs_corrupted = stats.net.corrupted;
    stats.reroutes = stats.net.rerouted;
    stats.hot_links = sim
        .net
        .busiest_links(8)
        .into_iter()
        .map(|(props, busy)| (props.src, props.dst, busy))
        .collect();
    stats.wall = start_wall.elapsed();
    Ok(stats)
}

/// Pick-loop phase profiling: fold the time since `mark` into `acc` and
/// restart the lap. A no-op (no clock read) unless
/// [`EngineConfig::profile_picks`] is on.
#[inline]
fn lap(profiling: bool, mark: &mut std::time::Instant, acc: &mut u64) {
    if profiling {
        let now = std::time::Instant::now();
        *acc += now.duration_since(*mark).as_nanos() as u64;
        *mark = now;
    }
}

/// The sequential scheduler loop (`threads <= 1`): pick one ready core at
/// a time and process it to completion before the next pick. Returns the
/// guard so `simulate` can run the common teardown.
fn run_sequential<'a>(
    shared: &Arc<Shared>,
    mut sim: parking_lot::MutexGuard<'a, Sim>,
    handles: &mut Vec<std::thread::JoinHandle<()>>,
    cfg_digest: u64,
    resume_target: Option<crate::checkpoint::Checkpoint>,
) -> parking_lot::MutexGuard<'a, Sim> {
    {
        // Policies whose stall conditions depend on machine-wide state
        // (the global floor, or an arbitrary referee core) get a full
        // stalled-recheck whenever that state may have changed. Spatial
        // synchronization needs no such sweep: its wake conditions are
        // purely local and handled by neighbor publishes.
        let global_policy = matches!(
            shared.config.sync,
            SyncPolicy::BoundedSlack { .. }
                | SyncPolicy::Conservative
                | SyncPolicy::RandomReferee { .. }
        );
        // BoundedSlack/Conservative stall conditions are pure threshold
        // checks against the floor, so a floor move wakes exactly the
        // cores whose registered threshold it crossed. RandomReferee's
        // recheck sequence consumes the engine RNG, so it keeps the
        // historical full sweep (any change to which cores get rechecked
        // would change the deterministic schedule).
        let referee_policy = matches!(shared.config.sync, SyncPolicy::RandomReferee { .. });
        let profiling = shared.config.profile_picks;

        // Checkpoint/resume and watchdog bookkeeping. All of it observes
        // the machine at scheduler-time quiescence only (deferred publishes
        // are flushed at every token yield), so `max_vtime`, pick counts
        // and state digests are well-defined at these points.
        let mut ckpt = crate::checkpoint::CheckpointDriver::new(&shared.config, resume_target);
        let mut wd_last_vtime = sim.max_vtime;
        let mut wd_last_pick: u64 = 0;
        let mut mark = std::time::Instant::now();

        loop {
            if profiling {
                mark = std::time::Instant::now();
            }
            if sim.failure.is_some() {
                break;
            }
            if !ckpt.observe(&mut sim, shared.as_ref(), cfg_digest) {
                break;
            }
            if global_policy && sim.floor_dirty {
                sim.floor_dirty = false;
                if referee_policy {
                    sync::recheck_all_stalled(&mut sim, shared);
                } else {
                    sync::wake_stalled_by_floor(&mut sim, shared);
                }
            }
            lap(profiling, &mut mark, &mut sim.stats.prof_floor_ns);
            // Pop a valid ready core (skipping stale entries); opt-in
            // compaction first, when lazy-deleted garbage dominates the
            // heap (schedule-perturbing — see `EngineConfig::compact_ready`).
            if shared.config.compact_ready {
                let s = &mut *sim;
                s.ready.maybe_compact(&s.cores.in_ready);
            }
            let mut picked = None;
            while let Some(c) = sim.ready.pop() {
                sim.cores.in_ready[c.index()] = false;
                if is_ready(&sim, c) {
                    picked = Some(c);
                    break;
                }
                sim.stats.ready_stale_skipped += 1;
            }
            lap(profiling, &mut mark, &mut sim.stats.prof_pop_ns);
            let Some(c) = picked else {
                // O(1) quiet check: no live activity, no message in any
                // inbox shard, no queued work anywhere.
                let quiet = sim.live_activities == 0
                    && sim.cores.inboxes.total_messages() == 0
                    && sim.total_queue_hint == 0;
                if quiet {
                    break; // normal completion
                }
                sim.failure = Some(Failure::Deadlock(deadlock_report(&sim)));
                break;
            };
            sim.stats.scheduler_picks += 1;
            // Stall watchdog: abort (with a diagnostic snapshot) instead of
            // spinning forever when picks stop moving virtual time —
            // classic deadlocks never get here (the quiet-state check above
            // catches them); this guards against livelock.
            if sim.max_vtime > wd_last_vtime {
                wd_last_vtime = sim.max_vtime;
                wd_last_pick = sim.stats.scheduler_picks;
            } else if let Some(budget) = shared.config.watchdog_picks {
                if sim.stats.scheduler_picks - wd_last_pick >= budget {
                    sim.failure = Some(Failure::Stalled {
                        at: sim.max_vtime,
                        picks: budget,
                        report: diagnostic_snapshot(&sim),
                    });
                    break;
                }
            }
            if sim.sanitizer.is_some()
                && sim
                    .stats
                    .scheduler_picks
                    .is_multiple_of(crate::sanitizer::SCAN_EVERY_PICKS)
            {
                crate::sanitizer::scan(&mut sim, shared);
            }
            let sample_every = shared.config.parallelism_sample_every;
            if sample_every != 0 && sim.stats.scheduler_picks.is_multiple_of(sample_every) {
                // Available host parallelism, O(1): distinct cores with
                // queued ready-work plus the just-picked core. (The
                // historical O(cores) `is_ready` sweep and this queue-
                // derived count differ only on stale-queued cores, which
                // are transient; the sweep does not scale to mega-core
                // machines at any useful sample rate.)
                let avail = sim.ready.live_len() as u32 + 1;
                sim.stats.parallelism_samples.push(avail);
            }
            lap(profiling, &mut mark, &mut sim.stats.prof_overhead_ns);

            match decide(&sim, c) {
                Action::Message => process_message(&mut sim, shared, c),
                Action::Grant(aid) => {
                    grant(&mut sim, shared, handles, aid);
                    while sim.token != Token::Scheduler {
                        shared.sched_cv.wait(&mut sim);
                    }
                }
                Action::ResumeParked => {
                    let aid = sim.cores.res_pop_front(c.index()).unwrap();
                    make_current(&mut sim, shared, aid);
                    // Grant immediately if still allowed (it may have become
                    // stalled by the resume-cost advance).
                    if sim.act(aid).grantable() {
                        grant(&mut sim, shared, handles, aid);
                        while sim.token != Token::Scheduler {
                            shared.sched_cv.wait(&mut sim);
                        }
                    }
                }
                Action::Idle => {
                    let before_hint = sim.cores.queue_hint[c.index()];
                    {
                        let mut ops = Ops::new(&mut sim, shared);
                        shared.hooks.on_idle(&mut ops, c);
                    }
                    assert!(
                        sim.cores.queue_hint[c.index()] < before_hint
                            || sim.cores.current[c.index()].is_some(),
                        "on_idle made no progress (runtime bug)"
                    );
                }
                Action::Nothing => {}
            }
            if is_ready(&sim, c) {
                push_ready(&mut sim, c);
            }
            lap(profiling, &mut mark, &mut sim.stats.prof_action_ns);
        }

        if sim.failure.is_none() {
            if sim.sanitizer.is_some() {
                // Final machine-wide scan over the quiescent end state.
                crate::sanitizer::scan(&mut sim, shared);
            }
            ckpt.finish(&mut sim);
        }
    }
    sim
}

/// Resolve the worker thread slot for `aid`, binding it to one (reusing a
/// free slot or spawning) if it has never run.
pub(crate) fn assign_worker(
    sim: &mut Sim,
    shared: &Arc<Shared>,
    handles: &mut Vec<std::thread::JoinHandle<()>>,
    aid: ActivityId,
) -> usize {
    match sim.act(aid).worker {
        Some(w) => w,
        None => {
            let w = match sim.free_workers.pop() {
                Some(w) => w,
                None => spawn_worker(sim, shared, handles),
            };
            sim.worker_assigned[w] = Some(aid);
            sim.act_mut(aid).worker = Some(w);
            w
        }
    }
}

/// Hand the run token to `aid`, binding it to a worker thread first if it
/// has never run.
fn grant(
    sim: &mut Sim,
    shared: &Arc<Shared>,
    handles: &mut Vec<std::thread::JoinHandle<()>>,
    aid: ActivityId,
) {
    let worker = assign_worker(sim, shared, handles, aid);
    sim.act_mut(aid).state = ActivityState::Granted;
    sim.token = Token::Act(aid);
    sim.stats.activity_resumes += 1;
    sim.worker_cvs[worker].notify_one();
}

fn spawn_worker(
    sim: &mut Sim,
    shared: &Arc<Shared>,
    handles: &mut Vec<std::thread::JoinHandle<()>>,
) -> usize {
    let idx = sim.worker_cvs.len();
    let cv = Arc::new(Condvar::new());
    sim.worker_cvs.push(cv.clone());
    sim.worker_assigned.push(None);
    let shared2 = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("simany-worker-{idx}"))
        .stack_size(shared.config.worker_stack_bytes)
        .spawn(move || worker_main(shared2, idx, cv))
        .expect("failed to spawn worker thread");
    handles.push(handle);
    idx
}

/// Keep the default panic hook from printing a message-and-backtrace for
/// every [`ShutdownSignal`] unwind: those are the engine's own cancellation
/// mechanism (stall watchdog, preemption, early failure), caught and
/// handled by the worker loops, and with external preemption they are
/// routine rather than exceptional. Real panics still reach the previous
/// hook untouched.
fn silence_shutdown_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ShutdownSignal>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Stringify a caught panic payload for failure reports.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

fn worker_main(shared: Arc<Shared>, idx: usize, cv: Arc<Condvar>) {
    loop {
        // Wait for an assignment with an exclusive grant naming this
        // activity in the token. (Parallel epochs never use this pool:
        // frame workers — see `frame_worker_main` — run batch members.)
        let (aid, core, name, job) = {
            let mut sim = shared.sim.lock();
            loop {
                if sim.shutdown {
                    return;
                }
                if let Some(aid) = sim.worker_assigned[idx] {
                    let token_ok = matches!(sim.token, Token::Act(a) if a == aid);
                    if token_ok && matches!(sim.act(aid).state, ActivityState::Granted) {
                        break;
                    }
                }
                cv.wait(&mut sim);
            }
            let aid = sim.worker_assigned[idx].unwrap();
            let job = sim.act_mut(aid).job.take().expect("granted without job");
            (aid, sim.act(aid).core, sim.act(aid).name, job)
        };

        let mut ctx = crate::ctx::ExecCtx::new(Arc::clone(&shared), aid, core, cv.clone(), None);
        let result = catch_unwind(AssertUnwindSafe(|| job(&mut ctx)));

        let mut sim = shared.sim.lock();
        // The body may have ended on a run of lock-free confined
        // advances; land them before anything reads this core's clock.
        ctx.flush_confined(&mut sim);
        match result {
            Ok(()) => finish_activity(&mut sim, &shared, aid),
            Err(payload) => {
                if payload.downcast_ref::<ShutdownSignal>().is_none() && sim.failure.is_none() {
                    let msg = panic_message(payload.as_ref());
                    sim.failure = Some(Failure::TaskPanic {
                        core,
                        at: sim.cores.vtime[core.index()],
                        name,
                        msg,
                    });
                }
            }
        }
        sim.worker_assigned[idx] = None;
        sim.free_workers.push(idx);
        sim.token = Token::Scheduler;
        shared.sched_cv.notify_one();
        if sim.shutdown {
            return;
        }
    }
}

/// Spawn one frame worker (parallel mode). Frame workers take their work
/// from the lock-free frame coordinator, not from `worker_assigned`; they
/// still own a condvar slot in `worker_cvs` so a parked (pinned) activity
/// can be re-granted the token through the ordinary wake path.
pub(crate) fn spawn_frame_worker(
    sim: &mut Sim,
    shared: &Arc<Shared>,
    handles: &mut Vec<std::thread::JoinHandle<()>>,
) {
    let idx = sim.worker_cvs.len();
    let cv = Arc::new(Condvar::new());
    sim.worker_cvs.push(cv.clone());
    sim.worker_assigned.push(None);
    sim.frame_workers += 1;
    let shared2 = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("simany-frame-{idx}"))
        .stack_size(shared.config.worker_stack_bytes)
        .spawn(move || frame_worker_main(shared2, idx, cv))
        .expect("failed to spawn frame worker thread");
    handles.push(handle);
}

/// How one claimed execution tile ended.
#[derive(PartialEq, Eq)]
enum TileRun {
    /// The tile's lane is drained (or stranded behind a park/panic); the
    /// worker may claim another tile.
    Done,
    /// Teardown: the worker thread must exit.
    Exit,
}

/// A frame worker's main loop: wait for the frame counter to advance,
/// then claim tiles off the cursor until the frame is exhausted. Holds no
/// lock between claims; the simulation mutex is only taken inside task
/// bodies (at their interaction points) and at member completion.
fn frame_worker_main(shared: Arc<Shared>, idx: usize, cv: Arc<Condvar>) {
    let fs = shared.frame.as_ref().expect("frame worker without frames");
    let (mut claimed, mut spins, mut parks) = (0u64, 0u64, 0u64);
    let mut last_frame = 0u64;
    'outer: while let Some(f) = fs.wait_frame(last_frame, &mut spins, &mut parks) {
        last_frame = f;
        while let Some(tile) = fs.claim() {
            claimed += 1;
            match fs.kind() {
                crate::frame::FrameKind::Exec => {
                    if run_exec_tile(&shared, fs, tile, idx, &cv) == TileRun::Exit {
                        break 'outer;
                    }
                }
                crate::frame::FrameKind::Replay => {
                    // SAFETY: the coordinator published this tile in a
                    // replay frame: the cores base pointer is set, tiles
                    // are pairwise disjoint, and the claim guarantees sole
                    // ownership of this tile's lane and core states.
                    unsafe { crate::frame::replay_lane(fs, tile) };
                    fs.retire(1);
                }
            }
        }
    }
    fs.fold_worker_stats(idx, claimed, spins, parks);
}

/// Run the fresh members of one claimed execution tile, in lane order.
///
/// Unpinned completions (the common case) are lock-free: the finish (or
/// panic) is deposited into the tile's lane and the member retired without
/// touching the simulation mutex. A member that *parked* inside its body
/// pins this thread (its native stack lives here); when its closure
/// finally returns the activity holds the token exclusively or is an
/// epoch solo, and completion goes through the locked path.
fn run_exec_tile(
    shared: &Arc<Shared>,
    fs: &crate::frame::FrameSync,
    tile: usize,
    idx: usize,
    cv: &Arc<Condvar>,
) -> TileRun {
    loop {
        // SAFETY: this worker claimed `tile` in the current execution
        // frame, making it the lane's sole owner until it retires the
        // tile's members.
        let Some(fj) = (unsafe { fs.lane_mut(tile) }).queue.pop_front() else {
            return TileRun::Done;
        };
        let (aid, core, name) = (fj.aid, fj.core, fj.name);
        let job = fj.job;
        let mut ctx =
            crate::ctx::ExecCtx::new(Arc::clone(shared), aid, core, cv.clone(), Some(idx));
        let result = catch_unwind(AssertUnwindSafe(|| job(&mut ctx)));
        if let Err(payload) = &result {
            if payload.downcast_ref::<ShutdownSignal>().is_some() {
                return TileRun::Exit;
            }
        }
        if ctx.epoch_pinned() {
            // The member parked at least once: this thread hosted its
            // stack and the activity was re-granted through the condvar
            // path. Completion must route by the token it holds NOW.
            let mut sim = shared.sim.lock();
            ctx.flush_confined(&mut sim);
            match sim.token {
                Token::Epoch => {
                    // Re-granted as an epoch solo and ran to completion
                    // confined: deposit the completion in the lane of its
                    // own (solo) tile and retire the member.
                    let t = shared.tile_of(core);
                    // SAFETY: a solo's host thread is the tile's sole
                    // executor this frame (solos have no fresh lane
                    // claimant — their tile was not in the claimable set).
                    let lane = unsafe { fs.lane_mut(t) };
                    match result {
                        Ok(()) => lane.pending.push(EpochPending::Finish(aid)),
                        Err(payload) => {
                            let msg = panic_message(payload.as_ref());
                            lane.pending.push(EpochPending::Panic { core, name, msg });
                        }
                    }
                    sim.pinned_workers -= 1;
                    let shutdown = sim.shutdown;
                    drop(sim);
                    fs.retire(1);
                    if shutdown {
                        return TileRun::Exit;
                    }
                }
                Token::Act(a) if a == aid => {
                    // Exclusive completion, exactly like `worker_main`.
                    match result {
                        Ok(()) => finish_activity(&mut sim, shared, aid),
                        Err(payload) => {
                            if sim.failure.is_none() {
                                let msg = panic_message(payload.as_ref());
                                sim.failure = Some(Failure::TaskPanic {
                                    core,
                                    at: sim.cores.vtime[core.index()],
                                    name,
                                    msg,
                                });
                            }
                        }
                    }
                    sim.pinned_workers -= 1;
                    sim.token = Token::Scheduler;
                    shared.sched_cv.notify_one();
                    if sim.shutdown {
                        return TileRun::Exit;
                    }
                }
                _ => unreachable!("pinned activity completed without holding the token"),
            }
            // A park stranded any members queued behind this one (they
            // were spilled by `park_epoch`), so the tile is done either
            // way.
            return TileRun::Done;
        }
        // Never pinned: the body ran start-to-finish confined under
        // `Token::Epoch`. Lock-free completion into the lane.
        // SAFETY: still the sole claimant of `tile`.
        let lane = unsafe { fs.lane_mut(tile) };
        match result {
            Ok(()) => {
                if let Some((d, n)) = ctx.take_confined_flush() {
                    lane.flushes.push((core, d, n));
                }
                lane.pending.push(EpochPending::Finish(aid));
                fs.retire(1);
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                lane.pending.push(EpochPending::Panic { core, name, msg });
                // A panicking member strands the rest of the lane: spill
                // them back to the coordinator and retire them all.
                let stranded = lane.queue.len();
                lane.spilled.extend(lane.queue.drain(..));
                fs.retire(1 + stranded);
                return TileRun::Done;
            }
        }
    }
}
