//! Per-core simulator state.

use crate::activity::ActivityId;
use simany_net::Inbox;
use simany_time::{CoreSpeed, ProbBranchPredictor, VDuration, VirtualTime};
use std::collections::VecDeque;

/// Identifier of a birth-ledger entry (an in-flight spawned task whose start
/// time still bounds its parent core's drift, paper §II.A *Time drift of
/// dynamically created tasks*).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BirthId(pub u64);

/// All engine state attached to one simulated core.
pub struct CoreState {
    /// The core's private virtual clock. Meaningful only while the core is
    /// working; retains its last value when the core goes idle.
    pub vtime: VirtualTime,
    /// The value this core exposes to its neighbors: its clock while
    /// working, its *shadow virtual time* while idle (paper §II.A
    /// *Non-connected sets of active cores*). Not monotone: it drops when
    /// an idle core (exposing a high shadow value) starts working again at
    /// its older frozen clock — `sync::note_published_change` handles the
    /// cache/waiter invalidation such a drop requires.
    pub published: VirtualTime,
    /// Speed factor (polymorphic architectures).
    pub speed: CoreSpeed,
    /// Activity that runs when this core is scheduled, if any.
    pub current: Option<ActivityId>,
    /// Woken activities waiting to become current again (FIFO).
    pub resumables: VecDeque<ActivityId>,
    /// Number of activities resident on this core (current + blocked +
    /// woken). Zero together with `queue_hint == 0` means the core is idle.
    pub resident: u32,
    /// Runtime-declared count of queued-but-unstarted work items; the
    /// engine calls `RuntimeHooks::on_idle` while this is non-zero and the
    /// core has no current activity.
    pub queue_hint: u32,
    /// Nesting depth of held locks / critical sections. While non-zero the
    /// synchronization policy never stalls this core (the lock waiver of
    /// paper §II.B, *Locks and critical sections*).
    pub lock_depth: u32,
    /// Birth ledger: `(id, birth virtual time)` of tasks this core spawned
    /// that have not yet landed on their destination core.
    pub births: Vec<(BirthId, VirtualTime)>,
    /// Incoming messages not yet processed.
    pub inbox: Inbox,
    /// This core's probabilistic branch predictor.
    pub predictor: ProbBranchPredictor,
    /// Accumulated busy virtual time (for utilization statistics).
    pub busy: VDuration,
    /// Scheduling flag: true while the core sits in the ready queue.
    pub in_ready: bool,
    /// Random-referee policy: the core currently used as referee, if any.
    pub referee: Option<simany_topology::CoreId>,
    /// Fast-path bound: virtual times at or below this are guaranteed to
    /// pass the spatial sync check (`local_floor + T` at the last full
    /// check). Cleared whenever the floor may drop — a neighbor's published
    /// value decreasing or a birth being recorded — so a cached value is
    /// always a conservative lower bound on the true limit. `None` forces
    /// the next annotation through the full check.
    pub headroom_limit: Option<VirtualTime>,
    /// True while this core's clock has advanced past its `published` value
    /// without a publish (fast-path deferral). Only ever set for the core
    /// whose activity holds the run token; flushed before the token is
    /// yielded or any published value can be observed.
    pub publish_pending: bool,
    /// Cached minimum over this core's neighbors' published times (the
    /// neighbor part of the spatial floor; births are always re-read).
    pub floor_nb: VirtualTime,
    /// False when `floor_nb` must be recomputed (a neighbor that may have
    /// been the minimum rose).
    pub floor_nb_valid: bool,
    /// The core whose waiter set this core most recently registered in
    /// (spatial: the argmin blocking neighbor; random-referee: the
    /// referee). Cleared when the entry is taken; stale list entries whose
    /// flag moved on are skipped or re-validated at take time.
    pub waiting_on: Option<simany_topology::CoreId>,
}

impl CoreState {
    /// Fresh core state.
    pub fn new(speed: CoreSpeed, predictor: ProbBranchPredictor) -> Self {
        CoreState {
            vtime: VirtualTime::ZERO,
            published: VirtualTime::ZERO,
            speed,
            current: None,
            resumables: VecDeque::new(),
            resident: 0,
            queue_hint: 0,
            lock_depth: 0,
            births: Vec::new(),
            inbox: Inbox::new(),
            predictor,
            busy: VDuration::ZERO,
            in_ready: false,
            referee: None,
            headroom_limit: None,
            publish_pending: false,
            floor_nb: VirtualTime::ZERO,
            floor_nb_valid: false,
            waiting_on: None,
        }
    }

    /// True iff the core is not executing and has nothing runnable: no
    /// current activity, no woken activities waiting to resume, and no
    /// queued tasks. Idle cores expose a shadow time instead of a clock.
    ///
    /// Activities *blocked* on a wake do not make a core busy: their clock
    /// is frozen and their resume time will come from the waking message,
    /// exactly like a fresh task spawn — so the core must relay shadow time
    /// meanwhile, or it would stall its whole neighborhood on a clock that
    /// cannot advance (cf. paper §II.A, idle cores "do not have a virtual
    /// time of their own").
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.resumables.is_empty() && self.queue_hint == 0
    }

    /// Earliest birth time in the ledger, if any.
    pub fn min_birth(&self) -> Option<VirtualTime> {
        self.births.iter().map(|&(_, t)| t).min()
    }

    /// Advance the clock by `d`, accounting busy time.
    pub fn advance(&mut self, d: VDuration) {
        self.vtime += d;
        self.busy += d;
    }

    /// Jump the clock forward to `t` if it is later (e.g. to a message
    /// arrival time); the jumped-over span is waiting, not busy time.
    pub fn advance_to(&mut self, t: VirtualTime) {
        self.vtime = self.vtime.max(t);
    }

    /// One-line diagnostic summary (deadlock reports, watchdog snapshots).
    pub(crate) fn debug_line(&self) -> String {
        let mut s = format!(
            "vtime={} published={} inbox={} queued={} lock_depth={}",
            self.vtime,
            self.published,
            self.inbox.len(),
            self.queue_hint,
            self.lock_depth
        );
        if let Some(a) = self.inbox.earliest_arrival() {
            s.push_str(&format!(" next_arrival={a}"));
        }
        if let Some(w) = self.waiting_on {
            s.push_str(&format!(" waiting_on={w}"));
        }
        if self.is_idle() {
            s.push_str(" idle");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_time::Xoshiro256StarStar;

    fn core() -> CoreState {
        CoreState::new(
            CoreSpeed::BASE,
            ProbBranchPredictor::new(0.9, 5, Xoshiro256StarStar::seeded(1)),
        )
    }

    #[test]
    fn idle_definition() {
        let mut c = core();
        assert!(c.is_idle());
        c.queue_hint = 1;
        assert!(!c.is_idle());
        c.queue_hint = 0;
        c.current = Some(crate::activity::ActivityId(0));
        assert!(!c.is_idle());
        c.current = None;
        c.resumables.push_back(crate::activity::ActivityId(1));
        assert!(!c.is_idle());
        // Blocked-only residents leave the core idle (shadow time).
        c.resumables.clear();
        c.resident = 1;
        assert!(c.is_idle());
    }

    #[test]
    fn advance_tracks_busy_time() {
        let mut c = core();
        c.advance(VDuration::from_cycles(10));
        assert_eq!(c.vtime, VirtualTime::from_cycles(10));
        assert_eq!(c.busy, VDuration::from_cycles(10));
        // advance_to does not add busy time.
        c.advance_to(VirtualTime::from_cycles(50));
        assert_eq!(c.vtime, VirtualTime::from_cycles(50));
        assert_eq!(c.busy, VDuration::from_cycles(10));
        // advance_to never rewinds.
        c.advance_to(VirtualTime::from_cycles(20));
        assert_eq!(c.vtime, VirtualTime::from_cycles(50));
    }

    #[test]
    fn min_birth() {
        let mut c = core();
        assert_eq!(c.min_birth(), None);
        c.births.push((BirthId(0), VirtualTime::from_cycles(30)));
        c.births.push((BirthId(1), VirtualTime::from_cycles(10)));
        assert_eq!(c.min_birth(), Some(VirtualTime::from_cycles(10)));
    }
}
