//! Per-core simulator state in struct-of-arrays layout.
//!
//! At the million-core scale the paper targets, per-core state is the
//! dominant memory consumer and the per-field access pattern is highly
//! skewed: the spatial-synchronization hot loop touches `published`,
//! `floor_nb` and the headroom cache of *neighbors* (gather reads across
//! core ids), while queues, ledgers and predictors are touched only by the
//! one core holding the run token. [`Cores`] therefore stores every field
//! as its own dense array keyed by core index, and moves the variable-size
//! members (inboxes, resumable queues, birth ledgers) into shared pooled
//! arenas of index-linked slots: an idle core costs a few dozen bytes of
//! array slots and owns no heap allocations of its own.
//!
//! ## Pooled-arena invariants
//!
//! * Slots are recycled LIFO through free lists; a slot index is never
//!   stored anywhere outside the pool's own head/tail/next links, so slot
//!   reuse is invisible to the engine and to checkpoint digests (digests
//!   fold lengths, times and ids — never arena indices).
//! * The resumable queues are FIFO per core (`head`/`tail` + `next` links),
//!   preserving the wake order the scheduler relies on for determinism.
//! * Birth ledgers are unordered singly-linked lists: the engine only ever
//!   takes their minimum ([`Cores::min_birth`]) or unlinks by [`BirthId`],
//!   both order-independent.
//! * Branch predictors are materialized lazily on first use. A core's
//!   predictor is a pure function of `(seed, core index, cost model)` —
//!   its RNG is `Xoshiro256StarStar::stream(seed, 0x1000_0000 + i)` — so
//!   lazy construction is bit-identical to eager construction and idle
//!   cores never pay for one.

use crate::activity::ActivityId;
use simany_net::InboxPool;
use simany_time::{CoreSpeed, ProbBranchPredictor, VDuration, VirtualTime, Xoshiro256StarStar};

/// Identifier of a birth-ledger entry (an in-flight spawned task whose start
/// time still bounds its parent core's drift, paper §II.A *Time drift of
/// dynamically created tasks*).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BirthId(pub u64);

/// Sentinel for "no slot" in the pooled arenas.
const NIL: u32 = u32::MAX;

/// All engine state for every simulated core, struct-of-arrays.
///
/// Each public vector has one element per core, indexed by
/// `CoreId::index()`. Hot synchronization fields come first (dense,
/// contiguous, read across neighbor ids in the floor computations); cold
/// per-core fields follow; variable-size state lives in pooled arenas
/// behind accessor methods.
pub struct Cores {
    // --- hot synchronization fields -----------------------------------
    /// The value each core exposes to its neighbors: its clock while
    /// working, its *shadow virtual time* while idle (paper §II.A
    /// *Non-connected sets of active cores*). Not monotone: it drops when
    /// an idle core (exposing a high shadow value) starts working again at
    /// its older frozen clock — `sync::note_published_change` handles the
    /// cache/waiter invalidation such a drop requires.
    pub published: Vec<VirtualTime>,
    /// Cached minimum over each core's neighbors' published times (the
    /// neighbor part of the spatial floor; births are always re-read).
    pub floor_nb: Vec<VirtualTime>,
    /// False when `floor_nb` must be recomputed (a neighbor that may have
    /// been the minimum rose).
    pub floor_nb_valid: Vec<bool>,
    /// True while a core's clock has advanced past its `published` value
    /// without a publish (fast-path deferral). Only ever set for the core
    /// whose activity holds the run token; flushed before the token is
    /// yielded or any published value can be observed.
    pub publish_pending: Vec<bool>,
    /// Scheduling flag: true while the core sits in the ready queue.
    pub in_ready: Vec<bool>,
    /// Fast-path bound: virtual times at or below this are guaranteed to
    /// pass the spatial sync check (`local_floor + T` at the last full
    /// check). Cleared whenever the floor may drop — a neighbor's published
    /// value decreasing or a birth being recorded — so a cached value is
    /// always a conservative lower bound on the true limit. `None` forces
    /// the next annotation through the full check.
    pub headroom_limit: Vec<Option<VirtualTime>>,
    // --- cold per-core fields -----------------------------------------
    /// Each core's private virtual clock. Meaningful only while the core
    /// is working; retains its last value when the core goes idle.
    pub vtime: Vec<VirtualTime>,
    /// Accumulated busy virtual time (for utilization statistics).
    pub busy: Vec<VDuration>,
    /// Speed factor (polymorphic architectures).
    pub speed: Vec<CoreSpeed>,
    /// Activity that runs when each core is scheduled, if any.
    pub current: Vec<Option<ActivityId>>,
    /// Number of activities resident on each core (current + blocked +
    /// woken). Zero together with `queue_hint == 0` means the core is idle.
    pub resident: Vec<u32>,
    /// Runtime-declared count of queued-but-unstarted work items; the
    /// engine calls `RuntimeHooks::on_idle` while this is non-zero and the
    /// core has no current activity.
    pub queue_hint: Vec<u32>,
    /// Nesting depth of held locks / critical sections. While non-zero the
    /// synchronization policy never stalls the core (the lock waiver of
    /// paper §II.B, *Locks and critical sections*).
    pub lock_depth: Vec<u32>,
    /// Random-referee policy: the core currently used as referee, if any.
    pub referee: Vec<Option<simany_topology::CoreId>>,
    /// The core whose waiter set each core most recently registered in
    /// (spatial: the argmin blocking neighbor; random-referee: the
    /// referee). Cleared when the entry is taken; stale list entries whose
    /// flag moved on are skipped or re-validated at take time.
    pub waiting_on: Vec<Option<simany_topology::CoreId>>,
    // --- pooled variable-size state -----------------------------------
    /// Incoming messages not yet processed, in a shared slot arena (one
    /// shard per host tile under parallel execution, so phase-B replay
    /// lanes push into disjoint shards).
    pub inboxes: InboxPool,
    /// Head slot of each core's resumable FIFO (`NIL` when empty).
    res_head: Vec<u32>,
    /// Tail slot of each core's resumable FIFO (`NIL` when empty).
    res_tail: Vec<u32>,
    /// Resumable arena: `(activity, next slot)`.
    res_slots: Vec<(ActivityId, u32)>,
    /// Free list into `res_slots`.
    res_free: Vec<u32>,
    /// Head slot of each core's birth ledger (`NIL` when empty).
    birth_head: Vec<u32>,
    /// Cached earliest birth time per core (`VirtualTime::MAX` when the
    /// ledger is empty) so floor computations never walk the list.
    /// Maintained by `birth_push`/`birth_remove`; `min_birth` stays the
    /// walking oracle for debug cross-checks.
    birth_min: Vec<VirtualTime>,
    /// Birth arena: `(id, birth time, next slot)`.
    birth_slots: Vec<(BirthId, VirtualTime, u32)>,
    /// Free list into `birth_slots`.
    birth_free: Vec<u32>,
    /// Lazily materialized branch predictors (see module docs).
    predictors: Vec<Option<Box<ProbBranchPredictor>>>,
    /// Branch accuracy the predictors are built with.
    pred_accuracy: f64,
    /// Pipeline depth the predictors are built with.
    pred_depth: u32,
    /// Engine seed the predictor RNG streams derive from.
    pred_seed: u64,
}

impl Cores {
    /// Fresh state for `speeds.len()` cores. `inboxes` must be sized for
    /// the same core count; predictors are derived from
    /// `(seed, core index, accuracy, depth)` on first use.
    pub fn new(
        speeds: Vec<CoreSpeed>,
        inboxes: InboxPool,
        pred_accuracy: f64,
        pred_depth: u32,
        pred_seed: u64,
    ) -> Self {
        let n = speeds.len();
        assert_eq!(
            inboxes.n_cores(),
            n,
            "inbox pool sized for a different core count"
        );
        Cores {
            published: vec![VirtualTime::ZERO; n],
            floor_nb: vec![VirtualTime::ZERO; n],
            floor_nb_valid: vec![false; n],
            publish_pending: vec![false; n],
            in_ready: vec![false; n],
            headroom_limit: vec![None; n],
            vtime: vec![VirtualTime::ZERO; n],
            busy: vec![VDuration::ZERO; n],
            speed: speeds,
            current: vec![None; n],
            resident: vec![0; n],
            queue_hint: vec![0; n],
            lock_depth: vec![0; n],
            referee: vec![None; n],
            waiting_on: vec![None; n],
            inboxes,
            res_head: vec![NIL; n],
            res_tail: vec![NIL; n],
            res_slots: Vec::new(),
            res_free: Vec::new(),
            birth_head: vec![NIL; n],
            birth_min: vec![VirtualTime::MAX; n],
            birth_slots: Vec::new(),
            birth_free: Vec::new(),
            predictors: (0..n).map(|_| None).collect(),
            pred_accuracy,
            pred_depth,
            pred_seed,
        }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.vtime.len()
    }

    /// True when the machine has zero cores.
    pub fn is_empty(&self) -> bool {
        self.vtime.is_empty()
    }

    /// True iff core `i` is not executing and has nothing runnable: no
    /// current activity, no woken activities waiting to resume, and no
    /// queued tasks. Idle cores expose a shadow time instead of a clock.
    ///
    /// Activities *blocked* on a wake do not make a core busy: their clock
    /// is frozen and their resume time will come from the waking message,
    /// exactly like a fresh task spawn — so the core must relay shadow time
    /// meanwhile, or it would stall its whole neighborhood on a clock that
    /// cannot advance (cf. paper §II.A, idle cores "do not have a virtual
    /// time of their own").
    pub fn is_idle(&self, i: usize) -> bool {
        self.current[i].is_none() && self.res_head[i] == NIL && self.queue_hint[i] == 0
    }

    /// Advance core `i`'s clock by `d`, accounting busy time.
    pub fn advance(&mut self, i: usize, d: VDuration) {
        self.vtime[i] += d;
        self.busy[i] += d;
    }

    /// Jump core `i`'s clock forward to `t` if it is later (e.g. to a
    /// message arrival time); the jumped-over span is waiting, not busy
    /// time.
    pub fn advance_to(&mut self, i: usize, t: VirtualTime) {
        self.vtime[i] = self.vtime[i].max(t);
    }

    /// Core `i`'s branch predictor, materialized on first use.
    pub fn predictor(&mut self, i: usize) -> &mut ProbBranchPredictor {
        let slot = &mut self.predictors[i];
        slot.get_or_insert_with(|| {
            Box::new(ProbBranchPredictor::new(
                self.pred_accuracy,
                self.pred_depth,
                Xoshiro256StarStar::stream(self.pred_seed, 0x1000_0000 + i as u64),
            ))
        })
    }

    // --- resumable FIFO ------------------------------------------------

    /// True iff core `i` has no woken activities waiting to resume.
    pub fn res_is_empty(&self, i: usize) -> bool {
        self.res_head[i] == NIL
    }

    /// First resumable of core `i` without removing it.
    pub fn res_front(&self, i: usize) -> Option<ActivityId> {
        match self.res_head[i] {
            NIL => None,
            h => Some(self.res_slots[h as usize].0),
        }
    }

    /// Append `a` to core `i`'s resumable FIFO.
    pub fn res_push_back(&mut self, i: usize, a: ActivityId) {
        let slot = match self.res_free.pop() {
            Some(s) => {
                self.res_slots[s as usize] = (a, NIL);
                s
            }
            None => {
                self.res_slots.push((a, NIL));
                (self.res_slots.len() - 1) as u32
            }
        };
        match self.res_tail[i] {
            NIL => self.res_head[i] = slot,
            t => self.res_slots[t as usize].1 = slot,
        }
        self.res_tail[i] = slot;
    }

    /// Pop the first resumable of core `i`, if any.
    pub fn res_pop_front(&mut self, i: usize) -> Option<ActivityId> {
        match self.res_head[i] {
            NIL => None,
            h => {
                let (a, next) = self.res_slots[h as usize];
                self.res_head[i] = next;
                if next == NIL {
                    self.res_tail[i] = NIL;
                }
                self.res_free.push(h);
                Some(a)
            }
        }
    }

    // --- birth ledger --------------------------------------------------

    /// Record a birth `(id, t)` against core `i`.
    pub fn birth_push(&mut self, i: usize, id: BirthId, t: VirtualTime) {
        let head = self.birth_head[i];
        let slot = match self.birth_free.pop() {
            Some(s) => {
                self.birth_slots[s as usize] = (id, t, head);
                s
            }
            None => {
                self.birth_slots.push((id, t, head));
                (self.birth_slots.len() - 1) as u32
            }
        };
        self.birth_head[i] = slot;
        if t < self.birth_min[i] {
            self.birth_min[i] = t;
        }
    }

    /// Unlink the birth with `id` from core `i`'s ledger. Returns `true`
    /// if an entry was removed.
    pub fn birth_remove(&mut self, i: usize, id: BirthId) -> bool {
        let mut prev = NIL;
        let mut cur = self.birth_head[i];
        while cur != NIL {
            let (bid, t, next) = self.birth_slots[cur as usize];
            if bid == id {
                match prev {
                    NIL => self.birth_head[i] = next,
                    p => self.birth_slots[p as usize].2 = next,
                }
                self.birth_free.push(cur);
                if t == self.birth_min[i] {
                    // The cached minimum may have left: rescan the (short)
                    // remaining list.
                    self.birth_min[i] = self.min_birth(i).unwrap_or(VirtualTime::MAX);
                }
                return true;
            }
            prev = cur;
            cur = next;
        }
        false
    }

    /// Cached earliest birth time of core `i` (`VirtualTime::MAX` when the
    /// ledger is empty). O(1); equals `min_birth(i)` at all times.
    pub fn birth_floor(&self, i: usize) -> VirtualTime {
        debug_assert_eq!(
            self.birth_min[i],
            self.min_birth(i).unwrap_or(VirtualTime::MAX),
            "birth_min cache diverged on core {i}"
        );
        self.birth_min[i]
    }

    /// Number of entries in core `i`'s birth ledger.
    pub fn birth_count(&self, i: usize) -> usize {
        let mut n = 0;
        let mut cur = self.birth_head[i];
        while cur != NIL {
            n += 1;
            cur = self.birth_slots[cur as usize].2;
        }
        n
    }

    /// Earliest birth time in core `i`'s ledger, if any.
    pub fn min_birth(&self, i: usize) -> Option<VirtualTime> {
        let mut m: Option<VirtualTime> = None;
        let mut cur = self.birth_head[i];
        while cur != NIL {
            let (_, t, next) = self.birth_slots[cur as usize];
            m = Some(m.map_or(t, |x| x.min(t)));
            cur = next;
        }
        m
    }

    /// One-line diagnostic summary of core `i` (deadlock reports, watchdog
    /// snapshots).
    pub(crate) fn debug_line(&self, i: usize) -> String {
        let c = simany_topology::CoreId(i as u32);
        let mut s = format!(
            "vtime={} published={} inbox={} queued={} lock_depth={}",
            self.vtime[i],
            self.published[i],
            self.inboxes.len(c),
            self.queue_hint[i],
            self.lock_depth[i]
        );
        if let Some(a) = self.inboxes.earliest_arrival(c) {
            s.push_str(&format!(" next_arrival={a}"));
        }
        if let Some(w) = self.waiting_on[i] {
            s.push_str(&format!(" waiting_on={w}"));
        }
        if self.is_idle(i) {
            s.push_str(" idle");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_net::InboxPool;

    fn cores(n: usize) -> Cores {
        Cores::new(
            vec![CoreSpeed::BASE; n],
            InboxPool::new(n as u32),
            0.9,
            5,
            1,
        )
    }

    #[test]
    fn idle_definition() {
        let mut cs = cores(2);
        assert!(cs.is_idle(0));
        cs.queue_hint[0] = 1;
        assert!(!cs.is_idle(0));
        cs.queue_hint[0] = 0;
        cs.current[0] = Some(crate::activity::ActivityId(0));
        assert!(!cs.is_idle(0));
        cs.current[0] = None;
        cs.res_push_back(0, crate::activity::ActivityId(1));
        assert!(!cs.is_idle(0));
        // Blocked-only residents leave the core idle (shadow time).
        cs.res_pop_front(0);
        cs.resident[0] = 1;
        assert!(cs.is_idle(0));
    }

    #[test]
    fn advance_tracks_busy_time() {
        let mut cs = cores(1);
        cs.advance(0, VDuration::from_cycles(10));
        assert_eq!(cs.vtime[0], VirtualTime::from_cycles(10));
        assert_eq!(cs.busy[0], VDuration::from_cycles(10));
        // advance_to does not add busy time.
        cs.advance_to(0, VirtualTime::from_cycles(50));
        assert_eq!(cs.vtime[0], VirtualTime::from_cycles(50));
        assert_eq!(cs.busy[0], VDuration::from_cycles(10));
        // advance_to never rewinds.
        cs.advance_to(0, VirtualTime::from_cycles(20));
        assert_eq!(cs.vtime[0], VirtualTime::from_cycles(50));
    }

    #[test]
    fn min_birth() {
        let mut cs = cores(1);
        assert_eq!(cs.min_birth(0), None);
        cs.birth_push(0, BirthId(0), VirtualTime::from_cycles(30));
        cs.birth_push(0, BirthId(1), VirtualTime::from_cycles(10));
        assert_eq!(cs.min_birth(0), Some(VirtualTime::from_cycles(10)));
        assert_eq!(cs.birth_count(0), 2);
        assert!(cs.birth_remove(0, BirthId(1)));
        assert_eq!(cs.min_birth(0), Some(VirtualTime::from_cycles(30)));
        assert!(!cs.birth_remove(0, BirthId(1)));
        assert_eq!(cs.birth_count(0), 1);
    }

    #[test]
    fn resumable_fifo_order_with_slot_reuse() {
        let mut cs = cores(2);
        cs.res_push_back(0, ActivityId(1));
        cs.res_push_back(0, ActivityId(2));
        cs.res_push_back(1, ActivityId(3));
        assert_eq!(cs.res_front(0), Some(ActivityId(1)));
        assert_eq!(cs.res_pop_front(0), Some(ActivityId(1)));
        // The freed slot is reused without disturbing FIFO order.
        cs.res_push_back(0, ActivityId(4));
        assert_eq!(cs.res_pop_front(0), Some(ActivityId(2)));
        assert_eq!(cs.res_pop_front(0), Some(ActivityId(4)));
        assert_eq!(cs.res_pop_front(0), None);
        assert_eq!(cs.res_pop_front(1), Some(ActivityId(3)));
        assert!(cs.res_is_empty(1));
    }
}
