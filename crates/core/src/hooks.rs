//! The interface between the engine and the task run-time system.
//!
//! The engine simulates cores, clocks, drift and message transport; it
//! knows nothing about probes, task queues, joins, locks or data cells.
//! That protocol lives above, in an implementation of [`RuntimeHooks`]
//! (`simany-runtime` provides the paper's Capsule/TBB-like model).
//!
//! Hook implementations own their own state (typically behind a
//! `parking_lot::Mutex` inside the hooks object): every hook invocation and
//! every task-side `ExecCtx` call is serialized by the engine's simulation
//! lock, so a runtime mutex is uncontended and only exists to satisfy the
//! borrow checker across the two entry paths.
//!
//! Hooks run on the scheduler (or finishing worker) thread under the
//! simulation lock and **must never block**; anything that needs to wait
//! belongs in task code (`ExecCtx::block`).

use crate::ops::Ops;
use simany_net::Envelope;
use simany_topology::CoreId;
use std::any::Any;

/// Runtime-layer callbacks driven by the engine.
pub trait RuntimeHooks: Send + Sync + 'static {
    /// A message has been scheduled for processing on its destination core.
    /// The engine has already advanced the core's clock to at least the
    /// arrival time; the handler performs the protocol action (reply,
    /// enqueue task, wake a blocked activity, ...) and charges any
    /// processing time via [`Ops::advance_core`]. Must not block.
    fn on_message(&self, ops: &mut Ops<'_>, env: Envelope);

    /// `core` has no current activity and declared queued work
    /// (`queue_hint > 0`): start the next task (via
    /// [`Ops::start_activity`]) and update the hint. Must not block.
    fn on_idle(&self, ops: &mut Ops<'_>, core: CoreId);

    /// An activity's closure returned. `meta` is the descriptor passed at
    /// `start_activity`; typical duties: decrement the task group counter,
    /// notify joiners, broadcast queue occupancy. Must not block.
    fn on_activity_end(&self, ops: &mut Ops<'_>, core: CoreId, meta: Box<dyn Any + Send>);

    /// A deterministic digest of the runtime's own mutable state, folded
    /// into verification checkpoints (see `simany-core`'s checkpoint
    /// module). Implementations must return the same value at the same
    /// simulation instant across identically configured runs, and should
    /// cover any state that could silently diverge (queue occupancy,
    /// protocol counters...). The default — no runtime state — is fine for
    /// engine-level tests.
    fn state_digest(&self) -> u64 {
        0
    }
}

/// A do-nothing hooks implementation for engine-level tests that only use
/// plain activities and raw messages.
pub struct NullHooks;

impl RuntimeHooks for NullHooks {
    fn on_message(&self, _ops: &mut Ops<'_>, _env: Envelope) {}
    fn on_idle(&self, _ops: &mut Ops<'_>, _core: CoreId) {}
    fn on_activity_end(&self, _ops: &mut Ops<'_>, _core: CoreId, _meta: Box<dyn Any + Send>) {}
}
