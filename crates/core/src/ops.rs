//! `Ops` — the full simulator API available to runtime hooks (and, through
//! `ExecCtx::with_ops`, to task code while it holds the run token).
//!
//! Everything here executes under the simulation lock and never blocks.

use crate::activity::{ActivityId, ActivityMeta, TaskFn};
use crate::engine::{deliver, start_activity_impl, trace, wake_impl, Shared, Sim};
use crate::state::BirthId;
use crate::sync;
use crate::trace::TraceEvent;
use simany_net::Payload;
use simany_time::{BlockCost, CoreSpeed, CostModel, VDuration, VirtualTime};
use simany_topology::CoreId;

/// Outcome of an [`Ops::send`]/[`Ops::send_at`] on a possibly-faulty
/// machine. Callers that don't care (occupancy broadcasts, best-effort
/// hints) may ignore it; callers that need delivery should use
/// [`Ops::try_send_at`] to get the payload back for a retry.
#[derive(Debug)]
#[must_use = "on a faulty machine a send may be dropped"]
pub enum SendFate {
    /// The message was delivered to the destination inbox.
    Delivered {
        /// Simulator-computed arrival time at the destination.
        arrival: VirtualTime,
    },
    /// The fault plan lost the message (dropped, corrupted or unroutable).
    Dropped,
}

/// Handle over the full simulator state, passed to [`crate::RuntimeHooks`]
/// callbacks.
pub struct Ops<'a> {
    pub(crate) sim: &'a mut Sim,
    pub(crate) shared: &'a Shared,
}

impl<'a> Ops<'a> {
    pub(crate) fn new(sim: &'a mut Sim, shared: &'a Shared) -> Self {
        Ops { sim, shared }
    }

    /// Number of simulated cores.
    pub fn n_cores(&self) -> u32 {
        self.shared.topo.n_cores()
    }

    /// Virtual clock of `core`.
    pub fn now(&self, core: CoreId) -> VirtualTime {
        self.sim.cores.vtime[core.index()]
    }

    /// Published (neighbor-visible) time of `core` — its clock while
    /// working, its shadow time while idle.
    pub fn published(&self, core: CoreId) -> VirtualTime {
        self.sim.cores.published[core.index()]
    }

    /// Topological neighbors of `core`.
    pub fn neighbors(&self, core: CoreId) -> Vec<CoreId> {
        self.shared
            .topo
            .neighbors(core)
            .iter()
            .map(|&(n, _)| n)
            .collect()
    }

    /// Speed factor of `core`.
    pub fn speed(&self, core: CoreId) -> CoreSpeed {
        self.sim.cores.speed[core.index()]
    }

    /// The shared instruction cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.shared.config.cost_model
    }

    /// The engine's master seed (for deriving runtime-level PRNG streams).
    pub fn seed(&self) -> u64 {
        self.shared.config.seed
    }

    /// True iff `core` hosts no work at all.
    pub fn is_idle(&self, core: CoreId) -> bool {
        self.sim.cores.is_idle(core.index())
    }

    /// The activity currently scheduled on `core`, if any.
    pub fn current_activity(&self, core: CoreId) -> Option<ActivityId> {
        self.sim.cores.current[core.index()]
    }

    /// Advance `core`'s clock by `base_cycles` of work, scaled by the
    /// core's speed (polymorphic cores take longer).
    pub fn advance_core(&mut self, core: CoreId, base_cycles: u64) {
        let d = self.sim.cores.speed[core.index()].scale_cycles(base_cycles);
        self.sim.cores.advance(core.index(), d);
        sync::publish(self.sim, self.shared, core);
    }

    /// Advance `core`'s clock by an exact duration (no speed scaling).
    pub fn advance_core_raw(&mut self, core: CoreId, d: VDuration) {
        self.sim.cores.advance(core.index(), d);
        sync::publish(self.sim, self.shared, core);
    }

    /// Advance `core`'s clock forward to `t` if it is later (waiting, not
    /// busy time).
    pub fn advance_core_to(&mut self, core: CoreId, t: VirtualTime) {
        self.sim.cores.advance_to(core.index(), t);
        sync::publish(self.sim, self.shared, core);
    }

    /// Charge `core` for a block annotation: instruction-class costs plus
    /// probabilistic branch-prediction penalties, speed-scaled.
    pub fn charge_block(&mut self, core: CoreId, block: &BlockCost) {
        let mut cycles = self.shared.config.cost_model.block_cycles(block);
        let branches = block.cond_branch_count();
        if branches > 0 {
            cycles += self
                .sim
                .cores
                .predictor(core.index())
                .predict_many(branches);
        }
        self.advance_core(core, cycles);
    }

    /// Send a message from `src` (stamped with `src`'s current clock) to
    /// `dst` through the interconnect model; it lands in `dst`'s inbox with
    /// a simulator-computed arrival time. On a faulty machine the message
    /// may be lost — the returned [`SendFate`] says which; use
    /// [`Ops::try_send_at`] when the payload is needed back for a retry.
    pub fn send(
        &mut self,
        src: CoreId,
        dst: CoreId,
        size_bytes: u32,
        payload: Payload,
    ) -> SendFate {
        let sent = self.sim.cores.vtime[src.index()];
        self.send_at(src, dst, size_bytes, sent, payload)
    }

    /// Send a message with an explicit departure stamp instead of the
    /// sender's clock. This implements the paper's reply rule: "If a
    /// request requires a reply, the reply message is dated with the
    /// request time augmented with a local processing time" (§II.A) — a
    /// responder whose own clock has drifted must not leak that drift into
    /// the requester's timeline.
    pub fn send_at(
        &mut self,
        src: CoreId,
        dst: CoreId,
        size_bytes: u32,
        at: VirtualTime,
        payload: Payload,
    ) -> SendFate {
        match self.try_send_at(src, dst, size_bytes, at, payload) {
            Ok(arrival) => SendFate::Delivered { arrival },
            Err(_) => SendFate::Dropped,
        }
    }

    /// Fault-aware send: like [`Ops::send_at`], but on loss the payload is
    /// handed back so the caller can retry it (task bodies are not
    /// clonable). Also announces any fault-plan epoch boundaries reached by
    /// `at` (LinkDown/LinkUp traces) and traces the drop itself.
    pub fn try_send_at(
        &mut self,
        src: CoreId,
        dst: CoreId,
        size_bytes: u32,
        at: VirtualTime,
        payload: Payload,
    ) -> Result<VirtualTime, Payload> {
        self.announce_epochs(at);
        match self.sim.net.try_send(src, dst, size_bytes, at, payload) {
            Ok(env) => {
                let arrival = env.arrival;
                deliver(self.sim, self.shared, env);
                Ok(arrival)
            }
            Err((_, payload)) => {
                trace(self.shared, || TraceEvent::MsgDropped {
                    t: at,
                    src,
                    dst,
                    bytes: size_bytes,
                });
                Err(payload)
            }
        }
    }

    /// True iff the fault plan has failed `core` by virtual time `at`. The
    /// first observation of each failed core emits a `CoreFailed` trace and
    /// bumps the counter.
    pub fn core_failed(&mut self, core: CoreId, at: VirtualTime) -> bool {
        let Some(plan) = &self.shared.config.fault else {
            return false;
        };
        if !plan.core_failed(core, at) {
            return false;
        }
        if !self.sim.core_fail_announced[core.index()] {
            self.sim.core_fail_announced[core.index()] = true;
            self.sim.stats.core_failures += 1;
            let t = plan.core_fail_time(core).expect("failed core has a time");
            trace(self.shared, || TraceEvent::CoreFailed { t, core });
        }
        true
    }

    /// Record a runtime-level retry of a lost message (trace + counter).
    pub fn note_retry(&mut self, src: CoreId, dst: CoreId, at: VirtualTime) {
        self.sim.stats.msg_retries += 1;
        trace(self.shared, || TraceEvent::MsgRetried { t: at, src, dst });
    }

    /// Announce fault-plan epoch boundaries reached by virtual time `t`:
    /// one `LinkDown`/`LinkUp` trace per changed link, counters for link
    /// faults and partition entries. Cheap no-op when nothing is pending.
    fn announce_epochs(&mut self, t: VirtualTime) {
        if !self.sim.net.epochs_pending(t) {
            return;
        }
        for tr in self.sim.net.observe_epochs(t) {
            self.sim.stats.link_faults += tr.went_down.len() as u64;
            if tr.partitioned {
                self.sim.stats.partitions_observed += 1;
            }
            if self.shared.config.tracer.is_some() {
                for &link in &tr.went_down {
                    let props = *self.shared.topo.link(link);
                    trace(self.shared, || TraceEvent::LinkDown {
                        t: tr.at,
                        link,
                        src: props.src,
                        dst: props.dst,
                    });
                }
                for &link in &tr.came_up {
                    let props = *self.shared.topo.link(link);
                    trace(self.shared, || TraceEvent::LinkUp {
                        t: tr.at,
                        link,
                        src: props.src,
                        dst: props.dst,
                    });
                }
            }
        }
    }

    /// Pure route latency estimate (no contention) — used by memory models.
    pub fn uncontended_latency(&self, src: CoreId, dst: CoreId, size: u32) -> VDuration {
        self.sim.net.uncontended_latency(src, dst, size)
    }

    /// Simulate a payload-less transfer on the interconnect departing at
    /// `depart`: walks the route updating per-link contention and returns
    /// the arrival time. The cycle-level reference uses this for coherence
    /// protocol legs, which contend for links like any other traffic but
    /// need no envelope/handler machinery.
    pub fn transit(
        &mut self,
        src: CoreId,
        dst: CoreId,
        size: u32,
        depart: VirtualTime,
    ) -> VirtualTime {
        self.sim.net.transit(src, dst, size, depart)
    }

    /// Start a new activity as the current activity of `core` (which must
    /// have none). The task body runs with the core's clock as it stands —
    /// charge any task-start overhead *before* calling.
    pub fn start_activity(
        &mut self,
        core: CoreId,
        name: &'static str,
        meta: ActivityMeta,
        job: TaskFn,
    ) -> ActivityId {
        start_activity_impl(self.sim, self.shared, core, name, meta, job)
    }

    /// Wake a blocked activity, delivering `value` (available at virtual
    /// time `at`) to its pending `ExecCtx::block` call.
    pub fn wake(&mut self, aid: ActivityId, value: Box<dyn std::any::Any + Send>, at: VirtualTime) {
        wake_impl(self.sim, self.shared, aid, value, at);
    }

    /// Declare `n` additional queued-but-unstarted work items on `core`
    /// (the engine will call `on_idle` while the hint is positive and the
    /// core has no current activity).
    pub fn queue_hint_add(&mut self, core: CoreId, n: u32) {
        let was_idle = self.sim.cores.is_idle(core.index());
        self.sim.cores.queue_hint[core.index()] += n;
        self.sim.total_queue_hint += u64::from(n);
        self.sim.floor_dirty = true;
        sync::note_floor_key(self.sim, core.index());
        if was_idle {
            sync::publish(self.sim, self.shared, core);
        }
        crate::engine::push_ready(self.sim, core);
    }

    /// Remove `n` queued work items from `core`'s hint.
    pub fn queue_hint_sub(&mut self, core: CoreId, n: u32) {
        let hint = &mut self.sim.cores.queue_hint[core.index()];
        assert!(*hint >= n, "queue_hint underflow on {core}");
        *hint -= n;
        self.sim.total_queue_hint -= u64::from(n);
        self.sim.floor_dirty = true;
        sync::note_floor_key(self.sim, core.index());
        if self.sim.cores.is_idle(core.index()) {
            sync::publish(self.sim, self.shared, core);
        }
    }

    /// Record the birth of an in-flight spawned task: until discarded, the
    /// birth time bounds `core`'s drift as if the new task were a neighbor
    /// (paper §II.A, *Time drift of dynamically created tasks*).
    pub fn record_birth(&mut self, core: CoreId, birth: VirtualTime) -> BirthId {
        if self.sim.sanitizer.is_some() {
            // A birth stamped ahead of its spawner cannot bound the
            // spawner's drift — catch the runtime bug at the source.
            crate::sanitizer::verify_birth(self.sim, self.shared, core, birth);
        }
        let id = BirthId(self.sim.next_birth);
        self.sim.next_birth += 1;
        self.sim.cores.birth_push(core.index(), id, birth);
        // A new birth can lower the spatial floor below any cached bound.
        self.sim.cores.headroom_limit[core.index()] = None;
        self.sim.floor_dirty = true;
        sync::note_floor_key(self.sim, core.index());
        id
    }

    /// Discard a birth entry (the spawned task landed on its destination);
    /// the spawning core may become unstalled.
    pub fn discard_birth(&mut self, core: CoreId, id: BirthId) {
        let removed = self.sim.cores.birth_remove(core.index(), id);
        assert!(removed, "unknown birth id");
        self.sim.floor_dirty = true;
        // Key update must precede the recheck: its sync check reads the
        // incremental floor.
        sync::note_floor_key(self.sim, core.index());
        sync::recheck_stall(self.sim, self.shared, core);
    }

    /// Sum of the per-link latencies on the route `src -> dst` (reporting /
    /// placement heuristics).
    pub fn path_latency(&self, src: CoreId, dst: CoreId) -> VDuration {
        self.sim.net.routing().path_latency(src, dst)
    }

    /// Mutable access to the run statistics (runtime-layer counters).
    pub fn stats_mut(&mut self) -> &mut crate::stats::SimStats {
        &mut self.sim.stats
    }
}
