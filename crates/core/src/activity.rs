//! Activities: the engine-level representation of running tasks.
//!
//! The code running on a given core is simulated by dedicated (pooled) OS
//! threads — the Rust equivalent of the paper's per-core userland threads
//! (§III, *Implementation Efficiency*). An *activity* is one task body: a
//! closure executing natively between interaction points. A core hosts at
//! most one *current* activity (the one that runs when the core is
//! scheduled) plus any number of blocked or woken-but-waiting activities
//! (e.g. tasks suspended in `join`, whose "execution context is saved until
//! it receives a notification", paper §IV).

use crate::ctx::ExecCtx;
use simany_time::VirtualTime;
use std::any::Any;
use std::fmt;

/// Unique activity identifier (never reused within a run).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActivityId(pub u64);

impl fmt::Debug for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "act{}", self.0)
    }
}

/// Task body type: ordinary Rust code with an [`ExecCtx`] for interactions.
pub type TaskFn = Box<dyn FnOnce(&mut ExecCtx) + Send>;

/// Opaque runtime-layer descriptor attached to each activity (the task
/// run-time system stores its task bookkeeping here and receives it back in
/// `RuntimeHooks::on_activity_end`).
pub type ActivityMeta = Box<dyn Any + Send>;

/// Lifecycle state of an activity.
#[derive(Debug)]
pub enum ActivityState {
    /// Created; its closure has not started executing yet. It is its core's
    /// current activity and will be bound to a worker at first grant.
    Pending,
    /// Holds the run token and is executing user code right now.
    Granted,
    /// Yielded because the synchronization policy stalled its core; still
    /// the core's current activity. Flipped to `Resumable` by the engine
    /// when the drift condition clears.
    Stalled,
    /// Parallel mode only: the activity hit an interaction it could not
    /// complete confined to its own core during an epoch (a failed or
    /// undecidable frozen synchronization check, a due message, or a
    /// compound `Ops` operation) and parked until the coordinator's
    /// serial phase re-grants it the run token exclusively. Still the
    /// core's current activity; not grantable by the scheduler.
    Parked,
    /// Ready to continue (drift cleared, or just made current after a
    /// wake); waiting for the scheduler to grant the token.
    Resumable,
    /// Waiting for an explicit wake (probe ack, join notification, data
    /// response, lock grant...). Not the core's current activity.
    Blocked(&'static str),
    /// Woken (wake value deposited) but waiting in the core's resumable
    /// queue for the core to switch back to it.
    Woken,
}

/// One activity record.
pub struct Activity {
    /// Identifier.
    pub id: ActivityId,
    /// Core this activity executes on (fixed: tasks do not migrate once
    /// started — migration happens before start, at spawn time).
    pub core: simany_topology::CoreId,
    /// Lifecycle state.
    pub state: ActivityState,
    /// The not-yet-started closure (taken by the worker at first grant).
    pub job: Option<TaskFn>,
    /// Worker thread slot bound to this activity (None until first grant).
    pub worker: Option<usize>,
    /// Value deposited by `wake`, consumed when the activity resumes.
    pub wake_value: Option<Box<dyn Any + Send>>,
    /// Virtual time at which the wake became available; the resuming core's
    /// clock is advanced to at least this.
    pub wake_time: Option<VirtualTime>,
    /// Whether resuming this activity from its current block charges the
    /// engine's context-switch cost (paper §V: 15 cycles apply to a
    /// "context switch to a joining task resuming execution"; lightweight
    /// protocol waits like probe replies resume for free beyond their
    /// handler costs).
    pub charge_resume: bool,
    /// Runtime-layer descriptor (task bookkeeping).
    pub meta: Option<ActivityMeta>,
    /// Debug label.
    pub name: &'static str,
}

impl Activity {
    /// True iff the scheduler may grant the token to this activity.
    pub fn grantable(&self) -> bool {
        matches!(
            self.state,
            ActivityState::Pending | ActivityState::Resumable
        )
    }

    /// True iff this activity is stalled by the synchronization policy.
    pub fn is_stalled(&self) -> bool {
        matches!(self.state, ActivityState::Stalled)
    }
}

impl fmt::Debug for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Activity")
            .field("id", &self.id)
            .field("core", &self.core)
            .field("state", &self.state)
            .field("name", &self.name)
            .finish()
    }
}
