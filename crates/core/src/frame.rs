//! Lock-free frame coordination for parallel host execution.
//!
//! The PR 5 epoch coordinator woke one worker per tile through a condvar
//! and slept on `Mutex<Sim>` until a counter under the same lock hit zero:
//! every epoch paid one lock round-trip per tile just to start, and the
//! coordinator held the simulation mutex for the whole concurrent phase.
//! This module replaces that handoff with a simulon-style *frame* protocol
//! built from three atomics and a pair of parking condvars:
//!
//! * [`FrameSync::launch`] publishes a frame: a list of claimable tiles,
//!   the per-tile work lanes, and an `outstanding` member count. Workers
//!   observe the bumped `frame` counter (spin first, park after a budget).
//! * Workers *claim* tiles off an atomic `cursor` with one `fetch_add`
//!   each — no condvar, no lock, no coordinator involvement. The cursor
//!   packs `(frame, index)` into one word so a worker that was descheduled
//!   across a frame boundary can never mistake a stale index for current
//!   work (see [`FrameSync::claim`]).
//! * Each piece of work *retires* by decrementing `outstanding`; the last
//!   decrement wakes the coordinator, which parked on a condvar of its own
//!   — crucially *not* on the simulation mutex, so phase A runs with no
//!   `Mutex<Sim>` held by anyone but the activities' own brief locked
//!   interactions.
//!
//! ## Lanes and the `UnsafeCell` ownership discipline
//!
//! Per-tile scratch ([`LaneState`]) lives in `UnsafeCell` slots indexed by
//! tile. No lock guards them; soundness is a strict ownership handoff:
//!
//! * **Between frames** the coordinator owns every lane. `outstanding`
//!   reaching zero is the handoff point: every worker's lane writes are
//!   sequenced before its `retire` (an `AcqRel` read-modify-write on
//!   `outstanding`), the RMWs form a release sequence, and the
//!   coordinator's `Acquire` read of zero synchronizes with all of them.
//! * **During an execution frame** each tile's lane has exactly one
//!   accessor: the worker that claimed it off the cursor (fresh tiles), or
//!   the already-pinned thread hosting the tile's solo member — the
//!   collector guarantees a tile is never both. The claim's `AcqRel`
//!   `fetch_add` reads (a successor of) the coordinator's `Release` cursor
//!   store, so the lane contents published at launch are visible.
//! * **During a replay frame** the claimant of destination tile `t` owns
//!   lane `t` *and* tile `t`'s slices of the struct-of-arrays core state,
//!   reached through raw column base pointers ([`ReplayPtrs`], published
//!   via [`FrameSync::set_replay_ptrs`]) plus the tile's inbox shard
//!   ([`simany_net::InboxLanes`]) — disjoint index sets per tile,
//!   `split_at_mut`-style. The coordinator keeps holding the simulation
//!   guard but touches no core state until the frame retires.
//!
//! Worker *identities* (who claimed which tile, who spun vs parked) are
//! racy and are only ever folded into diagnostics counters that no digest,
//! fingerprint or CI diff includes.

use crate::activity::{ActivityId, TaskFn};
use crate::engine::{EpochPending, OutMsg};
use parking_lot::{Condvar, Mutex};
use simany_net::{Envelope, InboxLanes};
use simany_time::{VDuration, VirtualTime};
use simany_topology::CoreId;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Bits of the packed cursor word that hold the claim index; the rest hold
/// the frame generation. 24 bits bound the tile count (and the per-frame
/// claim overrun, one failed `fetch_add` per worker) far above any real
/// configuration, while 40 frame bits make generation wraparound
/// unreachable (decades at a microsecond per frame).
const IDX_BITS: u32 = 24;
const IDX_MASK: u64 = (1 << IDX_BITS) - 1;

#[inline]
fn pack(frame: u64, idx: u64) -> u64 {
    debug_assert!(idx <= IDX_MASK);
    (frame << IDX_BITS) | idx
}

#[inline]
fn unpack(v: u64) -> (u64, u64) {
    (v >> IDX_BITS, v & IDX_MASK)
}

/// What workers do with a claimed tile this frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FrameKind {
    /// Run the tile's queued fresh members ([`LaneState::queue`]).
    Exec,
    /// Apply the tile's buffered phase-B effects ([`replay_lane`]).
    Replay,
}

/// A never-run epoch member, extracted (with its closure) by the collector
/// so workers can start it without touching `Mutex<Sim>`.
pub(crate) struct FreshJob {
    pub(crate) aid: ActivityId,
    pub(crate) core: CoreId,
    pub(crate) name: &'static str,
    pub(crate) job: TaskFn,
}

/// Per-tile scratch, owned per the handoff discipline in the module docs.
#[derive(Default)]
pub(crate) struct LaneState {
    /// Fresh members to execute this frame, in deterministic stash order.
    pub(crate) queue: VecDeque<FreshJob>,
    /// Members stranded by a park or panic ahead of them in `queue`; the
    /// coordinator reverts them to `Pending` for a later epoch.
    pub(crate) spilled: Vec<FreshJob>,
    /// Serial-phase work in tile execution order (finishes, parks, panics).
    pub(crate) pending: Vec<EpochPending>,
    /// Messages sent by this tile's members, in program order.
    pub(crate) outbox: Vec<OutMsg>,
    /// End-of-body confined-advance flushes `(core, delta, annotations)`
    /// recorded lock-free; the coordinator lands them at phase B start.
    pub(crate) flushes: Vec<(CoreId, VDuration, u64)>,
    /// Replay frame: routed envelopes destined for this tile's cores.
    pub(crate) deliveries: Vec<Envelope>,
    /// Replay frame: `(core, new published value)` boundary-clock writes
    /// for this tile's own member cores.
    pub(crate) pub_cores: Vec<(CoreId, VirtualTime)>,
    /// Replay frame: `(core, old published value)` neighbor-floor cache
    /// invalidations targeting this tile's cores.
    pub(crate) inval_events: Vec<(CoreId, VirtualTime)>,
}

struct Lane(UnsafeCell<LaneState>);

/// Raw column base pointers into the struct-of-arrays core state, plus the
/// pooled inbox shard handles, published for the duration of one replay
/// frame. A claimant of tile `t` dereferences these only at indices owned
/// by tile `t` (and pushes only into tile `t`'s inbox shard), so distinct
/// claimants touch disjoint memory.
#[derive(Clone, Copy)]
pub(crate) struct ReplayPtrs {
    /// `Cores::published` column base.
    pub(crate) published: *mut VirtualTime,
    /// `Cores::floor_nb` column base.
    pub(crate) floor_nb: *mut VirtualTime,
    /// `Cores::floor_nb_valid` column base.
    pub(crate) floor_nb_valid: *mut bool,
    /// Sharded handles into the pooled inbox arena.
    pub(crate) inboxes: InboxLanes,
}

/// The lock-free frame coordinator (one per parallel simulation).
pub(crate) struct FrameSync {
    /// Frame generation; bumped with `Release` to publish a frame.
    frame: AtomicU64,
    /// Packed `(frame, next claim index)`; the claim gate.
    cursor: AtomicU64,
    /// Packed `(frame, claimable length)`, published before `cursor`.
    claim_info: AtomicU64,
    /// Un-retired members of the in-flight frame.
    outstanding: AtomicUsize,
    shutdown: AtomicBool,
    /// What a claimed tile means this frame; written only between frames,
    /// read only after a valid claim.
    kind: UnsafeCell<FrameKind>,
    /// Fixed-capacity claimable-tile slots (capacity = tile count), so a
    /// stale reader can never observe a reallocation.
    claimable: Box<[AtomicU32]>,
    lanes: Box<[Lane]>,
    /// Column base pointers into `Sim::cores`, `Some` only while a replay
    /// frame is in flight (the coordinator holds the simulation guard for
    /// its whole duration). Written only between frames, like `kind`, and
    /// published to claimants by the launch/claim release/acquire pair.
    replay: UnsafeCell<Option<ReplayPtrs>>,
    /// Spin iterations before parking (0 when the host has fewer CPUs
    /// than worker threads — spinning there only steals cycles from the
    /// thread being waited on).
    spin_budget: u32,
    gate: Mutex<()>,
    gate_cv: Condvar,
    coord: Mutex<()>,
    coord_cv: Condvar,
    /// `(worker index, tiles claimed, frame spins, frame parks)`, folded
    /// by each worker at thread exit. Diagnostics only — nondeterministic.
    worker_stats: Mutex<Vec<(usize, u64, u64, u64)>>,
}

// SAFETY: the `UnsafeCell` fields follow the single-owner-per-frame
// handoff discipline documented in the module docs; everything else is
// atomics and locks.
unsafe impl Send for FrameSync {}
unsafe impl Sync for FrameSync {}

impl FrameSync {
    pub(crate) fn new(n_tiles: usize, threads: u32) -> FrameSync {
        assert!(
            (n_tiles as u64) < IDX_MASK,
            "tile count overflows claim index"
        );
        let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        let spin_budget = if host_cpus > threads as usize {
            4096
        } else {
            0
        };
        FrameSync {
            frame: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
            claim_info: AtomicU64::new(0),
            outstanding: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            kind: UnsafeCell::new(FrameKind::Exec),
            claimable: (0..n_tiles).map(|_| AtomicU32::new(0)).collect(),
            lanes: (0..n_tiles)
                .map(|_| Lane(UnsafeCell::new(LaneState::default())))
                .collect(),
            replay: UnsafeCell::new(None),
            spin_budget,
            gate: Mutex::new(()),
            gate_cv: Condvar::new(),
            coord: Mutex::new(()),
            coord_cv: Condvar::new(),
            worker_stats: Mutex::new(Vec::new()),
        }
    }

    /// Tile `t`'s lane.
    ///
    /// # Safety
    /// The caller must be the lane's current owner per the handoff
    /// discipline: the coordinator between frames, the tile's unique
    /// claimant (or pinned solo host) during one.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn lane_mut(&self, t: usize) -> &mut LaneState {
        &mut *self.lanes[t].0.get()
    }

    /// Publish a frame: `members` pieces of work, of which the tiles in
    /// `claimable` are claimed off the cursor (the rest are solo members
    /// the coordinator wakes through their own condvars). Lane contents
    /// must be fully written before the call.
    pub(crate) fn launch(&self, members: usize, claimable: &[u32], kind: FrameKind) {
        debug_assert!(claimable.len() <= self.claimable.len());
        self.outstanding.store(members, Ordering::Relaxed);
        if claimable.is_empty() {
            return; // solo-only frame: nothing for the claim loop
        }
        // SAFETY: no frame is in flight, so no worker reads `kind`.
        unsafe { *self.kind.get() = kind };
        for (slot, &t) in self.claimable.iter().zip(claimable) {
            slot.store(t, Ordering::Relaxed);
        }
        let f = self.frame.load(Ordering::Relaxed) + 1;
        // Publication order matters: lanes and slots are written above,
        // then `claim_info`, then the cursor reset, then the gate bump.
        // A worker's claim reads (a successor of) the cursor store with
        // `AcqRel`, acquiring everything written before it.
        self.claim_info
            .store(pack(f, claimable.len() as u64), Ordering::Release);
        self.cursor.store(pack(f, 0), Ordering::Release);
        self.frame.store(f, Ordering::Release);
        drop(self.gate.lock());
        self.gate_cv.notify_all();
    }

    /// Claim the next tile of the current frame, or `None` when the frame
    /// is exhausted (or the caller raced a frame boundary and should go
    /// back to [`Self::wait_frame`]).
    pub(crate) fn claim(&self) -> Option<usize> {
        let v = self.cursor.fetch_add(1, Ordering::AcqRel);
        let (f, i) = unpack(v);
        let (fi, len) = unpack(self.claim_info.load(Ordering::Acquire));
        // The frame tags close the descheduled-claimant race: an index is
        // only meaningful against the claimable list of its own frame. A
        // mismatch means our increment landed on a dying frame's cursor
        // (the coordinator's reset overwrites it; nothing is lost) or the
        // list we can see is not ours — either way, don't execute.
        if f != fi || i >= len {
            return None;
        }
        Some(self.claimable[i as usize].load(Ordering::Relaxed) as usize)
    }

    /// The in-flight frame's kind. Only meaningful after a valid claim.
    pub(crate) fn kind(&self) -> FrameKind {
        // SAFETY: `kind` is written only between frames; a valid claim
        // proves a frame is in flight and pins the value.
        unsafe { *self.kind.get() }
    }

    /// Retire `n` pieces of frame work; the last retirement wakes the
    /// coordinator. All lane writes of the retiring thread are sequenced
    /// before this call (release via the `AcqRel` RMW).
    pub(crate) fn retire(&self, n: usize) {
        if self.outstanding.fetch_sub(n, Ordering::AcqRel) == n {
            // Empty critical section: pairs with the predicate re-check
            // under `coord`, closing the decide-then-sleep race.
            drop(self.coord.lock());
            self.coord_cv.notify_one();
        }
    }

    /// Coordinator: wait until every member of the launched frame retired.
    pub(crate) fn wait_quiescent(&self) {
        for _ in 0..self.spin_budget {
            if self.outstanding.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        let mut g = self.coord.lock();
        while self.outstanding.load(Ordering::Acquire) != 0 {
            self.coord_cv.wait(&mut g);
        }
    }

    /// Worker: wait for a frame newer than `last`, spinning up to the
    /// budget before parking on the gate. Returns the new frame number, or
    /// `None` at shutdown. `spins`/`parks` count how each wait resolved.
    pub(crate) fn wait_frame(&self, last: u64, spins: &mut u64, parks: &mut u64) -> Option<u64> {
        for _ in 0..self.spin_budget {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            let f = self.frame.load(Ordering::Acquire);
            if f != last {
                *spins += 1;
                return Some(f);
            }
            std::hint::spin_loop();
        }
        let mut g = self.gate.lock();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            let f = self.frame.load(Ordering::Acquire);
            if f != last {
                *parks += 1;
                return Some(f);
            }
            self.gate_cv.wait(&mut g);
        }
    }

    /// Wake every gate-parked worker for teardown.
    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        drop(self.gate.lock());
        self.gate_cv.notify_all();
    }

    /// Publish the core-state column pointers for a replay frame.
    ///
    /// # Safety
    /// Must be called between frames (no frame in flight), and the
    /// pointers must stay valid until [`Self::clear_replay_ptrs`] — the
    /// coordinator guarantees this by holding the simulation guard for the
    /// replay frame's whole duration.
    pub(crate) unsafe fn set_replay_ptrs(&self, p: ReplayPtrs) {
        *self.replay.get() = Some(p);
    }

    /// Clear the replay pointers after [`Self::wait_quiescent`].
    ///
    /// # Safety
    /// Must be called between frames (no frame in flight).
    pub(crate) unsafe fn clear_replay_ptrs(&self) {
        *self.replay.get() = None;
    }

    /// Fold a worker's lifetime counters; called once at thread exit.
    pub(crate) fn fold_worker_stats(&self, idx: usize, claimed: u64, spins: u64, parks: u64) {
        self.worker_stats.lock().push((idx, claimed, spins, parks));
    }

    /// Harvest the folded worker counters (teardown, after joins).
    pub(crate) fn take_worker_stats(&self) -> Vec<(usize, u64, u64, u64)> {
        std::mem::take(&mut *self.worker_stats.lock())
    }
}

/// Apply destination tile `t`'s buffered phase-B effects: boundary-clock
/// publishes, neighbor-floor cache invalidations, and inbox deliveries.
/// All three touch disjoint state columns, every referenced core belongs
/// to tile `t`, and the deliveries land in tile `t`'s own inbox shard, so
/// concurrent replay of distinct tiles commutes with — and is
/// bit-identical to — the serial tile-order application.
///
/// # Safety
/// The caller owns lane `t` and tile `t`'s cores: either a replay-frame
/// claimant (the coordinator holds the simulation guard and touches no
/// core state until the frame retires), or the coordinator itself applying
/// lanes serially. [`FrameSync::set_replay_ptrs`] must have been called
/// with live column pointers, and when tiles replay concurrently the inbox
/// pool must be sharded by tile.
pub(crate) unsafe fn replay_lane(fs: &FrameSync, t: usize) {
    let p = (*fs.replay.get()).expect("replay pointers not published");
    let lane = fs.lane_mut(t);
    for &(c, v) in &lane.pub_cores {
        *p.published.add(c.index()) = v;
    }
    for &(m, old) in &lane.inval_events {
        let i = m.index();
        if *p.floor_nb_valid.add(i) && *p.floor_nb.add(i) == old {
            *p.floor_nb_valid.add(i) = false;
        }
    }
    for env in lane.deliveries.drain(..) {
        let dst = env.dst;
        p.inboxes.push(dst, env);
    }
    lane.pub_cores.clear();
    lane.inval_events.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for (f, i) in [(0u64, 0u64), (1, 3), (1 << 39, IDX_MASK - 1)] {
            assert_eq!(unpack(pack(f, i)), (f, i));
        }
    }

    #[test]
    fn claim_is_frame_tagged() {
        let fs = FrameSync::new(4, 2);
        // No frame launched: claims fail.
        assert_eq!(fs.claim(), None);
        fs.launch(2, &[1, 3], FrameKind::Exec);
        assert_eq!(fs.claim(), Some(1));
        assert_eq!(fs.claim(), Some(3));
        assert_eq!(fs.claim(), None);
        fs.retire(1);
        fs.retire(1);
        fs.wait_quiescent();
        // Next frame invalidates leftover indices even though the cursor
        // overran: the tag differs.
        fs.launch(1, &[0], FrameKind::Replay);
        assert_eq!(fs.claim(), Some(0));
        assert_eq!(fs.kind(), FrameKind::Replay);
        assert_eq!(fs.claim(), None);
        fs.retire(1);
        fs.wait_quiescent();
    }

    #[test]
    fn solo_only_frame_skips_the_gate() {
        let fs = FrameSync::new(2, 2);
        let before = fs.frame.load(Ordering::Relaxed);
        fs.launch(1, &[], FrameKind::Exec);
        assert_eq!(fs.frame.load(Ordering::Relaxed), before);
        assert_eq!(fs.claim(), None);
        fs.retire(1);
        fs.wait_quiescent();
    }
}
