//! Online invariant sanitizer (enabled by [`crate::EngineConfig::sanitize`]).
//!
//! The paper's correctness story rests on invariants the engine normally
//! only *trusts*: neighbor drift bounded by `T`, global drift bounded by
//! `diameter × T` (§II.A), birth times bounding their spawner, per-sender
//! FIFO delivery and causal arrival stamps (§II.B), and the cache/deferral
//! machinery of the fast path being invisible. With `sanitize` on, every
//! slow-path synchronization decision, publish and delivery is re-validated
//! against an independent recomputation; a periodic machine-wide scan (every
//! [`SCAN_EVERY_PICKS`] scheduler picks, plus once at the end of the run)
//! checks the global invariants. Violations bump
//! [`crate::SimStats::sanitizer_violations`] and are reported as
//! [`TraceEvent::SanitizerViolation`] events (capped, so a broken invariant
//! cannot flood the tracer).
//!
//! The sanitizer is read-only with respect to the simulation: it never
//! consumes engine randomness, never touches the floor caches or waiter
//! sets, and never changes scheduling — a run with `sanitize` on is
//! behaviorally identical to one with it off. With `sanitize` off the
//! checks cost one untaken branch at each slow-path site and nothing at all
//! on the drift-headroom fast path.
//!
//! ## Accounting for legal transients
//!
//! The drift bounds are enforced by the engine *at decision points*, against
//! the floor as of the decision; between decisions a single timing
//! annotation or message jump can overshoot, and the lock waiver (§II.B)
//! suspends the bound entirely. The sanitizer therefore tracks the largest
//! observed per-publish overshoot past the policy slack
//! (`max_overshoot`) and the cumulative amount by which idle-to-working
//! transitions dropped a clock below the then-current global floor
//! (`regression_slack`), and admits them in the machine-wide bound:
//!
//! ```text
//! spread ≤ diameter × T + max_overshoot + regression_slack
//! ```
//!
//! Both terms are measured, not assumed, so a genuinely runaway core (one
//! advancing without ever passing a synchronization decision) is still
//! caught: its overshoot is only recorded at a publish, and a publish-free
//! advance is exactly the corruption the fast-path flush check detects.

use crate::config::SyncPolicy;
use crate::engine::{trace, Shared, Sim};
use crate::trace::TraceEvent;
use simany_net::Envelope;
use simany_time::{VDuration, VirtualTime};
use simany_topology::CoreId;
use std::collections::HashMap;

/// The machine-wide scan runs every this many scheduler picks.
pub(crate) const SCAN_EVERY_PICKS: u64 = 64;

/// At most this many violations are reported as trace events; the
/// violation *counter* keeps counting past the cap.
const MAX_REPORTED: u32 = 64;

/// Mutable sanitizer state, boxed into `Sim` when `sanitize` is on.
pub(crate) struct SanitizerState {
    /// Hop diameter of the topology (for the `diameter × T` bound).
    diameter_hops: u64,
    /// Largest observed overshoot of any core's clock past its policy
    /// slack, measured at publish instants (single-annotation steps,
    /// message jumps and lock-waiver excursions all land here).
    max_overshoot: VDuration,
    /// Cumulative distance by which idle-to-working clock transitions
    /// landed below the then-current global floor (each such drop can
    /// widen the instantaneous spread by its amount).
    regression_slack: VDuration,
    /// Per `(src, dst)` pair: highest `sent` stamp seen and the arrival
    /// assigned to it, for the per-sender FIFO check. Back-stamped replies
    /// (paper §II.A reply rule) do not participate.
    fifo: HashMap<(u32, u32), (VirtualTime, VirtualTime)>,
    /// Violations reported as trace events so far (see [`MAX_REPORTED`]).
    reported: u32,
    /// Skip the machine-wide drift bound: core-failure plans retire cores
    /// in ways the closed-form bound does not model.
    skip_global: bool,
}

/// Install the sanitizer into a freshly built `Sim`.
pub(crate) fn install(sim: &mut Sim, shared: &Shared) {
    let skip_global = shared
        .config
        .fault
        .as_ref()
        .is_some_and(|p| p.has_core_faults());
    sim.sanitizer = Some(Box::new(SanitizerState {
        diameter_hops: u64::from(shared.topo.diameter_hops()),
        max_overshoot: VDuration::ZERO,
        regression_slack: VDuration::ZERO,
        fifo: HashMap::new(),
        reported: 0,
        skip_global,
    }));
}

/// Record one violation: bump the counter and (under the report cap) emit
/// a structured trace event.
fn report(sim: &mut Sim, shared: &Shared, ev: TraceEvent) {
    sim.stats.sanitizer_violations += 1;
    let s = sim.sanitizer.as_mut().expect("sanitizer installed");
    if s.reported < MAX_REPORTED {
        s.reported += 1;
        trace(shared, || ev);
    }
}

/// The spatial floor of `c` recomputed from scratch — neighbor published
/// minimum and birth ledger, bypassing `floor_nb`/`headroom_limit` caches.
fn fresh_local_floor(sim: &Sim, shared: &Shared, c: CoreId) -> VirtualTime {
    let mut m = VirtualTime::MAX;
    for &(n, _) in shared.topo.neighbors(c) {
        m = m.min(sim.cores.published[n.index()]);
    }
    if let Some(b) = sim.cores.min_birth(c.index()) {
        m = m.min(b);
    }
    m
}

/// The slack the active policy allows a core over its floor, when the
/// policy has a closed-form bound at all.
fn policy_slack(shared: &Shared) -> Option<VDuration> {
    match shared.config.sync {
        SyncPolicy::Spatial { t } => Some(t),
        SyncPolicy::BoundedSlack { window } => Some(window),
        SyncPolicy::Conservative => Some(VDuration::ZERO),
        SyncPolicy::RandomReferee { .. } | SyncPolicy::Unbounded => None,
    }
}

/// Called from `sync::sync_ok` (spatial slow path) with the floor the
/// decision is about to use: re-derive it from scratch and flag cache
/// corruption.
pub(crate) fn verify_spatial_floor(sim: &mut Sim, shared: &Shared, c: CoreId, cached: VirtualTime) {
    sim.stats.sanitizer_checks += 1;
    let fresh = fresh_local_floor(sim, shared, c);
    if fresh != cached {
        let t = sim.cores.vtime[c.index()];
        let detail = format!("cached local floor {cached}, fresh recomputation {fresh}");
        report(
            sim,
            shared,
            TraceEvent::SanitizerViolation {
                t,
                core: c,
                peer: None,
                invariant: "floor-cache",
                detail,
            },
        );
    }
}

/// Called from `sync::flush_deferred` before a deferred publish lands: the
/// fast path may only have advanced the clock within the cached headroom.
pub(crate) fn verify_flush(sim: &mut Sim, shared: &Shared, c: CoreId) {
    sim.stats.sanitizer_checks += 1;
    if let Some(limit) = sim.cores.headroom_limit[c.index()] {
        let t = sim.cores.vtime[c.index()];
        if t > limit {
            let detail = format!("deferred clock {t} exceeds cached headroom limit {limit}");
            report(
                sim,
                shared,
                TraceEvent::SanitizerViolation {
                    t,
                    core: c,
                    peer: None,
                    invariant: "fast-path-headroom",
                    detail,
                },
            );
        }
    }
}

/// Called from `Ops::record_birth`: spawn stamps come from the parent's
/// clock (or earlier, via the reply rule), so a birth *ahead* of the
/// spawner cannot bound its drift and indicates a runtime bug.
pub(crate) fn verify_birth(sim: &mut Sim, shared: &Shared, c: CoreId, birth: VirtualTime) {
    sim.stats.sanitizer_checks += 1;
    let now = sim.cores.vtime[c.index()];
    if birth > now {
        let detail = format!("birth stamped {birth} ahead of spawner clock {now}");
        report(
            sim,
            shared,
            TraceEvent::SanitizerViolation {
                t: now,
                core: c,
                peer: None,
                invariant: "birth-ahead",
                detail,
            },
        );
    }
}

/// Called at the top of every `sync::publish`: measure how far the core's
/// clock currently overshoots its policy slack over a fresh floor. Every
/// slow-path clock change is followed by a publish before the token
/// returns to the scheduler, so the running maximum covers all scan
/// instants.
pub(crate) fn note_clock(sim: &mut Sim, shared: &Shared, c: CoreId) {
    if sim.cores.is_idle(c.index()) {
        return;
    }
    let Some(slack) = policy_slack(shared) else {
        return;
    };
    let floor = match shared.config.sync {
        SyncPolicy::Spatial { .. } => fresh_local_floor(sim, shared, c),
        _ => crate::sync::global_floor(sim),
    };
    if floor == VirtualTime::MAX {
        return;
    }
    let drift = sim.cores.vtime[c.index()].saturating_since(floor);
    let over = VDuration::from_half_cycles(drift.ticks().saturating_sub(slack.ticks()));
    let s = sim.sanitizer.as_mut().expect("sanitizer installed");
    if over > s.max_overshoot {
        s.max_overshoot = over;
    }
}

/// Called from `sync::publish` when a top-level published value drops on a
/// working core (an idle core waking to its older frozen clock): record how
/// far below the then-current global floor the clock lands, since each such
/// regression can widen the instantaneous spread by its amount.
pub(crate) fn note_floor_regression(sim: &mut Sim, new_clock: VirtualTime) {
    let floor = crate::sync::global_floor(sim);
    if floor == VirtualTime::MAX {
        return;
    }
    let reg = floor.saturating_since(new_clock);
    if !reg.is_zero() {
        let s = sim.sanitizer.as_mut().expect("sanitizer installed");
        s.regression_slack += reg;
    }
}

/// Called from `engine::deliver` for every envelope entering an inbox:
/// causality (arrival no earlier than the send stamp plus the pure route
/// latency) and per-sender FIFO (forward-stamped messages on one pair must
/// arrive in stamp order; back-stamped replies are exempt per §II.A).
pub(crate) fn on_deliver(sim: &mut Sim, shared: &Shared, env: &Envelope) {
    sim.stats.sanitizer_checks += 1;
    let min_arrival = if env.src == env.dst {
        env.sent
    } else {
        env.sent + sim.net.routing().path_latency(env.src, env.dst)
    };
    if env.arrival < min_arrival {
        let detail = format!(
            "sent {} arrived {} but the route needs at least {}",
            env.sent, env.arrival, min_arrival
        );
        report(
            sim,
            shared,
            TraceEvent::SanitizerViolation {
                t: env.arrival,
                core: env.dst,
                peer: Some(env.src),
                invariant: "causality",
                detail,
            },
        );
    }
    let key = (env.src.0, env.dst.0);
    let s = sim.sanitizer.as_mut().expect("sanitizer installed");
    let mut fifo_violation = None;
    match s.fifo.get_mut(&key) {
        Some(slot) => {
            let (last_sent, last_arrival) = *slot;
            if env.sent >= last_sent {
                if env.arrival < last_arrival {
                    fifo_violation = Some((last_sent, last_arrival));
                }
                *slot = (env.sent, env.arrival);
            }
        }
        None => {
            s.fifo.insert(key, (env.sent, env.arrival));
        }
    }
    if let Some((last_sent, last_arrival)) = fifo_violation {
        let detail = format!(
            "message sent {} arrived {} behind earlier message sent {} arrived {}",
            env.sent, env.arrival, last_sent, last_arrival
        );
        report(
            sim,
            shared,
            TraceEvent::SanitizerViolation {
                t: env.arrival,
                core: env.dst,
                peer: Some(env.src),
                invariant: "per-sender-fifo",
                detail,
            },
        );
    }
}

/// Machine-wide scan, run at scheduler-time quiescence (every
/// [`SCAN_EVERY_PICKS`] picks and once after the last pick). At these
/// instants every deferred publish has been flushed, so published values,
/// caches and clocks must all be mutually consistent.
pub(crate) fn scan(sim: &mut Sim, shared: &Shared) {
    let spatial_t = match shared.config.sync {
        SyncPolicy::Spatial { t } => Some(t),
        _ => None,
    };
    for i in 0..sim.cores.len() {
        let c = CoreId(i as u32);
        sim.stats.sanitizer_checks += 1;
        let (vtime, published, pending, idle) = (
            sim.cores.vtime[i],
            sim.cores.published[i],
            sim.cores.publish_pending[i],
            sim.cores.is_idle(i),
        );
        if pending {
            let detail = "deferred publish still pending at scheduler time".to_string();
            report(
                sim,
                shared,
                TraceEvent::SanitizerViolation {
                    t: vtime,
                    core: c,
                    peer: None,
                    invariant: "deferred-publish",
                    detail,
                },
            );
        }
        match spatial_t {
            Some(t) if idle => {
                // Shadow relaxation: an idle core's exposed value sits
                // between its frozen clock and `min(neighbors) + t`. (The
                // max-vtime cap only lowers the relaxed value, so the
                // uncapped expression is a valid upper bound even when the
                // stored value predates a cap rise.)
                let min_neigh = shared
                    .topo
                    .neighbors(c)
                    .iter()
                    .map(|&(n, _)| sim.cores.published[n.index()])
                    .min();
                let upper = match min_neigh {
                    Some(m) => vtime.max(m + t),
                    None => vtime,
                };
                if published < vtime || published > upper {
                    let detail = format!("idle shadow {published} outside [{vtime}, {upper}]");
                    report(
                        sim,
                        shared,
                        TraceEvent::SanitizerViolation {
                            t: vtime,
                            core: c,
                            peer: None,
                            invariant: "shadow-range",
                            detail,
                        },
                    );
                }
            }
            _ => {
                // Working spatial cores and every core under a global
                // policy expose their clock verbatim.
                if published != vtime {
                    let detail = format!("published {published} diverged from clock {vtime}");
                    report(
                        sim,
                        shared,
                        TraceEvent::SanitizerViolation {
                            t: vtime,
                            core: c,
                            peer: None,
                            invariant: "published-clock",
                            detail,
                        },
                    );
                }
            }
        }
        // Incremental-floor and headroom caches against fresh recomputation.
        if let Some(t) = spatial_t {
            let (nb_valid, nb_cached, headroom) = (
                sim.cores.floor_nb_valid[i],
                sim.cores.floor_nb[i],
                sim.cores.headroom_limit[i],
            );
            let mut fresh_nb = VirtualTime::MAX;
            for &(n, _) in shared.topo.neighbors(c) {
                fresh_nb = fresh_nb.min(sim.cores.published[n.index()]);
            }
            if nb_valid && nb_cached != fresh_nb {
                let detail = format!("cached neighbor floor {nb_cached}, fresh {fresh_nb}");
                report(
                    sim,
                    shared,
                    TraceEvent::SanitizerViolation {
                        t: vtime,
                        core: c,
                        peer: None,
                        invariant: "floor-cache",
                        detail,
                    },
                );
            }
            if let Some(limit) = headroom {
                // A cached headroom is a conservative bound: the floor it
                // was derived from can only have risen since (drops clear
                // the cache), so `limit ≤ fresh floor + t` must hold.
                let fresh = fresh_local_floor(sim, shared, c);
                let ok = if fresh == VirtualTime::MAX {
                    true
                } else {
                    limit.saturating_since(fresh) <= t
                };
                if !ok {
                    let detail = format!("cached headroom {limit} exceeds fresh floor {fresh} + T");
                    report(
                        sim,
                        shared,
                        TraceEvent::SanitizerViolation {
                            t: vtime,
                            core: c,
                            peer: None,
                            invariant: "headroom-cache",
                            detail,
                        },
                    );
                }
            }
        }
    }

    // Machine-wide drift bound (policies with a closed-form bound only).
    let Some(slack) = policy_slack(shared) else {
        return;
    };
    sim.stats.sanitizer_checks += 1;
    let s = sim.sanitizer.as_ref().expect("sanitizer installed");
    let (skip_global, diameter, max_overshoot, regression) = (
        s.skip_global,
        s.diameter_hops,
        s.max_overshoot,
        s.regression_slack,
    );
    let floor = crate::sync::global_floor(sim);
    let cur_max = (0..sim.cores.len())
        .filter(|&i| !sim.cores.is_idle(i))
        .map(|i| sim.cores.vtime[i])
        .max();
    let (Some(cur_max), false) = (cur_max, floor == VirtualTime::MAX) else {
        return;
    };
    let spread = cur_max.saturating_since(floor);
    if spread > sim.stats.max_global_drift {
        sim.stats.max_global_drift = spread;
    }
    if skip_global {
        return;
    }
    let bound = match shared.config.sync {
        SyncPolicy::Spatial { t } => t.scaled(diameter),
        _ => slack,
    };
    let allowed = bound + max_overshoot + regression;
    if spread > allowed {
        let detail = format!(
            "working-core spread {} over global floor {floor} exceeds bound {} \
             (diameter {diameter}, overshoot {}, regression {})",
            spread.cycles(),
            allowed.cycles(),
            max_overshoot.cycles(),
            regression.cycles(),
        );
        report(
            sim,
            shared,
            TraceEvent::SanitizerViolation {
                t: cur_max,
                core: CoreId(0),
                peer: None,
                invariant: "global-drift",
                detail,
            },
        );
    }
}
