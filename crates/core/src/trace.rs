//! Optional event tracing.
//!
//! Architecture exploration lives and dies by visibility: install a
//! [`Tracer`] in [`crate::EngineConfig`] and the engine reports every
//! scheduling-relevant event — task starts and ends, synchronization
//! stalls and resumes, message sends and (possibly out-of-order)
//! processing, blocks and wakes — stamped with virtual time.
//!
//! [`MemoryTracer`] collects events in memory and renders chronological
//! dumps, per-core summaries and a coarse ASCII activity timeline; custom
//! tracers (streaming to disk, counting, filtering) implement the
//! one-method trait.

use parking_lot::Mutex;
use simany_time::VirtualTime;
use simany_topology::{CoreId, LinkId};
use std::fmt;
use std::sync::Arc;

/// One engine event, stamped with the virtual time at which it happened on
/// its core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An activity's closure starts executing.
    ActivityStart {
        /// Virtual time on the core.
        t: VirtualTime,
        /// Core.
        core: CoreId,
        /// Engine activity id.
        aid: u64,
        /// Debug name of the activity.
        name: &'static str,
    },
    /// An activity's closure returned.
    ActivityEnd {
        /// Virtual time on the core.
        t: VirtualTime,
        /// Core.
        core: CoreId,
        /// Engine activity id.
        aid: u64,
        /// Debug name.
        name: &'static str,
    },
    /// The synchronization policy stalled the core.
    Stall {
        /// Core clock at the stall.
        t: VirtualTime,
        /// Core.
        core: CoreId,
    },
    /// A stalled core resumed.
    Resume {
        /// Core clock at resume.
        t: VirtualTime,
        /// Core.
        core: CoreId,
    },
    /// A message entered the network.
    Send {
        /// Departure stamp.
        t: VirtualTime,
        /// Sender.
        src: CoreId,
        /// Receiver.
        dst: CoreId,
        /// Architectural size.
        bytes: u32,
    },
    /// A message was processed by its destination. `late_by` is the
    /// virtual lateness when the receiver's clock had already passed the
    /// arrival stamp (the paper's out-of-order processing).
    Process {
        /// Arrival stamp of the message.
        arrival: VirtualTime,
        /// Receiver clock when processed.
        t: VirtualTime,
        /// Receiver.
        core: CoreId,
        /// Ticks of lateness (0 = in order).
        late_by: u64,
    },
    /// An activity suspended waiting for a wake.
    Block {
        /// Core clock.
        t: VirtualTime,
        /// Core.
        core: CoreId,
        /// Wait reason (e.g. "probe", "join").
        reason: &'static str,
    },
    /// A blocked activity was woken.
    Wake {
        /// Virtual time the wake value became available.
        t: VirtualTime,
        /// Core of the woken activity.
        core: CoreId,
    },
    /// A link failed (fault-plan epoch boundary).
    LinkDown {
        /// Virtual time of the failure.
        t: VirtualTime,
        /// The failed directed link.
        link: LinkId,
        /// Link source core.
        src: CoreId,
        /// Link destination core.
        dst: CoreId,
    },
    /// A failed link recovered.
    LinkUp {
        /// Virtual time of the recovery.
        t: VirtualTime,
        /// The recovered directed link.
        link: LinkId,
        /// Link source core.
        src: CoreId,
        /// Link destination core.
        dst: CoreId,
    },
    /// A core failed permanently (stops accepting new work).
    CoreFailed {
        /// Virtual time of the failure.
        t: VirtualTime,
        /// The failed core.
        core: CoreId,
    },
    /// A message was lost in flight (dropped, corrupted or unroutable).
    MsgDropped {
        /// Departure stamp of the lost message.
        t: VirtualTime,
        /// Sender.
        src: CoreId,
        /// Intended receiver.
        dst: CoreId,
        /// Architectural size.
        bytes: u32,
    },
    /// A lost message was retried by the runtime (timeout + backoff).
    MsgRetried {
        /// Virtual time of the retry attempt.
        t: VirtualTime,
        /// Sender.
        src: CoreId,
        /// Intended receiver.
        dst: CoreId,
    },
    /// The online sanitizer observed an invariant violation (an engine
    /// bug, or deliberately injected corruption in sanitizer tests).
    SanitizerViolation {
        /// Clock of the offending core when the violation was detected.
        t: VirtualTime,
        /// The core whose invariant was violated.
        core: CoreId,
        /// The other endpoint of the offending edge, for pairwise
        /// invariants (neighbor drift, per-sender FIFO, causality).
        peer: Option<CoreId>,
        /// Which invariant, as a stable name (e.g. "neighbor-drift").
        invariant: &'static str,
        /// Clocks and bounds, human-readable.
        detail: String,
    },
}

impl TraceEvent {
    /// The virtual time stamp of the event.
    pub fn time(&self) -> VirtualTime {
        match *self {
            TraceEvent::ActivityStart { t, .. }
            | TraceEvent::ActivityEnd { t, .. }
            | TraceEvent::Stall { t, .. }
            | TraceEvent::Resume { t, .. }
            | TraceEvent::Send { t, .. }
            | TraceEvent::Process { t, .. }
            | TraceEvent::Block { t, .. }
            | TraceEvent::Wake { t, .. }
            | TraceEvent::LinkDown { t, .. }
            | TraceEvent::LinkUp { t, .. }
            | TraceEvent::CoreFailed { t, .. }
            | TraceEvent::MsgDropped { t, .. }
            | TraceEvent::MsgRetried { t, .. }
            | TraceEvent::SanitizerViolation { t, .. } => t,
        }
    }

    /// The core the event belongs to.
    pub fn core(&self) -> CoreId {
        match *self {
            TraceEvent::ActivityStart { core, .. }
            | TraceEvent::ActivityEnd { core, .. }
            | TraceEvent::Stall { core, .. }
            | TraceEvent::Resume { core, .. }
            | TraceEvent::Process { core, .. }
            | TraceEvent::Block { core, .. }
            | TraceEvent::Wake { core, .. }
            | TraceEvent::CoreFailed { core, .. }
            | TraceEvent::SanitizerViolation { core, .. } => core,
            TraceEvent::Send { src, .. }
            | TraceEvent::LinkDown { src, .. }
            | TraceEvent::LinkUp { src, .. }
            | TraceEvent::MsgDropped { src, .. }
            | TraceEvent::MsgRetried { src, .. } => src,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::ActivityStart { t, core, aid, name } => {
                write!(f, "{t} {core} START {name}#{aid}")
            }
            TraceEvent::ActivityEnd { t, core, aid, name } => {
                write!(f, "{t} {core} END {name}#{aid}")
            }
            TraceEvent::Stall { t, core } => write!(f, "{t} {core} STALL"),
            TraceEvent::Resume { t, core } => write!(f, "{t} {core} RESUME"),
            TraceEvent::Send { t, src, dst, bytes } => {
                write!(f, "{t} {src} SEND -> {dst} ({bytes}B)")
            }
            TraceEvent::Process {
                arrival,
                t,
                core,
                late_by,
            } => {
                if late_by > 0 {
                    write!(f, "{t} {core} PROCESS (arrived {arrival}, late)")
                } else {
                    write!(f, "{t} {core} PROCESS (arrived {arrival})")
                }
            }
            TraceEvent::Block { t, core, reason } => write!(f, "{t} {core} BLOCK on {reason}"),
            TraceEvent::Wake { t, core } => write!(f, "{t} {core} WAKE"),
            TraceEvent::LinkDown { t, link, src, dst } => {
                write!(f, "{t} {src} LINK_DOWN {link:?} -> {dst}")
            }
            TraceEvent::LinkUp { t, link, src, dst } => {
                write!(f, "{t} {src} LINK_UP {link:?} -> {dst}")
            }
            TraceEvent::CoreFailed { t, core } => write!(f, "{t} {core} CORE_FAILED"),
            TraceEvent::MsgDropped { t, src, dst, bytes } => {
                write!(f, "{t} {src} DROP -> {dst} ({bytes}B)")
            }
            TraceEvent::MsgRetried { t, src, dst } => {
                write!(f, "{t} {src} RETRY -> {dst}")
            }
            TraceEvent::SanitizerViolation {
                t,
                core,
                peer,
                invariant,
                ref detail,
            } => {
                if let Some(peer) = peer {
                    write!(
                        f,
                        "{t} {core} SANITIZER {invariant} (peer {peer}): {detail}"
                    )
                } else {
                    write!(f, "{t} {core} SANITIZER {invariant}: {detail}")
                }
            }
        }
    }
}

/// Event sink installed in the engine configuration.
pub trait Tracer: Send + Sync {
    /// Record one event. Called under the simulation lock: keep it cheap.
    fn record(&self, event: TraceEvent);
}

/// In-memory tracer with reporting helpers.
#[derive(Default)]
pub struct MemoryTracer {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemoryTracer {
    /// Fresh, empty tracer (wrap in an `Arc` for the engine config).
    pub fn new() -> Arc<Self> {
        Arc::new(MemoryTracer::default())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Snapshot of all events in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Chronological text dump (sorted by virtual time, stable on ties).
    pub fn dump(&self) -> String {
        let mut evs = self.events();
        evs.sort_by_key(|e| e.time());
        let mut out = String::new();
        for e in evs {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Per-core event counts: `(starts, stalls, sends, late_processes)`.
    pub fn core_summary(&self, core: CoreId) -> (u64, u64, u64, u64) {
        let mut starts = 0;
        let mut stalls = 0;
        let mut sends = 0;
        let mut late = 0;
        for e in self.events().iter().filter(|e| e.core() == core) {
            match e {
                TraceEvent::ActivityStart { .. } => starts += 1,
                TraceEvent::Stall { .. } => stalls += 1,
                TraceEvent::Send { .. } => sends += 1,
                TraceEvent::Process { late_by, .. } if *late_by > 0 => late += 1,
                _ => {}
            }
        }
        (starts, stalls, sends, late)
    }

    /// Coarse ASCII activity timeline: one row per core, `columns` buckets
    /// of virtual time; `#` = activity started in the bucket, `~` = stall,
    /// `.` = other events, space = quiet.
    pub fn timeline(&self, n_cores: u32, columns: usize) -> String {
        let evs = self.events();
        let horizon = evs.iter().map(|e| e.time().ticks()).max().unwrap_or(0);
        let bucket = (horizon / columns as u64).max(1);
        let mut grid = vec![vec![b' '; columns]; n_cores as usize];
        for e in &evs {
            let c = e.core().index();
            if c >= grid.len() {
                continue;
            }
            let col = ((e.time().ticks() / bucket) as usize).min(columns - 1);
            let glyph = match e {
                TraceEvent::ActivityStart { .. } | TraceEvent::ActivityEnd { .. } => b'#',
                TraceEvent::Stall { .. } => b'~',
                _ => {
                    if grid[c][col] == b' ' {
                        b'.'
                    } else {
                        grid[c][col]
                    }
                }
            };
            // Priority: '#' > '~' > '.'.
            let cur = grid[c][col];
            let rank = |g: u8| match g {
                b'#' => 3,
                b'~' => 2,
                b'.' => 1,
                _ => 0,
            };
            if rank(glyph) > rank(cur) {
                grid[c][col] = glyph;
            }
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            out.push_str(&format!("core{i:<4}|"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push_str("|\n");
        }
        out
    }
}

/// One executed activity: name, core, start and end virtual times.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActivitySpan {
    /// Engine activity id.
    pub aid: u64,
    /// Debug name.
    pub name: &'static str,
    /// Core the activity ran on.
    pub core: CoreId,
    /// Clock at first execution.
    pub start: VirtualTime,
    /// Clock at completion.
    pub end: VirtualTime,
}

impl ActivitySpan {
    /// Wall-to-wall virtual length of the span (includes waits).
    pub fn length(&self) -> simany_time::VDuration {
        self.end.saturating_since(self.start)
    }
}

impl MemoryTracer {
    /// Pair start/end events into per-activity spans (activities still
    /// running at teardown are omitted).
    pub fn activity_spans(&self) -> Vec<ActivitySpan> {
        use std::collections::HashMap;
        let mut open: HashMap<u64, (VirtualTime, CoreId, &'static str)> = HashMap::new();
        let mut spans = Vec::new();
        for e in self.events() {
            match e {
                TraceEvent::ActivityStart { t, core, aid, name } => {
                    open.insert(aid, (t, core, name));
                }
                TraceEvent::ActivityEnd { t, aid, .. } => {
                    if let Some((start, core, name)) = open.remove(&aid) {
                        spans.push(ActivitySpan {
                            aid,
                            name,
                            core,
                            start,
                            end: t,
                        });
                    }
                }
                _ => {}
            }
        }
        spans
    }

    /// The longest single activity span — a lower bound on the program's
    /// critical path and the first place to look when a run stops scaling.
    pub fn longest_activity(&self) -> Option<ActivitySpan> {
        self.activity_spans()
            .into_iter()
            .max_by_key(|s| (s.length(), std::cmp::Reverse(s.aid)))
    }
}

impl Tracer for MemoryTracer {
    fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> VirtualTime {
        VirtualTime::from_cycles(c)
    }

    #[test]
    fn records_and_dumps_in_time_order() {
        let tr = MemoryTracer::new();
        tr.record(TraceEvent::Stall {
            t: t(30),
            core: CoreId(1),
        });
        tr.record(TraceEvent::ActivityStart {
            t: t(10),
            core: CoreId(0),
            aid: 0,
            name: "a",
        });
        assert_eq!(tr.len(), 2);
        let dump = tr.dump();
        let first = dump.lines().next().unwrap();
        assert!(first.contains("START"), "dump not time-sorted: {dump}");
    }

    #[test]
    fn summary_counts_per_core() {
        let tr = MemoryTracer::new();
        tr.record(TraceEvent::ActivityStart {
            t: t(1),
            core: CoreId(0),
            aid: 0,
            name: "a",
        });
        tr.record(TraceEvent::Stall {
            t: t(2),
            core: CoreId(0),
        });
        tr.record(TraceEvent::Stall {
            t: t(3),
            core: CoreId(1),
        });
        tr.record(TraceEvent::Send {
            t: t(4),
            src: CoreId(0),
            dst: CoreId(1),
            bytes: 8,
        });
        tr.record(TraceEvent::Process {
            arrival: t(4),
            t: t(9),
            core: CoreId(1),
            late_by: 10,
        });
        assert_eq!(tr.core_summary(CoreId(0)), (1, 1, 1, 0));
        assert_eq!(tr.core_summary(CoreId(1)), (0, 1, 0, 1));
    }

    #[test]
    fn timeline_shape() {
        let tr = MemoryTracer::new();
        tr.record(TraceEvent::ActivityStart {
            t: t(0),
            core: CoreId(0),
            aid: 0,
            name: "a",
        });
        tr.record(TraceEvent::Stall {
            t: t(99),
            core: CoreId(1),
        });
        let tl = tr.timeline(2, 10);
        let lines: Vec<&str> = tl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[1].contains('~'));
    }

    #[test]
    fn event_accessors() {
        let e = TraceEvent::Send {
            t: t(7),
            src: CoreId(3),
            dst: CoreId(4),
            bytes: 1,
        };
        assert_eq!(e.time(), t(7));
        assert_eq!(e.core(), CoreId(3));
        assert!(format!("{e}").contains("SEND"));
    }
}
