//! Verification checkpoints and deterministic resume.
//!
//! SiMany is deterministic: topology + configuration + seed fully determine
//! the run. A checkpoint therefore does not need to serialize the engine's
//! live object graph (native task stacks could not be serialized anyway —
//! task bodies are real Rust frames, §III); it records a *verifiable
//! waypoint*: the configuration digest, the virtual-time watermark, the
//! scheduler-pick count at that watermark and an order-independent digest
//! of all mutable machine state. Resuming (`EngineConfig::resume_from`)
//! replays the run from the start and, at the first scheduler-time instant
//! whose `max_vtime` reaches the watermark, compares pick count and state
//! digest — any divergence (changed binary, configuration drift, a
//! nondeterminism bug) aborts with [`crate::SimError::CheckpointMismatch`].
//! A resumed run that verifies is bit-identical to the uninterrupted run by
//! construction, which is exactly the property the determinism suite pins.
//!
//! The on-disk format is a small versioned text file:
//!
//! ```text
//! simany-checkpoint v1
//! config <16-hex config digest>
//! watermark <ticks>
//! picks <scheduler picks>
//! state <16-hex state digest>
//! ```
//!
//! Checkpoints are written at scheduler-time quiescence (deferred publishes
//! are flushed at every token yield), so the digest is well-defined; the
//! file at `checkpoint_path` is atomically replaced (write + rename) each
//! time the watermark crosses a `checkpoint_every` boundary.

use crate::engine::{Failure, Shared, Sim};
use crate::hooks::RuntimeHooks;
use simany_time::{VDuration, VirtualTime};
use std::io::Write as _;
use std::path::Path;

/// Format magic of version 1.
const MAGIC_V1: &str = "simany-checkpoint v1";

/// One verification waypoint (see the module docs for semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Digest of the behavioral configuration (policy, seed, network,
    /// fault plan shape — everything that determines the trajectory;
    /// observation-only knobs like tracing, sanitizing and checkpoint
    /// paths are excluded so a resuming run may differ in them).
    pub config_digest: u64,
    /// Virtual-time watermark: `max_vtime` at the instant the checkpoint
    /// was taken.
    pub watermark: VirtualTime,
    /// Scheduler picks completed at the watermark.
    pub picks: u64,
    /// Digest of all mutable machine state at the watermark.
    pub state_digest: u64,
}

impl Checkpoint {
    /// Serialize to `path`, replacing any previous checkpoint atomically
    /// (write to `path.tmp`, then rename).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{MAGIC_V1}")?;
            writeln!(f, "config {:016x}", self.config_digest)?;
            writeln!(f, "watermark {}", self.watermark.ticks())?;
            writeln!(f, "picks {}", self.picks)?;
            writeln!(f, "state {:016x}", self.state_digest)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load and validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        let mut lines = text.lines();
        let magic = lines.next().unwrap_or_default();
        if magic != MAGIC_V1 {
            return Err(format!(
                "unsupported checkpoint format {magic:?} in {} (expected {MAGIC_V1:?})",
                path.display()
            ));
        }
        let mut field = |name: &str, radix: u32| -> Result<u64, String> {
            let line = lines
                .next()
                .ok_or_else(|| format!("truncated checkpoint {}", path.display()))?;
            let value = line
                .strip_prefix(name)
                .and_then(|r| r.strip_prefix(' '))
                .ok_or_else(|| {
                    format!("malformed checkpoint line {line:?} (expected {name} ...)")
                })?;
            u64::from_str_radix(value.trim(), radix)
                .map_err(|e| format!("bad {name} value {value:?}: {e}"))
        };
        let config_digest = field("config", 16)?;
        let watermark_ticks = field("watermark", 10)?;
        let picks = field("picks", 10)?;
        let state_digest = field("state", 16)?;
        Ok(Checkpoint {
            config_digest,
            watermark: VirtualTime::ZERO + VDuration::from_half_cycles(watermark_ticks),
            picks,
            state_digest,
        })
    }
}

/// Per-run checkpoint/resume bookkeeping, shared by the sequential and
/// parallel scheduler loops. Both loops call [`CheckpointDriver::observe`]
/// once per scheduler-time instant (quiescence: deferred publishes are
/// flushed at every token yield), which performs, in order:
///
/// 1. **resume verification** — the first instant whose `max_vtime`
///    reaches the resume watermark compares pick count and state digest
///    and records a [`Failure::CheckpointMismatch`] on divergence;
/// 2. **checkpoint writes** — every `checkpoint_every` boundary crossing
///    atomically replaces the checkpoint file;
/// 3. **external preemption** — once
///    [`crate::EngineConfig::preempt_after_checkpoints`] fresh-ground
///    checkpoints (watermark strictly beyond the resume watermark) have
///    been written, records a [`Failure::Preempted`]. The strict
///    inequality guarantees each preempt/resume round advances at least
///    one checkpoint interval, so a driver that loops preempt → resume
///    always terminates.
pub(crate) struct CheckpointDriver {
    pending_resume: Option<Checkpoint>,
    resume_watermark: Option<VirtualTime>,
    next_checkpoint: Option<VirtualTime>,
    fresh_written: u64,
    preempt_budget: Option<u64>,
}

impl CheckpointDriver {
    pub(crate) fn new(config: &crate::EngineConfig, resume_target: Option<Checkpoint>) -> Self {
        CheckpointDriver {
            resume_watermark: resume_target.as_ref().map(|cp| cp.watermark),
            pending_resume: resume_target,
            next_checkpoint: config
                .checkpoint_every
                .map(|every| VirtualTime::ZERO + every),
            fresh_written: 0,
            preempt_budget: config.preempt_after_checkpoints,
        }
    }

    /// Run the bookkeeping for the current instant. Returns `false` (after
    /// setting `sim.failure`) when the scheduler loop must stop.
    pub(crate) fn observe(&mut self, sim: &mut Sim, shared: &Shared, cfg_digest: u64) -> bool {
        if self
            .pending_resume
            .as_ref()
            .is_some_and(|cp| sim.max_vtime >= cp.watermark)
        {
            let cp = self.pending_resume.take().unwrap();
            sim.stats.checkpoint_verifications += 1;
            let digest = state_digest(sim, shared.hooks.as_ref());
            if sim.stats.scheduler_picks != cp.picks || digest != cp.state_digest {
                sim.failure = Some(Failure::CheckpointMismatch(format!(
                    "replay diverged at watermark {}: picks {} (checkpoint {}), \
                     state digest {:016x} (checkpoint {:016x})",
                    cp.watermark, sim.stats.scheduler_picks, cp.picks, digest, cp.state_digest
                )));
                return false;
            }
        }
        if self.next_checkpoint.is_some_and(|nc| sim.max_vtime >= nc) {
            let every = shared.config.checkpoint_every.unwrap();
            let mut nc = self.next_checkpoint.unwrap();
            while sim.max_vtime >= nc {
                nc += every;
            }
            self.next_checkpoint = Some(nc);
            let cp = Checkpoint {
                config_digest: cfg_digest,
                watermark: sim.max_vtime,
                picks: sim.stats.scheduler_picks,
                state_digest: state_digest(sim, shared.hooks.as_ref()),
            };
            let path = shared.config.checkpoint_path.as_ref().unwrap();
            match cp.write_to(path) {
                Ok(()) => sim.stats.checkpoints_written += 1,
                Err(e) => {
                    sim.failure = Some(Failure::Checkpoint(format!(
                        "cannot write checkpoint {}: {e}",
                        path.display()
                    )));
                    return false;
                }
            }
            if self.pending_resume.is_none()
                && self.resume_watermark.is_none_or(|w| cp.watermark > w)
            {
                self.fresh_written += 1;
                if self.preempt_budget.is_some_and(|b| self.fresh_written >= b) {
                    sim.failure = Some(Failure::Preempted {
                        at: cp.watermark,
                        checkpoints: self.fresh_written,
                    });
                    return false;
                }
            }
        }
        true
    }

    /// End-of-run check: a resume watermark the program never reached is a
    /// checkpoint error (the checkpoint belongs to a different program or
    /// a longer run).
    pub(crate) fn finish(&mut self, sim: &mut Sim) {
        if let Some(cp) = self.pending_resume.take() {
            sim.failure = Some(Failure::Checkpoint(format!(
                "resume watermark {} never reached (run ended at {})",
                cp.watermark, sim.max_vtime
            )));
        }
    }
}

/// Tiny FNV-1a-style 64-bit folder over little-endian `u64` words. Not
/// cryptographic — it only needs to make accidental divergence visible.
#[derive(Clone, Copy)]
pub(crate) struct Digest(u64);

impl Digest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Digest(Self::OFFSET)
    }

    pub(crate) fn u64(&mut self, x: u64) -> &mut Self {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    pub(crate) fn str(&mut self, s: &str) -> &mut Self {
        for &b in s.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self.u64(s.len() as u64)
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest of everything that determines the run's trajectory: sync/pick
/// policy, seed, cost model, speeds, network parameters, runtime cost
/// knobs and the fault plan shape. Deliberately excludes observation-only
/// configuration (tracer, sanitize, watchdog, checkpoint/resume paths):
/// those may legitimately differ between the writing and the resuming run.
pub fn config_digest(config: &crate::EngineConfig) -> u64 {
    let mut d = Digest::new();
    d.str(&format!("{:?}", config.sync));
    d.str(&format!("{:?}", config.pick));
    d.u64(config.seed);
    d.str(&format!("{:?}", config.cost_model));
    d.str(&format!("{:?}", config.speeds));
    d.str(&format!("{:?}", config.net));
    d.u64(config.resume_cost.ticks());
    d.u64(config.max_live_activities as u64);
    d.u64(config.parallelism_sample_every);
    d.u64(u64::from(config.fast_path));
    // Ready-heap compaction perturbs pick order, so a resume must replay
    // under the same setting. Folded only when on, so default-off digests
    // match checkpoints written before the knob existed. (`profile_picks`
    // is observation-only and deliberately excluded.)
    if config.compact_ready {
        d.str("compact_ready");
    }
    // Parallel host execution is its own deterministic trajectory per
    // thread count, so checkpoints resume only under a matching `threads`.
    // Folded only when parallel so sequential digests match pre-parallel
    // checkpoints.
    if config.threads > 1 {
        d.str("threads");
        d.u64(u64::from(config.threads));
    }
    match &config.fault {
        None => {
            d.str("fault:none");
        }
        Some(p) => {
            d.str("fault:plan");
            d.u64(u64::from(p.n_cores()));
            d.u64(p.epoch_count() as u64);
            d.u64(u64::from(p.has_message_faults()));
            d.u64(u64::from(p.has_core_faults()));
        }
    };
    d.finish()
}

/// Order-independent digest of all mutable machine state at a
/// scheduler-time instant: per-core clocks and queues, activity/birth
/// counters, behavioral statistics, the network model and whatever the
/// runtime exposes via [`RuntimeHooks::state_digest`]. Wall-clock and
/// observation-only counters (sanitizer, checkpoint bookkeeping) are
/// excluded so sanitized and plain runs digest identically.
pub(crate) fn state_digest(sim: &Sim, hooks: &dyn RuntimeHooks) -> u64 {
    let mut d = Digest::new();
    d.u64(sim.cores.len() as u64);
    for i in 0..sim.cores.len() {
        // Field order is part of the on-disk contract: it must match the
        // pre-SoA per-core digest exactly. Arena slot indices never enter
        // the digest — only lengths, times and ids — so pooled storage and
        // slot reuse are invisible here.
        let c = simany_topology::CoreId(i as u32);
        d.u64(sim.cores.vtime[i].ticks());
        d.u64(sim.cores.published[i].ticks());
        d.u64(sim.cores.busy[i].ticks());
        d.u64(u64::from(sim.cores.lock_depth[i]));
        d.u64(u64::from(sim.cores.queue_hint[i]));
        d.u64(u64::from(sim.cores.resident[i]));
        d.u64(sim.cores.inboxes.len(c) as u64);
        d.u64(
            sim.cores
                .inboxes
                .earliest_arrival(c)
                .map_or(0, |a| a.ticks()),
        );
        d.u64(sim.cores.birth_count(i) as u64);
        d.u64(sim.cores.min_birth(i).map_or(0, |b| b.ticks()));
    }
    d.u64(sim.live_activities as u64);
    d.u64(sim.next_act);
    d.u64(sim.next_birth);
    d.u64(sim.max_vtime.ticks());
    let s = &sim.stats;
    // Hot-path counters are sharded per tile in parallel mode and only
    // merged at teardown; digest the machine-wide totals so sequential and
    // parallel digests mean the same thing (for `threads <= 1` the shard
    // vector is empty and the totals are the plain counters).
    let mut fast_path_advances = s.fast_path_advances;
    let mut full_sync_checks = s.full_sync_checks;
    let mut floor_recomputes = s.floor_recomputes;
    let mut max_neighbor_drift = s.max_neighbor_drift;
    for shard in &sim.tile_stats {
        fast_path_advances += shard.fast_path_advances;
        full_sync_checks += shard.full_sync_checks;
        floor_recomputes += shard.floor_recomputes;
        max_neighbor_drift = max_neighbor_drift.max(shard.max_neighbor_drift);
    }
    for x in [
        s.activities_started,
        s.activity_resumes,
        s.stall_events,
        s.late_messages,
        s.on_time_messages,
        s.late_by_total.ticks(),
        fast_path_advances,
        full_sync_checks,
        s.publish_sweeps,
        floor_recomputes,
        s.msg_retries,
        s.core_failures,
        s.link_faults,
        s.partitions_observed,
        max_neighbor_drift.ticks(),
        s.parallelism_samples.len() as u64,
        s.parallelism_samples.iter().map(|&x| u64::from(x)).sum(),
    ] {
        d.u64(x);
    }
    d.u64(sim.net.state_digest());
    d.u64(hooks.state_digest());
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("simany-checkpoint-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.txt");
        let cp = Checkpoint {
            config_digest: 0xdead_beef_0123_4567,
            watermark: VirtualTime::from_cycles(12_345),
            picks: 678,
            state_digest: 0x0fed_cba9_8765_4321,
        };
        cp.write_to(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
    }

    #[test]
    fn rejects_bad_magic() {
        let dir = std::env::temp_dir().join("simany-checkpoint-badmagic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.txt");
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.contains("unsupported checkpoint format"), "{err}");
    }

    #[test]
    fn config_digest_ignores_observation_knobs() {
        let base = crate::EngineConfig::default();
        let observed = crate::EngineConfig::default()
            .with_sanitize(true)
            .with_watchdog_picks(Some(42))
            .with_checkpoint(VDuration::from_cycles(1000), "/tmp/cp.txt");
        assert_eq!(config_digest(&base), config_digest(&observed));
        let other_seed = crate::EngineConfig::default().with_seed(99);
        assert_ne!(config_digest(&base), config_digest(&other_seed));
    }
}
