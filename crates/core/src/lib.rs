#![warn(missing_docs)]

//! # simany-core — the SiMany discrete-event engine
//!
//! This crate is the paper's primary contribution: a discrete-event
//! simulator for many-core architectures whose virtual clocks are kept
//! approximately coherent by **spatial synchronization** (paper §II):
//!
//! > "Cores are allowed to advance to different virtual times, but they are
//! > not allowed to drift from their neighbors by more than T."
//!
//! ## Execution model
//!
//! The simulator runs a *program* — a set of dynamically created tasks
//! written as ordinary Rust closures — on `n` simulated cores. Exactly one
//! simulated entity executes at any instant (the paper runs in "a single
//! system process and uses non-preemptive userland scheduling"); here a run
//! token is handed between the scheduler and pooled worker threads under a
//! single mutex, which keeps the simulation deterministic and data-race
//! free while letting task bodies be ordinary (even recursive) native code.
//!
//! Between interaction points task code runs natively at host speed;
//! virtual time advances only through timing annotations
//! ([`ExecCtx::compute`]) and simulator-computed communication delays.
//!
//! ## Synchronization policies
//!
//! [`SyncPolicy::Spatial`] is the paper's contribution; the crate also
//! implements the schemes the paper compares against (global bounded slack
//! à la SlackSim, random-referee à la Graphite's LaxP2P, conservative
//! global order, and free-running) so that the accuracy/speed trade-off can
//! be measured within one code base.
//!
//! ## Layering
//!
//! The engine knows nothing about tasks' protocol (probes, joins, locks,
//! data cells): that lives in `simany-runtime`, which implements the
//! [`RuntimeHooks`] trait. The engine provides cores, clocks, drift
//! control, message transport and activity scheduling.

pub mod activity;
pub mod checkpoint;
pub mod config;
pub mod ctx;
pub mod engine;
pub mod floor;
pub(crate) mod frame;
pub mod hooks;
pub mod ops;
pub(crate) mod parallel;
pub mod ready;
pub mod sanitizer;
pub mod state;
pub mod stats;
pub mod sync;
pub mod trace;

pub use activity::{ActivityId, ActivityMeta};
pub use checkpoint::{config_digest, Checkpoint};
pub use config::{EngineConfig, PickPolicy, SyncPolicy};
pub use ctx::ExecCtx;
pub use engine::{simulate, SimError, SimResult};
pub use hooks::RuntimeHooks;
pub use ops::{Ops, SendFate};
pub use state::BirthId;
pub use stats::SimStats;
pub use trace::{MemoryTracer, TraceEvent, Tracer};

// Re-export the vocabulary types users constantly need together with the
// engine.
pub use simany_fault::{FaultConfig, FaultPlan, FaultPlanBuilder};
pub use simany_net::{Envelope, Payload};
pub use simany_time::{BlockCost, CoreSpeed, CostModel, VDuration, VirtualTime};
pub use simany_topology::{CoreId, Topology};
