//! The scheduler's ready queue.
//!
//! Holds the cores that currently have work the scheduler could perform
//! (a message to process, a grantable activity, or queued tasks). Three
//! interchangeable pick policies; all deterministic for a fixed seed.

use crate::config::PickPolicy;
use simany_time::{VirtualTime, Xoshiro256StarStar};
use simany_topology::CoreId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Ready queue with pluggable pick policy.
///
/// Entries may be stale (a core's published time moves after insertion; a
/// core may stop being ready). Callers must guard with the per-core
/// `in_ready` flag and re-validate on pop; the queue itself only orders.
pub enum ReadyQueue {
    /// Lazy min-heap on (published time at push, tie-break key, core id).
    /// The tie-break key defaults to the core id; parallel mode installs a
    /// tile-interleaved rank (see [`ReadyQueue::set_tiebreak_ranks`]) so
    /// that equal-time cores pop alternating tiles instead of sweeping one
    /// contiguous tile end to end.
    LowestVtime(
        BinaryHeap<Reverse<(VirtualTime, u32, u32)>>,
        Option<Vec<u32>>,
    ),
    /// FIFO rotation.
    RoundRobin(VecDeque<CoreId>),
    /// Seeded random pick.
    Random(Vec<CoreId>, Xoshiro256StarStar),
}

impl ReadyQueue {
    /// Create a queue for the given policy.
    pub fn new(policy: PickPolicy, seed: u64) -> Self {
        match policy {
            PickPolicy::LowestVtime => ReadyQueue::LowestVtime(BinaryHeap::new(), None),
            PickPolicy::RoundRobin => ReadyQueue::RoundRobin(VecDeque::new()),
            PickPolicy::Random => {
                ReadyQueue::Random(Vec::new(), Xoshiro256StarStar::stream(seed, 0xEAD7))
            }
        }
    }

    /// Install a custom equal-time tie-break order: `ranks[core]` replaces
    /// the core id as the secondary heap key. Parallel mode passes
    /// tile-interleaved ranks so the epoch collector finds one core per
    /// tile in O(tiles) pops even when a whole vtime wavefront is tied —
    /// with contiguous tiles and id tie-breaks it would pop an entire
    /// tile before seeing the next one. No-op for other pick policies.
    pub fn set_tiebreak_ranks(&mut self, ranks: Vec<u32>) {
        if let ReadyQueue::LowestVtime(h, r) = self {
            debug_assert!(h.is_empty(), "tie-break ranks installed after pushes");
            *r = Some(ranks);
        }
    }

    /// Insert a core with its current published time as priority.
    ///
    /// For `LowestVtime`, pop order over distinct `(time, rank, id)` keys
    /// is a pure function of the key *set* — insertion order cannot leak
    /// into it. The parallel engine's sharded phase B leans on this: it
    /// replays deliveries bucketed by destination tile, and although the
    /// ready pushes themselves happen on the serial walk in a fixed
    /// (source tile, outbox index) order, the insensitivity means the
    /// bucketing could not perturb scheduling even if that order changed.
    /// `RoundRobin` is FIFO by definition (push order *is* the contract),
    /// and `Random` draws from the seeded stream in pop order, so both
    /// stay deterministic under the same fixed push sequence.
    pub fn push(&mut self, core: CoreId, published: VirtualTime) {
        match self {
            ReadyQueue::LowestVtime(h, ranks) => {
                let key = ranks.as_ref().map_or(core.0, |r| r[core.index()]);
                h.push(Reverse((published, key, core.0)))
            }
            ReadyQueue::RoundRobin(q) => q.push_back(core),
            ReadyQueue::Random(v, _) => v.push(core),
        }
    }

    /// Remove and return the next core per the policy.
    pub fn pop(&mut self) -> Option<CoreId> {
        match self {
            ReadyQueue::LowestVtime(h, _) => h.pop().map(|Reverse((_, _, c))| CoreId(c)),
            ReadyQueue::RoundRobin(q) => q.pop_front(),
            ReadyQueue::Random(v, rng) => {
                if v.is_empty() {
                    None
                } else {
                    let i = rng.next_index(v.len());
                    Some(v.swap_remove(i))
                }
            }
        }
    }

    /// True iff no entries remain.
    pub fn is_empty(&self) -> bool {
        match self {
            ReadyQueue::LowestVtime(h, _) => h.is_empty(),
            ReadyQueue::RoundRobin(q) => q.is_empty(),
            ReadyQueue::Random(v, _) => v.is_empty(),
        }
    }

    /// Number of entries (including possibly stale duplicates).
    pub fn len(&self) -> usize {
        match self {
            ReadyQueue::LowestVtime(h, _) => h.len(),
            ReadyQueue::RoundRobin(q) => q.len(),
            ReadyQueue::Random(v, _) => v.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> VirtualTime {
        VirtualTime::from_cycles(c)
    }

    #[test]
    fn lowest_vtime_orders_by_time() {
        let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
        q.push(CoreId(0), t(30));
        q.push(CoreId(1), t(10));
        q.push(CoreId(2), t(20));
        assert_eq!(q.pop(), Some(CoreId(1)));
        assert_eq!(q.pop(), Some(CoreId(2)));
        assert_eq!(q.pop(), Some(CoreId(0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn lowest_vtime_ties_break_by_core_id() {
        let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
        q.push(CoreId(5), t(10));
        q.push(CoreId(3), t(10));
        assert_eq!(q.pop(), Some(CoreId(3)));
        assert_eq!(q.pop(), Some(CoreId(5)));
    }

    #[test]
    fn tiebreak_ranks_interleave_ties() {
        let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
        // Two "tiles" {0,1} and {2,3}: ranks 0,2,1,3 alternate them.
        q.set_tiebreak_ranks(vec![0, 2, 1, 3]);
        for c in 0..4 {
            q.push(CoreId(c), t(10));
        }
        assert_eq!(q.pop(), Some(CoreId(0)));
        assert_eq!(q.pop(), Some(CoreId(2)));
        assert_eq!(q.pop(), Some(CoreId(1)));
        assert_eq!(q.pop(), Some(CoreId(3)));
        // Time still dominates the rank.
        q.push(CoreId(3), t(5));
        q.push(CoreId(0), t(6));
        assert_eq!(q.pop(), Some(CoreId(3)));
        assert_eq!(q.pop(), Some(CoreId(0)));
    }

    #[test]
    fn pop_order_is_insertion_order_insensitive_for_distinct_keys() {
        // The sharded phase-B contract (see `push`): any permutation of
        // the same distinct (time, rank, id) entries pops identically.
        let entries: Vec<(u32, u64)> = (0..12u32).map(|c| (c, 7 + u64::from(c * c % 13))).collect();
        let pop_all = |order: &[usize]| {
            let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
            q.set_tiebreak_ranks((0..12u32).rev().collect());
            for &i in order {
                let (c, at) = entries[i];
                q.push(CoreId(c), t(at));
            }
            let mut out = Vec::new();
            while let Some(c) = q.pop() {
                out.push(c.0);
            }
            out
        };
        let forward: Vec<usize> = (0..12).collect();
        let reverse: Vec<usize> = (0..12).rev().collect();
        let shuffled: Vec<usize> = (0..12).map(|i| (i * 5) % 12).collect();
        let a = pop_all(&forward);
        assert_eq!(a, pop_all(&reverse));
        assert_eq!(a, pop_all(&shuffled));
    }

    #[test]
    fn round_robin_fifo() {
        let mut q = ReadyQueue::new(PickPolicy::RoundRobin, 0);
        q.push(CoreId(2), t(99));
        q.push(CoreId(1), t(1));
        assert_eq!(q.pop(), Some(CoreId(2)));
        assert_eq!(q.pop(), Some(CoreId(1)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut q = ReadyQueue::new(PickPolicy::Random, seed);
            for i in 0..10 {
                q.push(CoreId(i), t(0));
            }
            let mut order = Vec::new();
            while let Some(c) = q.pop() {
                order.push(c.0);
            }
            order
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn len_and_empty() {
        let mut q = ReadyQueue::new(PickPolicy::RoundRobin, 0);
        assert!(q.is_empty());
        q.push(CoreId(0), t(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
