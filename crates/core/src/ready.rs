//! The scheduler's ready queue.
//!
//! Holds the cores that currently have work the scheduler could perform
//! (a message to process, a grantable activity, or queued tasks). Three
//! interchangeable pick policies; all deterministic for a fixed seed.

use crate::config::PickPolicy;
use simany_time::{VirtualTime, Xoshiro256StarStar};
use simany_topology::CoreId;
use std::collections::VecDeque;

/// Heap arity for [`VtimeHeap`]. A binary heap over a million entries is
/// ~20 levels of pointer-chasing through a multi-megabyte array — every
/// level a cache miss on the pop's sift-down. With 8 children per node the
/// tree is 2.5x shallower and each level's candidate set is two adjacent
/// cache lines, so a pop touches ~7 contiguous groups instead of ~40
/// scattered nodes. Pop order is arity-independent (always the key-order
/// minimum), so this is a pure locality change.
const D: usize = 8;

/// Compaction floor: never compact heaps smaller than this (the rebuild
/// would cost more than the staleness).
const COMPACT_MIN: usize = 64;

/// Compaction trigger: compact when at least 1 in `COMPACT_RATIO` entries
/// belongs to an unqueued core. (2 = garbage majority.)
const COMPACT_RATIO: usize = 2;

/// Implicit `D`-ary min-heap of `(time, tie-break rank, core id)` with
/// per-core entry accounting.
///
/// The heap orders *entries*, not cores: a core can legitimately appear
/// more than once (a message delivery re-pushes a queued core at a raised
/// priority, and the earlier entries stay — see `engine::deliver`). Those
/// extra entries are not inert: when one surfaces, the engine re-validates
/// the core and may pick it at that entry's priority. Compaction therefore
/// only ever drops entries of cores that are *not queued* (`in_ready`
/// false) — entries that can only fire in the narrow window after the core
/// is re-queued, which the engine's pop-revalidation already treats as
/// opportunistic.
pub struct VtimeHeap {
    /// The entry array, heap-ordered by `(time, rank, core)`.
    heap: Vec<(VirtualTime, u32, u32)>,
    /// Optional tie-break rank per core (see
    /// [`ReadyQueue::set_tiebreak_ranks`]); `None` = core id.
    ranks: Option<Vec<u32>>,
    /// Entries currently in `heap` per core (lazily grown).
    qcount: Vec<u32>,
    /// Number of distinct cores with at least one entry.
    live: usize,
    /// `maybe_compact` calls since the last garbage scan (amortization
    /// counter: the O(len) scan runs at most once per len/2 calls).
    since_check: u64,
    /// Entries dropped by compaction over the queue's lifetime.
    dropped: u64,
    /// Compaction passes run.
    compactions: u64,
}

impl VtimeHeap {
    fn new() -> Self {
        VtimeHeap {
            heap: Vec::new(),
            ranks: None,
            qcount: Vec::new(),
            live: 0,
            since_check: 0,
            dropped: 0,
            compactions: 0,
        }
    }

    fn rank_of(&self, core: u32) -> u32 {
        self.ranks.as_ref().map_or(core, |r| r[core as usize])
    }

    fn count_push(&mut self, core: u32) {
        let i = core as usize;
        if i >= self.qcount.len() {
            self.qcount.resize(i + 1, 0);
        }
        if self.qcount[i] == 0 {
            self.live += 1;
        }
        self.qcount[i] += 1;
    }

    fn count_pop(&mut self, core: u32) {
        let i = core as usize;
        debug_assert!(self.qcount[i] > 0, "pop of uncounted core {core}");
        self.qcount[i] -= 1;
        if self.qcount[i] == 0 {
            self.live -= 1;
        }
    }

    fn push(&mut self, core: u32, at: VirtualTime) {
        let entry = (at, self.rank_of(core), core);
        self.count_push(core);
        self.heap.push(entry);
        self.sift_up(self.heap.len() - 1);
    }

    fn pop(&mut self) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let (_, _, core) = self.heap.pop().expect("non-empty heap");
        self.sift_down(0);
        self.count_pop(core);
        Some(core)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let p = (i - 1) / D;
            if self.heap[i] < self.heap[p] {
                self.heap.swap(i, p);
                i = p;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first = i * D + 1;
            if first >= len {
                break;
            }
            let last = (first + D).min(len);
            let mut m = first;
            for j in first + 1..last {
                if self.heap[j] < self.heap[m] {
                    m = j;
                }
            }
            if self.heap[m] < self.heap[i] {
                self.heap.swap(i, m);
                i = m;
            } else {
                break;
            }
        }
    }

    /// Drop the entries of cores for which `keep(core)` is false and
    /// re-heapify. The retained entry multiset pops in the same relative
    /// order as before (pop order is a pure function of the key multiset),
    /// and the trigger below depends only on deterministic queue state, so
    /// compaction can never perturb a run's schedule beyond the dropped
    /// entries themselves.
    fn compact(&mut self, keep: impl Fn(u32) -> bool) {
        let before = self.heap.len();
        self.heap.retain(|&(_, _, c)| keep(c));
        self.dropped += (before - self.heap.len()) as u64;
        self.compactions += 1;
        // Recount per-core entries.
        for q in &mut self.qcount {
            *q = 0;
        }
        self.live = 0;
        for i in 0..self.heap.len() {
            let c = self.heap[i].2;
            self.count_push(c);
        }
        // Floyd heapify: sift down every internal node, deepest first.
        let len = self.heap.len();
        if len > 1 {
            let last_parent = (len - 2) / D;
            for i in (0..=last_parent).rev() {
                self.sift_down(i);
            }
        }
    }
}

/// Ready queue with pluggable pick policy.
///
/// Entries may be stale (a core's published time moves after insertion; a
/// core may stop being ready). Callers must guard with the per-core
/// `in_ready` flag and re-validate on pop; the queue itself only orders.
pub enum ReadyQueue {
    /// Lazy min-heap on (published time at push, tie-break key, core id).
    /// The tie-break key defaults to the core id; parallel mode installs a
    /// tile-interleaved rank (see [`ReadyQueue::set_tiebreak_ranks`]) so
    /// that equal-time cores pop alternating tiles instead of sweeping one
    /// contiguous tile end to end.
    LowestVtime(VtimeHeap),
    /// FIFO rotation.
    RoundRobin(VecDeque<CoreId>),
    /// Seeded random pick.
    Random(Vec<CoreId>, Xoshiro256StarStar),
}

impl ReadyQueue {
    /// Create a queue for the given policy.
    pub fn new(policy: PickPolicy, seed: u64) -> Self {
        match policy {
            PickPolicy::LowestVtime => ReadyQueue::LowestVtime(VtimeHeap::new()),
            PickPolicy::RoundRobin => ReadyQueue::RoundRobin(VecDeque::new()),
            PickPolicy::Random => {
                ReadyQueue::Random(Vec::new(), Xoshiro256StarStar::stream(seed, 0xEAD7))
            }
        }
    }

    /// Install a custom equal-time tie-break order: `ranks[core]` replaces
    /// the core id as the secondary heap key. Parallel mode passes
    /// tile-interleaved ranks so the epoch collector finds one core per
    /// tile in O(tiles) pops even when a whole vtime wavefront is tied —
    /// with contiguous tiles and id tie-breaks it would pop an entire
    /// tile before seeing the next one. No-op for other pick policies.
    pub fn set_tiebreak_ranks(&mut self, ranks: Vec<u32>) {
        if let ReadyQueue::LowestVtime(h) = self {
            debug_assert!(h.heap.is_empty(), "tie-break ranks installed after pushes");
            h.ranks = Some(ranks);
        }
    }

    /// Insert a core with its current published time as priority.
    ///
    /// For `LowestVtime`, pop order over distinct `(time, rank, id)` keys
    /// is a pure function of the key *set* — insertion order cannot leak
    /// into it. The parallel engine's sharded phase B leans on this: it
    /// replays deliveries bucketed by destination tile, and although the
    /// ready pushes themselves happen on the serial walk in a fixed
    /// (source tile, outbox index) order, the insensitivity means the
    /// bucketing could not perturb scheduling even if that order changed.
    /// `RoundRobin` is FIFO by definition (push order *is* the contract),
    /// and `Random` draws from the seeded stream in pop order, so both
    /// stay deterministic under the same fixed push sequence.
    pub fn push(&mut self, core: CoreId, published: VirtualTime) {
        match self {
            ReadyQueue::LowestVtime(h) => h.push(core.0, published),
            ReadyQueue::RoundRobin(q) => q.push_back(core),
            ReadyQueue::Random(v, _) => v.push(core),
        }
    }

    /// Remove and return the next core per the policy.
    pub fn pop(&mut self) -> Option<CoreId> {
        match self {
            ReadyQueue::LowestVtime(h) => h.pop().map(CoreId),
            ReadyQueue::RoundRobin(q) => q.pop_front(),
            ReadyQueue::Random(v, rng) => {
                if v.is_empty() {
                    None
                } else {
                    let i = rng.next_index(v.len());
                    Some(v.swap_remove(i))
                }
            }
        }
    }

    /// True iff no entries remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw number of *entries*, including stale duplicates — a core
    /// re-pushed at a raised priority contributes several. Diagnostics
    /// that want "how many cores are queued" should use
    /// [`Self::live_len`]; this raw count only bounds memory.
    pub fn len(&self) -> usize {
        match self {
            ReadyQueue::LowestVtime(h) => h.heap.len(),
            ReadyQueue::RoundRobin(q) => q.len(),
            ReadyQueue::Random(v, _) => v.len(),
        }
    }

    /// Number of *distinct cores* with at least one queued entry — the
    /// honest "ready cores" figure for deadlock/diagnostic reports, which
    /// [`Self::len`] over-reports whenever raised-priority duplicates are
    /// in flight. O(1): maintained incrementally.
    pub fn live_len(&self) -> usize {
        match self {
            ReadyQueue::LowestVtime(h) => h.live,
            // The other policies get a duplicate only via the same
            // delivery raise; they are niche enough that the raw length
            // stands in (a VecDeque scan would be O(n)).
            ReadyQueue::RoundRobin(q) => q.len(),
            ReadyQueue::Random(v, _) => v.len(),
        }
    }

    /// Entries dropped by stale-entry compaction so far.
    pub fn compaction_dropped(&self) -> u64 {
        match self {
            ReadyQueue::LowestVtime(h) => h.dropped,
            _ => 0,
        }
    }

    /// Compaction passes run so far.
    pub fn compactions(&self) -> u64 {
        match self {
            ReadyQueue::LowestVtime(h) => h.compactions,
            _ => 0,
        }
    }

    /// Stale-fraction-triggered compaction: when most entries belong to
    /// cores that are no longer queued (`in_ready` false), drop those
    /// entries and re-heapify. Entries of queued cores — including
    /// raised-priority duplicates — are always retained, because the
    /// engine's pop-revalidation can legitimately act on them. The
    /// trigger — entry count ≥ [`COMPACT_MIN`], a garbage scan at most
    /// once per `len/2` calls (amortized O(1)), and garbage ≥ `1 /
    /// COMPACT_RATIO` of the entries — is a deterministic function of
    /// queue state and call count, so a fixed (seed, threads) run
    /// compacts at exactly the same picks every time.
    ///
    /// **Compaction perturbs the schedule.** A garbage entry of an
    /// unqueued core is not inert: if the core becomes ready again at a
    /// *worse* priority, the old entry pops first and the engine
    /// legitimately acts on it early. Dropping such entries therefore
    /// selects a different (equally valid, still deterministic)
    /// interleaving. That is why the engine only calls this under the
    /// opt-in [`crate::EngineConfig::compact_ready`] — runs that must be
    /// schedule-identical to prior releases keep it off.
    pub fn maybe_compact(&mut self, in_ready: &[bool]) -> bool {
        let ReadyQueue::LowestVtime(h) = self else {
            return false;
        };
        h.since_check += 1;
        if h.heap.len() < COMPACT_MIN || h.since_check < (h.heap.len() / 2) as u64 {
            return false;
        }
        // Amortized garbage scan: O(len) once per len/2 calls.
        h.since_check = 0;
        let garbage = h
            .heap
            .iter()
            .filter(|&&(_, _, c)| !in_ready[c as usize])
            .count();
        if garbage * COMPACT_RATIO < h.heap.len() {
            return false;
        }
        h.compact(|c| in_ready[c as usize]);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> VirtualTime {
        VirtualTime::from_cycles(c)
    }

    #[test]
    fn lowest_vtime_orders_by_time() {
        let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
        q.push(CoreId(0), t(30));
        q.push(CoreId(1), t(10));
        q.push(CoreId(2), t(20));
        assert_eq!(q.pop(), Some(CoreId(1)));
        assert_eq!(q.pop(), Some(CoreId(2)));
        assert_eq!(q.pop(), Some(CoreId(0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn lowest_vtime_ties_break_by_core_id() {
        let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
        q.push(CoreId(5), t(10));
        q.push(CoreId(3), t(10));
        assert_eq!(q.pop(), Some(CoreId(3)));
        assert_eq!(q.pop(), Some(CoreId(5)));
    }

    #[test]
    fn octonary_heap_matches_sorted_order_on_random_keys() {
        // Pop order must equal full sort order of the key multiset for any
        // arity — this is what makes the 8-ary layout a pure locality
        // change relative to the old binary heap.
        let mut rng = Xoshiro256StarStar::stream(99, 1);
        let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
        let mut keys: Vec<(u64, u32)> = Vec::new();
        for c in 0..500u32 {
            let at = rng.next_index(10_000) as u64;
            keys.push((at, c));
            q.push(CoreId(c), t(at));
        }
        keys.sort_unstable();
        let expect: Vec<u32> = keys.into_iter().map(|(_, c)| c).collect();
        let mut got = Vec::new();
        while let Some(c) = q.pop() {
            got.push(c.0);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn tiebreak_ranks_interleave_ties() {
        let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
        // Two "tiles" {0,1} and {2,3}: ranks 0,2,1,3 alternate them.
        q.set_tiebreak_ranks(vec![0, 2, 1, 3]);
        for c in 0..4 {
            q.push(CoreId(c), t(10));
        }
        assert_eq!(q.pop(), Some(CoreId(0)));
        assert_eq!(q.pop(), Some(CoreId(2)));
        assert_eq!(q.pop(), Some(CoreId(1)));
        assert_eq!(q.pop(), Some(CoreId(3)));
        // Time still dominates the rank.
        q.push(CoreId(3), t(5));
        q.push(CoreId(0), t(6));
        assert_eq!(q.pop(), Some(CoreId(3)));
        assert_eq!(q.pop(), Some(CoreId(0)));
    }

    #[test]
    fn pop_order_is_insertion_order_insensitive_for_distinct_keys() {
        // The sharded phase-B contract (see `push`): any permutation of
        // the same distinct (time, rank, id) entries pops identically.
        let entries: Vec<(u32, u64)> = (0..12u32).map(|c| (c, 7 + u64::from(c * c % 13))).collect();
        let pop_all = |order: &[usize]| {
            let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
            q.set_tiebreak_ranks((0..12u32).rev().collect());
            for &i in order {
                let (c, at) = entries[i];
                q.push(CoreId(c), t(at));
            }
            let mut out = Vec::new();
            while let Some(c) = q.pop() {
                out.push(c.0);
            }
            out
        };
        let forward: Vec<usize> = (0..12).collect();
        let reverse: Vec<usize> = (0..12).rev().collect();
        let shuffled: Vec<usize> = (0..12).map(|i| (i * 5) % 12).collect();
        let a = pop_all(&forward);
        assert_eq!(a, pop_all(&reverse));
        assert_eq!(a, pop_all(&shuffled));
    }

    #[test]
    fn live_len_counts_distinct_cores() {
        let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
        q.push(CoreId(1), t(10));
        q.push(CoreId(2), t(20));
        // Priority raise: same core queued again at an earlier time.
        q.push(CoreId(1), t(5));
        assert_eq!(q.len(), 3, "raw length counts duplicates");
        assert_eq!(q.live_len(), 2, "live length counts distinct cores");
        assert_eq!(q.pop(), Some(CoreId(1)), "raised entry (t=5) first");
        assert_eq!(q.live_len(), 2, "core 1 still has its stale entry");
        assert_eq!(q.pop(), Some(CoreId(1)), "stale entry (t=10) next");
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop(), Some(CoreId(2)));
        assert_eq!(q.live_len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_drops_only_unqueued_cores() {
        let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
        let n = 256u32;
        let mut in_ready = vec![false; n as usize];
        for c in 0..n {
            q.push(CoreId(c), t(u64::from(c)));
        }
        // Half the cores "leave" the queue logically (popped elsewhere in
        // a real run); mark only even cores still queued.
        for c in 0..n {
            in_ready[c as usize] = c % 2 == 0;
        }
        // The garbage scan is amortized: it needs up to len/2 calls
        // before it runs, then the garbage-majority heap compacts.
        let compacted = (0..=n).any(|_| q.maybe_compact(&in_ready));
        assert!(compacted, "garbage-dominated heap compacts");
        assert_eq!(q.len(), 128);
        assert_eq!(q.live_len(), 128);
        assert_eq!(q.compaction_dropped(), 128);
        assert_eq!(q.compactions(), 1);
        // Survivors still pop in exact key order.
        let mut prev = None;
        while let Some(c) = q.pop() {
            assert_eq!(c.0 % 2, 0, "only queued cores survive");
            if let Some(p) = prev {
                assert!(c.0 > p, "pop order preserved after compaction");
            }
            prev = Some(c.0);
        }
    }

    #[test]
    fn compaction_trigger_respects_floor_and_ratio() {
        let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
        let in_ready = vec![false; 64];
        for c in 0..32u32 {
            q.push(CoreId(c), t(u64::from(c)));
        }
        for _ in 0..1000 {
            assert!(!q.maybe_compact(&in_ready), "below the size floor");
        }
        assert_eq!(q.len(), 32);
        let mut q = ReadyQueue::new(PickPolicy::LowestVtime, 0);
        let in_ready = vec![true; 256];
        for c in 0..256u32 {
            q.push(CoreId(c), t(u64::from(c)));
        }
        for _ in 0..1000 {
            assert!(!q.maybe_compact(&in_ready), "all-live heap never compacts");
        }
        assert_eq!(q.len(), 256);
    }

    #[test]
    fn round_robin_fifo() {
        let mut q = ReadyQueue::new(PickPolicy::RoundRobin, 0);
        q.push(CoreId(2), t(99));
        q.push(CoreId(1), t(1));
        assert_eq!(q.pop(), Some(CoreId(2)));
        assert_eq!(q.pop(), Some(CoreId(1)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut q = ReadyQueue::new(PickPolicy::Random, seed);
            for i in 0..10 {
                q.push(CoreId(i), t(0));
            }
            let mut order = Vec::new();
            while let Some(c) = q.pop() {
                order.push(c.0);
            }
            order
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn len_and_empty() {
        let mut q = ReadyQueue::new(PickPolicy::RoundRobin, 0);
        assert!(q.is_empty());
        q.push(CoreId(0), t(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
