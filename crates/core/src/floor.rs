//! Incrementally-maintained global virtual-time floor.
//!
//! The global synchronization policies (`BoundedSlack`, `Conservative`)
//! need the machine-wide floor — the minimum over every working core's
//! published clock and every pending birth time — up to twice per
//! `sync_ok`. Recomputing it is an O(cores) sweep (`sync::global_floor`'s
//! historical behavior), which at a million cores puts a full-machine scan
//! on the per-event path.
//!
//! [`GlobalFloor`] replaces the sweep with a tile-level tournament tree: a
//! reduction pyramid over one key per core with branching factor
//! [`FANOUT`]. Each key is that core's floor contribution
//! (`min(published-if-working, earliest pending birth)`, `MAX` if
//! neither); level 0 holds the minimum of each 64-key block, level 1 the
//! minimum of each 64-block group, and so on to a single root. An update
//! recomputes at most one contiguous 64-entry block per level — a couple
//! of cache lines each, O(fanout · log_fanout n) worst case with an early
//! exit as soon as a level's block minimum is unchanged — and a floor
//! query is an O(1) root read.
//!
//! The structure changes *cost*, never *order*: it answers exactly the
//! same value the naive sweep would (debug builds assert this on every
//! query — see `sync::global_floor`), so schedules are bit-identical with
//! and without it.

use simany_time::VirtualTime;

/// Reduction fanout. 64 keys = 512 bytes = 8 cache lines per block scan;
/// a million cores need just 4 levels (1M → 16k → 256 → 4 → 1).
const FANOUT: usize = 64;

/// Tournament tree over per-core floor keys. See the module docs.
pub struct GlobalFloor {
    /// Per-core floor contribution; `VirtualTime::MAX` when the core is
    /// idle with no pending births.
    keys: Vec<VirtualTime>,
    /// Reduction pyramid: `levels[0][b]` is the min of key block `b`,
    /// `levels[k][b]` the min of block `b` of `levels[k-1]`, and the last
    /// level has exactly one entry — the global floor.
    levels: Vec<Vec<VirtualTime>>,
    /// Keys updated over the structure's lifetime (diagnostic).
    updates: u64,
}

impl GlobalFloor {
    /// Build the structure for `n` cores, all initially contributing
    /// nothing (`MAX` keys — an idle machine with no births).
    pub fn new(n: usize) -> Self {
        let keys = vec![VirtualTime::MAX; n];
        let mut levels = Vec::new();
        let mut len = n;
        loop {
            len = len.div_ceil(FANOUT).max(1);
            levels.push(vec![VirtualTime::MAX; len]);
            if len == 1 {
                break;
            }
        }
        GlobalFloor {
            keys,
            levels,
            updates: 0,
        }
    }

    /// Number of cores the structure covers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True iff built over zero cores.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Current key of core `i`.
    pub fn key(&self, i: usize) -> VirtualTime {
        self.keys[i]
    }

    /// Total key updates applied (diagnostic counter).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The global floor: minimum over all keys. O(1).
    pub fn floor(&self) -> VirtualTime {
        self.levels.last().expect("at least one level")[0]
    }

    /// Set core `i`'s key and repair the pyramid. Early-exits at the
    /// first level whose block minimum is unchanged; a strictly
    /// decreasing key never rescans at all (pure min-propagation).
    pub fn set(&mut self, i: usize, key: VirtualTime) {
        let old = self.keys[i];
        if key == old {
            return;
        }
        self.updates += 1;
        self.keys[i] = key;
        let mut block = i / FANOUT;
        if key < self.levels[0][block] {
            // Strict decrease: propagate the new minimum upward without
            // any block scan.
            self.levels[0][block] = key;
            let mut v = key;
            for lvl in 1..self.levels.len() {
                block /= FANOUT;
                if v < self.levels[lvl][block] {
                    self.levels[lvl][block] = v;
                } else {
                    return;
                }
                v = self.levels[lvl][block];
            }
            return;
        }
        if old > self.levels[0][block] {
            // The changed key was not its block's minimum and did not
            // become it: nothing above can change.
            return;
        }
        // The block minimum may have risen: rescan the block, then repair
        // upward until a level's value is unchanged.
        let mut lvl = 0;
        loop {
            let new_min = self.rescan(lvl, block);
            if self.levels[lvl][block] == new_min {
                return;
            }
            self.levels[lvl][block] = new_min;
            if lvl + 1 == self.levels.len() {
                return;
            }
            lvl += 1;
            block /= FANOUT;
        }
    }

    /// Minimum of block `b` of the level below `lvl` (the key array for
    /// `lvl == 0`).
    fn rescan(&self, lvl: usize, b: usize) -> VirtualTime {
        let src: &[VirtualTime] = if lvl == 0 {
            &self.keys
        } else {
            &self.levels[lvl - 1]
        };
        let start = b * FANOUT;
        let end = (start + FANOUT).min(src.len());
        src[start..end]
            .iter()
            .copied()
            .fold(VirtualTime::MAX, VirtualTime::min)
    }

    /// Recompute every level from the keys (used after bulk key loads).
    pub fn rebuild(&mut self) {
        for lvl in 0..self.levels.len() {
            for b in 0..self.levels[lvl].len() {
                self.levels[lvl][b] = self.rescan(lvl, b);
            }
        }
    }

    /// The floor the naive O(cores) sweep over the same keys would
    /// produce — the cross-check oracle for debug asserts and tests.
    pub fn naive_floor(&self) -> VirtualTime {
        self.keys
            .iter()
            .copied()
            .fold(VirtualTime::MAX, VirtualTime::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_time::Xoshiro256StarStar;

    fn t(c: u64) -> VirtualTime {
        VirtualTime::from_cycles(c)
    }

    #[test]
    fn empty_machine_floor_is_max() {
        let g = GlobalFloor::new(1000);
        assert_eq!(g.floor(), VirtualTime::MAX);
        assert_eq!(g.floor(), g.naive_floor());
    }

    #[test]
    fn single_key_round_trip() {
        let mut g = GlobalFloor::new(10);
        g.set(7, t(42));
        assert_eq!(g.floor(), t(42));
        g.set(7, VirtualTime::MAX);
        assert_eq!(g.floor(), VirtualTime::MAX);
    }

    #[test]
    fn decrease_then_rise_repairs_all_levels() {
        // Cross a block boundary: core 0 and core 100_000 live in
        // different level-0 and level-1 blocks.
        let mut g = GlobalFloor::new(200_000);
        g.set(0, t(50));
        g.set(100_000, t(10));
        assert_eq!(g.floor(), t(10));
        g.set(100_000, t(90));
        assert_eq!(g.floor(), t(50));
        g.set(0, VirtualTime::MAX);
        assert_eq!(g.floor(), t(90));
    }

    #[test]
    fn random_updates_match_naive_floor() {
        // Property: after any interleaving of key updates (drops, rises,
        // clears), the tree's floor equals the naive full scan.
        let mut rng = Xoshiro256StarStar::stream(7, 3);
        for &n in &[1usize, 63, 64, 65, 4096, 5000] {
            let mut g = GlobalFloor::new(n);
            for step in 0..2000 {
                let i = rng.next_index(n);
                let key = match rng.next_index(4) {
                    0 => VirtualTime::MAX,
                    _ => t(rng.next_index(1_000) as u64),
                };
                g.set(i, key);
                if step % 97 == 0 {
                    assert_eq!(g.floor(), g.naive_floor(), "n={n} step={step}");
                }
            }
            assert_eq!(g.floor(), g.naive_floor(), "n={n} final");
        }
    }

    #[test]
    fn rebuild_matches_incremental() {
        let mut rng = Xoshiro256StarStar::stream(11, 5);
        let mut g = GlobalFloor::new(777);
        for _ in 0..500 {
            g.set(rng.next_index(777), t(rng.next_index(100) as u64));
        }
        let incremental = g.floor();
        g.rebuild();
        assert_eq!(g.floor(), incremental);
    }
}
