//! Virtual-time synchronization: the paper's spatial scheme and the
//! comparison policies.
//!
//! Spatial synchronization (paper §II.A):
//!
//! * Every working core exposes (publishes) its clock to its topological
//!   neighbors; every idle core exposes a *shadow virtual time* — the
//!   minimum over its neighbors plus `T`, "as if they were executing and
//!   had advanced to the maximum virtual time allowed by the local time
//!   window before stalling" — so that drift control spreads through
//!   non-connected sets of active cores.
//! * A core whose clock exceeds its most-late neighbor's published time by
//!   more than `T` stalls until the neighbor catches up.
//! * The birth times of in-flight spawned tasks count as neighbor clocks of
//!   the spawning core so that a parent cannot run away from a task it just
//!   created (§II.A, *Time drift of dynamically created tasks*).
//! * A core holding a lock or executing a critical section is never
//!   stalled (§II.B, *Locks and critical sections*).
//!
//! ## Hot-path structure
//!
//! The per-annotation cost is dominated by `publish` (shadow relaxation +
//! stall rechecks) and the floor computation in `sync_ok`. Three mechanisms
//! keep the common case O(1) — see `DESIGN.md`, *Hot path & fast-path
//! invariants*, for the full determinism argument:
//!
//! * **Drift headroom** (`Cores::headroom_limit`): a successful spatial
//!   check caches `local_floor + T`; annotations below the bound defer the
//!   publish (`publish_pending`) and skip everything else. The deferral is
//!   invisible because only the token-holding activity can observe state,
//!   and every token yield or state read flushes first.
//! * **Incremental floors** (`Cores::floor_nb`): the neighbor minimum
//!   is maintained at publish time and only recomputed when a neighbor that
//!   may have been the minimum rose.
//! * **Waiter sets** (`Sim::waiters`): a stalled core registers on its
//!   argmin blocking neighbor (or its random referee); a rising publish
//!   rechecks only its registered waiters instead of every neighbor.
//!   Published *drops* (idle cores waking to an older working clock) are
//!   rare and sweep all stalled neighbors to re-derive registrations.

use crate::activity::ActivityState;
use crate::config::{PickPolicy, SyncPolicy};
use crate::engine::{push_ready, Shared, Sim};
use simany_time::{VDuration, VirtualTime};
use simany_topology::CoreId;

/// Run core `c`'s deferred publish, if any. Call before any code that can
/// observe published values or before the run token leaves `c`'s activity.
pub(crate) fn flush_deferred(sim: &mut Sim, shared: &Shared, c: CoreId) {
    if sim.cores.publish_pending[c.index()] {
        if sim.sanitizer.is_some() {
            // The deferred advance must have stayed inside the cached
            // headroom, or the fast path skipped a stall it owed.
            crate::sanitizer::verify_flush(sim, shared, c);
        }
        publish(sim, shared, c);
    }
}

/// Maintain neighbor floor caches and headroom bounds after core `x`'s
/// published value changed `old -> new`. Called at every individual
/// assignment (including intermediate relaxation steps) so the caches are
/// exact.
fn note_published_change(
    sim: &mut Sim,
    shared: &Shared,
    x: CoreId,
    old: VirtualTime,
    new: VirtualTime,
) {
    for &(m, _) in shared.topo.neighbors(x) {
        let i = m.index();
        if new < old {
            // A drop can only lower the minimum: the cache stays valid, but
            // any cached headroom may now overshoot the true floor.
            if sim.cores.floor_nb_valid[i] && new < sim.cores.floor_nb[i] {
                sim.cores.floor_nb[i] = new;
            }
            sim.cores.headroom_limit[i] = None;
        } else if sim.cores.floor_nb_valid[i] && sim.cores.floor_nb[i] == old {
            // x may have been the (possibly tied) minimum; recompute lazily.
            sim.cores.floor_nb_valid[i] = false;
        }
    }
}

/// Recompute and propagate the value core `c` exposes to its neighbors.
/// Call after any change to `c`'s clock or idle status. Triggers stall
/// re-checks on every core whose published value changed.
pub(crate) fn publish(sim: &mut Sim, shared: &Shared, c: CoreId) {
    sim.cores.publish_pending[c.index()] = false;
    if sim.cores.vtime[c.index()] > sim.max_vtime {
        sim.max_vtime = sim.cores.vtime[c.index()];
    }
    let spatial_t = match shared.config.sync {
        SyncPolicy::Spatial { t } => Some(t),
        _ => None,
    };
    let newval = match spatial_t {
        Some(t) if sim.cores.is_idle(c.index()) => shadow_value(sim, shared, c, t),
        _ => sim.cores.vtime[c.index()],
    };
    let oldval = sim.cores.published[c.index()];
    if sim.sanitizer.is_some() {
        // Every slow-path clock change passes through here before the run
        // token can return to the scheduler, so measuring overshoot (and
        // floor regressions on idle-to-working drops) at publish instants
        // covers every state the periodic scan can observe.
        crate::sanitizer::note_clock(sim, shared, c);
        if newval < oldval && !sim.cores.is_idle(c.index()) {
            crate::sanitizer::note_floor_regression(sim, newval);
        }
    }
    if newval == oldval {
        return;
    }
    sim.stats.publish_sweeps += 1;
    sim.cores.published[c.index()] = newval;
    sim.floor_dirty = true;
    // Global policies never run the shadow relaxation below, so this is
    // the only published-value change the incremental floor must see.
    note_floor_key(sim, c.index());
    note_published_change(sim, shared, c, oldval, newval);

    let Some(t) = spatial_t else {
        // Global policies: no shadow relaxation. Recheck c's neighbors and
        // every core watching c (its referee waiters) — the exact pre-
        // fast-path sequence, because RandomReferee rechecks consume the
        // engine RNG and are part of the deterministic schedule.
        for &(n, _) in shared.topo.neighbors(c) {
            recheck_stall(sim, shared, n);
        }
        take_waiters(sim, shared, c);
        return;
    };

    // Relax shadow values through idle regions until fixed point. The
    // shadow function is monotone in its inputs, so a worklist relaxation
    // converges; waves are short in practice (idle cores adjacent to
    // activity frontiers). Scratch buffers + visit stamps: no allocation
    // once the high-water capacity is reached.
    let mut changed = std::mem::take(&mut sim.scratch_changed);
    let mut work = std::mem::take(&mut sim.scratch_work);
    debug_assert!(changed.is_empty() && work.is_empty());
    sim.stamp_cur += 1;
    let stamp = sim.stamp_cur;
    sim.stamp[c.index()] = stamp;
    changed.push((c, oldval));
    for &(n, _) in shared.topo.neighbors(c) {
        if sim.cores.is_idle(n.index()) {
            work.push(n);
        }
    }
    while let Some(i) = work.pop() {
        let v = shadow_value(sim, shared, i, t);
        let old = sim.cores.published[i.index()];
        if v != old {
            sim.cores.published[i.index()] = v;
            note_published_change(sim, shared, i, old, v);
            if sim.stamp[i.index()] != stamp {
                sim.stamp[i.index()] = stamp;
                changed.push((i, old));
            }
            for &(n, _) in shared.topo.neighbors(i) {
                if sim.cores.is_idle(n.index()) {
                    work.push(n);
                }
            }
        }
    }
    sim.scratch_work = work;

    // Stall re-checks, post-fixpoint. A net rise of x can only unstall a
    // core registered on x (any stalled core is registered on its argmin
    // blocker, and a non-argmin rise cannot lift the minimum). A net drop
    // invalidates registrations, so it sweeps all of x's neighbors — each
    // failed recheck re-registers on the now-current argmin.
    for &(x, old) in &changed {
        let fin = sim.cores.published[x.index()];
        if fin == old {
            continue;
        }
        if fin < old {
            for &(n, _) in shared.topo.neighbors(x) {
                recheck_stall(sim, shared, n);
            }
        }
        take_waiters(sim, shared, x);
    }
    changed.clear();
    sim.scratch_changed = changed;
}

/// Empty core `x`'s waiter set and recheck every member. Duplicate entries
/// (a core that re-registered on `x` while a stale entry remained) are
/// skipped within one take via visit stamps, preserving the one-recheck-
/// per-member behavior of the old `contains`-deduplicated watcher lists.
fn take_waiters(sim: &mut Sim, shared: &Shared, x: CoreId) {
    if sim.waiters[x.index()].is_empty() {
        return;
    }
    let mut list = std::mem::take(&mut sim.scratch_waiters);
    std::mem::swap(&mut list, &mut sim.waiters[x.index()]);
    sim.stamp_cur += 1;
    let stamp = sim.stamp_cur;
    for &wid in &list {
        let w = CoreId(wid);
        if sim.stamp[w.index()] == stamp {
            continue;
        }
        sim.stamp[w.index()] = stamp;
        if sim.cores.waiting_on[w.index()] == Some(x) {
            sim.cores.waiting_on[w.index()] = None;
        }
        // Recheck stale entries too: under RandomReferee the old watcher
        // lists rechecked every taken entry regardless of the core's
        // current referee, and that recheck sequence drives the RNG.
        recheck_stall(sim, shared, w);
    }
    list.clear();
    sim.scratch_waiters = list;
}

/// Register `c` in `target`'s waiter set (dedup-free: `waiting_on` mirrors
/// the most recent registration, so a repeat registration on the same
/// target is a no-op without scanning the list).
fn register_waiter(sim: &mut Sim, c: CoreId, target: CoreId) {
    if sim.cores.waiting_on[c.index()] == Some(target) {
        return;
    }
    sim.cores.waiting_on[c.index()] = Some(target);
    sim.waiters[target.index()].push(c.0);
}

/// The shadow virtual time of idle core `i`: its own last clock maxed with
/// the minimum of its neighbors' published times plus `t`.
///
/// The `min + t` term is capped at `max_vtime + t`: no core's clock exceeds
/// `max_vtime`, so a published value at or above it can never be the
/// binding entry of a stall check — and without the cap the min-plus
/// relaxation has no fixed point in regions with no working core (idle
/// cores would push each other's shadows up forever).
fn shadow_value(sim: &Sim, shared: &Shared, i: CoreId, t: VDuration) -> VirtualTime {
    let min_neigh = shared
        .topo
        .neighbors(i)
        .iter()
        .map(|&(n, _)| sim.cores.published[n.index()])
        .min();
    match min_neigh {
        Some(m) => sim.cores.vtime[i.index()].max((m + t).min(sim.max_vtime + t)),
        None => sim.cores.vtime[i.index()],
    }
}

/// If `c`'s current activity is stalled and the synchronization condition
/// now holds, make it resumable and requeue the core.
pub(crate) fn recheck_stall(sim: &mut Sim, shared: &Shared, c: CoreId) {
    let Some(aid) = sim.cores.current[c.index()] else {
        return;
    };
    if !sim.act(aid).is_stalled() {
        return;
    }
    if sync_ok(sim, shared, c) {
        sim.act_mut(aid).state = ActivityState::Resumable;
        push_ready(sim, c);
    }
}

/// Re-check every stalled activity in the machine (used by the global
/// policies when the global floor may have moved).
pub(crate) fn recheck_all_stalled(sim: &mut Sim, shared: &Shared) {
    for i in 0..sim.cores.len() {
        recheck_stall(sim, shared, CoreId(i as u32));
    }
}

/// The local synchronization floor of core `c` under spatial
/// synchronization: the most-late neighbor's published time, also counting
/// the birth times of `c`'s in-flight spawned tasks as if they were
/// neighbors. The neighbor minimum comes from the incrementally maintained
/// cache; it is recomputed only when invalidated by a rising publish.
pub(crate) fn local_floor(sim: &mut Sim, shared: &Shared, c: CoreId) -> VirtualTime {
    if !sim.cores.floor_nb_valid[c.index()] {
        sim.count_floor_recompute(shared, c);
        let mut m = VirtualTime::MAX;
        for &(n, _) in shared.topo.neighbors(c) {
            m = m.min(sim.cores.published[n.index()]);
        }
        sim.cores.floor_nb[c.index()] = m;
        sim.cores.floor_nb_valid[c.index()] = true;
    }
    let mut floor = sim.cores.floor_nb[c.index()];
    if let Some(b) = sim.cores.min_birth(c.index()) {
        floor = floor.min(b);
    }
    floor
}

/// Global floor: the minimum published time over all working cores, also
/// counting every birth-ledger entry. Used by the BoundedSlack and
/// Conservative policies.
///
/// Served from the incrementally-maintained tournament tree
/// ([`crate::floor::GlobalFloor`]) when the policy allocates one — an
/// O(1) root read instead of an O(cores) sweep — and cross-checked
/// against the sweep in debug builds on every query.
pub(crate) fn global_floor(sim: &Sim) -> VirtualTime {
    if let Some(g) = &sim.gfloor {
        let floor = g.floor();
        debug_assert_eq!(
            floor,
            global_floor_naive(sim),
            "incremental global floor diverged from the naive sweep"
        );
        return floor;
    }
    global_floor_naive(sim)
}

/// The historical O(cores) global-floor sweep: oracle for the debug
/// cross-check above, the microbench baseline, and the fallback when no
/// incremental structure is allocated (RandomReferee's candidate sweep is
/// already O(cores), so it keeps the plain scan).
pub(crate) fn global_floor_naive(sim: &Sim) -> VirtualTime {
    let mut floor = VirtualTime::MAX;
    for i in 0..sim.cores.len() {
        if !sim.cores.is_idle(i) {
            floor = floor.min(sim.cores.published[i]);
        }
        if let Some(b) = sim.cores.min_birth(i) {
            floor = floor.min(b);
        }
    }
    floor
}

/// Recompute core `i`'s contribution to the incremental global floor and
/// store it in the tournament tree. Key = `min(published-if-working,
/// earliest pending birth)`, `MAX` when neither applies. No-op under
/// policies that allocate no tree (everything but BoundedSlack /
/// Conservative). Must be called wherever a key input changes — the
/// core's published value, its idle status, or its birth ledger; those
/// are exactly the sites that set [`Sim::floor_dirty`].
pub(crate) fn note_floor_key(sim: &mut Sim, i: usize) {
    if sim.gfloor.is_none() {
        return;
    }
    let mut key = sim.cores.birth_floor(i);
    if !sim.cores.is_idle(i) {
        key = key.min(sim.cores.published[i]);
    }
    sim.gfloor
        .as_mut()
        .expect("gfloor checked above")
        .set(i, key);
}

/// Register stalled core `c` in the floor-threshold wake structure: once
/// the global floor reaches `threshold`, `c`'s synchronization condition
/// holds again and it must be rechecked. Entries are lazy — a core woken
/// by another path leaves a stale entry behind, and the recheck it later
/// triggers is a harmless no-op (`recheck_stall` is authoritative).
fn register_floor_wake(sim: &mut Sim, c: CoreId, threshold: VirtualTime) {
    sim.stall_wakes.push(std::cmp::Reverse((threshold, c.0)));
}

/// Wake exactly the stalled cores whose floor-threshold the (possibly
/// risen) global floor has crossed, in core-id order — the same wake set,
/// in the same order, as the historical all-core sweep
/// ([`recheck_all_stalled`]), without touching the cores still below
/// their bound. Thresholds only ever rise for a given stalled activity
/// (its clock is frozen while stalled), so popped entries never need
/// reinsertion here; a recheck that fails again re-registers itself from
/// `sync_ok`.
pub(crate) fn wake_stalled_by_floor(sim: &mut Sim, shared: &Shared) {
    if sim.stall_wakes.is_empty() {
        return;
    }
    let floor = global_floor(sim);
    let mut woken = std::mem::take(&mut sim.scratch_ready);
    woken.clear();
    while let Some(&std::cmp::Reverse((th, c))) = sim.stall_wakes.peek() {
        if th > floor && floor != VirtualTime::MAX {
            break;
        }
        sim.stall_wakes.pop();
        woken.push(c);
    }
    // Core-id order matches the old 0..n sweep; dedup collapses stale
    // duplicate registrations to the one recheck the sweep would do.
    woken.sort_unstable();
    woken.dedup();
    let mut idx = 0;
    while idx < woken.len() {
        recheck_stall(sim, shared, CoreId(woken[idx]));
        idx += 1;
    }
    woken.clear();
    sim.scratch_ready = woken;
}

/// Is the fast path allowed under this configuration? Ready-queue insertion
/// order changes when unstalls are deferred to a flush point; only the
/// lowest-vtime heap is insensitive to it, so the other pick policies keep
/// the always-full path.
fn fast_path_eligible(shared: &Shared) -> bool {
    shared.config.fast_path && shared.config.pick == PickPolicy::LowestVtime
}

/// Does the synchronization policy allow core `c` to execute task code
/// right now?
///
/// Also maintains the max-drift statistic, the headroom cache, the waiter
/// registrations and the random-referee state.
pub(crate) fn sync_ok(sim: &mut Sim, shared: &Shared, c: CoreId) -> bool {
    // Lock waiver: a core holding a lock or inside a critical section is
    // temporarily exempt so it can release its resources (paper §II.B).
    // No headroom is cached here — the waiver is not a drift bound.
    if sim.cores.lock_depth[c.index()] > 0 {
        return true;
    }
    let vtime = sim.cores.vtime[c.index()];
    match shared.config.sync {
        SyncPolicy::Spatial { t } => {
            let floor = local_floor(sim, shared, c);
            if sim.sanitizer.is_some() {
                // Re-derive the floor from scratch: the decision below must
                // not rest on a corrupted incremental cache.
                crate::sanitizer::verify_spatial_floor(sim, shared, c, floor);
            }
            if floor == VirtualTime::MAX {
                // No neighbors, no births: nothing to drift from, ever.
                if fast_path_eligible(shared) {
                    sim.cores.headroom_limit[c.index()] = Some(VirtualTime::MAX);
                }
                return true;
            }
            let drift = vtime.saturating_since(floor);
            sim.note_neighbor_drift(shared, c, drift);
            if drift <= t {
                if fast_path_eligible(shared) {
                    sim.cores.headroom_limit[c.index()] = Some(floor + t);
                }
                true
            } else {
                sim.cores.headroom_limit[c.index()] = None;
                // Register on the argmin blocking *neighbor*, whose rise is
                // the only publish event that can lift the neighbor
                // minimum. A floor bound by a birth alone needs no
                // registration: `discard_birth` rechecks directly.
                let nb_floor = sim.cores.floor_nb[c.index()];
                if vtime.saturating_since(nb_floor) > t {
                    let argmin = shared
                        .topo
                        .neighbors(c)
                        .iter()
                        .map(|&(n, _)| n)
                        .find(|n| sim.cores.published[n.index()] == nb_floor);
                    if let Some(r) = argmin {
                        register_waiter(sim, c, r);
                    }
                }
                false
            }
        }
        SyncPolicy::BoundedSlack { window } => {
            let floor = global_floor(sim);
            if floor == VirtualTime::MAX {
                return true;
            }
            if vtime.saturating_since(floor) <= window {
                true
            } else {
                // The check passes again exactly when the floor reaches
                // vtime - window (both in ticks).
                register_floor_wake(sim, c, VirtualTime(vtime.0.saturating_sub(window.0)));
                false
            }
        }
        SyncPolicy::Conservative => {
            let floor = global_floor(sim);
            if floor == VirtualTime::MAX || vtime <= floor {
                true
            } else {
                register_floor_wake(sim, c, vtime);
                false
            }
        }
        SyncPolicy::RandomReferee { slack } => loop {
            match sim.cores.referee[c.index()] {
                None => {
                    // Choose a random *working* core other than c. The
                    // candidate sweep reuses one scratch buffer across
                    // checks instead of allocating per pick.
                    let mut candidates = std::mem::take(&mut sim.scratch_ready);
                    candidates.clear();
                    candidates.extend(
                        (0..sim.cores.len() as u32)
                            .filter(|&i| i != c.0 && !sim.cores.is_idle(i as usize)),
                    );
                    if candidates.is_empty() {
                        sim.scratch_ready = candidates;
                        return true;
                    }
                    let pick = candidates[sim.rng.next_index(candidates.len())];
                    sim.scratch_ready = candidates;
                    sim.cores.referee[c.index()] = Some(CoreId(pick));
                }
                Some(r) => {
                    if sim.cores.is_idle(r.index()) {
                        // Referee retired; pick another next iteration.
                        sim.cores.referee[c.index()] = None;
                        continue;
                    }
                    if vtime.saturating_since(sim.cores.published[r.index()]) <= slack {
                        sim.cores.referee[c.index()] = None;
                        return true;
                    }
                    // Still too far ahead: watch the referee for changes.
                    register_waiter(sim, c, r);
                    return false;
                }
            }
        },
        SyncPolicy::Unbounded => true,
    }
}

/// Side-effect-free synchronization check against *frozen* published
/// values, for activities running confined inside an epoch (parallel
/// mode). During an epoch nothing publishes, so published values, floor
/// caches, birth ledgers and the global floor are all stable: the check
/// reads them without registering waiters, bumping machine-wide stall
/// statistics or touching the shared RNG. Returning `false` is always
/// safe — the activity parks and the coordinator's serial phase replays
/// the authoritative [`sync_ok`].
///
/// Mutations are confined to `c`'s own state and its tile's counter
/// shard: the headroom cache (same values the serial check would write,
/// since its inputs are frozen) and the max-drift statistic.
pub(crate) fn sync_ok_frozen(sim: &mut Sim, shared: &Shared, c: CoreId) -> bool {
    if sim.cores.lock_depth[c.index()] > 0 {
        // The waiver is not a drift bound, and inside an epoch even waiver
        // advances defer their publishes: drop any cached headroom so the
        // coordinator's flush-time sanitizer check cannot mistake them for
        // fast-path overshoot. The next real check recomputes it.
        sim.cores.headroom_limit[c.index()] = None;
        return true;
    }
    let vtime = sim.cores.vtime[c.index()];
    match shared.config.sync {
        SyncPolicy::Spatial { t } => {
            // Published values are frozen for the whole epoch, so even the
            // neighbor sweep behind an invalidated floor cache is
            // side-effect-free here: it reads frozen values, writes `c`'s
            // own cache and counts on `c`'s tile shard — exactly what the
            // serial check would do. (Sanitizer floor verification and
            // waiter registration stay on the serial path; a failing core
            // parks and replays the authoritative check there.)
            let floor = local_floor(sim, shared, c);
            if floor == VirtualTime::MAX {
                if fast_path_eligible(shared) {
                    sim.cores.headroom_limit[c.index()] = Some(VirtualTime::MAX);
                }
                return true;
            }
            let drift = vtime.saturating_since(floor);
            sim.note_neighbor_drift(shared, c, drift);
            if drift <= t {
                if fast_path_eligible(shared) {
                    sim.cores.headroom_limit[c.index()] = Some(floor + t);
                }
                true
            } else {
                sim.cores.headroom_limit[c.index()] = None;
                false
            }
        }
        SyncPolicy::BoundedSlack { window } => {
            let floor = global_floor(sim);
            floor == VirtualTime::MAX || vtime.saturating_since(floor) <= window
        }
        SyncPolicy::Conservative => {
            let floor = global_floor(sim);
            floor == VirtualTime::MAX || vtime <= floor
        }
        // Referee selection and rechecks consume the engine RNG, which is
        // part of the deterministic serial schedule: never confined.
        SyncPolicy::RandomReferee { .. } => false,
        SyncPolicy::Unbounded => true,
    }
}
