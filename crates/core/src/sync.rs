//! Virtual-time synchronization: the paper's spatial scheme and the
//! comparison policies.
//!
//! Spatial synchronization (paper §II.A):
//!
//! * Every working core exposes (publishes) its clock to its topological
//!   neighbors; every idle core exposes a *shadow virtual time* — the
//!   minimum over its neighbors plus `T`, "as if they were executing and
//!   had advanced to the maximum virtual time allowed by the local time
//!   window before stalling" — so that drift control spreads through
//!   non-connected sets of active cores.
//! * A core whose clock exceeds its most-late neighbor's published time by
//!   more than `T` stalls until the neighbor catches up.
//! * The birth times of in-flight spawned tasks count as neighbor clocks of
//!   the spawning core so that a parent cannot run away from a task it just
//!   created (§II.A, *Time drift of dynamically created tasks*).
//! * A core holding a lock or executing a critical section is never
//!   stalled (§II.B, *Locks and critical sections*).

use crate::activity::ActivityState;
use crate::config::SyncPolicy;
use crate::engine::{push_ready, Shared, Sim};
use simany_time::{VDuration, VirtualTime};
use simany_topology::CoreId;

/// Recompute and propagate the value core `c` exposes to its neighbors.
/// Call after any change to `c`'s clock or idle status. Triggers stall
/// re-checks on every core whose published value changed.
pub(crate) fn publish(sim: &mut Sim, shared: &Shared, c: CoreId) {
    if sim.cores[c.index()].vtime > sim.max_vtime {
        sim.max_vtime = sim.cores[c.index()].vtime;
    }
    let spatial_t = match shared.config.sync {
        SyncPolicy::Spatial { t } => Some(t),
        _ => None,
    };
    let newval = match spatial_t {
        Some(t) if sim.cores[c.index()].is_idle() => shadow_value(sim, shared, c, t),
        _ => sim.cores[c.index()].vtime,
    };
    if newval == sim.cores[c.index()].published {
        return;
    }
    sim.cores[c.index()].published = newval;
    sim.floor_dirty = true;

    let mut changed = vec![c];
    if let Some(t) = spatial_t {
        // Relax shadow values through idle regions until fixed point. The
        // shadow function is monotone in its inputs, so a worklist
        // relaxation converges; waves are short in practice (idle cores
        // adjacent to activity frontiers).
        let mut work: Vec<CoreId> = shared
            .topo
            .neighbors(c)
            .iter()
            .map(|&(n, _)| n)
            .filter(|n| sim.cores[n.index()].is_idle())
            .collect();
        while let Some(i) = work.pop() {
            let v = shadow_value(sim, shared, i, t);
            if v != sim.cores[i.index()].published {
                sim.cores[i.index()].published = v;
                changed.push(i);
                for &(n, _) in shared.topo.neighbors(i) {
                    if sim.cores[n.index()].is_idle() {
                        work.push(n);
                    }
                }
            }
        }
    }

    // Stall re-checks: neighbors of every changed core, plus any core using
    // a changed core as its random referee.
    for &x in &changed {
        for &(n, _) in shared.topo.neighbors(x) {
            recheck_stall(sim, shared, n);
        }
        let watchers = std::mem::take(&mut sim.referee_watchers[x.index()]);
        for w in watchers {
            recheck_stall(sim, shared, CoreId(w));
        }
    }
}

/// The shadow virtual time of idle core `i`: its own last clock maxed with
/// the minimum of its neighbors' published times plus `t`.
///
/// The `min + t` term is capped at `max_vtime + t`: no core's clock exceeds
/// `max_vtime`, so a published value at or above it can never be the
/// binding entry of a stall check — and without the cap the min-plus
/// relaxation has no fixed point in regions with no working core (idle
/// cores would push each other's shadows up forever).
fn shadow_value(sim: &Sim, shared: &Shared, i: CoreId, t: VDuration) -> VirtualTime {
    let min_neigh = shared
        .topo
        .neighbors(i)
        .iter()
        .map(|&(n, _)| sim.cores[n.index()].published)
        .min();
    match min_neigh {
        Some(m) => sim.cores[i.index()]
            .vtime
            .max((m + t).min(sim.max_vtime + t)),
        None => sim.cores[i.index()].vtime,
    }
}

/// If `c`'s current activity is stalled and the synchronization condition
/// now holds, make it resumable and requeue the core.
pub(crate) fn recheck_stall(sim: &mut Sim, shared: &Shared, c: CoreId) {
    let Some(aid) = sim.cores[c.index()].current else {
        return;
    };
    if !sim.act(aid).is_stalled() {
        return;
    }
    if sync_ok(sim, shared, c) {
        sim.act_mut(aid).state = ActivityState::Resumable;
        push_ready(sim, c);
    }
}

/// Re-check every stalled activity in the machine (used by the global
/// policies when the global floor may have moved).
pub(crate) fn recheck_all_stalled(sim: &mut Sim, shared: &Shared) {
    for i in 0..sim.cores.len() {
        recheck_stall(sim, shared, CoreId(i as u32));
    }
}

/// The local synchronization floor of core `c` under spatial
/// synchronization: the most-late neighbor's published time, also counting
/// the birth times of `c`'s in-flight spawned tasks as if they were
/// neighbors.
pub(crate) fn local_floor(sim: &Sim, shared: &Shared, c: CoreId) -> VirtualTime {
    let mut floor = VirtualTime::MAX;
    for &(n, _) in shared.topo.neighbors(c) {
        floor = floor.min(sim.cores[n.index()].published);
    }
    if let Some(b) = sim.cores[c.index()].min_birth() {
        floor = floor.min(b);
    }
    floor
}

/// Global floor: the minimum published time over all working cores, also
/// counting every birth-ledger entry. Used by the BoundedSlack and
/// Conservative policies.
pub(crate) fn global_floor(sim: &Sim) -> VirtualTime {
    let mut floor = VirtualTime::MAX;
    for core in &sim.cores {
        if !core.is_idle() {
            floor = floor.min(core.published);
        }
        if let Some(b) = core.min_birth() {
            floor = floor.min(b);
        }
    }
    floor
}

/// Does the synchronization policy allow core `c` to execute task code
/// right now?
///
/// Also maintains the max-drift statistic and the random-referee state.
pub(crate) fn sync_ok(sim: &mut Sim, shared: &Shared, c: CoreId) -> bool {
    // Lock waiver: a core holding a lock or inside a critical section is
    // temporarily exempt so it can release its resources (paper §II.B).
    if sim.cores[c.index()].lock_depth > 0 {
        return true;
    }
    let vtime = sim.cores[c.index()].vtime;
    match shared.config.sync {
        SyncPolicy::Spatial { t } => {
            let floor = local_floor(sim, shared, c);
            if floor == VirtualTime::MAX {
                return true; // no neighbors, no births: nothing to drift from
            }
            let drift = vtime.saturating_since(floor);
            if drift > sim.stats.max_neighbor_drift {
                sim.stats.max_neighbor_drift = drift;
            }
            drift <= t
        }
        SyncPolicy::BoundedSlack { window } => {
            let floor = global_floor(sim);
            if floor == VirtualTime::MAX {
                return true;
            }
            vtime.saturating_since(floor) <= window
        }
        SyncPolicy::Conservative => {
            let floor = global_floor(sim);
            floor == VirtualTime::MAX || vtime <= floor
        }
        SyncPolicy::RandomReferee { slack } => loop {
            match sim.cores[c.index()].referee {
                None => {
                    // Choose a random *working* core other than c.
                    let candidates: Vec<u32> = (0..sim.cores.len() as u32)
                        .filter(|&i| i != c.0 && !sim.cores[i as usize].is_idle())
                        .collect();
                    if candidates.is_empty() {
                        return true;
                    }
                    let pick = candidates[sim.rng.next_index(candidates.len())];
                    sim.cores[c.index()].referee = Some(CoreId(pick));
                }
                Some(r) => {
                    if sim.cores[r.index()].is_idle() {
                        // Referee retired; pick another next iteration.
                        sim.cores[c.index()].referee = None;
                        continue;
                    }
                    if vtime.saturating_since(sim.cores[r.index()].published) <= slack {
                        sim.cores[c.index()].referee = None;
                        return true;
                    }
                    // Still too far ahead: watch the referee for changes.
                    if !sim.referee_watchers[r.index()].contains(&c.0) {
                        sim.referee_watchers[r.index()].push(c.0);
                    }
                    return false;
                }
            }
        },
        SyncPolicy::Unbounded => true,
    }
}
