//! Simulation statistics and instrumentation counters.

use simany_net::NetStats;
use simany_time::{VDuration, VirtualTime};
use simany_topology::CoreId;

/// How many of the busiest cores [`BusySummary`] keeps by id.
const TOP_BUSY: usize = 8;

/// Streaming summary of per-core busy virtual time.
///
/// Replaces the old `Vec<VDuration>` (one entry per core): at a million
/// cores a dense vector is 8 MB of teardown allocation that every consumer
/// then re-reduces. The engine instead folds each core's busy time into
/// this accumulator in one pass — O(1) memory, with the top-`TOP_BUSY`
/// busiest cores retained by id for diagnostics. Deterministic: cores are
/// recorded in index order and ties prefer the lower core id.
#[derive(Clone, Debug, Default)]
pub struct BusySummary {
    /// Cores recorded.
    pub n_cores: u64,
    /// Cores with nonzero busy time (work actually landed there).
    pub active: u64,
    /// Sum of busy time over all cores.
    pub total: VDuration,
    /// Largest single-core busy time.
    pub max: VDuration,
    /// The busiest cores as `(core, busy)`, descending; ties keep the
    /// lower core id first. At most [`TOP_BUSY`] entries.
    pub top: Vec<(CoreId, VDuration)>,
}

impl BusySummary {
    /// Fold one core's busy time into the summary. Call in core-index
    /// order for a deterministic `top` list.
    pub fn record(&mut self, core: CoreId, busy: VDuration) {
        self.n_cores += 1;
        if busy.ticks() > 0 {
            self.active += 1;
        }
        self.total += busy;
        if busy > self.max {
            self.max = busy;
        }
        if self.top.len() < TOP_BUSY || busy > self.top.last().unwrap().1 {
            // Insert before the first strictly-smaller entry: equal-busy
            // cores stay in record (= core id) order.
            let at = self.top.partition_point(|&(_, b)| b >= busy);
            self.top.insert(at, (core, busy));
            self.top.truncate(TOP_BUSY);
        }
    }

    /// Mean busy time per recorded core, in ticks (0 when empty).
    pub fn mean_ticks(&self) -> f64 {
        if self.n_cores == 0 {
            return 0.0;
        }
        self.total.ticks() as f64 / self.n_cores as f64
    }
}

/// Counters accumulated during one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Final virtual time: the largest clock any core reached (program
    /// completion time; the numerator/denominator of virtual speedups).
    pub final_vtime: VirtualTime,
    /// Number of activities (tasks) ever started.
    pub activities_started: u64,
    /// Number of simulated context switches (token handoffs to activities).
    pub activity_resumes: u64,
    /// Times a core stalled due to the synchronization policy.
    pub stall_events: u64,
    /// Messages processed after their virtual arrival time had already
    /// passed on the receiving core ("out-of-order" processing; the paper's
    /// accuracy-loss source, §II.A).
    pub late_messages: u64,
    /// Total virtual lateness of late messages (how far in the receiver's
    /// past their arrival stamps were).
    pub late_by_total: VDuration,
    /// Messages processed in order (arrival time >= receiver clock).
    pub on_time_messages: u64,
    /// Busy virtual time summary (time spent advancing, not waiting),
    /// streamed per core at teardown — no O(cores) vector.
    pub busy: BusySummary,
    /// Network statistics (messages, bytes, hops, link contention).
    pub net: NetStats,
    /// Wall-clock duration of the run.
    pub wall: std::time::Duration,
    /// Wall nanoseconds spent *building* the machine: topology, routing,
    /// partition, core arrays and workload setup — everything before the
    /// first scheduler pick. Scale benchmarks divide per-event cost out of
    /// [`Self::run_ns`], not out of `wall`, so setup cost cannot
    /// masquerade as per-event cost.
    pub build_ns: u64,
    /// Wall nanoseconds spent inside the scheduler loop (the pick loop
    /// proper, excluding build and teardown).
    pub run_ns: u64,
    /// Ready-queue entries popped and discarded because their core was no
    /// longer runnable (lazy-deletion garbage of the pick heap).
    pub ready_stale_skipped: u64,
    /// Times the ready queue compacted its lazy-deletion garbage (see
    /// `ReadyQueue::maybe_compact`).
    pub ready_compactions: u64,
    /// Total garbage entries dropped by ready-queue compactions.
    pub ready_compacted: u64,
    /// Key updates applied to the incremental global-floor structure
    /// (zero under policies that do not allocate it).
    pub floor_key_updates: u64,
    /// Pick-loop phase profile (populated only when
    /// [`crate::EngineConfig::profile_picks`] is on; sequential engine
    /// only): nanoseconds spent in floor maintenance / stall wakes.
    pub prof_floor_ns: u64,
    /// Profile: nanoseconds popping ready-queue entries (incl. stale
    /// skips and compactions).
    pub prof_pop_ns: u64,
    /// Profile: nanoseconds of scheduler bookkeeping (checkpoint observe,
    /// watchdog, sanitizer cadence, parallelism sampling).
    pub prof_overhead_ns: u64,
    /// Profile: nanoseconds executing the picked action (message
    /// processing, activity grants and task code, idle hooks, requeue).
    pub prof_action_ns: u64,
    /// Largest observed instantaneous neighbor drift (ticks), for checking
    /// the spatial-synchronization bound.
    pub max_neighbor_drift: VDuration,
    /// Largest number of live activities at any point.
    pub peak_live_activities: usize,
    /// Number of scheduler picks.
    pub scheduler_picks: u64,
    /// Timing annotations that advanced the clock inside the cached drift
    /// headroom: no publish sweep, no stall recheck, no floor work.
    pub fast_path_advances: u64,
    /// Timing annotations that went through the full synchronization path
    /// (publish + message drain + policy check).
    pub full_sync_checks: u64,
    /// Publish calls that actually changed a published value and ran the
    /// propagation/recheck sweep. Stays flat while a core advances within
    /// its headroom — the observable proof that fast-path annotations do no
    /// sweep work (and no heap allocation).
    pub publish_sweeps: u64,
    /// Times the cached neighbor-floor minimum had to be recomputed from
    /// scratch (a neighbor that may have been the minimum rose).
    pub floor_recomputes: u64,
    /// Sampled available host parallelism (cores with independently
    /// runnable work at sampling instants); empty unless
    /// `EngineConfig::parallelism_sample_every` is set.
    pub parallelism_samples: Vec<u32>,
    /// The busiest directed links of the run — NoC hotspots —
    /// as `(src, dst, busy transmission time)`, descending.
    pub hot_links: Vec<(simany_topology::CoreId, simany_topology::CoreId, VDuration)>,
    /// Messages lost to the fault plan (dropped in flight, corrupted on
    /// arrival, or unroutable across a partition).
    pub msgs_dropped: u64,
    /// Of the dropped messages, those that were corrupted (charged the
    /// full route before being discarded).
    pub msgs_corrupted: u64,
    /// Runtime-level send retries (timeout + exponential backoff).
    pub msg_retries: u64,
    /// Messages that detoured around dead links.
    pub reroutes: u64,
    /// Cores observed to have failed during the run.
    pub core_failures: u64,
    /// Link failure events announced (LinkDown traces).
    pub link_faults: u64,
    /// Epoch transitions that left the machine partitioned.
    pub partitions_observed: u64,
    /// Invariant checks the online sanitizer performed (0 unless
    /// `EngineConfig::sanitize` is on).
    pub sanitizer_checks: u64,
    /// Invariant violations the sanitizer detected. Any nonzero value is
    /// an engine bug (or deliberately injected corruption in tests).
    pub sanitizer_violations: u64,
    /// Largest observed global drift — the spread between the fastest
    /// working core and the global floor — recorded by the sanitizer for
    /// checking the `diameter x T` bound. Zero unless `sanitize` is on.
    pub max_global_drift: VDuration,
    /// Verification checkpoints written (see `crate::checkpoint`).
    pub checkpoints_written: u64,
    /// Checkpoint digests verified against a resumed run's watermark.
    pub checkpoint_verifications: u64,
    /// Parallel mode: epochs launched (batches of concurrently executing
    /// activities, at most one per tile). Zero under the sequential engine.
    pub parallel_epochs: u64,
    /// Parallel mode: total activities granted across all epochs. The
    /// mean batch size `epoch_grants / parallel_epochs` measures how much
    /// concurrency the partition actually exposed.
    pub epoch_grants: u64,
    /// Parallel mode: wall-clock nanoseconds the coordinator spent inside
    /// phase A — from launching an execution frame to quiescence, with the
    /// simulation lock released. Host-timing diagnostic: varies run to run
    /// and is excluded from every determinism fingerprint and digest.
    pub phase_a_wall_ns: u64,
    /// Parallel mode: wall-clock nanoseconds spent in phase B (deferred
    /// flush restore, publish, routing/delivery, replay, and the serial
    /// tail). Host-timing diagnostic like [`Self::phase_a_wall_ns`].
    pub phase_b_wall_ns: u64,
    /// Parallel mode: wall-clock nanoseconds of phase B's irreducibly
    /// serial tail (park resolution, finishes, panics — the part sharding
    /// cannot touch). Subset of [`Self::phase_b_wall_ns`]; host-timing
    /// diagnostic.
    pub serial_tail_ns: u64,
    /// Parallel mode: frame-counter polls workers answered by spinning
    /// (the frame advanced within the spin budget). Scheduling-dependent
    /// diagnostic — excluded from fingerprints and digests.
    pub frame_spins: u64,
    /// Parallel mode: times a worker gave up spinning and parked on the
    /// frame gate. Scheduling-dependent diagnostic like
    /// [`Self::frame_spins`].
    pub frame_parks: u64,
    /// Parallel mode: epochs whose phase-B replay (publishes, floor-cache
    /// invalidations, deliveries) ran as a parallel frame instead of the
    /// serial fallback. Deterministic: the launch predicate depends only on
    /// the epoch's bucketed work, never on host timing.
    pub sharded_replays: u64,
    /// Parallel mode: tiles claimed by each frame worker over the run,
    /// indexed by worker spawn order. Which worker wins a claim is a host
    /// scheduling race, so the *distribution* is nondeterministic (the sum
    /// is not); excluded from fingerprints and digests.
    pub tiles_claimed: Vec<u64>,
}

/// Per-tile shard of the synchronization hot-path counters. In parallel
/// mode several activities bump these concurrently (each confined to its
/// own core, hence its own tile), so each tile accumulates privately and
/// the shards are merged into [`SimStats`] in tile order at teardown —
/// and, transiently, whenever a state digest needs machine-wide totals.
#[derive(Clone, Debug, Default)]
pub struct TileStats {
    /// See [`SimStats::fast_path_advances`].
    pub fast_path_advances: u64,
    /// See [`SimStats::full_sync_checks`].
    pub full_sync_checks: u64,
    /// See [`SimStats::floor_recomputes`].
    pub floor_recomputes: u64,
    /// See [`SimStats::max_neighbor_drift`].
    pub max_neighbor_drift: VDuration,
}

impl SimStats {
    /// Fold one tile's sharded counters into the machine-wide totals
    /// (sums for the counters, max for the drift bound).
    pub(crate) fn absorb_tile(&mut self, shard: &TileStats) {
        self.fast_path_advances += shard.fast_path_advances;
        self.full_sync_checks += shard.full_sync_checks;
        self.floor_recomputes += shard.floor_recomputes;
        if shard.max_neighbor_drift > self.max_neighbor_drift {
            self.max_neighbor_drift = shard.max_neighbor_drift;
        }
    }
}

impl SimStats {
    /// Fraction of processed messages that were late (0 when none).
    pub fn late_fraction(&self) -> f64 {
        let total = self.late_messages + self.on_time_messages;
        if total == 0 {
            0.0
        } else {
            self.late_messages as f64 / total as f64
        }
    }

    /// Average busy time across cores, in cycles.
    pub fn mean_busy_cycles(&self) -> f64 {
        self.busy.mean_ticks() / simany_time::TICKS_PER_CYCLE as f64
    }

    /// Mean of the available-parallelism samples (0 when not sampled).
    pub fn mean_parallelism(&self) -> f64 {
        if self.parallelism_samples.is_empty() {
            return 0.0;
        }
        self.parallelism_samples
            .iter()
            .map(|&x| f64::from(x))
            .sum::<f64>()
            / self.parallelism_samples.len() as f64
    }

    /// Percentile (0..=100) of the available-parallelism samples.
    pub fn parallelism_percentile(&self, p: f64) -> u32 {
        if self.parallelism_samples.is_empty() {
            return 0;
        }
        let mut v = self.parallelism_samples.clone();
        v.sort_unstable();
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }

    /// Core utilization: mean busy time divided by final time (0..1).
    pub fn utilization(&self) -> f64 {
        if self.final_vtime.ticks() == 0 || self.busy.n_cores == 0 {
            return 0.0;
        }
        self.busy.mean_ticks() / self.final_vtime.ticks() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_fraction_handles_zero() {
        let s = SimStats::default();
        assert_eq!(s.late_fraction(), 0.0);
    }

    #[test]
    fn late_fraction_ratio() {
        let s = SimStats {
            late_messages: 1,
            on_time_messages: 3,
            ..Default::default()
        };
        assert!((s.late_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn utilization_computation() {
        let mut busy = BusySummary::default();
        busy.record(CoreId(0), VDuration::from_cycles(50));
        busy.record(CoreId(1), VDuration::from_cycles(100));
        let s = SimStats {
            final_vtime: VirtualTime::from_cycles(100),
            busy,
            ..Default::default()
        };
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert!((s.mean_busy_cycles() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn busy_summary_streams_top_cores() {
        let mut b = BusySummary::default();
        for i in 0..20u32 {
            // Busy times 0, 10, 20, ..., with a tie between cores 3 and 13.
            let cycles = if i == 13 { 30 } else { u64::from(i) * 10 };
            b.record(CoreId(i), VDuration::from_cycles(cycles));
        }
        assert_eq!(b.n_cores, 20);
        assert_eq!(b.max, VDuration::from_cycles(190));
        assert_eq!(b.top.len(), 8);
        assert_eq!(b.top[0], (CoreId(19), VDuration::from_cycles(190)));
        // Descending, and the tie at 30 cycles keeps the lower id first
        // (core 3 recorded before core 13).
        for w in b.top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let mut tie = BusySummary::default();
        for i in 0..4u32 {
            tie.record(CoreId(i), VDuration::from_cycles(5));
        }
        assert_eq!(tie.top[0].0, CoreId(0));
        assert_eq!(tie.top[3].0, CoreId(3));
    }
}
