//! Engine configuration: synchronization policy, scheduling policy, core
//! speeds and run-time cost knobs.

use simany_net::NetworkParams;
use simany_time::{CoreSpeed, CostModel, VDuration};

/// Virtual-time synchronization policy.
///
/// The paper's contribution is [`SyncPolicy::Spatial`]; the other variants
/// reproduce the schemes of the related work (§VII) for ablation studies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// **Spatial synchronization** (paper §II.A): a core may run ahead of
    /// the most-late of its *topological neighbors* by at most `t`;
    /// otherwise it stalls until the laggard catches up. Purely local: the
    /// drift between any two cores is bounded by `distance × t`.
    Spatial {
        /// Maximum local drift `T`.
        t: VDuration,
    },
    /// Bounded slack against the *global* minimum virtual time (SlackSim's
    /// bounded-slack scheme): a core stalls whenever it is more than
    /// `window` ahead of the slowest active core anywhere in the machine.
    BoundedSlack {
        /// Global window size.
        window: VDuration,
    },
    /// Random-referee scheme in the spirit of Graphite's LaxP2P: each core
    /// periodically checks itself against a randomly chosen other core and
    /// stalls while it is more than `slack` ahead of that referee.
    RandomReferee {
        /// Allowed lead over the chosen referee.
        slack: VDuration,
    },
    /// Conservative global order: only the core(s) holding the minimum
    /// virtual time may advance. Exact event ordering; this is what the
    /// cycle-level reference simulator uses.
    Conservative,
    /// No synchronization at all: cores free-run (fastest, least accurate).
    Unbounded,
}

impl SyncPolicy {
    /// The paper's reference configuration: spatial synchronization with
    /// `T = 100` cycles (§V, *Virtual Timing Parameters*).
    pub fn paper_default() -> Self {
        SyncPolicy::Spatial {
            t: VDuration::from_cycles(100),
        }
    }
}

/// How the scheduler chooses among ready cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PickPolicy {
    /// Pick the ready core with the lowest published virtual time
    /// (default: closest to a conservative discrete-event order, and the
    /// choice that makes the deadlock-avoidance argument of paper §II.B
    /// immediate).
    LowestVtime,
    /// Round-robin over ready cores.
    RoundRobin,
    /// Uniformly random among ready cores (seeded, deterministic).
    Random,
}

/// Full engine configuration.
#[derive(Clone)]
pub struct EngineConfig {
    /// Synchronization policy (default: spatial, `T = 100` cycles).
    pub sync: SyncPolicy,
    /// Scheduler pick policy.
    pub pick: PickPolicy,
    /// Master seed: branch predictors, scheduler randomness and any
    /// runtime-level randomness all derive from it.
    pub seed: u64,
    /// Instruction-class cost model shared by all cores.
    pub cost_model: CostModel,
    /// Per-core speed factors. `None` = uniform base speed; otherwise must
    /// have one entry per core (polymorphic architectures, paper §V).
    pub speeds: Option<Vec<CoreSpeed>>,
    /// Network cost parameters.
    pub net: NetworkParams,
    /// Cost of switching context to a *resuming* task (paper §V: 15
    /// cycles). Charged when a woken (e.g. joining) activity regains its
    /// core.
    pub resume_cost: VDuration,
    /// Stack size for task worker threads. Task bodies are real recursive
    /// Rust code, so this must accommodate the deepest kernel recursion.
    pub worker_stack_bytes: usize,
    /// Abort the simulation if total live activities ever exceeds this
    /// (guards against runaway task explosions in buggy programs).
    pub max_live_activities: usize,
    /// Optional event tracer (see [`crate::trace`]).
    pub tracer: Option<std::sync::Arc<dyn crate::trace::Tracer>>,
    /// Sample the *available host parallelism* — how many cores have
    /// independently runnable work at an instant — every this many
    /// scheduler picks (0 = off). Reproduces the paper's §VIII preliminary
    /// study: "at least from networks with 64 cores, there are enough
    /// cores verifying these conditions to keep all cores of current
    /// multi-core host machines busy."
    pub parallelism_sample_every: u64,
    /// Profile the sequential pick loop: accumulate wall time per loop
    /// phase (floor maintenance, ready-queue pops, scheduler overhead,
    /// action execution) into [`crate::SimStats`]'s `prof_*_ns` fields.
    /// Observation only — never affects the schedule — but it puts two
    /// clock reads on every pick, so it is off by default and meant for
    /// ranking per-event costs at scale, not for production runs.
    pub profile_picks: bool,
    /// Opt-in stale-entry compaction of the lowest-vtime ready heap (see
    /// `ReadyQueue::maybe_compact`): when lazy-deleted garbage dominates
    /// the heap, drop the entries of unqueued cores and re-heapify.
    /// Deterministic for a fixed `(seed, threads)` and identical across
    /// `threads <= 1`, but it *perturbs the pick order* relative to a
    /// non-compacting run (a dropped garbage entry can no longer trigger
    /// an early revalidation), so it is off by default: enable it for
    /// long-running duplicate-heavy workloads where heap growth matters
    /// more than schedule continuity with prior releases.
    pub compact_ready: bool,
    /// Optional fault plan (link failures, message drops/delays/corruption,
    /// core failures). `None` — and an empty plan — are bit-identical to a
    /// perfect machine. Shared with the network model via `Arc`.
    pub fault: Option<std::sync::Arc<simany_fault::FaultPlan>>,
    /// Enable the drift-headroom fast path for spatial synchronization:
    /// timing annotations that stay within the cached `local_floor + T`
    /// bound (and have no due messages) skip the publish sweep and policy
    /// check entirely. Bit-exact with the full path; only active under
    /// [`PickPolicy::LowestVtime`], whose ready-queue order is independent
    /// of insertion order. Disable to measure the fast-path win.
    pub fast_path: bool,
    /// Enable the online invariant sanitizer: every slow-path
    /// synchronization decision, publish sweep and message delivery is
    /// re-validated against an independent recomputation of the paper's
    /// invariants (neighbor drift <= T, global drift <= diameter x T,
    /// shadow-time monotonicity, birth-time floors, per-sender FIFO,
    /// causality). Violations are counted in
    /// [`crate::SimStats::sanitizer_violations`] and reported as
    /// [`crate::TraceEvent::SanitizerViolation`] events. Off by default;
    /// when off the checks cost a single untaken branch outside the hot
    /// fast path.
    pub sanitize: bool,
    /// Stall watchdog: abort with [`crate::SimError::Stalled`] after this
    /// many consecutive scheduler picks without any virtual-time progress
    /// (livelock defense; classic deadlocks are detected exactly by the
    /// quiet-state check). `None` disables the watchdog. The default is
    /// generous enough that no legitimate workload trips it.
    pub watchdog_picks: Option<u64>,
    /// Write a verification checkpoint every time the maximum virtual time
    /// crosses a multiple of this interval. `None` disables checkpointing.
    /// See `crate::checkpoint` for the format and the replay-based resume
    /// model.
    pub checkpoint_every: Option<VDuration>,
    /// Path the checkpoint file is (re)written to. Required when
    /// `checkpoint_every` is set.
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Resume from (i.e. deterministically replay and verify against) a
    /// checkpoint previously written by a run with the same program,
    /// configuration and seed. On reaching the checkpoint's virtual-time
    /// watermark the engine compares state digests and aborts with
    /// [`crate::SimError::CheckpointMismatch`] on divergence.
    pub resume_from: Option<std::path::PathBuf>,
    /// External-preemption budget: stop with [`crate::SimError::Preempted`]
    /// after this many *fresh-ground* checkpoints have been written — ones
    /// whose watermark lies strictly beyond the resume watermark (all
    /// checkpoints are fresh when not resuming). The checkpoint on disk is
    /// valid at the instant of preemption, so a driver (e.g. the
    /// `simany-serve` sweep scheduler) can park the run and later resume it
    /// with [`Self::resume_from`] under the usual bit-identity contract;
    /// the strict-progress rule guarantees each preempt/resume round
    /// advances at least one checkpoint interval. Requires
    /// [`Self::checkpoint_every`]. Observation-only: excluded from the
    /// config digest, like the checkpoint paths themselves.
    pub preempt_after_checkpoints: Option<u64>,
    /// Host worker parallelism: partition the topology into up to this
    /// many contiguous tiles and let one activity per tile execute
    /// concurrently (see `engine` module docs, *Parallel host execution*).
    /// `0` and `1` both select the sequential engine, which the parallel
    /// mode with `threads = 1` is bit-identical to. For a fixed value,
    /// runs are bit-identical across repetitions; different values may
    /// schedule differently (each is its own deterministic trajectory, so
    /// checkpoints only resume under the same thread count).
    pub threads: u32,
    /// Parallel mode: shard the epoch's phase B by destination tile —
    /// deferred boundary-clock publishes and routed message deliveries are
    /// bucketed per destination tile during the serial walk and applied by
    /// the workers in a parallel replay frame. Bit-exact with the serial
    /// replay (the walk precomputes every scheduler-visible effect in
    /// serial order; only commuting per-core field writes are parallel), so
    /// this is an optimization toggle like [`Self::fast_path`]: disable to
    /// measure the sharding win. Automatically off while the sanitizer is
    /// on (its delivery hooks are serial-only) and under `threads <= 1`.
    pub shard_phase_b: bool,
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("sync", &self.sync)
            .field("pick", &self.pick)
            .field("seed", &self.seed)
            .field("speeds", &self.speeds)
            .field("net", &self.net)
            .field("resume_cost", &self.resume_cost)
            .field("worker_stack_bytes", &self.worker_stack_bytes)
            .field("max_live_activities", &self.max_live_activities)
            .field("tracer", &self.tracer.as_ref().map(|_| "..."))
            .field("fault", &self.fault.as_ref().map(|_| "..."))
            .field("parallelism_sample_every", &self.parallelism_sample_every)
            .field("profile_picks", &self.profile_picks)
            .field("compact_ready", &self.compact_ready)
            .field("fast_path", &self.fast_path)
            .field("sanitize", &self.sanitize)
            .field("watchdog_picks", &self.watchdog_picks)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("checkpoint_path", &self.checkpoint_path)
            .field("resume_from", &self.resume_from)
            .field("preempt_after_checkpoints", &self.preempt_after_checkpoints)
            .field("threads", &self.threads)
            .field("shard_phase_b", &self.shard_phase_b)
            .finish()
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sync: SyncPolicy::paper_default(),
            pick: PickPolicy::LowestVtime,
            seed: 0x51_3A_17,
            cost_model: CostModel::default(),
            speeds: None,
            net: NetworkParams::default(),
            resume_cost: VDuration::from_cycles(15),
            worker_stack_bytes: 1 << 20,
            max_live_activities: 1 << 20,
            tracer: None,
            fault: None,
            parallelism_sample_every: 0,
            profile_picks: false,
            compact_ready: false,
            fast_path: true,
            sanitize: false,
            watchdog_picks: Some(10_000_000),
            checkpoint_every: None,
            checkpoint_path: None,
            resume_from: None,
            preempt_after_checkpoints: None,
            threads: 1,
            shard_phase_b: true,
        }
    }
}

impl EngineConfig {
    /// Configuration with a specific spatial drift bound `T` (in cycles).
    pub fn with_drift_cycles(mut self, t: u64) -> Self {
        self.sync = SyncPolicy::Spatial {
            t: VDuration::from_cycles(t),
        };
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable the drift-headroom fast path (see
    /// [`Self::fast_path`]).
    pub fn with_fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    /// Enable pick-loop phase profiling (see [`Self::profile_picks`]).
    pub fn with_profile_picks(mut self, on: bool) -> Self {
        self.profile_picks = on;
        self
    }

    /// Enable stale-entry ready-heap compaction (see
    /// [`Self::compact_ready`]).
    pub fn with_compact_ready(mut self, on: bool) -> Self {
        self.compact_ready = on;
        self
    }

    /// Install a fault plan (see `simany_fault::FaultPlan`).
    pub fn with_fault_plan(mut self, plan: std::sync::Arc<simany_fault::FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Enable or disable the online invariant sanitizer (see
    /// [`Self::sanitize`]).
    pub fn with_sanitize(mut self, on: bool) -> Self {
        self.sanitize = on;
        self
    }

    /// Set (or disable, with `None`) the stall-watchdog pick budget (see
    /// [`Self::watchdog_picks`]).
    pub fn with_watchdog_picks(mut self, picks: Option<u64>) -> Self {
        self.watchdog_picks = picks;
        self
    }

    /// Write verification checkpoints every `every` of virtual-time
    /// progress to `path`.
    pub fn with_checkpoint(
        mut self,
        every: VDuration,
        path: impl Into<std::path::PathBuf>,
    ) -> Self {
        self.checkpoint_every = Some(every);
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Resume from (replay and verify against) the checkpoint at `path`.
    pub fn with_resume(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Set (or clear) the external-preemption budget (see
    /// [`Self::preempt_after_checkpoints`]).
    pub fn with_preempt_after_checkpoints(mut self, checkpoints: Option<u64>) -> Self {
        self.preempt_after_checkpoints = checkpoints;
        self
    }

    /// Set the host worker parallelism (see [`Self::threads`]).
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Enable or disable destination-tile sharding of the epoch's phase B
    /// (see [`Self::shard_phase_b`]).
    pub fn with_shard_phase_b(mut self, on: bool) -> Self {
        self.shard_phase_b = on;
        self
    }

    /// Set per-core speeds (polymorphic architecture).
    pub fn with_speeds(mut self, speeds: Vec<CoreSpeed>) -> Self {
        self.speeds = Some(speeds);
        self
    }

    /// The paper's polymorphic speed pattern for `n` cores: cores alternate
    /// between half speed and 1.5× speed, preserving aggregate computing
    /// power (§V, *Architecture Exploration*).
    pub fn polymorphic_speeds(n: u32) -> Vec<CoreSpeed> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    CoreSpeed::HALF
                } else {
                    CoreSpeed::THREE_HALVES
                }
            })
            .collect()
    }

    /// Speed of core `i` under this configuration.
    pub fn speed_of(&self, i: u32) -> CoreSpeed {
        match &self.speeds {
            Some(v) => v[i as usize],
            None => CoreSpeed::BASE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = EngineConfig::default();
        assert_eq!(
            c.sync,
            SyncPolicy::Spatial {
                t: VDuration::from_cycles(100)
            }
        );
        assert_eq!(c.resume_cost, VDuration::from_cycles(15));
        assert_eq!(c.pick, PickPolicy::LowestVtime);
    }

    #[test]
    fn polymorphic_pattern() {
        let speeds = EngineConfig::polymorphic_speeds(4);
        assert_eq!(
            speeds,
            vec![
                CoreSpeed::HALF,
                CoreSpeed::THREE_HALVES,
                CoreSpeed::HALF,
                CoreSpeed::THREE_HALVES
            ]
        );
        // Aggregate power equals uniform.
        let sum: f64 = speeds.iter().map(|s| s.as_f64()).sum();
        assert!((sum - 4.0).abs() < 1e-12);
    }

    #[test]
    fn builders_compose() {
        let c = EngineConfig::default()
            .with_drift_cycles(500)
            .with_seed(7)
            .with_speeds(EngineConfig::polymorphic_speeds(2));
        assert_eq!(
            c.sync,
            SyncPolicy::Spatial {
                t: VDuration::from_cycles(500)
            }
        );
        assert_eq!(c.seed, 7);
        assert_eq!(c.speed_of(0), CoreSpeed::HALF);
        assert_eq!(c.speed_of(1), CoreSpeed::THREE_HALVES);
    }

    #[test]
    fn uniform_speed_when_unset() {
        let c = EngineConfig::default();
        assert_eq!(c.speed_of(5), CoreSpeed::BASE);
    }
}
