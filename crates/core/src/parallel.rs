//! Parallel host execution: the epoch coordinator (`threads > 1`).
//!
//! The topology is partitioned into contiguous tiles
//! ([`simany_topology::partition_bfs`]); the scheduler loop is replaced by
//! an *epoch* cycle that alternates a serial phase with a confined
//! concurrent phase:
//!
//! 1. **Collect** (serial): run the exact sequential per-pick bookkeeping
//!    (checkpoints, watchdog, sanitizer, message processing, idle
//!    transitions), but instead of granting each runnable activity
//!    exclusively, *stash* it into a batch of up to `MEMBERS_PER_TILE`
//!    activities per tile. All of a tile's members execute from a single
//!    worker thread's queue, so their effects keep a deterministic order;
//!    an activity whose earlier run still pins a worker thread claims its
//!    tile exclusively. Extra grantable activities on full tiles are
//!    deferred to the next epoch.
//! 2. **Phase A** (concurrent, lock-free coordination): publish the batch
//!    as an *execution frame* ([`crate::frame::FrameSync`]): the
//!    coordinator fills each fresh tile's lane with its queued members,
//!    bumps an atomic frame counter and **releases the simulation lock**.
//!    Frame workers spin/park on the counter and claim tiles off an
//!    atomic cursor — no condvar wake per tile, no `Mutex<Sim>` on the
//!    coordination path. Each activity runs its task code natively,
//!    *confined* to mutating its own core: publishes are deferred, sends
//!    are pushed into the tile's lane outbox (lock-free while the
//!    confined cache is armed), synchronization checks run
//!    side-effect-free against frozen published values
//!    ([`crate::sync::sync_ok_frozen`]), and annotations that stay inside
//!    the frozen drift headroom advance the clock without taking the
//!    simulation lock at all (see `Confined` in [`crate::ctx`]).
//!    Completions deposit into the lane and retire from an atomic
//!    countdown — also lock-free. Anything needing shared state parks
//!    with an [`EpochPending`] entry (pinning its host thread); a parked
//!    member's queued successors are spilled into the lane and revert to
//!    `Pending` at phase B. The countdown reaching zero wakes the
//!    coordinator.
//! 3. **Phase B**: once every member has parked or finished, replay the
//!    cross-core effects in deterministic tile order. The *scheduler-
//!    visible* part stays serial: landing batched confined advances,
//!    routing buffered messages through the shared network model (with
//!    every ready-queue decision precomputed against the frozen clocks),
//!    and the serial tail — park resolution (parked activities re-granted
//!    the token *exclusively*, one at a time, replaying the authoritative
//!    sequential logic), finishes and panics in tile order. The *per-core
//!    commuting* part — writing published boundary clocks, invalidating
//!    neighbor floor caches, depositing routed envelopes into inboxes —
//!    is bucketed by destination tile during the serial walk and applied
//!    by the workers in a parallel *replay frame* (serially below a size
//!    threshold; bit-identical either way, see `shard_phase_b`).
//!
//! ## Determinism
//!
//! Everything that can influence another core serializes through phase B
//! in tile order. Within a tile, order is a single claimant's execution
//! order over a deterministically collected lane queue, so the replay
//! order is a pure function of the batch — not of thread scheduling. The
//! sharded replay applies only pairwise-commuting per-core writes, with
//! per-destination order fixed by the serial walk (source-tile order,
//! then outbox sequence), so worker interleaving cannot reorder anything
//! observable. Worker *identities* are the only racy quantity (which
//! worker wins a claim is a host race), and they are never observable: no
//! statistic a digest covers, trace, or simulation outcome depends on
//! which OS thread hosts an activity (the spin/park/claim diagnostics in
//! [`crate::stats::SimStats`] are explicitly excluded). Fixed
//! `--threads N` + seed therefore reproduces bit-identically, and
//! `threads <= 1` never constructs a partition at all — it runs the
//! unmodified sequential engine.
//!
//! ## Why this is faster
//!
//! A sequential grant costs two condvar handoffs (scheduler → worker,
//! worker → scheduler). An epoch of `B` confined grants costs one frame
//! launch (one atomic store + one `notify_all`, and none at all for
//! workers inside their spin budget) plus one coordinator wakeup —
//! handoff cost amortizes over the whole batch — and confined annotations
//! inside the frozen drift headroom skip the simulation lock entirely;
//! with the lane outbox, so do confined sends. Grants that do need the
//! serial phase (failed checks, compound `Ops`) cost the same handoffs as
//! a sequential grant, no more. On multi-CPU hosts phase A overlaps the
//! native task bodies, and the destination-sharded replay overlaps the
//! inbox/publish writes that used to serialize phase B.

use crate::activity::{ActivityId, ActivityState};
use crate::config::SyncPolicy;
use crate::engine::{
    decide, deliver, diagnostic_snapshot, is_ready, make_current, process_message, push_ready,
    spawn_frame_worker, Action, EpochPending, Failure, Shared, Sim, Token,
};
use crate::frame::{FrameKind, FrameSync, FreshJob};
use crate::sync;
use parking_lot::MutexGuard;
use simany_time::VirtualTime;
use simany_topology::CoreId;
use std::sync::Arc;
use std::time::Instant;

/// Most members one tile contributes to one epoch. A tile's fresh members
/// all run from a single worker's queue (one condvar wakeup for the lot),
/// so deeper queues amortize the scheduler round trips further; the cap
/// bounds how much work one epoch defers ahead of the serial phase's
/// checkpoint/sanitizer/watchdog bookkeeping.
const MEMBERS_PER_TILE: usize = 8;

/// Minimum bucketed phase-B work (published-clock writes + floor-cache
/// invalidations + inbox deposits) before the replay runs as a parallel
/// frame; below it the coordinator applies the buckets serially through
/// the same code. Purely a latency trade (a frame launch costs a release
/// store plus worker wakeups), never a semantic one: the threshold reads
/// only the epoch's bucketed work, so the decision is deterministic, and
/// the applied writes are identical either way.
const REPLAY_FRAME_MIN_WORK: usize = 32;

/// Stash `aid` into the running batch: mark it granted *now* so the
/// collection loop cannot pick it (or its core) again before the epoch
/// launches, and count the resume exactly where a sequential grant would.
fn stash_grant(sim: &mut Sim, batch: &mut Vec<ActivityId>, aid: ActivityId) {
    sim.act_mut(aid).state = ActivityState::Granted;
    sim.stats.activity_resumes += 1;
    batch.push(aid);
}

/// Try to claim `aid` for the running batch on tile `t`; returns false if
/// the tile cannot take it this epoch (the caller defers it). All of a
/// tile's members must execute on ONE worker thread so their buffered
/// cross-tile effects keep a deterministic order: fresh (never-run)
/// activities are queued together, while an already-pinned activity — one
/// whose earlier run still owns a worker thread's stack — must run on that
/// thread and therefore claims the tile exclusively.
fn try_stash(
    sim: &mut Sim,
    batch: &mut Vec<ActivityId>,
    tile_solo: &mut [Option<ActivityId>],
    tile_fresh: &mut [Vec<ActivityId>],
    t: usize,
    aid: ActivityId,
) -> bool {
    if tile_solo[t].is_some() {
        return false;
    }
    if sim.act(aid).worker.is_some() {
        if !tile_fresh[t].is_empty() {
            return false;
        }
        tile_solo[t] = Some(aid);
    } else {
        if tile_fresh[t].len() >= MEMBERS_PER_TILE {
            return false;
        }
        tile_fresh[t].push(aid);
    }
    stash_grant(sim, batch, aid);
    true
}

/// Attempt to run the epoch's deferred boundary-clock publications as
/// bucketed replay-frame writes instead of serial [`sync::publish`] calls.
/// Returns `false` (having mutated nothing) if any member falls outside
/// the reduced shape; the caller then takes the serial walk for the whole
/// epoch.
///
/// Under the spatial policy, `publish` on a non-idle core whose clock only
/// *rose*, with no idle neighbors (the shadow-relaxation worklist starts
/// empty) and no registered waiters (`take_waiters` is a no-op), reduces
/// to exactly: clear `publish_pending`, fold the clock into `max_vtime`,
/// count a sweep, mark the floor dirty, store the new published value,
/// and conditionally invalidate each neighbor's cached floor minimum
/// (the rising arm of `note_published_change`). The first four are
/// scheduler bookkeeping — committed here, serially, in batch order,
/// because checkpoints and the watchdog read `max_vtime` before the next
/// epoch. The last two touch only the written core's state, so they are
/// bucketed by that core's tile for the replay frame. Per-target bucket
/// order is append order = batch order = the serial publish order, so the
/// replayed invalidation conditionals read exactly the state their serial
/// counterparts would have.
fn try_shard_publishes(
    sim: &mut Sim,
    shared: &Shared,
    fs: &FrameSync,
    batch: &[ActivityId],
) -> bool {
    // Pass 1: the gate, read-only. Batch members sit on distinct cores,
    // and nothing a gated publish does can change another member's
    // idleness, waiter set or published value, so checking against the
    // pre-publish state is exact.
    for &aid in batch {
        let Some(act) = sim.acts.get(&aid.0) else {
            continue;
        };
        let c = act.core;
        let i = c.index();
        if !sim.cores.publish_pending[i] {
            continue;
        }
        if sim.cores.is_idle(i)
            || sim.cores.vtime[i] < sim.cores.published[i]
            || !sim.waiters[i].is_empty()
            || shared
                .topo
                .neighbors(c)
                .iter()
                .any(|&(m, _)| sim.cores.is_idle(m.index()))
        {
            return false;
        }
    }
    // Pass 2: commit, in batch order.
    for &aid in batch {
        let Some(act) = sim.acts.get(&aid.0) else {
            continue;
        };
        let c = act.core;
        let i = c.index();
        if !sim.cores.publish_pending[i] {
            continue;
        }
        sim.cores.publish_pending[i] = false;
        let newval = sim.cores.vtime[i];
        let oldval = sim.cores.published[i];
        if newval > sim.max_vtime {
            sim.max_vtime = newval;
        }
        if newval == oldval {
            continue; // serial publish returns before the sweep, too
        }
        sim.stats.publish_sweeps += 1;
        sim.floor_dirty = true;
        // SAFETY: no frame in flight between phase A's quiescence and the
        // replay launch; the coordinator is the sole lane accessor.
        unsafe { fs.lane_mut(shared.tile_of(c)) }
            .pub_cores
            .push((c, newval));
        for &(m, _) in shared.topo.neighbors(c) {
            unsafe { fs.lane_mut(shared.tile_of(m)) }
                .inval_events
                .push((m, oldval));
        }
    }
    true
}

/// The parallel scheduler loop. Mirrors the sequential loop's observable
/// bookkeeping; see the module docs for the epoch protocol. Takes and
/// returns the simulation guard so `simulate` runs the common teardown.
pub(crate) fn run_scheduler<'a>(
    shared: &'a Arc<Shared>,
    mut sim: MutexGuard<'a, Sim>,
    handles: &mut Vec<std::thread::JoinHandle<()>>,
    cfg_digest: u64,
    resume_target: Option<crate::checkpoint::Checkpoint>,
) -> MutexGuard<'a, Sim> {
    let n_tiles = shared.partition.as_ref().map_or(1, |p| p.n_tiles());
    let global_policy = matches!(
        shared.config.sync,
        SyncPolicy::BoundedSlack { .. }
            | SyncPolicy::Conservative
            | SyncPolicy::RandomReferee { .. }
    );

    let mut ckpt = crate::checkpoint::CheckpointDriver::new(&shared.config, resume_target);
    let mut wd_last_vtime = sim.max_vtime;
    let mut wd_last_pick: u64 = 0;

    let mut batch: Vec<ActivityId> = Vec::new();
    let mut deferred: Vec<CoreId> = Vec::new();
    let mut tile_solo: Vec<Option<ActivityId>> = vec![None; n_tiles];
    let mut tile_fresh: Vec<Vec<ActivityId>> = vec![Vec::new(); n_tiles];
    // Frame-protocol scratch: the claimable-tile list handed to the frame,
    // the replay-tile list for phase B, and the per-destination pending
    // earliest-arrival minimum used to precompute ready-queue decisions
    // while inbox pushes are still bucketed (MAX = "nothing pending").
    let mut claimable: Vec<u32> = Vec::new();
    let mut replay_tiles: Vec<u32> = Vec::new();
    let mut pend_min: Vec<VirtualTime> = vec![VirtualTime::MAX; sim.cores.len()];
    let mut pend_touched: Vec<CoreId> = Vec::new();
    let mut phase_a_ns: u64 = 0;
    let mut phase_b_ns: u64 = 0;
    let mut serial_tail_ns: u64 = 0;

    'run: loop {
        // ------------------------------------------------------ collect
        loop {
            if sim.failure.is_some() {
                break 'run;
            }
            if !ckpt.observe(&mut sim, shared.as_ref(), cfg_digest) {
                break 'run;
            }
            if global_policy && sim.floor_dirty {
                sim.floor_dirty = false;
                // Mirrors the sequential loop: threshold-bucketed wakes
                // for the pure floor policies, the RNG-order-preserving
                // full sweep for RandomReferee.
                if matches!(shared.config.sync, SyncPolicy::RandomReferee { .. }) {
                    sync::recheck_all_stalled(&mut sim, shared);
                } else {
                    sync::wake_stalled_by_floor(&mut sim, shared);
                }
            }
            // Pop a valid ready core (skipping stale entries); opt-in
            // compaction first, when lazy-deleted garbage dominates the
            // heap (schedule-perturbing — see `EngineConfig::compact_ready`).
            if shared.config.compact_ready {
                let s = &mut *sim;
                s.ready.maybe_compact(&s.cores.in_ready);
            }
            let mut picked = None;
            while let Some(c) = sim.ready.pop() {
                sim.cores.in_ready[c.index()] = false;
                if is_ready(&sim, c) {
                    picked = Some(c);
                    break;
                }
                sim.stats.ready_stale_skipped += 1;
            }
            let Some(c) = picked else {
                if !batch.is_empty() {
                    break; // launch what we have
                }
                let quiet = sim.live_activities == 0
                    && sim.cores.inboxes.total_messages() == 0
                    && sim.total_queue_hint == 0;
                if quiet {
                    break 'run; // normal completion
                }
                sim.failure = Some(Failure::Deadlock(crate::engine::deadlock_report(&sim)));
                break 'run;
            };
            sim.stats.scheduler_picks += 1;
            if sim.max_vtime > wd_last_vtime {
                wd_last_vtime = sim.max_vtime;
                wd_last_pick = sim.stats.scheduler_picks;
            } else if let Some(budget) = shared.config.watchdog_picks {
                if sim.stats.scheduler_picks - wd_last_pick >= budget {
                    sim.failure = Some(Failure::Stalled {
                        at: sim.max_vtime,
                        picks: budget,
                        report: diagnostic_snapshot(&sim),
                    });
                    break 'run;
                }
            }
            if sim.sanitizer.is_some()
                && sim
                    .stats
                    .scheduler_picks
                    .is_multiple_of(crate::sanitizer::SCAN_EVERY_PICKS)
            {
                crate::sanitizer::scan(&mut sim, shared);
            }
            let sample_every = shared.config.parallelism_sample_every;
            if sample_every != 0 && sim.stats.scheduler_picks.is_multiple_of(sample_every) {
                // Available host parallelism, O(1): distinct cores with
                // queued ready-work, plus the just-picked core, plus the
                // cores already claimed or deferred this epoch (those are
                // held out of the queue until the serial phase but carry
                // runnable work). Replaces the historical O(cores)
                // `is_ready` sweep, which does not scale to mega-core
                // machines at any useful sample rate.
                let avail = sim.ready.live_len() + 1 + batch.len() + deferred.len();
                sim.stats.parallelism_samples.push(avail as u32);
            }

            // Stashed and deferred cores stay out of the ready queue until
            // the epoch's serial phase re-pushes them: re-queuing a core
            // whose activity is already claimed would either re-defer it
            // forever or reorder its messages around the pending grant.
            let mut skip_repush = false;
            match decide(&sim, c) {
                Action::Message => process_message(&mut sim, shared, c),
                Action::Grant(aid) => {
                    let t = shared.tile_of(c);
                    if !try_stash(
                        &mut sim,
                        &mut batch,
                        &mut tile_solo,
                        &mut tile_fresh,
                        t,
                        aid,
                    ) {
                        deferred.push(c);
                    }
                    skip_repush = true;
                }
                Action::ResumeParked => {
                    let aid = sim.cores.res_pop_front(c.index()).unwrap();
                    make_current(&mut sim, shared, aid);
                    // Claim it if still allowed (it may have become stalled
                    // by the resume-cost advance).
                    if sim.act(aid).grantable() {
                        let t = shared.tile_of(c);
                        if !try_stash(
                            &mut sim,
                            &mut batch,
                            &mut tile_solo,
                            &mut tile_fresh,
                            t,
                            aid,
                        ) {
                            deferred.push(c);
                        }
                        skip_repush = true;
                    }
                }
                Action::Idle => {
                    let before_hint = sim.cores.queue_hint[c.index()];
                    {
                        let mut ops = crate::ops::Ops::new(&mut sim, shared);
                        shared.hooks.on_idle(&mut ops, c);
                    }
                    assert!(
                        sim.cores.queue_hint[c.index()] < before_hint
                            || sim.cores.current[c.index()].is_some(),
                        "on_idle made no progress (runtime bug)"
                    );
                }
                Action::Nothing => {}
            }
            if !skip_repush && is_ready(&sim, c) {
                push_ready(&mut sim, c);
            }
            if batch.len() == n_tiles * MEMBERS_PER_TILE {
                break; // full house: every tile is at capacity
            }
        }

        // ------------------------------------------------------ phase A
        // Members sorted by tile: phase B replays in tile order by
        // construction and the lane fill order is deterministic (it is not
        // observable either way, but determinism-by-construction is
        // cheaper to audit than determinism-by-argument). The sort is
        // stable, so a tile's fresh members keep their stash order — the
        // order their claimant executes them in.
        batch.sort_by_key(|&aid| shared.tile_of(sim.act(aid).core));
        sim.stats.parallel_epochs += 1;
        sim.stats.epoch_grants += batch.len() as u64;
        let fs = shared.frame.as_ref().expect("parallel mode without frames");
        claimable.clear();
        for (t, fresh) in tile_fresh.iter().enumerate() {
            if fresh.is_empty() {
                continue;
            }
            // SAFETY: no frame is in flight (the previous one quiesced
            // before phase B and the next launches below), so the
            // coordinator is the only lane accessor.
            let lane = unsafe { fs.lane_mut(t) };
            debug_assert!(lane.queue.is_empty() && lane.spilled.is_empty());
            for &aid in fresh {
                let act = sim.act_mut(aid);
                // Fresh members are `Pending` by construction: any activity
                // that ran before either finished or parked (which pinned a
                // worker, making it a solo), so its closure is still here.
                let job = act.job.take().expect("fresh epoch member without a job");
                lane.queue.push_back(FreshJob {
                    aid,
                    core: act.core,
                    name: act.name,
                    job,
                });
            }
            claimable.push(t as u32);
        }
        // Every claimable tile must find an unpinned worker even if every
        // other tile's claimant parks mid-frame (parking pins the thread
        // for the activity's lifetime, taking it out of the claim pool).
        while sim.frame_workers - sim.pinned_workers < claimable.len() {
            spawn_frame_worker(&mut sim, shared, handles);
        }
        sim.token = Token::Epoch;
        let ta = Instant::now();
        fs.launch(batch.len(), &claimable, FrameKind::Exec);
        // Solo members (pinned by an earlier park) re-enter through their
        // own thread's condvar under the epoch-wide token, not through a
        // frame claim: their stacks are already parked in `wait_for_grant`.
        for aid in tile_solo.iter().take(n_tiles).filter_map(|s| *s) {
            let w = sim.act(aid).worker.expect("pinned solo without a worker");
            sim.worker_cvs[w].notify_one();
        }
        // The whole point: the coordinator drops the simulation lock for
        // the duration of phase A. Workers coordinate through the frame's
        // atomics alone and only take the lock at interaction points.
        drop(sim);
        fs.wait_quiescent();
        sim = shared.sim.lock();
        phase_a_ns += ta.elapsed().as_nanos() as u64;
        sim.token = Token::Scheduler;

        // ------------------------------------------------------ phase B
        let tb = Instant::now();
        // 0. Land the lock-free residue of phase A, in tile order: batched
        //    confined advances whose member completed without another
        //    locked interaction (bit-exact: no phase-A reader observes
        //    another core's raw clock, so landing the flush here instead
        //    of at member completion is unobservable), and members
        //    stranded behind a park — they revert to `Pending` and simply
        //    get picked again.
        for t in 0..n_tiles {
            // SAFETY: the frame quiesced; the coordinator is the only lane
            // accessor until the next launch.
            let lane = unsafe { fs.lane_mut(t) };
            for (c, d, n) in lane.flushes.drain(..) {
                sim.cores.advance(c.index(), d);
                sim.cores.publish_pending[c.index()] = true;
                sim.count_fast_path_n(shared, c, n);
            }
            for fj in lane.spilled.drain(..) {
                let act = sim.act_mut(fj.aid);
                debug_assert!(matches!(act.state, ActivityState::Granted));
                act.state = ActivityState::Pending;
                act.job = Some(fj.job);
                sim.stats.activity_resumes -= 1;
            }
        }
        // 1. Boundary-clock publication: flush the deferred publishes of
        //    every batch core, in tile order. This is the one point where
        //    an epoch's clock advances become visible to other tiles.
        //    Under the spatial policy, when every pending member fits the
        //    reduced publish shape (non-idle, clock rose, no waiters, no
        //    idle neighbors), the commuting per-core writes are bucketed
        //    for the replay frame instead; anything else falls back to the
        //    serial walk for the whole epoch.
        let shard = shared.config.shard_phase_b && sim.sanitizer.is_none() && n_tiles > 1;
        let publishes_sharded = shard
            && matches!(shared.config.sync, SyncPolicy::Spatial { .. })
            && try_shard_publishes(&mut sim, shared, fs, &batch);
        if !publishes_sharded {
            for &aid in &batch {
                if let Some(act) = sim.acts.get(&aid.0) {
                    let c = act.core;
                    sync::flush_deferred(&mut sim, shared, c);
                }
            }
        }
        // 2. Cross-tile messages: route the buffered sends through the
        //    shared network model, tile by tile (within a tile the lane
        //    preserves the sending activity's program order, so per-sender
        //    FIFO holds). Routing is inherently serial — it consumes the
        //    global send sequence and link occupancy — but when sharding,
        //    the inbox deposits are bucketed by destination tile for the
        //    replay frame, and every ready-queue decision `deliver` would
        //    have made is precomputed here against the frozen clocks: a
        //    per-destination pending-arrival minimum stands in for the
        //    not-yet-deposited envelopes.
        for t in 0..n_tiles {
            // SAFETY: frame quiescent; sole accessor. The outbox is
            // detached so bucketing into a destination lane (possibly this
            // very tile) never aliases the vector being drained.
            let mut outbox = std::mem::take(&mut (unsafe { fs.lane_mut(t) }).outbox);
            for m in outbox.drain(..) {
                let env = sim.net.send(m.src, m.dst, m.size_bytes, m.sent, m.payload);
                if !shard {
                    deliver(&mut sim, shared, env);
                    continue;
                }
                crate::engine::trace(shared, || crate::trace::TraceEvent::Send {
                    t: env.sent,
                    src: env.src,
                    dst: env.dst,
                    bytes: env.size_bytes,
                });
                let dst = env.dst;
                let arrival = env.arrival;
                let vtime = sim.cores.vtime[dst.index()];
                let pend = pend_min[dst.index()];
                if pend == VirtualTime::MAX {
                    pend_touched.push(dst);
                }
                // What `earliest_arrival` would return after the push,
                // were the bucketed envelopes already deposited.
                let eff = sim
                    .cores
                    .inboxes
                    .earliest_arrival(dst)
                    .map_or(pend, |a| a.min(pend))
                    .min(arrival);
                let prio = eff.min(vtime);
                if sim.cores.in_ready[dst.index()] {
                    // Possible priority raise: re-push with the (possibly
                    // earlier) next-event time, exactly like `deliver`.
                    if arrival < vtime {
                        sim.ready.push(dst, prio);
                    }
                } else {
                    sim.cores.in_ready[dst.index()] = true;
                    sim.ready.push(dst, prio);
                }
                pend_min[dst.index()] = eff;
                // SAFETY: frame quiescent; sole accessor (see above).
                (unsafe { fs.lane_mut(shared.tile_of(dst)) })
                    .deliveries
                    .push(env);
            }
            unsafe { fs.lane_mut(t) }.outbox = outbox; // keep the capacity
        }
        for c in pend_touched.drain(..) {
            pend_min[c.index()] = VirtualTime::MAX;
        }
        // 3. Apply the bucketed per-core writes: published clocks, floor-
        //    cache invalidations, inbox deposits. The classes touch
        //    pairwise-disjoint state columns and are bucketed by the
        //    written core's tile, so tiles replay independently — as a
        //    parallel frame when there is enough work to pay for the
        //    launch, serially through the same code otherwise. The
        //    threshold reads only the epoch's bucketed work, so the choice
        //    (and the `sharded_replays` counter) is deterministic; the
        //    applied state is bit-identical either way.
        replay_tiles.clear();
        let mut replay_work = 0usize;
        for t in 0..n_tiles {
            // SAFETY: frame quiescent; sole accessor.
            let lane = unsafe { fs.lane_mut(t) };
            let w = lane.pub_cores.len() + lane.inval_events.len() + lane.deliveries.len();
            if w > 0 {
                replay_work += w;
                replay_tiles.push(t as u32);
            }
        }
        if !replay_tiles.is_empty() {
            let ptrs = crate::frame::ReplayPtrs {
                published: sim.cores.published.as_mut_ptr(),
                floor_nb: sim.cores.floor_nb.as_mut_ptr(),
                floor_nb_valid: sim.cores.floor_nb_valid.as_mut_ptr(),
                inboxes: sim.cores.inboxes.lanes(),
            };
            // SAFETY: no frame is in flight, and the coordinator holds the
            // simulation guard for the whole replay, so the columns cannot
            // move or be touched by anyone but the replay claimants.
            unsafe { fs.set_replay_ptrs(ptrs) };
            if replay_tiles.len() >= 2 && replay_work >= REPLAY_FRAME_MIN_WORK {
                if sim.frame_workers == sim.pinned_workers {
                    spawn_frame_worker(&mut sim, shared, handles);
                }
                sim.stats.sharded_replays += 1;
                fs.launch(replay_tiles.len(), &replay_tiles, FrameKind::Replay);
                // Replay workers write through the raw column pointers and
                // never take the simulation lock, so the coordinator keeps
                // holding it across the wait.
                fs.wait_quiescent();
            } else {
                for &t in &replay_tiles {
                    // SAFETY: serial fallback — the coordinator is the
                    // sole accessor of every lane and of `sim.cores`.
                    unsafe { crate::frame::replay_lane(fs, t as usize) };
                }
            }
            // SAFETY: the frame quiesced; no claimant can still read them.
            unsafe { fs.clear_replay_ptrs() };
        }
        // 4. The serial tail: pending entries drained in tile order. A
        //    tile can contribute several entries (its members' completions
        //    and at most one park, after which the rest of its queue
        //    spilled); they were pushed by the tile's single claimant in
        //    execution order, so the drain order is deterministic.
        let tt = Instant::now();
        for t in 0..n_tiles {
            // SAFETY: frame quiescent; sole accessor. Detached so the
            // re-granted activities below (which run arbitrary interaction
            // code) can never observe a half-drained lane.
            let mut pending = std::mem::take(&mut (unsafe { fs.lane_mut(t) }).pending);
            for p in pending.drain(..) {
                match p {
                    EpochPending::Resume(aid) => {
                        if sim.failure.is_some() {
                            // Leave it parked; teardown unwinds it.
                            continue;
                        }
                        // Re-grant exclusively: the activity replays the
                        // authoritative sequential logic it could not run
                        // confined (publish + drain + policy check with
                        // its stall bookkeeping, or the compound
                        // operation) and runs under the ordinary token
                        // protocol until it yields — by stalling,
                        // blocking or finishing.
                        debug_assert!(matches!(sim.act(aid).state, ActivityState::Parked));
                        sim.act_mut(aid).state = ActivityState::Granted;
                        sim.token = Token::Act(aid);
                        let w = sim.act(aid).worker.expect("parked activity has a worker");
                        sim.worker_cvs[w].notify_one();
                        while sim.token != Token::Scheduler {
                            shared.sched_cv.wait(&mut sim);
                        }
                    }
                    EpochPending::Finish(aid) => {
                        crate::engine::finish_activity(&mut sim, shared, aid);
                    }
                    EpochPending::Panic { core, name, msg } => {
                        if sim.failure.is_none() {
                            sim.failure = Some(Failure::TaskPanic {
                                core,
                                at: sim.cores.vtime[core.index()],
                                name,
                                msg,
                            });
                        }
                    }
                }
            }
            unsafe { fs.lane_mut(t) }.pending = pending; // keep the capacity
        }
        serial_tail_ns += tt.elapsed().as_nanos() as u64;
        phase_b_ns += tb.elapsed().as_nanos() as u64;

        // 5. Requeue: batch cores first (tile order — including members
        //    spilled from a parked worker's queue, which reverted to
        //    `Pending` and simply get picked again), then the grants
        //    deferred during collection (pick order).
        for &aid in &batch {
            let c = match sim.acts.get(&aid.0) {
                Some(act) => act.core,
                None => continue, // finished; finish_activity requeued it
            };
            if is_ready(&sim, c) {
                push_ready(&mut sim, c);
            }
        }
        for &c in &deferred {
            if is_ready(&sim, c) {
                push_ready(&mut sim, c);
            }
        }
        deferred.clear();
        batch.clear();
        tile_solo.fill(None);
        for f in &mut tile_fresh {
            f.clear();
        }
    }

    sim.stats.phase_a_wall_ns = phase_a_ns;
    sim.stats.phase_b_wall_ns = phase_b_ns;
    sim.stats.serial_tail_ns = serial_tail_ns;
    if sim.failure.is_none() {
        if sim.sanitizer.is_some() {
            // Final machine-wide scan over the quiescent end state.
            crate::sanitizer::scan(&mut sim, shared);
        }
        ckpt.finish(&mut sim);
    }
    sim
}
