//! Parallel host execution: the epoch coordinator (`threads > 1`).
//!
//! The topology is partitioned into contiguous tiles
//! ([`simany_topology::partition_bfs`]); the scheduler loop is replaced by
//! an *epoch* cycle that alternates a serial phase with a confined
//! concurrent phase:
//!
//! 1. **Collect** (serial): run the exact sequential per-pick bookkeeping
//!    (checkpoints, watchdog, sanitizer, message processing, idle
//!    transitions), but instead of granting each runnable activity
//!    exclusively, *stash* it into a batch of up to `MEMBERS_PER_TILE`
//!    activities per tile. All of a tile's members execute from a single
//!    worker thread's queue, so their effects keep a deterministic order;
//!    an activity whose earlier run still pins a worker thread claims its
//!    tile exclusively. Extra grantable activities on full tiles are
//!    deferred to the next epoch.
//! 2. **Phase A** (concurrent): hand the batch an epoch-wide run token
//!    ([`crate::engine::Token::Epoch`]) and wake one worker per tile; each
//!    worker runs its tile's members back to back without further
//!    scheduler round trips. Each activity runs its task code natively,
//!    *confined* to mutating its own core: publishes are deferred, sends
//!    are buffered into per-tile outboxes, synchronization checks run
//!    side-effect-free against frozen published values
//!    ([`crate::sync::sync_ok_frozen`]), and annotations that stay inside
//!    the frozen drift headroom advance the clock without taking the
//!    simulation lock at all (see `Confined` in [`crate::ctx`]). Anything
//!    needing shared state parks with an [`EpochPending`] entry; a parked
//!    member's queued successors spill back to the scheduler (the member
//!    pins its worker thread) and are simply picked again next epoch.
//! 3. **Phase B** (serial): once every member has parked or finished,
//!    replay the cross-core effects in deterministic tile order — flush
//!    the deferred boundary-clock publishes, route and deliver the
//!    buffered messages, and resolve the pending entries: parked
//!    activities are re-granted the token *exclusively*, one at a time,
//!    so each replays the authoritative sequential logic (publish, drain,
//!    policy check, compound `Ops`) and runs until it yields; completions
//!    and panics are applied in tile order.
//!
//! ## Determinism
//!
//! Everything that can influence another core serializes through phase B
//! in tile order. Within a tile, order is a single worker thread's
//! execution order over a deterministically collected queue, so the replay
//! order is a pure function of the batch — not of thread scheduling.
//! Worker *identities* are the only racy quantity (the free-worker pool is
//! refilled in completion order), and they are never observable: no
//! statistic, trace, digest or simulation outcome depends on which OS
//! thread hosts an activity. Fixed `--threads N` + seed therefore
//! reproduces bit-identically, and `threads <= 1` never constructs a
//! partition at all — it runs the unmodified sequential engine.
//!
//! ## Why this is faster on one host CPU too
//!
//! A sequential grant costs two condvar handoffs (scheduler → worker,
//! worker → scheduler). An epoch of `B` confined grants spread over `W`
//! tile workers costs `W` worker wakeups plus one coordinator wakeup —
//! ~`(W + 1) / B` handoffs per grant, since each worker chews through its
//! whole queue on one wakeup — and confined annotations inside the frozen
//! drift headroom skip the simulation lock entirely. Annotation-dense
//! workloads whose checks mostly pass confined therefore spend
//! proportionally less wall-clock time in scheduler handoffs and lock
//! traffic. Grants that do need the serial phase (failed checks, compound
//! `Ops`) cost the same handoffs as a sequential grant, no more. On
//! multi-CPU hosts phase A additionally overlaps the native task bodies.

use crate::activity::{ActivityId, ActivityState};
use crate::config::SyncPolicy;
use crate::engine::{
    assign_worker, decide, deliver, diagnostic_snapshot, is_ready, make_current, process_message,
    push_ready, Action, EpochPending, Failure, Shared, Sim, Token,
};
use crate::sync;
use parking_lot::MutexGuard;
use simany_time::VirtualTime;
use simany_topology::CoreId;
use std::sync::Arc;

/// Most members one tile contributes to one epoch. A tile's fresh members
/// all run from a single worker's queue (one condvar wakeup for the lot),
/// so deeper queues amortize the scheduler round trips further; the cap
/// bounds how much work one epoch defers ahead of the serial phase's
/// checkpoint/sanitizer/watchdog bookkeeping.
const MEMBERS_PER_TILE: usize = 8;

/// Stash `aid` into the running batch: mark it granted *now* so the
/// collection loop cannot pick it (or its core) again before the epoch
/// launches, and count the resume exactly where a sequential grant would.
fn stash_grant(sim: &mut Sim, batch: &mut Vec<ActivityId>, aid: ActivityId) {
    sim.act_mut(aid).state = ActivityState::Granted;
    sim.stats.activity_resumes += 1;
    batch.push(aid);
}

/// Try to claim `aid` for the running batch on tile `t`; returns false if
/// the tile cannot take it this epoch (the caller defers it). All of a
/// tile's members must execute on ONE worker thread so their buffered
/// cross-tile effects keep a deterministic order: fresh (never-run)
/// activities are queued together, while an already-pinned activity — one
/// whose earlier run still owns a worker thread's stack — must run on that
/// thread and therefore claims the tile exclusively.
fn try_stash(
    sim: &mut Sim,
    batch: &mut Vec<ActivityId>,
    tile_solo: &mut [Option<ActivityId>],
    tile_fresh: &mut [Vec<ActivityId>],
    t: usize,
    aid: ActivityId,
) -> bool {
    if tile_solo[t].is_some() {
        return false;
    }
    if sim.act(aid).worker.is_some() {
        if !tile_fresh[t].is_empty() {
            return false;
        }
        tile_solo[t] = Some(aid);
    } else {
        if tile_fresh[t].len() >= MEMBERS_PER_TILE {
            return false;
        }
        tile_fresh[t].push(aid);
    }
    stash_grant(sim, batch, aid);
    true
}

/// The parallel scheduler loop. Mirrors the sequential loop's observable
/// bookkeeping; see the module docs for the epoch protocol. Takes and
/// returns the simulation guard so `simulate` runs the common teardown.
pub(crate) fn run_scheduler<'a>(
    shared: &Arc<Shared>,
    mut sim: MutexGuard<'a, Sim>,
    handles: &mut Vec<std::thread::JoinHandle<()>>,
    cfg_digest: u64,
    resume_target: Option<crate::checkpoint::Checkpoint>,
) -> MutexGuard<'a, Sim> {
    let n_tiles = shared.partition.as_ref().map_or(1, |p| p.n_tiles());
    let global_policy = matches!(
        shared.config.sync,
        SyncPolicy::BoundedSlack { .. }
            | SyncPolicy::Conservative
            | SyncPolicy::RandomReferee { .. }
    );

    let mut pending_resume = resume_target;
    let mut next_checkpoint = shared
        .config
        .checkpoint_every
        .map(|every| VirtualTime::ZERO + every);
    let mut wd_last_vtime = sim.max_vtime;
    let mut wd_last_pick: u64 = 0;

    let mut batch: Vec<ActivityId> = Vec::new();
    let mut deferred: Vec<CoreId> = Vec::new();
    let mut tile_solo: Vec<Option<ActivityId>> = vec![None; n_tiles];
    let mut tile_fresh: Vec<Vec<ActivityId>> = vec![Vec::new(); n_tiles];
    let mut workers: Vec<usize> = Vec::new();

    'run: loop {
        // ------------------------------------------------------ collect
        loop {
            if sim.failure.is_some() {
                break 'run;
            }
            if pending_resume
                .as_ref()
                .is_some_and(|cp| sim.max_vtime >= cp.watermark)
            {
                let cp = pending_resume.take().unwrap();
                sim.stats.checkpoint_verifications += 1;
                let digest = crate::checkpoint::state_digest(&sim, shared.hooks.as_ref());
                if sim.stats.scheduler_picks != cp.picks || digest != cp.state_digest {
                    sim.failure = Some(Failure::CheckpointMismatch(format!(
                        "replay diverged at watermark {}: picks {} (checkpoint {}), \
                         state digest {:016x} (checkpoint {:016x})",
                        cp.watermark, sim.stats.scheduler_picks, cp.picks, digest, cp.state_digest
                    )));
                    break 'run;
                }
            }
            if next_checkpoint.is_some_and(|nc| sim.max_vtime >= nc) {
                let every = shared.config.checkpoint_every.unwrap();
                let mut nc = next_checkpoint.unwrap();
                while sim.max_vtime >= nc {
                    nc += every;
                }
                next_checkpoint = Some(nc);
                let cp = crate::checkpoint::Checkpoint {
                    config_digest: cfg_digest,
                    watermark: sim.max_vtime,
                    picks: sim.stats.scheduler_picks,
                    state_digest: crate::checkpoint::state_digest(&sim, shared.hooks.as_ref()),
                };
                let path = shared.config.checkpoint_path.as_ref().unwrap();
                match cp.write_to(path) {
                    Ok(()) => sim.stats.checkpoints_written += 1,
                    Err(e) => {
                        sim.failure = Some(Failure::Checkpoint(format!(
                            "cannot write checkpoint {}: {e}",
                            path.display()
                        )));
                        break 'run;
                    }
                }
            }
            if global_policy && sim.floor_dirty {
                sim.floor_dirty = false;
                sync::recheck_all_stalled(&mut sim, shared);
            }
            // Pop a valid ready core (skipping stale entries).
            let mut picked = None;
            while let Some(c) = sim.ready.pop() {
                sim.cores[c.index()].in_ready = false;
                if is_ready(&sim, c) {
                    picked = Some(c);
                    break;
                }
            }
            let Some(c) = picked else {
                if !batch.is_empty() {
                    break; // launch what we have
                }
                let quiet = sim.live_activities == 0
                    && sim
                        .cores
                        .iter()
                        .all(|k| k.inbox.is_empty() && k.queue_hint == 0);
                if quiet {
                    break 'run; // normal completion
                }
                sim.failure = Some(Failure::Deadlock(crate::engine::deadlock_report(&sim)));
                break 'run;
            };
            sim.stats.scheduler_picks += 1;
            if sim.max_vtime > wd_last_vtime {
                wd_last_vtime = sim.max_vtime;
                wd_last_pick = sim.stats.scheduler_picks;
            } else if let Some(budget) = shared.config.watchdog_picks {
                if sim.stats.scheduler_picks - wd_last_pick >= budget {
                    sim.failure = Some(Failure::Stalled {
                        at: sim.max_vtime,
                        picks: budget,
                        report: diagnostic_snapshot(&sim),
                    });
                    break 'run;
                }
            }
            if sim.sanitizer.is_some()
                && sim
                    .stats
                    .scheduler_picks
                    .is_multiple_of(crate::sanitizer::SCAN_EVERY_PICKS)
            {
                crate::sanitizer::scan(&mut sim, shared);
            }
            let sample_every = shared.config.parallelism_sample_every;
            if sample_every != 0 && sim.stats.scheduler_picks.is_multiple_of(sample_every) {
                // Available host parallelism = cores with independently
                // runnable work. Batch members already claimed for this
                // epoch are running work too, so count them alongside the
                // still-ready cores (their `Granted` state excludes them
                // from `is_ready`, so there is no double count).
                let avail = (0..sim.cores.len() as u32)
                    .filter(|&i| is_ready(&sim, CoreId(i)))
                    .count()
                    + batch.len();
                sim.stats.parallelism_samples.push(avail as u32);
            }

            // Stashed and deferred cores stay out of the ready queue until
            // the epoch's serial phase re-pushes them: re-queuing a core
            // whose activity is already claimed would either re-defer it
            // forever or reorder its messages around the pending grant.
            let mut skip_repush = false;
            match decide(&sim, c) {
                Action::Message => process_message(&mut sim, shared, c),
                Action::Grant(aid) => {
                    let t = shared.tile_of(c);
                    if !try_stash(
                        &mut sim,
                        &mut batch,
                        &mut tile_solo,
                        &mut tile_fresh,
                        t,
                        aid,
                    ) {
                        deferred.push(c);
                    }
                    skip_repush = true;
                }
                Action::ResumeParked => {
                    let aid = sim.cores[c.index()].resumables.pop_front().unwrap();
                    make_current(&mut sim, shared, aid);
                    // Claim it if still allowed (it may have become stalled
                    // by the resume-cost advance).
                    if sim.act(aid).grantable() {
                        let t = shared.tile_of(c);
                        if !try_stash(
                            &mut sim,
                            &mut batch,
                            &mut tile_solo,
                            &mut tile_fresh,
                            t,
                            aid,
                        ) {
                            deferred.push(c);
                        }
                        skip_repush = true;
                    }
                }
                Action::Idle => {
                    let before_hint = sim.cores[c.index()].queue_hint;
                    {
                        let mut ops = crate::ops::Ops::new(&mut sim, shared);
                        shared.hooks.on_idle(&mut ops, c);
                    }
                    assert!(
                        sim.cores[c.index()].queue_hint < before_hint
                            || sim.cores[c.index()].current.is_some(),
                        "on_idle made no progress (runtime bug)"
                    );
                }
                Action::Nothing => {}
            }
            if !skip_repush && is_ready(&sim, c) {
                push_ready(&mut sim, c);
            }
            if batch.len() == n_tiles * MEMBERS_PER_TILE {
                break; // full house: every tile is at capacity
            }
        }

        // ------------------------------------------------------ phase A
        // Members sorted by tile: phase B replays in tile order by
        // construction and worker wakeup order is deterministic (it is not
        // observable either way, but determinism-by-construction is
        // cheaper to audit than determinism-by-argument). The sort is
        // stable, so a tile's fresh members keep their stash order — the
        // order their shared worker executes them in.
        batch.sort_by_key(|&aid| shared.tile_of(sim.act(aid).core));
        sim.stats.parallel_epochs += 1;
        sim.stats.epoch_grants += batch.len() as u64;
        workers.clear();
        for t in 0..n_tiles {
            let w = if let Some(aid) = tile_solo[t] {
                assign_worker(&mut sim, shared, handles, aid)
            } else if let Some((&first, rest)) = tile_fresh[t].split_first() {
                // One wakeup runs the whole queue: the worker pops the
                // next member itself after each completion.
                let w = assign_worker(&mut sim, shared, handles, first);
                debug_assert!(sim.worker_backlog[w].is_empty());
                sim.worker_backlog[w].extend(rest.iter().copied());
                w
            } else {
                continue;
            };
            workers.push(w);
        }
        sim.epoch_outstanding = batch.len();
        sim.token = Token::Epoch;
        for &w in &workers {
            sim.worker_cvs[w].notify_one();
        }
        while sim.epoch_outstanding > 0 {
            shared.sched_cv.wait(&mut sim);
        }
        sim.token = Token::Scheduler;

        // ------------------------------------------------------ phase B
        // 1. Boundary-clock publication: flush the deferred publishes of
        //    every batch core, in tile order. This is the one point where
        //    an epoch's clock advances become visible to other tiles.
        for &aid in &batch {
            if let Some(act) = sim.acts.get(&aid.0) {
                let c = act.core;
                sync::flush_deferred(&mut sim, shared, c);
            }
        }
        // 2. Cross-tile messages: route and deliver the buffered sends,
        //    tile by tile (within a tile the outbox preserves the sending
        //    activity's program order, so per-sender FIFO holds).
        for t in 0..n_tiles {
            let mut outbox = std::mem::take(&mut sim.tile_outboxes[t]);
            for m in outbox.drain(..) {
                let env = sim.net.send(m.src, m.dst, m.size_bytes, m.sent, m.payload);
                deliver(&mut sim, shared, env);
            }
            sim.tile_outboxes[t] = outbox; // keep the capacity
        }
        // 3. Pending entries, stable-sorted by tile id. A tile can
        //    contribute several entries (its members' completions and at
        //    most one park, after which the rest of its queue spilled);
        //    they were pushed by the tile's single worker in execution
        //    order, so the within-tile order the stable sort preserves is
        //    deterministic.
        let mut pending = std::mem::take(&mut sim.epoch_pending);
        pending.sort_by_key(|&(t, _)| t);
        for (_, p) in pending.drain(..) {
            match p {
                EpochPending::Resume(aid) => {
                    if sim.failure.is_some() {
                        // Leave it parked; teardown unwinds it.
                        continue;
                    }
                    // Re-grant exclusively: the activity replays the
                    // authoritative sequential logic it could not run
                    // confined (publish + drain + policy check with its
                    // stall bookkeeping, or the compound operation) and
                    // runs under the ordinary token protocol until it
                    // yields — by stalling, blocking or finishing.
                    debug_assert!(matches!(sim.act(aid).state, ActivityState::Parked));
                    sim.act_mut(aid).state = ActivityState::Granted;
                    sim.token = Token::Act(aid);
                    let w = sim.act(aid).worker.expect("parked activity has a worker");
                    sim.worker_cvs[w].notify_one();
                    while sim.token != Token::Scheduler {
                        shared.sched_cv.wait(&mut sim);
                    }
                }
                EpochPending::Finish(aid) => {
                    crate::engine::finish_activity(&mut sim, shared, aid);
                }
                EpochPending::Panic { core, name, msg } => {
                    if sim.failure.is_none() {
                        sim.failure = Some(Failure::TaskPanic {
                            core,
                            at: sim.cores[core.index()].vtime,
                            name,
                            msg,
                        });
                    }
                }
            }
        }
        sim.epoch_pending = pending; // keep the capacity

        // 4. Requeue: batch cores first (tile order — including members
        //    spilled from a parked worker's queue, which reverted to
        //    `Pending` and simply get picked again), then the grants
        //    deferred during collection (pick order).
        for &aid in &batch {
            let c = match sim.acts.get(&aid.0) {
                Some(act) => act.core,
                None => continue, // finished; finish_activity requeued it
            };
            if is_ready(&sim, c) {
                push_ready(&mut sim, c);
            }
        }
        for &c in &deferred {
            if is_ready(&sim, c) {
                push_ready(&mut sim, c);
            }
        }
        deferred.clear();
        batch.clear();
        tile_solo.fill(None);
        for f in &mut tile_fresh {
            f.clear();
        }
    }

    if sim.failure.is_none() {
        if sim.sanitizer.is_some() {
            // Final machine-wide scan over the quiescent end state.
            crate::sanitizer::scan(&mut sim, shared);
        }
        if let Some(cp) = pending_resume.take() {
            sim.failure = Some(Failure::Checkpoint(format!(
                "resume watermark {} never reached (run ended at {})",
                cp.watermark, sim.max_vtime
            )));
        }
    }
    sim
}
