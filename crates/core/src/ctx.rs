//! `ExecCtx` — the interaction API available to task code.
//!
//! A task body is ordinary Rust code that runs natively between
//! interactions. Each `ExecCtx` method briefly acquires the simulation
//! lock, performs the interaction (advance the clock, send a message,
//! block...), applies the synchronization policy and returns — possibly
//! after parking the calling worker thread while the core is stalled or
//! blocked. All waiting happens here; runtime hooks never block.

use crate::activity::{ActivityId, ActivityState};
use crate::engine::{is_ready, push_ready, Shared, ShutdownSignal, Sim, Token};
use crate::ops::Ops;
use crate::sync;
use parking_lot::{Condvar, MutexGuard};
use simany_net::Payload;
use simany_time::{BlockCost, CoreSpeed, VDuration, VirtualTime};
use simany_topology::CoreId;
use std::any::Any;
use std::cell::Cell;
use std::sync::Arc;

/// Lock-free confined-advance cache (parallel epochs only).
///
/// While an activity runs confined inside an epoch (`Token::Epoch`), every
/// input of the drift-headroom fast-path check is frozen until the epoch
/// quiesces: no deliveries land in its inbox, no publishes move its
/// neighbors, no policy re-evaluation can shrink its headroom, and nothing
/// may observe its unpublished clock. So once a locked annotation takes the
/// fast path, subsequent annotations that stay inside the same bounds only
/// touch this core's own clock — they can advance a private copy without
/// the simulation lock, and the batched delta is folded back into `Sim` at
/// the next locked interaction (or when the task body returns). On a
/// contended host this removes the per-annotation lock round-trip that
/// otherwise serializes phase A.
struct Confined {
    active: Cell<bool>,
    /// Private copy of this core's clock (authoritative while `active`).
    vtime: Cell<VirtualTime>,
    /// Frozen drift-headroom bound (`Cores::headroom_limit`).
    limit: Cell<VirtualTime>,
    /// Frozen earliest inbox arrival; a lock-free advance must stay short
    /// of it (reaching a due message needs the authoritative drain).
    due: Cell<Option<VirtualTime>>,
    /// This core's (immutable-while-armed) speed, captured at arm time.
    speed: Cell<CoreSpeed>,
    /// Batched advance total not yet applied to `Sim`.
    accum: Cell<VDuration>,
    /// Batched fast-path annotation count not yet added to the tile shard.
    pending: Cell<u64>,
}

/// Per-activity execution context handed to task bodies.
pub struct ExecCtx {
    shared: Arc<Shared>,
    aid: ActivityId,
    core: CoreId,
    my_cv: Arc<Condvar>,
    /// Frame-worker slot hosting this body (`None` on the sequential
    /// engine's pool). An epoch member that parks pins this slot.
    worker: Option<usize>,
    /// Set at the first epoch park: this activity's native stack now pins
    /// its host thread until the closure returns, and its completion must
    /// go through the locked (token-routed) path.
    pinned: Cell<bool>,
    confined: Confined,
}

impl ExecCtx {
    pub(crate) fn new(
        shared: Arc<Shared>,
        aid: ActivityId,
        core: CoreId,
        my_cv: Arc<Condvar>,
        worker: Option<usize>,
    ) -> Self {
        ExecCtx {
            shared,
            aid,
            core,
            my_cv,
            worker,
            pinned: Cell::new(false),
            confined: Confined {
                active: Cell::new(false),
                vtime: Cell::new(VirtualTime::ZERO),
                limit: Cell::new(VirtualTime::ZERO),
                due: Cell::new(None),
                speed: Cell::new(CoreSpeed::BASE),
                accum: Cell::new(VDuration::ZERO),
                pending: Cell::new(0),
            },
        }
    }

    /// Arm the lock-free confined cache after a passing fast-path or frozen
    /// policy check. Only meaningful under an epoch grant; no-op (one
    /// branch) on the sequential / exclusive paths.
    fn arm_confined(&self, sim: &MutexGuard<'_, Sim>) {
        if sim.token != Token::Epoch {
            return;
        }
        let i = self.core.index();
        if sim.cores.lock_depth[i] != 0 {
            return;
        }
        let Some(limit) = sim.cores.headroom_limit[i] else {
            return;
        };
        debug_assert_eq!(self.confined.pending.get(), 0);
        self.confined.vtime.set(sim.cores.vtime[i]);
        self.confined.limit.set(limit);
        self.confined
            .due
            .set(sim.cores.inboxes.earliest_arrival(self.core));
        self.confined.speed.set(sim.cores.speed[i]);
        self.confined.active.set(true);
    }

    /// Try to absorb an advance of `d` into the confined cache. Succeeds
    /// exactly when the locked fast-path check would have: the new clock
    /// stays within the frozen headroom bound and short of any due message.
    fn try_confined_advance(&self, d: VDuration) -> bool {
        let nv = self.confined.vtime.get() + d;
        if nv > self.confined.limit.get() || self.confined.due.get().is_some_and(|a| a <= nv) {
            return false;
        }
        self.confined.vtime.set(nv);
        self.confined
            .accum
            .set(VDuration(self.confined.accum.get().0 + d.0));
        self.confined.pending.set(self.confined.pending.get() + 1);
        true
    }

    /// Fold batched lock-free advances back into `Sim`. Every locked entry
    /// point calls this first (while the cache is armed nothing else may
    /// read this core's clock), and the worker loop calls it when the task
    /// body returns, so the epoch coordinator always sees flushed clocks.
    pub(crate) fn flush_confined(&self, sim: &mut MutexGuard<'_, Sim>) {
        if !self.confined.active.get() {
            return;
        }
        self.confined.active.set(false);
        let n = self.confined.pending.replace(0);
        if n == 0 {
            return;
        }
        let d = self.confined.accum.replace(VDuration::ZERO);
        sim.cores.advance(self.core.index(), d);
        sim.cores.publish_pending[self.core.index()] = true;
        sim.count_fast_path_n(&self.shared, self.core, n);
    }

    /// Whether this body parked inside an epoch at least once (and so pins
    /// its host thread; see [`Self::park_epoch`]).
    pub(crate) fn epoch_pinned(&self) -> bool {
        self.pinned.get()
    }

    /// Disarm the confined cache and take its batched advance without the
    /// simulation lock: `Some((delta, annotation count))` if anything was
    /// batched. Used by the lock-free completion path of a frame worker —
    /// the coordinator lands the delta (exactly as [`Self::flush_confined`]
    /// would) at the start of phase B, before anything reads the clock.
    pub(crate) fn take_confined_flush(&self) -> Option<(VDuration, u64)> {
        if !self.confined.active.get() {
            return None;
        }
        self.confined.active.set(false);
        let n = self.confined.pending.replace(0);
        if n == 0 {
            return None;
        }
        Some((self.confined.accum.replace(VDuration::ZERO), n))
    }

    /// The core this task runs on.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// This activity's id.
    pub fn id(&self) -> ActivityId {
        self.aid
    }

    /// Current virtual time of this core.
    pub fn now(&self) -> VirtualTime {
        if self.confined.active.get() {
            return self.confined.vtime.get();
        }
        self.shared.sim.lock().cores.vtime[self.core.index()]
    }

    /// Number of simulated cores.
    pub fn n_cores(&self) -> u32 {
        self.shared.topo.n_cores()
    }

    /// Topological neighbors of this core.
    pub fn neighbors(&self) -> Vec<CoreId> {
        self.shared
            .topo
            .neighbors(self.core)
            .iter()
            .map(|&(n, _)| n)
            .collect()
    }

    /// Execute a timing annotation: charge the block's instruction-class
    /// costs plus branch-prediction penalties, speed-scaled, then apply the
    /// synchronization policy (possibly stalling).
    pub fn compute(&mut self, block: &BlockCost) {
        let base = self.shared.config.cost_model.block_cycles(block);
        let branches = block.cond_branch_count();
        // Branch-free blocks have a lock-independent cost; branchy ones
        // need the core's (locked) predictor state.
        if branches == 0
            && self.confined.active.get()
            && self.try_confined_advance(self.confined.speed.get().scale_cycles(base))
        {
            return;
        }
        let mut sim = self.shared.sim.lock();
        self.flush_confined(&mut sim);
        let mut cycles = base;
        if branches > 0 {
            cycles += sim
                .cores
                .predictor(self.core.index())
                .predict_many(branches);
        }
        let d = sim.cores.speed[self.core.index()].scale_cycles(cycles);
        sim.cores.advance(self.core.index(), d);
        self.after_advance(&mut sim);
    }

    /// Advance this core's clock by `base_cycles` of work (speed-scaled),
    /// then apply the synchronization policy.
    pub fn advance_cycles(&mut self, base_cycles: u64) {
        if self.confined.active.get()
            && self.try_confined_advance(self.confined.speed.get().scale_cycles(base_cycles))
        {
            return;
        }
        let mut sim = self.shared.sim.lock();
        self.flush_confined(&mut sim);
        let d = sim.cores.speed[self.core.index()].scale_cycles(base_cycles);
        sim.cores.advance(self.core.index(), d);
        self.after_advance(&mut sim);
    }

    /// Advance by an exact duration (no speed scaling), then apply the
    /// synchronization policy.
    pub fn advance_raw(&mut self, d: VDuration) {
        if self.confined.active.get() && self.try_confined_advance(d) {
            return;
        }
        let mut sim = self.shared.sim.lock();
        self.flush_confined(&mut sim);
        sim.cores.advance(self.core.index(), d);
        self.after_advance(&mut sim);
    }

    /// Post-annotation synchronization: the drift-headroom fast path when
    /// the new clock stays inside the cached bound and no message is due,
    /// the full publish + drain + policy check otherwise.
    ///
    /// The fast path only *defers* the publish (`publish_pending`): this
    /// activity holds the run token, so nothing can observe the stale
    /// published value before one of the flush points
    /// ([`sync::flush_deferred`]) runs. Folding the skipped intermediate
    /// publishes into one final publish reaches the same relaxation fixed
    /// point, so the deferral is bit-exact.
    fn after_advance(&self, sim: &mut MutexGuard<'_, Sim>) {
        let i = self.core.index();
        let vtime = sim.cores.vtime[i];
        let fast = sim.cores.lock_depth[i] == 0
            && sim.cores.headroom_limit[i].is_some_and(|limit| vtime <= limit)
            && sim
                .cores
                .inboxes
                .earliest_arrival(self.core)
                .is_none_or(|a| a > vtime);
        if fast {
            sim.cores.publish_pending[self.core.index()] = true;
            sim.count_fast_path(&self.shared, self.core);
            // Under an epoch grant the bounds just checked stay frozen
            // until the epoch quiesces: later annotations inside them can
            // skip the lock entirely.
            self.arm_confined(sim);
            return;
        }
        sim.count_full_sync(&self.shared, self.core);
        if sim.token == Token::Epoch {
            // Confined (epoch) slow path: publishing and message handling
            // mutate shared state, so defer the publish and run only the
            // side-effect-free policy check against frozen published
            // values. A due message or a non-passing check parks the
            // activity; the coordinator's serial phase re-grants it
            // exclusively and it falls through to the authoritative
            // sequential path below.
            sim.cores.publish_pending[self.core.index()] = true;
            let due = sim
                .cores
                .inboxes
                .earliest_arrival(self.core)
                .is_some_and(|a| a <= sim.cores.vtime[self.core.index()]);
            if !due && sync::sync_ok_frozen(sim, &self.shared, self.core) {
                // The frozen check may have refreshed the headroom bound.
                self.arm_confined(sim);
                return;
            }
            // Parking defers the policy decision to the serial phase; any
            // cached headroom no longer describes the deferred clock (an
            // advance may have run into a due message past the bound), and
            // the serial replay recomputes it from scratch. Drop it so the
            // coordinator's flush-time sanitizer check stays meaningful.
            sim.cores.headroom_limit[self.core.index()] = None;
            self.park_epoch(sim, crate::engine::EpochPending::Resume(self.aid));
            debug_assert_eq!(sim.token, Token::Act(self.aid));
        }
        sync::publish(sim, &self.shared, self.core);
        crate::engine::drain_due_messages(sim, &self.shared, self.core);
        self.maybe_stall(sim);
    }

    /// Send a message stamped with this core's current clock.
    pub fn send(&mut self, dst: CoreId, size_bytes: u32, payload: Payload) {
        if self.confined.active.get() {
            // Lock-free epoch path: the confined cache only arms under
            // `Token::Epoch`, where this thread is its tile's sole
            // executor, so the tile lane can take the message without the
            // simulation lock. The stamp is the confined clock — exactly
            // what the locked path would read after flushing the cache.
            let fs = self.shared.frame.as_ref().expect("confined without frames");
            // SAFETY: sole executor of this tile for the current frame
            // (fresh-tile claimant or pinned solo host).
            let lane = unsafe { fs.lane_mut(self.shared.tile_of(self.core)) };
            lane.outbox.push(crate::engine::OutMsg {
                src: self.core,
                dst,
                size_bytes,
                sent: self.confined.vtime.get(),
                payload,
            });
            return;
        }
        let mut sim = self.shared.sim.lock();
        let sent = sim.cores.vtime[self.core.index()];
        if sim.token == Token::Epoch {
            // Confined but the cache is not armed (before the first
            // passing sync check). Routing consumes shared network state
            // (the global send sequence, link occupancy), so buffer into
            // this tile's lane; the coordinator routes all buffered sends
            // in tile order once the epoch quiesces, preserving
            // per-sender FIFO (the lane keeps program order and `sent`
            // stamps are monotone per sender).
            // SAFETY: sole executor of this tile for the current frame.
            let lane = unsafe {
                self.shared
                    .frame
                    .as_ref()
                    .expect("epoch without frames")
                    .lane_mut(self.shared.tile_of(self.core))
            };
            lane.outbox.push(crate::engine::OutMsg {
                src: self.core,
                dst,
                size_bytes,
                sent,
                payload,
            });
            return;
        }
        let env = sim.net.send(self.core, dst, size_bytes, sent, payload);
        crate::engine::deliver(&mut sim, &self.shared, env);
    }

    /// Run `f` with full simulator access ([`Ops`]) while holding the run
    /// token. The runtime layer uses this to implement compound primitives
    /// (probe, spawn, data requests) atomically.
    pub fn with_ops<R>(&mut self, f: impl FnOnce(&mut Ops<'_>) -> R) -> R {
        let mut sim = self.shared.sim.lock();
        self.flush_confined(&mut sim);
        self.exclusive_for_ops(&mut sim);
        // `f` can observe published values through `Ops`.
        sync::flush_deferred(&mut sim, &self.shared, self.core);
        let mut ops = Ops::new(&mut sim, &self.shared);
        f(&mut ops)
    }

    /// Like [`Self::with_ops`] followed by a synchronization check: use
    /// when `f` advances this core's clock.
    pub fn with_ops_synced<R>(&mut self, f: impl FnOnce(&mut Ops<'_>) -> R) -> R {
        let mut sim = self.shared.sim.lock();
        self.flush_confined(&mut sim);
        self.exclusive_for_ops(&mut sim);
        sync::flush_deferred(&mut sim, &self.shared, self.core);
        let r = {
            let mut ops = Ops::new(&mut sim, &self.shared);
            f(&mut ops)
        };
        crate::engine::drain_due_messages(&mut sim, &self.shared, self.core);
        self.maybe_stall(&mut sim);
        r
    }

    /// Suspend this task until another party calls `Ops::wake` on it;
    /// returns the wake value. The core is freed meanwhile: it can process
    /// messages, resume other parked tasks or start queued ones (the
    /// "execution context is saved" semantics of paper §IV).
    pub fn block(&mut self, reason: &'static str) -> Box<dyn Any + Send> {
        self.block_with(reason, false)
    }

    /// [`Self::block`] with control over the resume context-switch charge:
    /// pass `true` for full task suspensions (join), `false` for
    /// lightweight protocol waits whose handler costs already account for
    /// the runtime's work.
    pub fn block_with(&mut self, reason: &'static str, charge_resume: bool) -> Box<dyn Any + Send> {
        let mut sim = self.shared.sim.lock();
        self.flush_confined(&mut sim);
        self.exclusive_for_ops(&mut sim);
        {
            let core = self.core;
            debug_assert_eq!(sim.cores.current[core.index()], Some(self.aid));
            sim.act_mut(self.aid).charge_resume = charge_resume;
            sim.act_mut(self.aid).state = ActivityState::Blocked(reason);
            crate::engine::trace(&self.shared, || crate::trace::TraceEvent::Block {
                t: sim.cores.vtime[core.index()],
                core,
                reason,
            });
            sim.cores.current[core.index()] = None;
            sim.floor_dirty = true;
            sync::note_floor_key(&mut sim, core.index());
            // The core may have become idle: switch it to shadow time so
            // its neighborhood is not stalled on a frozen clock.
            sync::publish(&mut sim, &self.shared, core);
            if is_ready(&sim, core) {
                push_ready(&mut sim, core);
            }
        }
        self.yield_token(&mut sim);
        self.wait_for_grant(&mut sim);
        // We are current again (make_current charged the context switch and
        // applied the wake time). Apply the synchronization policy before
        // resuming user code.
        self.maybe_stall(&mut sim);
        sim.act_mut(self.aid)
            .wake_value
            .take()
            .expect("woken without a wake value")
    }

    /// Enter a critical section / take a simulated lock: while at least one
    /// is held, the synchronization policy never stalls this core, so it
    /// can always reach the release (the deadlock-avoidance waiver of paper
    /// §II.B).
    pub fn critical_enter(&mut self) {
        let mut sim = self.shared.sim.lock();
        self.flush_confined(&mut sim);
        sim.cores.lock_depth[self.core.index()] += 1;
    }

    /// Leave a critical section; when the depth reaches zero the policy
    /// applies again immediately.
    pub fn critical_exit(&mut self) {
        let mut sim = self.shared.sim.lock();
        self.flush_confined(&mut sim);
        let depth = &mut sim.cores.lock_depth[self.core.index()];
        assert!(*depth > 0, "critical_exit without critical_enter");
        *depth -= 1;
        if *depth == 0 {
            self.maybe_stall(&mut sim);
        }
    }

    /// Explicit synchronization point: stall here if the policy requires it
    /// (useful inside long native computations).
    pub fn check_sync(&mut self) {
        let mut sim = self.shared.sim.lock();
        self.flush_confined(&mut sim);
        self.maybe_stall(&mut sim);
    }

    /// Stall while the synchronization policy forbids this core to run.
    ///
    /// The token is re-dispatched on every loop iteration: a stalled or
    /// parked activity can be re-granted either exclusively or as part of
    /// an epoch batch, and the check it must run differs (authoritative
    /// vs. frozen/confined).
    fn maybe_stall(&self, sim: &mut MutexGuard<'_, Sim>) {
        let mut stalled = false;
        loop {
            if sim.token == Token::Epoch {
                // Confined: run the frozen check only; flushing the
                // deferred publish or registering waiters would mutate
                // shared state. If it does not pass, park — the serial
                // phase re-grants exclusively and the loop re-dispatches
                // into the authoritative branch below, which does the
                // real check and the stall bookkeeping.
                if sync::sync_ok_frozen(sim, &self.shared, self.core) {
                    self.arm_confined(sim);
                    return;
                }
                self.park_epoch(sim, crate::engine::EpochPending::Resume(self.aid));
                continue;
            }
            // The policy check reads published values, and a stall yields
            // the run token: either way a deferred publish must land first.
            sync::flush_deferred(sim, &self.shared, self.core);
            if sync::sync_ok(sim, &self.shared, self.core) {
                if stalled {
                    crate::engine::trace(&self.shared, || crate::trace::TraceEvent::Resume {
                        t: sim.cores.vtime[self.core.index()],
                        core: self.core,
                    });
                }
                return;
            }
            sim.stats.stall_events += 1;
            if !stalled {
                crate::engine::trace(&self.shared, || crate::trace::TraceEvent::Stall {
                    t: sim.cores.vtime[self.core.index()],
                    core: self.core,
                });
                stalled = true;
            }
            sim.act_mut(self.aid).state = ActivityState::Stalled;
            self.yield_token(sim);
            self.wait_for_grant(sim);
        }
    }

    /// Return the run token to the scheduler.
    fn yield_token(&self, sim: &mut MutexGuard<'_, Sim>) {
        debug_assert_eq!(sim.token, Token::Act(self.aid));
        sim.token = Token::Scheduler;
        self.shared.sched_cv.notify_one();
    }

    /// If this activity is running confined inside an epoch, park it with
    /// an [`EpochPending::Resume`] entry and wait until the coordinator's
    /// serial phase re-grants it the run token exclusively. No-op under an
    /// exclusive grant. Interactions that need full simulator access
    /// (compound `Ops`, blocking) call this first so their existing
    /// sequential bodies run unchanged.
    fn exclusive_for_ops(&self, sim: &mut MutexGuard<'_, Sim>) {
        if sim.token == Token::Epoch {
            self.park_epoch(sim, crate::engine::EpochPending::Resume(self.aid));
            debug_assert_eq!(sim.token, Token::Act(self.aid));
        }
    }

    /// Leave the running epoch: record `p` in this tile's lane for the
    /// coordinator's serial phase, flip this activity to `Parked` (so an
    /// epoch-wide token does not wake it spuriously), retire it from the
    /// frame, and wait to be re-granted.
    fn park_epoch(&self, sim: &mut MutexGuard<'_, Sim>, p: crate::engine::EpochPending) {
        debug_assert_eq!(sim.token, Token::Epoch);
        let fs = self.shared.frame.as_ref().expect("epoch without frames");
        let tile = self.shared.tile_of(self.core);
        // The first park pins this activity to its host thread: its native
        // stack lives there until the closure returns, so later grants
        // re-enter through the thread's condvar slot.
        if sim.act(self.aid).worker.is_none() {
            let w = self.worker.expect("epoch member without a frame worker");
            sim.act_mut(self.aid).worker = Some(w);
            sim.pinned_workers += 1;
            self.pinned.set(true);
        }
        sim.act_mut(self.aid).state = ActivityState::Parked;
        // SAFETY: sole executor of this tile for the current frame.
        let lane = unsafe { fs.lane_mut(tile) };
        // Members queued behind this one cannot run this epoch — this
        // activity pins the thread until its body returns — so strand
        // them; the coordinator reverts them to `Pending` at phase B.
        let stranded = lane.queue.len();
        lane.spilled.extend(lane.queue.drain(..));
        lane.pending.push(p);
        // Retire this member plus the stranded ones. The coordinator may
        // reach phase B immediately, but it cannot re-grant this activity
        // before `wait_for_grant` releases the simulation lock below — the
        // re-grant itself happens under it.
        fs.retire(1 + stranded);
        self.wait_for_grant(sim);
    }

    /// Park until the scheduler grants the token back to this activity —
    /// exclusively (`Token::Act`), or as part of an epoch batch
    /// (`Token::Epoch` with this activity flipped to `Granted`).
    fn wait_for_grant(&self, sim: &mut MutexGuard<'_, Sim>) {
        loop {
            if sim.shutdown {
                // Unwind through user code; the worker loop recognizes the
                // signal and exits quietly.
                std::panic::panic_any(ShutdownSignal);
            }
            let token_ok = match sim.token {
                Token::Act(a) => a == self.aid,
                Token::Epoch => true,
                Token::Scheduler => false,
            };
            if token_ok && matches!(sim.act(self.aid).state, ActivityState::Granted) {
                return;
            }
            self.my_cv.wait(sim);
        }
    }
}
