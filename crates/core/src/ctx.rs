//! `ExecCtx` — the interaction API available to task code.
//!
//! A task body is ordinary Rust code that runs natively between
//! interactions. Each `ExecCtx` method briefly acquires the simulation
//! lock, performs the interaction (advance the clock, send a message,
//! block...), applies the synchronization policy and returns — possibly
//! after parking the calling worker thread while the core is stalled or
//! blocked. All waiting happens here; runtime hooks never block.

use crate::activity::{ActivityId, ActivityState};
use crate::engine::{is_ready, push_ready, Shared, ShutdownSignal, Sim, Token};
use crate::ops::Ops;
use crate::sync;
use parking_lot::{Condvar, MutexGuard};
use simany_net::Payload;
use simany_time::{BlockCost, VDuration, VirtualTime};
use simany_topology::CoreId;
use std::any::Any;
use std::sync::Arc;

/// Per-activity execution context handed to task bodies.
pub struct ExecCtx {
    shared: Arc<Shared>,
    aid: ActivityId,
    core: CoreId,
    my_cv: Arc<Condvar>,
}

impl ExecCtx {
    pub(crate) fn new(
        shared: Arc<Shared>,
        aid: ActivityId,
        core: CoreId,
        my_cv: Arc<Condvar>,
    ) -> Self {
        ExecCtx {
            shared,
            aid,
            core,
            my_cv,
        }
    }

    /// The core this task runs on.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// This activity's id.
    pub fn id(&self) -> ActivityId {
        self.aid
    }

    /// Current virtual time of this core.
    pub fn now(&self) -> VirtualTime {
        self.shared.sim.lock().cores[self.core.index()].vtime
    }

    /// Number of simulated cores.
    pub fn n_cores(&self) -> u32 {
        self.shared.topo.n_cores()
    }

    /// Topological neighbors of this core.
    pub fn neighbors(&self) -> Vec<CoreId> {
        self.shared
            .topo
            .neighbors(self.core)
            .iter()
            .map(|&(n, _)| n)
            .collect()
    }

    /// Execute a timing annotation: charge the block's instruction-class
    /// costs plus branch-prediction penalties, speed-scaled, then apply the
    /// synchronization policy (possibly stalling).
    pub fn compute(&mut self, block: &BlockCost) {
        let mut sim = self.shared.sim.lock();
        let mut cycles = self.shared.config.cost_model.block_cycles(block);
        let branches = block.cond_branch_count();
        if branches > 0 {
            cycles += sim.cores[self.core.index()]
                .predictor
                .predict_many(branches);
        }
        let d = sim.cores[self.core.index()].speed.scale_cycles(cycles);
        sim.cores[self.core.index()].advance(d);
        self.after_advance(&mut sim);
    }

    /// Advance this core's clock by `base_cycles` of work (speed-scaled),
    /// then apply the synchronization policy.
    pub fn advance_cycles(&mut self, base_cycles: u64) {
        let mut sim = self.shared.sim.lock();
        let d = sim.cores[self.core.index()].speed.scale_cycles(base_cycles);
        sim.cores[self.core.index()].advance(d);
        self.after_advance(&mut sim);
    }

    /// Advance by an exact duration (no speed scaling), then apply the
    /// synchronization policy.
    pub fn advance_raw(&mut self, d: VDuration) {
        let mut sim = self.shared.sim.lock();
        sim.cores[self.core.index()].advance(d);
        self.after_advance(&mut sim);
    }

    /// Post-annotation synchronization: the drift-headroom fast path when
    /// the new clock stays inside the cached bound and no message is due,
    /// the full publish + drain + policy check otherwise.
    ///
    /// The fast path only *defers* the publish (`publish_pending`): this
    /// activity holds the run token, so nothing can observe the stale
    /// published value before one of the flush points
    /// ([`sync::flush_deferred`]) runs. Folding the skipped intermediate
    /// publishes into one final publish reaches the same relaxation fixed
    /// point, so the deferral is bit-exact.
    fn after_advance(&self, sim: &mut MutexGuard<'_, Sim>) {
        let core = &sim.cores[self.core.index()];
        let fast = core.lock_depth == 0
            && core.headroom_limit.is_some_and(|limit| core.vtime <= limit)
            && core.inbox.earliest_arrival().is_none_or(|a| a > core.vtime);
        if fast {
            sim.cores[self.core.index()].publish_pending = true;
            sim.stats.fast_path_advances += 1;
            return;
        }
        sim.stats.full_sync_checks += 1;
        sync::publish(sim, &self.shared, self.core);
        crate::engine::drain_due_messages(sim, &self.shared, self.core);
        self.maybe_stall(sim);
    }

    /// Send a message stamped with this core's current clock.
    pub fn send(&mut self, dst: CoreId, size_bytes: u32, payload: Payload) {
        let mut sim = self.shared.sim.lock();
        let sent = sim.cores[self.core.index()].vtime;
        let env = sim.net.send(self.core, dst, size_bytes, sent, payload);
        crate::engine::deliver(&mut sim, &self.shared, env);
    }

    /// Run `f` with full simulator access ([`Ops`]) while holding the run
    /// token. The runtime layer uses this to implement compound primitives
    /// (probe, spawn, data requests) atomically.
    pub fn with_ops<R>(&mut self, f: impl FnOnce(&mut Ops<'_>) -> R) -> R {
        let mut sim = self.shared.sim.lock();
        // `f` can observe published values through `Ops`.
        sync::flush_deferred(&mut sim, &self.shared, self.core);
        let mut ops = Ops::new(&mut sim, &self.shared);
        f(&mut ops)
    }

    /// Like [`Self::with_ops`] followed by a synchronization check: use
    /// when `f` advances this core's clock.
    pub fn with_ops_synced<R>(&mut self, f: impl FnOnce(&mut Ops<'_>) -> R) -> R {
        let mut sim = self.shared.sim.lock();
        sync::flush_deferred(&mut sim, &self.shared, self.core);
        let r = {
            let mut ops = Ops::new(&mut sim, &self.shared);
            f(&mut ops)
        };
        crate::engine::drain_due_messages(&mut sim, &self.shared, self.core);
        self.maybe_stall(&mut sim);
        r
    }

    /// Suspend this task until another party calls `Ops::wake` on it;
    /// returns the wake value. The core is freed meanwhile: it can process
    /// messages, resume other parked tasks or start queued ones (the
    /// "execution context is saved" semantics of paper §IV).
    pub fn block(&mut self, reason: &'static str) -> Box<dyn Any + Send> {
        self.block_with(reason, false)
    }

    /// [`Self::block`] with control over the resume context-switch charge:
    /// pass `true` for full task suspensions (join), `false` for
    /// lightweight protocol waits whose handler costs already account for
    /// the runtime's work.
    pub fn block_with(&mut self, reason: &'static str, charge_resume: bool) -> Box<dyn Any + Send> {
        let mut sim = self.shared.sim.lock();
        {
            let core = self.core;
            debug_assert_eq!(sim.cores[core.index()].current, Some(self.aid));
            sim.act_mut(self.aid).charge_resume = charge_resume;
            sim.act_mut(self.aid).state = ActivityState::Blocked(reason);
            crate::engine::trace(&self.shared, || crate::trace::TraceEvent::Block {
                t: sim.cores[core.index()].vtime,
                core,
                reason,
            });
            sim.cores[core.index()].current = None;
            sim.floor_dirty = true;
            // The core may have become idle: switch it to shadow time so
            // its neighborhood is not stalled on a frozen clock.
            sync::publish(&mut sim, &self.shared, core);
            if is_ready(&sim, core) {
                push_ready(&mut sim, core);
            }
        }
        self.yield_token(&mut sim);
        self.wait_for_grant(&mut sim);
        // We are current again (make_current charged the context switch and
        // applied the wake time). Apply the synchronization policy before
        // resuming user code.
        self.maybe_stall(&mut sim);
        sim.act_mut(self.aid)
            .wake_value
            .take()
            .expect("woken without a wake value")
    }

    /// Enter a critical section / take a simulated lock: while at least one
    /// is held, the synchronization policy never stalls this core, so it
    /// can always reach the release (the deadlock-avoidance waiver of paper
    /// §II.B).
    pub fn critical_enter(&mut self) {
        let mut sim = self.shared.sim.lock();
        sim.cores[self.core.index()].lock_depth += 1;
    }

    /// Leave a critical section; when the depth reaches zero the policy
    /// applies again immediately.
    pub fn critical_exit(&mut self) {
        let mut sim = self.shared.sim.lock();
        let depth = &mut sim.cores[self.core.index()].lock_depth;
        assert!(*depth > 0, "critical_exit without critical_enter");
        *depth -= 1;
        if *depth == 0 {
            self.maybe_stall(&mut sim);
        }
    }

    /// Explicit synchronization point: stall here if the policy requires it
    /// (useful inside long native computations).
    pub fn check_sync(&mut self) {
        let mut sim = self.shared.sim.lock();
        self.maybe_stall(&mut sim);
    }

    /// Stall while the synchronization policy forbids this core to run.
    fn maybe_stall(&self, sim: &mut MutexGuard<'_, Sim>) {
        // The policy check reads published values, and a stall yields the
        // run token: either way a deferred publish must land first.
        sync::flush_deferred(sim, &self.shared, self.core);
        let mut stalled = false;
        loop {
            if sync::sync_ok(sim, &self.shared, self.core) {
                if stalled {
                    crate::engine::trace(&self.shared, || crate::trace::TraceEvent::Resume {
                        t: sim.cores[self.core.index()].vtime,
                        core: self.core,
                    });
                }
                return;
            }
            sim.stats.stall_events += 1;
            if !stalled {
                crate::engine::trace(&self.shared, || crate::trace::TraceEvent::Stall {
                    t: sim.cores[self.core.index()].vtime,
                    core: self.core,
                });
                stalled = true;
            }
            sim.act_mut(self.aid).state = ActivityState::Stalled;
            self.yield_token(sim);
            self.wait_for_grant(sim);
        }
    }

    /// Return the run token to the scheduler.
    fn yield_token(&self, sim: &mut MutexGuard<'_, Sim>) {
        debug_assert_eq!(sim.token, Token::Act(self.aid));
        sim.token = Token::Scheduler;
        self.shared.sched_cv.notify_one();
    }

    /// Park until the scheduler grants the token back to this activity.
    fn wait_for_grant(&self, sim: &mut MutexGuard<'_, Sim>) {
        loop {
            if sim.shutdown {
                // Unwind through user code; the worker loop recognizes the
                // signal and exits quietly.
                std::panic::panic_any(ShutdownSignal);
            }
            if sim.token == Token::Act(self.aid)
                && matches!(sim.act(self.aid).state, ActivityState::Granted)
            {
                return;
            }
            self.my_cv.wait(sim);
        }
    }
}
