//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace resolves
//! `proptest` to this crate. It keeps the property-test *interface* (the
//! `proptest!` macro, range/tuple/collection strategies, `prop_map`,
//! `prop_recursive`, `sample::select`, `any::<bool>()`) while replacing the
//! generation engine with a small deterministic splitmix64-driven sampler.
//! There is no shrinking: a failing case reports its generated inputs and
//! the case index so it can be replayed by seed.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Deterministic generator state handed to strategies.
pub struct TestRng(u64);

impl TestRng {
    /// Seeded generator (per test, per case).
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Error type carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed assertion / rejected case.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a single property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Strategies are cheap to clone (`BoxedStrategy` is an
/// `Arc`) and generate deterministically from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: up to `depth` applications of `recurse` over the
    /// base strategy (`self` is the leaf). `_desired_size` and `_branch`
    /// are accepted for API compatibility and ignored; termination comes
    /// from the innermost level being the leaf strategy.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Strategy over the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T` (the `proptest` `any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generate vectors of `elem` values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::*;

    /// Strategy choosing one element of a fixed set.
    pub struct Select<T>(Vec<T>);

    /// Choose uniformly among `options` (must be non-empty).
    pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty set");
        Select(options)
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Prelude matching `proptest::prelude::*` for the used surface.
pub mod prelude {
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// The `prop::` module alias used by `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

pub use prelude::prop;

/// Assert a condition inside a property body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Skip cases whose inputs don't satisfy a precondition. Real proptest
/// rejects and regenerates; this shim simply passes the case, which is
/// sound (never hides a failure) though it runs fewer effective cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Run one property: generate `cases` inputs and invoke `body`.
/// Public machinery used by the `proptest!` macro expansion.
pub fn run_property<A, F>(config: &ProptestConfig, name: &str, gen: A, body: F)
where
    A: Fn(&mut TestRng) -> Box<dyn fmt::Debug>,
    F: Fn(&mut TestRng) -> TestCaseResult,
{
    for case in 0..config.cases {
        // Two rngs from the same seed: one consumed by the body's own
        // generation, one to reproduce the inputs for the failure report.
        let seed = 0xC0FFEE_u64
            .wrapping_mul(0x100000001B3)
            .wrapping_add(u64::from(case))
            .wrapping_add(name.len() as u64);
        let mut rng = TestRng::new(seed);
        if let Err(e) = body(&mut rng) {
            let mut replay = TestRng::new(seed);
            let inputs = gen(&mut replay);
            panic!(
                "property '{name}' failed at case {case}/{}: {e}\n  inputs: {inputs:?}",
                config.cases
            );
        }
    }
}

/// The `proptest!` block macro: a config line plus `#[test]` functions whose
/// arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each property function in a `proptest!` block.
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #![allow(unused_mut, unused_variables)]
            let config = $config;
            $crate::run_property(
                &config,
                stringify!($name),
                |rng: &mut $crate::TestRng| {
                    use $crate::Strategy as _;
                    Box::new(($( ($strat).generate(rng) ,)*)) as Box<dyn ::std::fmt::Debug>
                },
                |rng: &mut $crate::TestRng| -> $crate::TestCaseResult {
                    use $crate::Strategy as _;
                    $(let mut $arg = ($strat).generate(rng);)*
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn vec_and_select_compose() {
        let strat = prop::collection::vec(prop::sample::select(vec![1u8, 3, 5]), 2..6);
        let mut rng = crate::TestRng::new(1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| [1, 3, 5].contains(x)));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        struct Node(Vec<Node>);
        let leaf = (0u8..1).prop_map(|_| Node(Vec::new()));
        let strat = leaf.prop_recursive(4, 16, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Node)
        });
        let mut rng = crate::TestRng::new(3);
        for _ in 0..50 {
            let _ = strat.generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(a in 0u64..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(b as u64 * 2 / 2, b as u64);
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails'")]
    fn failures_panic_with_inputs() {
        crate::run_property(
            &ProptestConfig::with_cases(2),
            "always_fails",
            |rng| Box::new((0u8..10).generate(rng)),
            |_| Err(crate::TestCaseError::fail("nope")),
        );
    }
}
