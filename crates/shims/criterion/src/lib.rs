//! Offline stand-in for the subset of the `criterion` benchmark harness
//! this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace resolves
//! `criterion` to this crate. It keeps the bench-authoring API
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `BatchSize`) and runs
//! each benchmark with a fixed-iteration timing loop, printing mean
//! wall-clock per iteration. There are no statistics, warm-up calibration,
//! or HTML reports — this is a smoke-and-measure harness, not criterion.

use std::hint::black_box;
use std::time::Instant;

/// How per-iteration setup values are batched (only `PerIteration` is used
/// by this workspace; all variants behave identically here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup value for every routine invocation.
    PerIteration,
    /// Small batches (treated as `PerIteration`).
    SmallInput,
    /// Large batches (treated as `PerIteration`).
    LargeInput,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `routine`, called `iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Time `routine` over values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

fn run_one(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // One untimed call to warm caches, then the measured loop.
    let mut warm = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    f(&mut warm);
    let mut b = Bencher {
        iters: sample_size,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns / u128::from(b.iters.max(1));
    println!(
        "bench {label:<48} {per_iter:>12} ns/iter ({} iters)",
        b.iters
    );
}

/// Top-level benchmark registry (the `c: &mut Criterion` argument).
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Register and immediately run a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the measured iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Register and immediately run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; only measure
            // under `cargo bench` (which passes `--bench`).
            let bench_mode = std::env::args().any(|a| a == "--bench");
            if !bench_mode {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count >= 10);
    }

    #[test]
    fn group_batched_runs_setup_per_iter() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(4);
        let mut setups = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::PerIteration,
            )
        });
        g.finish();
        assert!(setups >= 4);
    }
}
