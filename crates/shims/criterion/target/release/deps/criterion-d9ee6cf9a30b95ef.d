/root/repo/crates/shims/criterion/target/release/deps/criterion-d9ee6cf9a30b95ef.d: src/lib.rs

/root/repo/crates/shims/criterion/target/release/deps/libcriterion-d9ee6cf9a30b95ef.rlib: src/lib.rs

/root/repo/crates/shims/criterion/target/release/deps/libcriterion-d9ee6cf9a30b95ef.rmeta: src/lib.rs

src/lib.rs:
