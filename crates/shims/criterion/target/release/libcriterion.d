/root/repo/crates/shims/criterion/target/release/libcriterion.rlib: /root/repo/crates/shims/criterion/src/lib.rs
