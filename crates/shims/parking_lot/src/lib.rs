//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `parking_lot` to this crate. It wraps `std::sync` primitives
//! and reproduces the two semantic differences the engine relies on:
//!
//! * no lock poisoning — a panic while holding the lock (the engine's
//!   `ShutdownSignal` unwind path) must not wedge every later `lock()`;
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming the
//!   guard.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Mutual exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block the current thread until notified. The guard is atomically
    /// released while waiting and re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard and returns a fresh one; move the
        // inner guard out and back without running destructors in between.
        // SAFETY: `inner` is moved out with `ptr::read` and unconditionally
        // replaced by `ptr::write` before anything can observe `guard`
        // again. `std::sync::Condvar::wait` only panics if the guard does
        // not belong to the condvar's associated mutex, which cannot happen
        // through this safe wrapper (and poisoning is mapped back to the
        // guard, not propagated as a panic).
        unsafe {
            let std_guard = std::ptr::read(&guard.inner);
            let reacquired = self
                .inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(&mut guard.inner, reacquired);
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7; // must not panic
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }
}
