//! Instruction-class cost model and block timing annotations.
//!
//! SiMany does not emulate an ISA. Instead, every *instruction block* (a
//! stretch of code with no interaction with other components) carries a
//! timing annotation computed from per-class instruction counts (paper §II.A
//! and §V). The paper groups the PowerPC 405 ISA into classes — unconditional
//! branches, conditional branches, common integer arithmetic, integer
//! multiply, simple floating-point arithmetic, and floating-point
//! multiply/divide — with one fixed cost per class.

use crate::vtime::VDuration;

/// Instruction classes distinguished by the cost model.
///
/// Mirrors the grouping of paper §V: loads/stores are *not* in this table —
/// memory accesses are interactions, timed by the simulator from the memory
/// and network models, never by block annotations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstrClass {
    /// Common integer arithmetic/logic (add, sub, shifts, compares, moves).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Simple floating-point arithmetic (add/sub).
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// Unconditional branch / statically predictable branch (loop back-edge):
    /// outcome known at compile time, so its effect is folded into the
    /// annotation directly.
    Branch,
    /// Conditional branch with a statically unknown outcome; subject to the
    /// probabilistic branch predictor.
    CondBranch,
}

/// Number of distinct instruction classes (table size).
pub const INSTR_CLASS_COUNT: usize = 8;

impl InstrClass {
    /// Dense table index.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            InstrClass::IntAlu => 0,
            InstrClass::IntMul => 1,
            InstrClass::IntDiv => 2,
            InstrClass::FpAdd => 3,
            InstrClass::FpMul => 4,
            InstrClass::FpDiv => 5,
            InstrClass::Branch => 6,
            InstrClass::CondBranch => 7,
        }
    }

    /// All classes, in table order.
    pub const ALL: [InstrClass; INSTR_CLASS_COUNT] = [
        InstrClass::IntAlu,
        InstrClass::IntMul,
        InstrClass::IntDiv,
        InstrClass::FpAdd,
        InstrClass::FpMul,
        InstrClass::FpDiv,
        InstrClass::Branch,
        InstrClass::CondBranch,
    ];
}

/// Per-class cycle costs for one core model.
///
/// The defaults approximate a scalar 5-stage PowerPC-405-like pipeline: one
/// cycle for simple integer work, several for multiplies, tens for divides.
/// The paper notes that the effect of functional-unit choices can be mimicked
/// by varying these per-class costs, which is exactly what architecture
/// exploration does.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Cost in cycles for one instruction of each class (indexed by
    /// [`InstrClass::index`]).
    pub cycles: [u32; INSTR_CLASS_COUNT],
    /// Pipeline depth; the branch misprediction penalty equals this (paper:
    /// depth 5, 5-cycle penalty).
    pub pipeline_depth: u32,
    /// Branch-predictor success probability for statically unknown branches
    /// (paper: at least 90 %).
    pub branch_accuracy: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cycles: [
                1,  // IntAlu
                4,  // IntMul
                32, // IntDiv
                4,  // FpAdd
                6,  // FpMul
                30, // FpDiv
                1,  // Branch (statically predicted; penalty folded in when
                //     the compiler knows it mispredicts, cf. paper §V)
                1, // CondBranch base cost, predictor adds penalty on a miss
            ],
            pipeline_depth: 5,
            branch_accuracy: 0.90,
        }
    }
}

impl CostModel {
    /// Cost of one instruction of class `class`, in cycles.
    #[inline]
    pub fn cost_of(&self, class: InstrClass) -> u32 {
        self.cycles[class.index()]
    }

    /// Branch misprediction penalty in cycles (the pipeline depth).
    #[inline]
    pub fn mispredict_penalty(&self) -> u32 {
        self.pipeline_depth
    }

    /// Total cost of a block annotation in cycles (excluding dynamic branch
    /// penalties, which depend on predictor state/randomness).
    pub fn block_cycles(&self, block: &BlockCost) -> u64 {
        let mut total = block.extra_cycles;
        for class in InstrClass::ALL {
            total += u64::from(self.cost_of(class)) * block.counts[class.index()];
        }
        total
    }
}

/// Timing annotation for one instruction block: instruction counts per class
/// plus an optional flat extra cost.
///
/// Built with a fluent API:
/// ```
/// use simany_time::{BlockCost, CostModel};
/// let block = BlockCost::new().int_alu(10).fp_mul(2).cond_branches(1);
/// let model = CostModel::default();
/// assert_eq!(model.block_cycles(&block), 10 + 2 * 6 + 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockCost {
    /// Instruction counts per class (indexed by [`InstrClass::index`]).
    pub counts: [u64; INSTR_CLASS_COUNT],
    /// Flat additional cycles (coarse annotations "attributed to coarse
    /// program parts at once", paper §II.A).
    pub extra_cycles: u64,
}

macro_rules! block_builder {
    ($($method:ident => $class:expr),* $(,)?) => {
        $(
            #[doc = concat!("Add `n` instructions of the corresponding class.")]
            #[inline]
            pub fn $method(mut self, n: u64) -> Self {
                self.counts[$class.index()] += n;
                self
            }
        )*
    };
}

impl BlockCost {
    /// Empty annotation (zero cost).
    pub fn new() -> Self {
        Self::default()
    }

    block_builder! {
        int_alu => InstrClass::IntAlu,
        int_mul => InstrClass::IntMul,
        int_div => InstrClass::IntDiv,
        fp_add => InstrClass::FpAdd,
        fp_mul => InstrClass::FpMul,
        fp_div => InstrClass::FpDiv,
        branches => InstrClass::Branch,
        cond_branches => InstrClass::CondBranch,
    }

    /// Add a flat number of extra cycles.
    #[inline]
    pub fn extra(mut self, cycles: u64) -> Self {
        self.extra_cycles += cycles;
        self
    }

    /// Add `n` instructions of class `class`.
    #[inline]
    pub fn instr(mut self, class: InstrClass, n: u64) -> Self {
        self.counts[class.index()] += n;
        self
    }

    /// Number of statically unknown conditional branches in the block (each
    /// is submitted to the branch predictor by the executing core).
    #[inline]
    pub fn cond_branch_count(&self) -> u64 {
        self.counts[InstrClass::CondBranch.index()]
    }

    /// The annotation of `n` back-to-back repetitions of this block (e.g.
    /// one loop chunk): all counts and the extra cost multiplied by `n`.
    pub fn times(&self, n: u64) -> BlockCost {
        let mut out = BlockCost::default();
        for i in 0..INSTR_CLASS_COUNT {
            out.counts[i] = self.counts[i] * n;
        }
        out.extra_cycles = self.extra_cycles * n;
        out
    }

    /// Merge another block annotation into this one.
    pub fn merge(&mut self, other: &BlockCost) {
        for i in 0..INSTR_CLASS_COUNT {
            self.counts[i] += other.counts[i];
        }
        self.extra_cycles += other.extra_cycles;
    }

    /// True iff the annotation is empty.
    pub fn is_empty(&self) -> bool {
        self.extra_cycles == 0 && self.counts.iter().all(|&c| c == 0)
    }
}

/// Rational per-core speed factor, `num/den` relative to a base core.
///
/// Polymorphic architectures (paper §V) mix cores "twice slower" (1/2) and
/// "faster by a factor of 3/2" (3/2) so that aggregate computing power equals
/// the uniform machine. Elapsed time for a block of `c` base cycles on a core
/// of speed `num/den` is `c * den / num`, rounded up so that a slow core is
/// never accidentally free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CoreSpeed {
    /// Speed numerator.
    pub num: u32,
    /// Speed denominator.
    pub den: u32,
}

impl CoreSpeed {
    /// Base speed (1/1).
    pub const BASE: CoreSpeed = CoreSpeed { num: 1, den: 1 };
    /// Half-speed core of the polymorphic architectures.
    pub const HALF: CoreSpeed = CoreSpeed { num: 1, den: 2 };
    /// 1.5×-speed core of the polymorphic architectures.
    pub const THREE_HALVES: CoreSpeed = CoreSpeed { num: 3, den: 2 };

    /// Construct a speed `num/den`; both must be non-zero.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0, "CoreSpeed terms must be non-zero");
        CoreSpeed { num, den }
    }

    /// Scale a base-cycle count into elapsed ticks on this core (rounded up
    /// to a whole tick).
    #[inline]
    pub fn scale_cycles(self, base_cycles: u64) -> VDuration {
        // ticks = cycles * TICKS_PER_CYCLE * den / num, rounded up.
        let ticks_num =
            base_cycles as u128 * crate::vtime::TICKS_PER_CYCLE as u128 * self.den as u128;
        let ticks = ticks_num.div_ceil(self.num as u128);
        VDuration(u64::try_from(ticks).expect("scaled duration overflow"))
    }

    /// Scale a base duration into elapsed time on this core (rounded up to
    /// a whole tick). Identity for the base speed.
    #[inline]
    pub fn scale_duration(self, d: VDuration) -> VDuration {
        if self.num == self.den {
            return d;
        }
        let ticks = (d.ticks() as u128 * self.den as u128).div_ceil(self.num as u128);
        VDuration(u64::try_from(ticks).expect("scaled duration overflow"))
    }

    /// Speed as a float (reporting only).
    pub fn as_f64(self) -> f64 {
        f64::from(self.num) / f64::from(self.den)
    }
}

impl Default for CoreSpeed {
    fn default() -> Self {
        CoreSpeed::BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_match_paper_classes() {
        let m = CostModel::default();
        assert_eq!(m.cost_of(InstrClass::IntAlu), 1);
        assert!(m.cost_of(InstrClass::IntDiv) > m.cost_of(InstrClass::IntMul));
        assert!(m.cost_of(InstrClass::FpDiv) > m.cost_of(InstrClass::FpMul));
        assert_eq!(m.mispredict_penalty(), 5);
        assert!((m.branch_accuracy - 0.9).abs() < 1e-12);
    }

    #[test]
    fn block_cost_accumulates() {
        let b = BlockCost::new()
            .int_alu(3)
            .int_mul(1)
            .fp_div(1)
            .cond_branches(2)
            .extra(10);
        let m = CostModel::default();
        assert_eq!(m.block_cycles(&b), 3 + 4 + 30 + 2 + 10);
        assert_eq!(b.cond_branch_count(), 2);
        assert!(!b.is_empty());
        assert!(BlockCost::new().is_empty());
    }

    #[test]
    fn block_merge() {
        let mut a = BlockCost::new().int_alu(1);
        let b = BlockCost::new().int_alu(2).extra(5);
        a.merge(&b);
        assert_eq!(a.counts[InstrClass::IntAlu.index()], 3);
        assert_eq!(a.extra_cycles, 5);
    }

    #[test]
    fn instr_builder_equivalent_to_named() {
        let a = BlockCost::new().instr(InstrClass::FpMul, 4);
        let b = BlockCost::new().fp_mul(4);
        assert_eq!(a, b);
    }

    #[test]
    fn speed_scaling_half_and_fast() {
        // 100 base cycles on a half-speed core take 200 cycles.
        assert_eq!(
            CoreSpeed::HALF.scale_cycles(100),
            VDuration::from_cycles(200)
        );
        // On a 1.5x core: 100 * 2/3 = 66.66.. cycles = 133.33.. ticks -> 134.
        assert_eq!(CoreSpeed::THREE_HALVES.scale_cycles(100).ticks(), 134);
        // Base core is identity.
        assert_eq!(CoreSpeed::BASE.scale_cycles(77), VDuration::from_cycles(77));
    }

    #[test]
    fn polymorphic_pair_has_equal_aggregate_power() {
        // One half-speed and one 1.5x core together match two base cores.
        let agg = CoreSpeed::HALF.as_f64() + CoreSpeed::THREE_HALVES.as_f64();
        assert!((agg - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scale_rounds_up_not_down() {
        // 1 cycle on a 3/2-speed core: 2/3 cycle = 1.33 ticks -> 2 ticks.
        assert_eq!(CoreSpeed::THREE_HALVES.scale_cycles(1).ticks(), 2);
        // Never zero for non-zero work.
        assert!(CoreSpeed::new(1000, 1).scale_cycles(1).ticks() > 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_speed_rejected() {
        let _ = CoreSpeed::new(0, 1);
    }
}
