//! Virtual time primitives.
//!
//! Every simulated core and hardware component in SiMany maintains a private
//! virtual clock (paper §II.A "Distributed timing"). The clock is a plain
//! monotonic counter of *ticks*; one processor cycle is [`TICKS_PER_CYCLE`]
//! ticks. Sub-cycle quantities appear in the paper (the clustered
//! architectures use 0.5-cycle intra-cluster link latency), so a tick is half
//! a cycle and all arithmetic stays exact and integral.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Number of ticks per processor cycle.
pub const TICKS_PER_CYCLE: u64 = 2;

/// An absolute point in virtual time (ticks since simulation start).
///
/// `VirtualTime` is totally ordered; the simulator compares clocks of
/// different cores to implement spatial synchronization and to timestamp
/// messages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

/// A span of virtual time (ticks).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VDuration(pub u64);

impl VirtualTime {
    /// Time zero, the simulation start.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Largest representable time; used as "+infinity" sentinel when taking
    /// minima over sets of clocks.
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Construct from whole processor cycles.
    #[inline]
    pub const fn from_cycles(cycles: u64) -> Self {
        VirtualTime(cycles * TICKS_PER_CYCLE)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Time expressed in cycles, rounding down.
    #[inline]
    pub const fn cycles(self) -> u64 {
        self.0 / TICKS_PER_CYCLE
    }

    /// Time in cycles as a float (for reporting only; never used in the
    /// simulation itself).
    #[inline]
    pub fn cycles_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_CYCLE as f64
    }

    /// Saturating difference `self - earlier`, zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: VirtualTime) -> VDuration {
        VDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.min(other.0))
    }
}

impl VDuration {
    /// Zero-length span.
    pub const ZERO: VDuration = VDuration(0);

    /// Construct from whole processor cycles.
    #[inline]
    pub const fn from_cycles(cycles: u64) -> Self {
        VDuration(cycles * TICKS_PER_CYCLE)
    }

    /// Construct from half cycles (1 half-cycle = 1 tick).
    #[inline]
    pub const fn from_half_cycles(half_cycles: u64) -> Self {
        VDuration(half_cycles)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Span expressed in cycles, rounding down.
    #[inline]
    pub const fn cycles(self) -> u64 {
        self.0 / TICKS_PER_CYCLE
    }

    /// Span in cycles as a float (reporting only).
    #[inline]
    pub fn cycles_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_CYCLE as f64
    }

    /// True iff the span is empty.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two spans.
    #[inline]
    pub fn max(self, other: VDuration) -> VDuration {
        VDuration(self.0.max(other.0))
    }

    /// Scale by an integer factor (used e.g. for the global drift bound
    /// `diameter × T`).
    #[inline]
    pub const fn scaled(self, factor: u64) -> VDuration {
        VDuration(self.0 * factor)
    }
}

impl Add<VDuration> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: VDuration) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign<VDuration> for VirtualTime {
    #[inline]
    fn add_assign(&mut self, rhs: VDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VDuration;
    /// Exact difference; panics in debug builds when `rhs` is later.
    #[inline]
    fn sub(self, rhs: VirtualTime) -> VDuration {
        debug_assert!(self.0 >= rhs.0, "VirtualTime subtraction underflow");
        VDuration(self.0 - rhs.0)
    }
}

impl Add for VDuration {
    type Output = VDuration;
    #[inline]
    fn add(self, rhs: VDuration) -> VDuration {
        VDuration(self.0 + rhs.0)
    }
}

impl AddAssign for VDuration {
    #[inline]
    fn add_assign(&mut self, rhs: VDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for VDuration {
    type Output = VDuration;
    #[inline]
    fn sub(self, rhs: VDuration) -> VDuration {
        debug_assert!(self.0 >= rhs.0, "VDuration subtraction underflow");
        VDuration(self.0 - rhs.0)
    }
}

impl SubAssign for VDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: VDuration) {
        debug_assert!(self.0 >= rhs.0, "VDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for VDuration {
    type Output = VDuration;
    #[inline]
    fn mul(self, rhs: u64) -> VDuration {
        VDuration(self.0 * rhs)
    }
}

impl Sum for VDuration {
    fn sum<I: Iterator<Item = VDuration>>(iter: I) -> Self {
        VDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "t=+inf")
        } else if self.0.is_multiple_of(TICKS_PER_CYCLE) {
            write!(f, "t={}cy", self.cycles())
        } else {
            write!(f, "t={:.1}cy", self.cycles_f64())
        }
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for VDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(TICKS_PER_CYCLE) {
            write!(f, "{}cy", self.cycles())
        } else {
            write!(f, "{:.1}cy", self.cycles_f64())
        }
    }
}

impl fmt::Display for VDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_tick_round_trip() {
        let t = VirtualTime::from_cycles(100);
        assert_eq!(t.ticks(), 200);
        assert_eq!(t.cycles(), 100);
        assert_eq!(t.cycles_f64(), 100.0);
    }

    #[test]
    fn half_cycle_durations_are_exact() {
        let half = VDuration::from_half_cycles(1);
        let t = VirtualTime::ZERO + half + half;
        assert_eq!(t, VirtualTime::from_cycles(1));
        assert_eq!(half.cycles_f64(), 0.5);
    }

    #[test]
    fn ordering_and_max_min() {
        let a = VirtualTime::from_cycles(5);
        let b = VirtualTime::from_cycles(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = VirtualTime::from_cycles(5);
        let b = VirtualTime::from_cycles(7);
        assert_eq!(b.saturating_since(a), VDuration::from_cycles(2));
        assert_eq!(a.saturating_since(b), VDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = VDuration::from_cycles(3) + VDuration::from_cycles(4);
        assert_eq!(d.cycles(), 7);
        assert_eq!((d - VDuration::from_cycles(2)).cycles(), 5);
        assert_eq!(d.scaled(2).cycles(), 14);
        assert_eq!((d * 3).cycles(), 21);
    }

    #[test]
    fn sum_of_durations() {
        let total: VDuration = (1..=4).map(VDuration::from_cycles).sum();
        assert_eq!(total.cycles(), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", VirtualTime::from_cycles(42)), "t=42cy");
        assert_eq!(format!("{}", VDuration::from_half_cycles(3)), "1.5cy");
        assert_eq!(format!("{}", VirtualTime::MAX), "t=+inf");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    #[cfg(debug_assertions)]
    fn exact_subtraction_underflow_panics() {
        let _ = VirtualTime::from_cycles(1) - VirtualTime::from_cycles(2);
    }
}
