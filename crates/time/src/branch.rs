//! Branch prediction models.
//!
//! SiMany models branch prediction probabilistically (paper §V): statically
//! unknown conditional branches are predicted correctly with probability
//! ≥ 0.9; a misprediction costs one pipeline depth (5 cycles). The
//! cycle-level reference simulator instead uses a classic table of two-bit
//! saturating counters indexed by (hashed) branch address.

use crate::prng::Xoshiro256StarStar;

/// Outcome of submitting one branch to a predictor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchOutcome {
    /// Correctly predicted; no penalty.
    Hit,
    /// Mispredicted; the pipeline-depth penalty applies.
    Miss,
}

/// Probabilistic branch predictor: each statically unknown conditional branch
/// is an independent Bernoulli trial with success probability `accuracy`.
#[derive(Clone, Debug)]
pub struct ProbBranchPredictor {
    accuracy: f64,
    penalty_cycles: u32,
    rng: Xoshiro256StarStar,
    hits: u64,
    misses: u64,
}

impl ProbBranchPredictor {
    /// Batch size above which [`Self::predict_many`] switches from sampled
    /// Bernoulli trials to the deterministic expectation.
    pub const EXACT_LIMIT: u64 = 4096;

    /// Create a predictor with the given accuracy, penalty and PRNG stream.
    pub fn new(accuracy: f64, penalty_cycles: u32, rng: Xoshiro256StarStar) -> Self {
        assert!(
            (0.0..=1.0).contains(&accuracy),
            "branch accuracy must be a probability"
        );
        ProbBranchPredictor {
            accuracy,
            penalty_cycles,
            rng,
            hits: 0,
            misses: 0,
        }
    }

    /// Submit one branch; returns the penalty in cycles (0 on a hit).
    #[inline]
    pub fn predict(&mut self) -> u32 {
        if self.rng.chance(self.accuracy) {
            self.hits += 1;
            0
        } else {
            self.misses += 1;
            self.penalty_cycles
        }
    }

    /// Total penalty cycles for a run of `n` branches.
    ///
    /// Above [`Self::EXACT_LIMIT`] branches the per-branch Bernoulli trials
    /// are replaced by the deterministic expectation (`n × (1 − accuracy)`
    /// misses, rounded): for coarse annotations covering huge loop nests the
    /// law of large numbers makes the sampled count indistinguishable from
    /// its mean, and skipping the per-branch PRNG calls keeps very coarse
    /// blocks O(1).
    pub fn predict_many(&mut self, n: u64) -> u64 {
        if n > Self::EXACT_LIMIT {
            let misses = ((n as f64) * (1.0 - self.accuracy)).round() as u64;
            self.misses += misses;
            self.hits += n - misses;
            return misses * u64::from(self.penalty_cycles);
        }
        let mut total = 0u64;
        for _ in 0..n {
            total += u64::from(self.predict());
        }
        total
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Observed accuracy so far (1.0 when nothing predicted yet).
    pub fn observed_accuracy(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Two-bit saturating counter states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(clippy::enum_variant_names)]
enum TwoBit {
    StrongNotTaken,
    WeakNotTaken,
    WeakTaken,
    StrongTaken,
}

impl TwoBit {
    #[inline]
    fn predicts_taken(self) -> bool {
        matches!(self, TwoBit::WeakTaken | TwoBit::StrongTaken)
    }

    #[inline]
    fn update(self, taken: bool) -> TwoBit {
        use TwoBit::*;
        match (self, taken) {
            (StrongNotTaken, false) => StrongNotTaken,
            (StrongNotTaken, true) => WeakNotTaken,
            (WeakNotTaken, false) => StrongNotTaken,
            (WeakNotTaken, true) => WeakTaken,
            (WeakTaken, false) => WeakNotTaken,
            (WeakTaken, true) => StrongTaken,
            (StrongTaken, false) => WeakTaken,
            (StrongTaken, true) => StrongTaken,
        }
    }
}

/// Table of two-bit saturating counters, indexed by hashed branch address.
/// Used by the cycle-level reference simulator (`simany-cyclelevel`).
#[derive(Clone, Debug)]
pub struct TwoBitPredictor {
    table: Vec<TwoBit>,
    mask: u64,
    penalty_cycles: u32,
    hits: u64,
    misses: u64,
}

impl TwoBitPredictor {
    /// Create a predictor with `entries` counters (rounded up to a power of
    /// two) and the given misprediction penalty.
    pub fn new(entries: usize, penalty_cycles: u32) -> Self {
        let n = entries.next_power_of_two().max(2);
        TwoBitPredictor {
            table: vec![TwoBit::WeakTaken; n],
            mask: (n - 1) as u64,
            penalty_cycles,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn slot(&self, addr: u64) -> usize {
        // Cheap avalanche so nearby addresses spread over the table.
        let mut h = addr;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h & self.mask) as usize
    }

    /// Submit one resolved branch (`addr`, actual `taken` outcome); returns
    /// the penalty in cycles (0 on a correct prediction) and trains the
    /// counter.
    #[inline]
    pub fn predict_and_train(&mut self, addr: u64, taken: bool) -> u32 {
        let i = self.slot(addr);
        let state = self.table[i];
        let correct = state.predicts_taken() == taken;
        self.table[i] = state.update(taken);
        if correct {
            self.hits += 1;
            0
        } else {
            self.misses += 1;
            self.penalty_cycles
        }
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Observed accuracy so far (1.0 when nothing predicted yet).
    pub fn observed_accuracy(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seeded(99)
    }

    #[test]
    fn prob_predictor_rate_near_accuracy() {
        let mut p = ProbBranchPredictor::new(0.9, 5, rng());
        let penalty = p.predict_many(20_000);
        let (hits, misses) = p.stats();
        assert_eq!(hits + misses, 20_000);
        assert_eq!(penalty, misses * 5);
        let acc = p.observed_accuracy();
        assert!((0.88..=0.92).contains(&acc), "accuracy {acc}");
    }

    #[test]
    fn prob_predictor_deterministic_per_seed() {
        let mut a = ProbBranchPredictor::new(0.9, 5, Xoshiro256StarStar::seeded(1));
        let mut b = ProbBranchPredictor::new(0.9, 5, Xoshiro256StarStar::seeded(1));
        assert_eq!(a.predict_many(1000), b.predict_many(1000));
    }

    #[test]
    fn prob_predictor_extremes() {
        let mut always = ProbBranchPredictor::new(1.0, 5, rng());
        assert_eq!(always.predict_many(100), 0);
        let mut never = ProbBranchPredictor::new(0.0, 5, rng());
        assert_eq!(never.predict_many(100), 500);
    }

    #[test]
    fn predict_many_large_batch_uses_expectation() {
        let mut p = ProbBranchPredictor::new(0.9, 5, rng());
        let n = ProbBranchPredictor::EXACT_LIMIT * 10;
        let penalty = p.predict_many(n);
        // Deterministic: exactly 10% misses.
        assert_eq!(penalty, (n / 10) * 5);
        let (hits, misses) = p.stats();
        assert_eq!(misses, n / 10);
        assert_eq!(hits + misses, n);
    }

    #[test]
    fn two_bit_learns_biased_branch() {
        let mut p = TwoBitPredictor::new(256, 5);
        // Always-taken branch: after warm-up, no more penalties.
        let mut late_penalty = 0;
        for i in 0..100 {
            let pen = p.predict_and_train(0xABCD, true);
            if i >= 2 {
                late_penalty += pen;
            }
        }
        assert_eq!(late_penalty, 0);
        assert!(p.observed_accuracy() > 0.9);
    }

    #[test]
    fn two_bit_hysteresis_tolerates_single_flip() {
        let mut p = TwoBitPredictor::new(16, 5);
        for _ in 0..10 {
            p.predict_and_train(7, true);
        }
        // One not-taken blip...
        p.predict_and_train(7, false);
        // ...should not flip the prediction: next taken is still a hit.
        assert_eq!(p.predict_and_train(7, true), 0);
    }

    #[test]
    fn two_bit_alternating_worst_case() {
        let mut p = TwoBitPredictor::new(16, 5);
        let mut taken = true;
        let mut penalties = 0u32;
        for _ in 0..100 {
            penalties += p.predict_and_train(3, taken);
            taken = !taken;
        }
        // Alternation defeats a two-bit counter about half the time or worse.
        assert!(penalties >= 200, "penalties {penalties}");
    }

    #[test]
    fn two_bit_distinct_addresses_do_not_interfere_much() {
        let mut p = TwoBitPredictor::new(1024, 5);
        for _ in 0..50 {
            p.predict_and_train(1, true);
            p.predict_and_train(2, false);
        }
        assert_eq!(p.predict_and_train(1, true), 0);
        assert_eq!(p.predict_and_train(2, false), 0);
    }

    #[test]
    fn table_size_rounds_to_power_of_two() {
        let p = TwoBitPredictor::new(1000, 5);
        assert_eq!(p.table.len(), 1024);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_accuracy_rejected() {
        let _ = ProbBranchPredictor::new(1.5, 5, rng());
    }
}
