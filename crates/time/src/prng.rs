//! Deterministic pseudo-random number generators.
//!
//! Simulation results must be bit-for-bit reproducible from a single seed,
//! across compiler and dependency upgrades: validation experiments compare
//! virtual times between two different simulators and any hidden change in a
//! PRNG stream would silently shift every measurement. We therefore ship our
//! own tiny, well-known generators instead of depending on `rand`:
//!
//! * [`SplitMix64`] — used for seeding and cheap stream splitting.
//! * [`Xoshiro256StarStar`] — the workhorse generator (branch predictor
//!   outcomes, scheduler tie-breaking, workload generation).
//!
//! Both follow the public-domain reference implementations by Blackman and
//! Vigna.

/// SplitMix64: a fast 64-bit generator mainly used to expand a single `u64`
/// seed into independent streams.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: general-purpose 64-bit PRNG with 256 bits of state.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 as recommended by the xoshiro authors.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot emit
        // four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Derive an independent stream for entity `index` (e.g. one per core).
    pub fn stream(seed: u64, index: u64) -> Self {
        let mut sm = SplitMix64::new(seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
        // Burn a few outputs so that nearby indices decorrelate.
        sm.next_u64();
        Self::seeded(sm.next_u64())
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper bits of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method for an unbiased result.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be non-zero");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range requires lo <= hi");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: true with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_determinism_and_streams() {
        let mut a = Xoshiro256StarStar::seeded(42);
        let mut b = Xoshiro256StarStar::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut s0 = Xoshiro256StarStar::stream(42, 0);
        let mut s1 = Xoshiro256StarStar::stream(42, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256StarStar::seeded(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should be hit");
    }

    #[test]
    fn next_range_inclusive_bounds() {
        let mut rng = Xoshiro256StarStar::seeded(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.next_range(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seeded(11);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut rng = Xoshiro256StarStar::seeded(13);
        let hits = (0..10_000).filter(|_| rng.chance(0.9)).count();
        assert!(
            (8800..=9200).contains(&hits),
            "90% chance gave {hits}/10000"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256StarStar::seeded(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }
}
