#![warn(missing_docs)]

//! # simany-time — virtual time, instruction cost models and deterministic PRNGs
//!
//! This crate provides the timing substrate of the SiMany simulator:
//!
//! * [`VirtualTime`] and [`VDuration`] — the simulator's notion of time.
//!   SiMany advances each simulated component's *private* virtual clock from
//!   timing annotations and communication delays; nothing here is wall-clock.
//!   Time is counted in **ticks** where one processor cycle equals
//!   [`TICKS_PER_CYCLE`] ticks, so that the paper's half-cycle intra-cluster
//!   link latency stays exact integer arithmetic.
//! * [`CostModel`] and [`BlockCost`] — the per-instruction-class cost table
//!   used to annotate natively executed instruction blocks (paper §II.A
//!   "Timing annotations" and §V "Architecture Configuration").
//! * [`CoreSpeed`] — rational per-core speed scaling used to build the
//!   *polymorphic* architectures of the paper (half-speed and 1.5×-speed
//!   cores with equal aggregate computing power).
//! * [`branch`] — the probabilistic branch predictor (90 % accuracy,
//!   5-cycle misprediction penalty) used by SiMany, and a classic two-bit
//!   saturating-counter predictor used by the cycle-level reference.
//! * [`prng`] — small, fast, fully deterministic PRNGs (SplitMix64 and
//!   xoshiro256**) implemented locally so simulation results never change
//!   under dependency upgrades.

pub mod branch;
pub mod cost;
pub mod prng;
pub mod vtime;

pub use branch::{BranchOutcome, ProbBranchPredictor, TwoBitPredictor};
pub use cost::{BlockCost, CoreSpeed, CostModel, InstrClass};
pub use prng::{SplitMix64, Xoshiro256StarStar};
pub use vtime::{VDuration, VirtualTime, TICKS_PER_CYCLE};
