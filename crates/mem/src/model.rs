//! The two architecture types of paper §V, as memory-timing parameter sets.

use simany_time::VDuration;

/// Common memory timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct MemoryParams {
    /// Private L1 hit latency (paper: 1 cycle).
    pub l1_latency: VDuration,
    /// Latency of the level behind L1: shared banks (shared-memory type) or
    /// the per-core L2 (distributed-memory type). Paper: 10 cycles.
    pub backing_latency: VDuration,
    /// Cache line size in bytes.
    pub line_bytes: u32,
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams {
            l1_latency: VDuration::from_cycles(1),
            backing_latency: VDuration::from_cycles(10),
            line_bytes: crate::DEFAULT_LINE_BYTES,
        }
    }
}

/// Which of the paper's two architecture types is simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryArch {
    /// Optimistic shared memory: "all cores, besides their private L1
    /// cache, access the shared memory banks with a common low latency (10
    /// cycles). The delays induced by cache coherence effects are not taken
    /// into account. The purpose of this optimistic architecture model is
    /// to study inherent program scalability" (§V).
    SharedUniform {
        /// Model coherence-effect timings through the MSI directory (used
        /// for the validation experiments of Fig. 5/6, where the reference
        /// cycle-level simulator fully simulates coherence).
        coherence_timings: bool,
    },
    /// Realistic distributed memory without hardware coherence: "the
    /// run-time system manages shared data. A L2 cache with 10-cycle
    /// latency is added to each core" (§V). Remote cells move via
    /// DATA_REQUEST / DATA_RESPONSE messages; fetched data lands in the
    /// requester's L2.
    Distributed,
}

impl MemoryArch {
    /// True for the distributed-memory type.
    pub fn is_distributed(self) -> bool {
        matches!(self, MemoryArch::Distributed)
    }

    /// True when MSI coherence timings must be charged on shared accesses.
    pub fn coherence_enabled(self) -> bool {
        matches!(
            self,
            MemoryArch::SharedUniform {
                coherence_timings: true
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = MemoryParams::default();
        assert_eq!(p.l1_latency, VDuration::from_cycles(1));
        assert_eq!(p.backing_latency, VDuration::from_cycles(10));
        assert_eq!(p.line_bytes, 32);
    }

    #[test]
    fn arch_predicates() {
        assert!(MemoryArch::Distributed.is_distributed());
        assert!(!MemoryArch::Distributed.coherence_enabled());
        assert!(MemoryArch::SharedUniform {
            coherence_timings: true
        }
        .coherence_enabled());
        assert!(!MemoryArch::SharedUniform {
            coherence_timings: false
        }
        .coherence_enabled());
    }
}
