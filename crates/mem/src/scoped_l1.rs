//! The paper's pessimistic private-L1 model.
//!
//! "Each core has a private L1 cache with 1-cycle latency. The associated
//! cache model is simple and pessimistic: Data do not stay in the cache
//! across function boundaries of the executed program." (§V)
//!
//! We model this as a stack of scope frames: entering a function pushes a
//! frame, touching a line records it in the current frame, and leaving the
//! function forgets everything the frame touched. The first touch of a line
//! within the current scope is a miss (pays the backing latency); repeats
//! are 1-cycle hits. Lines touched by an *outer* frame still count as
//! cached for inner frames — only crossing a function boundary *outward*
//! invalidates, which is exactly the paper's pessimism.

use crate::Addr;
use std::collections::HashSet;

/// Scope-tracked pessimistic L1.
#[derive(Debug, Clone)]
pub struct ScopedL1 {
    line_bytes: u32,
    frames: Vec<HashSet<u64>>,
    hits: u64,
    misses: u64,
}

impl ScopedL1 {
    /// New model with the given line size; starts with one root frame.
    pub fn new(line_bytes: u32) -> Self {
        assert!(line_bytes > 0);
        ScopedL1 {
            line_bytes,
            frames: vec![HashSet::new()],
            hits: 0,
            misses: 0,
        }
    }

    /// Enter a function scope.
    pub fn enter_scope(&mut self) {
        self.frames.push(HashSet::new());
    }

    /// Leave a function scope, forgetting every line it touched.
    pub fn exit_scope(&mut self) {
        assert!(self.frames.len() > 1, "cannot exit the root scope");
        self.frames.pop();
    }

    /// Current scope depth (root = 1).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Touch `addr`; returns true on an L1 hit (line already touched in any
    /// live scope), false on a miss (records the line in the current
    /// scope).
    pub fn access(&mut self, addr: Addr) -> bool {
        let line = crate::line_of(addr, self.line_bytes);
        if self.frames.iter().any(|f| f.contains(&line)) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.frames.last_mut().expect("root frame").insert(line);
            false
        }
    }

    /// Drop a line from every live scope (used when coherence invalidates
    /// it, or when the runtime moves a cell away).
    pub fn invalidate(&mut self, addr: Addr) {
        let line = crate::line_of(addr, self.line_bytes);
        for f in &mut self.frames {
            f.remove(&line);
        }
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl Default for ScopedL1 {
    fn default() -> Self {
        ScopedL1::new(crate::DEFAULT_LINE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut l1 = ScopedL1::new(32);
        assert!(!l1.access(100));
        assert!(l1.access(100));
        assert!(l1.access(101)); // same 32-byte line
        assert!(!l1.access(200)); // different line
        assert_eq!(l1.stats(), (2, 2));
    }

    #[test]
    fn scope_exit_forgets_lines() {
        let mut l1 = ScopedL1::new(32);
        l1.enter_scope();
        assert!(!l1.access(100));
        assert!(l1.access(100));
        l1.exit_scope();
        // Function boundary crossed: the data is gone.
        assert!(!l1.access(100));
    }

    #[test]
    fn outer_scope_lines_visible_inside() {
        let mut l1 = ScopedL1::new(32);
        assert!(!l1.access(100)); // touched at root
        l1.enter_scope();
        assert!(l1.access(100)); // still cached inside the call
        l1.exit_scope();
        assert!(l1.access(100)); // root's own touch persists
    }

    #[test]
    fn nested_scopes() {
        let mut l1 = ScopedL1::new(32);
        l1.enter_scope();
        l1.access(64);
        l1.enter_scope();
        assert_eq!(l1.depth(), 3);
        l1.access(128);
        assert!(l1.access(64)); // outer frame's line
        l1.exit_scope();
        assert!(!l1.access(128)); // inner frame's line is gone
        l1.exit_scope();
    }

    #[test]
    fn invalidate_removes_from_all_frames() {
        let mut l1 = ScopedL1::new(32);
        l1.access(100);
        l1.enter_scope();
        l1.access(100); // hit, recorded only in root
        l1.invalidate(100);
        assert!(!l1.access(100));
    }

    #[test]
    #[should_panic(expected = "root scope")]
    fn cannot_exit_root() {
        let mut l1 = ScopedL1::new(32);
        l1.exit_scope();
    }
}
