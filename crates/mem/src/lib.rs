#![warn(missing_docs)]

//! # simany-mem — memory hierarchy models
//!
//! SiMany "includes simple models for caches and cores, decreasing the time
//! required to simulate these components" (paper §I). This crate provides
//! every memory model the paper's experiments need:
//!
//! * [`ScopedL1`] — the paper's deliberately simple, pessimistic private L1
//!   model: 1-cycle hits, and "data do not stay in the cache across function
//!   boundaries of the executed program" (§V), modeled as a stack of scope
//!   frames of touched lines.
//! * [`MemoryArch`] — the two architecture types of §V: an optimistic
//!   **shared-memory** machine (uniform 10-cycle banks, no coherence
//!   delays) and a realistic **distributed-memory** machine (per-core
//!   10-cycle L2, run-time-managed data movement).
//! * [`DirectoryTiming`] — an MSI directory timing model used when SiMany
//!   "enable\[s\] the timings of cache coherence effects" for the validation
//!   against the cycle-level simulator (§V, *Cycle-Level Parameters*).
//! * [`SetAssocCache`] — a real tag-array set-associative cache with LRU
//!   replacement, used by the cycle-level reference simulator
//!   (`simany-cyclelevel`) for its split L1 I/D caches.

pub mod cache;
pub mod directory;
pub mod model;
pub mod scoped_l1;

pub use cache::{AccessResult, SetAssocCache};
pub use directory::{CoherenceLeg, DirectoryTiming};
pub use model::{MemoryArch, MemoryParams};
pub use scoped_l1::ScopedL1;

/// Byte address in the simulated machine's memory space. Kernels fabricate
/// addresses from data-structure indices; only locality patterns matter.
pub type Addr = u64;

/// Default cache-line size in bytes.
pub const DEFAULT_LINE_BYTES: u32 = 32;

/// The cache line containing `addr` for a given line size.
#[inline]
pub fn line_of(addr: Addr, line_bytes: u32) -> u64 {
    addr / u64::from(line_bytes)
}
