//! A real set-associative cache with LRU replacement.
//!
//! Used by the cycle-level reference simulator for its split L1
//! instruction/data caches (§V, *Cycle-Level Parameters*: "L1 caches are
//! split into separate instruction and data caches"). Unlike the abstract
//! [`crate::ScopedL1`], this model keeps actual tag arrays, so capacity and
//! conflict misses emerge from the address stream.

use crate::Addr;

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult {
    /// Line present.
    Hit,
    /// Line absent; `evicted` is the replaced line (tag) if the set was
    /// full, together with its dirty flag.
    Miss {
        /// Evicted line number and dirtiness, if any.
        evicted: Option<(u64, bool)>,
    },
}

#[derive(Clone, Debug)]
struct Way {
    line: u64,
    /// Monotone timestamp of last use.
    lru: u64,
    dirty: bool,
    valid: bool,
}

/// Set-associative, write-back, LRU cache.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    sets: usize,
    ways: Vec<Way>, // sets × assoc, row-major
    assoc: usize,
    line_bytes: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build a cache of `capacity_bytes` with the given associativity and
    /// line size. Capacity must be a multiple of `assoc * line_bytes` and
    /// the resulting set count a power of two.
    pub fn new(capacity_bytes: u32, assoc: usize, line_bytes: u32) -> Self {
        assert!(assoc > 0 && line_bytes > 0);
        let lines = capacity_bytes / line_bytes;
        assert!(
            (lines as usize).is_multiple_of(assoc),
            "capacity must hold a whole number of sets"
        );
        let sets = lines as usize / assoc;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        SetAssocCache {
            sets,
            ways: vec![
                Way {
                    line: 0,
                    lru: 0,
                    dirty: false,
                    valid: false
                };
                sets * assoc
            ],
            assoc,
            line_bytes,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The paper's PowerPC-405-like L1: 16 KiB, 2-way, 32-byte lines.
    pub fn paper_l1() -> Self {
        SetAssocCache::new(16 * 1024, 2, 32)
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    /// Access `addr`; `write` marks the line dirty. Returns hit/miss (and
    /// any eviction).
    pub fn access(&mut self, addr: Addr, write: bool) -> AccessResult {
        let line = crate::line_of(addr, self.line_bytes);
        self.tick += 1;
        let set = self.set_of(line);
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];

        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.line == line) {
            w.lru = self.tick;
            w.dirty |= write;
            self.hits += 1;
            return AccessResult::Hit;
        }
        self.misses += 1;
        // Choose an invalid way, else the LRU one.
        let victim = ways
            .iter_mut()
            .min_by_key(|w| (w.valid, w.lru))
            .expect("assoc > 0");
        let evicted = if victim.valid {
            Some((victim.line, victim.dirty))
        } else {
            None
        };
        victim.line = line;
        victim.lru = self.tick;
        victim.dirty = write;
        victim.valid = true;
        AccessResult::Miss { evicted }
    }

    /// Drop a line (coherence invalidation). Returns true if it was present.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let line = crate::line_of(addr, self.line_bytes);
        let set = self.set_of(line);
        let base = set * self.assoc;
        for w in &mut self.ways[base..base + self.assoc] {
            if w.valid && w.line == line {
                w.valid = false;
                w.dirty = false;
                return true;
            }
        }
        false
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate so far (1.0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut c = SetAssocCache::new(1024, 2, 32);
        assert!(matches!(
            c.access(0, false),
            AccessResult::Miss { evicted: None }
        ));
        assert_eq!(c.access(0, false), AccessResult::Hit);
        assert_eq!(c.access(31, false), AccessResult::Hit); // same line
        assert!(matches!(c.access(32, false), AccessResult::Miss { .. }));
    }

    #[test]
    fn lru_eviction_in_a_set() {
        // 2 ways, 16 sets: lines n and n+16 map to the same set.
        let mut c = SetAssocCache::new(1024, 2, 32);
        let a = 0u64; // line 0, set 0
        let b = 16 * 32; // line 16, set 0
        let d = 32 * 32; // line 32, set 0
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // refresh a; b is now LRU
        let res = c.access(d, false);
        match res {
            AccessResult::Miss {
                evicted: Some((line, dirty)),
            } => {
                assert_eq!(line, 16);
                assert!(!dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        // a must still hit; b is gone.
        assert_eq!(c.access(a, false), AccessResult::Hit);
        assert!(matches!(c.access(b, false), AccessResult::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = SetAssocCache::new(1024, 2, 32);
        c.access(0, true); // dirty line 0
        c.access(16 * 32, false);
        let res = c.access(32 * 32, false); // evicts line 0 (LRU, dirty)
        match res {
            AccessResult::Miss {
                evicted: Some((0, true)),
            } => {}
            other => panic!("expected dirty eviction of line 0, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssocCache::new(1024, 2, 32);
        c.access(0, false);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(0));
        assert!(matches!(c.access(0, false), AccessResult::Miss { .. }));
    }

    #[test]
    fn capacity_misses_emerge() {
        // 1 KiB cache, working set 4 KiB: mostly misses on second sweep.
        let mut c = SetAssocCache::new(1024, 2, 32);
        for addr in (0..4096).step_by(32) {
            c.access(addr, false);
        }
        let (h1, _) = c.stats();
        for addr in (0..4096).step_by(32) {
            c.access(addr, false);
        }
        let (h2, m2) = c.stats();
        assert_eq!(h2 - h1, 0, "4x working set must thrash a tiny cache");
        assert_eq!(m2, 256);
    }

    #[test]
    fn paper_l1_shape() {
        let c = SetAssocCache::paper_l1();
        assert_eq!(c.sets, 256);
        assert_eq!(c.assoc, 2);
    }

    #[test]
    fn hit_rate_reporting() {
        let mut c = SetAssocCache::new(1024, 2, 32);
        assert_eq!(c.hit_rate(), 1.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = SetAssocCache::new(96 * 32, 2, 32); // 48 lines -> 24 sets
    }
}
