//! MSI directory coherence *timing* model.
//!
//! For the validation experiments the paper "enable\[s\] the timings of cache
//! coherence effects in SiMany" (§V) so that its results are comparable to
//! the fully coherent cycle-level reference. This model tracks the MSI
//! state of every touched line in a directory at the line's home node and
//! reports the message legs a real protocol would exchange; the caller
//! (runtime or cycle-level simulator) converts legs to latency via its
//! network model and charges the requesting core.

use crate::Addr;
use simany_topology::CoreId;
use std::collections::HashMap;

/// One protocol message leg: `(from, to, payload bytes)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoherenceLeg {
    /// Sender of this protocol message.
    pub from: CoreId,
    /// Receiver.
    pub to: CoreId,
    /// Payload size in bytes (control = 8, data = line size).
    pub bytes: u32,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum LineState {
    /// Clean copies at the listed sharers.
    Shared(Vec<CoreId>),
    /// Dirty exclusive copy at one owner.
    Modified(CoreId),
}

/// Directory over all touched lines. Home node of line `l` is
/// `l % n_cores` (address-interleaved banks).
#[derive(Debug)]
pub struct DirectoryTiming {
    n_cores: u32,
    line_bytes: u32,
    lines: HashMap<u64, LineState>,
    /// Control-message size in bytes.
    ctrl_bytes: u32,
    invalidations: u64,
    fetches_from_owner: u64,
}

impl DirectoryTiming {
    /// New directory for `n_cores` cores and the given line size.
    pub fn new(n_cores: u32, line_bytes: u32) -> Self {
        DirectoryTiming {
            n_cores,
            line_bytes,
            lines: HashMap::new(),
            ctrl_bytes: 8,
            invalidations: 0,
            fetches_from_owner: 0,
        }
    }

    /// Home node (directory location) of a line.
    pub fn home_of(&self, line: u64) -> CoreId {
        CoreId((line % u64::from(self.n_cores)) as u32)
    }

    /// Record a read of `addr` by `core`; returns the protocol legs that a
    /// real MSI directory would exchange (empty when the request is
    /// satisfied locally).
    pub fn read(&mut self, core: CoreId, addr: Addr) -> Vec<CoreLegs> {
        let line = crate::line_of(addr, self.line_bytes);
        let home = self.home_of(line);
        let mut legs = Vec::new();
        match self.lines.get_mut(&line) {
            Some(LineState::Shared(sharers)) => {
                if sharers.contains(&core) {
                    // Local clean copy: no traffic.
                } else {
                    // Request to home, data back.
                    legs.push(CoherenceLeg {
                        from: core,
                        to: home,
                        bytes: self.ctrl_bytes,
                    });
                    legs.push(CoherenceLeg {
                        from: home,
                        to: core,
                        bytes: self.line_bytes,
                    });
                    sharers.push(core);
                }
            }
            Some(LineState::Modified(owner)) => {
                if *owner == core {
                    // Our own dirty copy.
                } else {
                    // Request to home, forward to owner, owner writes back /
                    // sends data; line downgrades to shared.
                    self.fetches_from_owner += 1;
                    legs.push(CoherenceLeg {
                        from: core,
                        to: home,
                        bytes: self.ctrl_bytes,
                    });
                    legs.push(CoherenceLeg {
                        from: home,
                        to: *owner,
                        bytes: self.ctrl_bytes,
                    });
                    legs.push(CoherenceLeg {
                        from: *owner,
                        to: core,
                        bytes: self.line_bytes,
                    });
                    let prev = *owner;
                    self.lines.insert(line, LineState::Shared(vec![prev, core]));
                }
            }
            None => {
                // Cold miss: fetch from home bank.
                legs.push(CoherenceLeg {
                    from: core,
                    to: home,
                    bytes: self.ctrl_bytes,
                });
                legs.push(CoherenceLeg {
                    from: home,
                    to: core,
                    bytes: self.line_bytes,
                });
                self.lines.insert(line, LineState::Shared(vec![core]));
            }
        }
        legs
    }

    /// Record a write of `addr` by `core`; returns the protocol legs
    /// (invalidations fan out to every other sharer).
    pub fn write(&mut self, core: CoreId, addr: Addr) -> Vec<CoreLegs> {
        let line = crate::line_of(addr, self.line_bytes);
        let home = self.home_of(line);
        let mut legs = Vec::new();
        match self.lines.get(&line).cloned() {
            Some(LineState::Modified(owner)) if owner == core => {
                // Already exclusive: silent.
            }
            Some(LineState::Modified(owner)) => {
                self.fetches_from_owner += 1;
                legs.push(CoherenceLeg {
                    from: core,
                    to: home,
                    bytes: self.ctrl_bytes,
                });
                legs.push(CoherenceLeg {
                    from: home,
                    to: owner,
                    bytes: self.ctrl_bytes,
                });
                legs.push(CoherenceLeg {
                    from: owner,
                    to: core,
                    bytes: self.line_bytes,
                });
                self.lines.insert(line, LineState::Modified(core));
            }
            Some(LineState::Shared(sharers)) => {
                legs.push(CoherenceLeg {
                    from: core,
                    to: home,
                    bytes: self.ctrl_bytes,
                });
                for s in &sharers {
                    if *s != core {
                        // Invalidate + ack.
                        self.invalidations += 1;
                        legs.push(CoherenceLeg {
                            from: home,
                            to: *s,
                            bytes: self.ctrl_bytes,
                        });
                        legs.push(CoherenceLeg {
                            from: *s,
                            to: home,
                            bytes: self.ctrl_bytes,
                        });
                    }
                }
                if !sharers.contains(&core) {
                    legs.push(CoherenceLeg {
                        from: home,
                        to: core,
                        bytes: self.line_bytes,
                    });
                }
                self.lines.insert(line, LineState::Modified(core));
            }
            None => {
                legs.push(CoherenceLeg {
                    from: core,
                    to: home,
                    bytes: self.ctrl_bytes,
                });
                legs.push(CoherenceLeg {
                    from: home,
                    to: core,
                    bytes: self.line_bytes,
                });
                self.lines.insert(line, LineState::Modified(core));
            }
        }
        legs
    }

    /// (invalidations sent, dirty fetches forwarded) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.invalidations, self.fetches_from_owner)
    }

    /// Number of lines ever touched.
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }
}

/// Alias kept short in signatures above.
pub type CoreLegs = CoherenceLeg;

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> DirectoryTiming {
        DirectoryTiming::new(4, 32)
    }

    #[test]
    fn cold_read_fetches_from_home() {
        let mut d = dir();
        let legs = d.read(CoreId(1), 0x100);
        // Line 8, home = 8 % 4 = 0.
        assert_eq!(legs.len(), 2);
        assert_eq!(legs[0].to, CoreId(0));
        assert_eq!(legs[1].bytes, 32);
        // Second read is local.
        assert!(d.read(CoreId(1), 0x104).is_empty());
    }

    #[test]
    fn second_sharer_fetches_data() {
        let mut d = dir();
        d.read(CoreId(1), 0x100);
        let legs = d.read(CoreId(2), 0x100);
        assert_eq!(legs.len(), 2);
        assert!(d.read(CoreId(2), 0x100).is_empty());
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = dir();
        d.read(CoreId(1), 0x100);
        d.read(CoreId(2), 0x100);
        d.read(CoreId(3), 0x100);
        let legs = d.write(CoreId(1), 0x100);
        // Request + 2 × (inval + ack); writer already had the data.
        assert_eq!(legs.len(), 1 + 4);
        let (inv, _) = d.stats();
        assert_eq!(inv, 2);
        // Writer is now exclusive: silent upgrade on re-write.
        assert!(d.write(CoreId(1), 0x100).is_empty());
        assert!(d.read(CoreId(1), 0x100).is_empty());
    }

    #[test]
    fn read_of_dirty_line_forwards_from_owner() {
        let mut d = dir();
        d.write(CoreId(1), 0x100);
        let legs = d.read(CoreId(2), 0x100);
        assert_eq!(legs.len(), 3);
        // Request -> home, forward -> owner, data owner -> reader.
        assert_eq!(legs[1].to, CoreId(1));
        assert_eq!(legs[2].from, CoreId(1));
        assert_eq!(legs[2].to, CoreId(2));
        let (_, fwd) = d.stats();
        assert_eq!(fwd, 1);
        // Both now share cleanly.
        assert!(d.read(CoreId(1), 0x100).is_empty());
        assert!(d.read(CoreId(2), 0x100).is_empty());
    }

    #[test]
    fn write_steals_dirty_line() {
        let mut d = dir();
        d.write(CoreId(0), 0x200);
        let legs = d.write(CoreId(3), 0x200);
        assert_eq!(legs.len(), 3);
        assert!(d.write(CoreId(3), 0x200).is_empty());
        // Previous owner must re-fetch.
        assert!(!d.read(CoreId(0), 0x200).is_empty());
    }

    #[test]
    fn homes_are_interleaved() {
        let d = dir();
        assert_eq!(d.home_of(0), CoreId(0));
        assert_eq!(d.home_of(1), CoreId(1));
        assert_eq!(d.home_of(5), CoreId(1));
    }
}
