//! Deterministic workload generators (and a Matrix-Market-subset parser).
//!
//! All generators are seeded and produce identical workloads across runs
//! and platforms, so virtual-time results are exactly reproducible.

use simany_time::Xoshiro256StarStar;

/// A random array of `n` distinct-ish u64 keys.
pub fn random_array(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256StarStar::stream(seed, 0xA88A);
    (0..n).map(|_| rng.next_u64() >> 16).collect()
}

/// An undirected random graph with `n` nodes and `m` edges (no self loops;
/// parallel edges possible, as in typical random multigraph generators),
/// as adjacency lists. A spanning backbone keeps it connected so that
/// traversal kernels see one large component most of the time.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Adjacency lists; `adj[u]` holds `(v, weight)` pairs.
    pub adj: Vec<Vec<(u32, u32)>>,
}

impl Graph {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Total directed edge entries.
    pub fn m_directed(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum()
    }
}

/// Random graph of `n` nodes and ~`m` undirected edges with weights in
/// `[1, max_w]`. When `connected` is set, a random spanning path is added
/// first.
pub fn random_graph(n: usize, m: usize, max_w: u32, connected: bool, seed: u64) -> Graph {
    assert!(n >= 2);
    let mut rng = Xoshiro256StarStar::stream(seed, 0x96AF);
    let mut adj = vec![Vec::new(); n];
    let add = |adj: &mut Vec<Vec<(u32, u32)>>, a: usize, b: usize, w: u32| {
        adj[a].push((b as u32, w));
        adj[b].push((a as u32, w));
    };
    let mut edges = 0;
    if connected {
        // Random permutation path.
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        for i in 1..n {
            let w = rng.next_range(1, u64::from(max_w)) as u32;
            add(&mut adj, order[i - 1], order[i], w);
            edges += 1;
        }
    }
    while edges < m {
        let a = rng.next_index(n);
        let b = rng.next_index(n);
        if a == b {
            continue;
        }
        let w = rng.next_range(1, u64::from(max_w)) as u32;
        add(&mut adj, a, b, w);
        edges += 1;
    }
    Graph { adj }
}

/// Random graph that may be disconnected (several components), for the
/// connected-components kernel.
pub fn random_graph_components(n: usize, m: usize, seed: u64) -> Graph {
    random_graph(n, m, 1, false, seed)
}

/// 3-D bodies for Barnes-Hut: positions in the unit cube, unit-ish masses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Mass.
    pub mass: f64,
}

/// `n` random bodies.
pub fn random_bodies(n: usize, seed: u64) -> Vec<Body> {
    let mut rng = Xoshiro256StarStar::stream(seed, 0xB0D1);
    (0..n)
        .map(|_| Body {
            pos: [rng.next_f64(), rng.next_f64(), rng.next_f64()],
            mass: 0.5 + rng.next_f64(),
        })
        .collect()
}

/// Compressed-sparse-row matrix.
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    /// Number of rows (== columns; square matrices only).
    pub n: usize,
    /// Row start offsets (length n+1).
    pub row_ptr: Vec<usize>,
    /// Column indices.
    pub cols: Vec<u32>,
    /// Values.
    pub vals: Vec<f64>,
}

impl CsrMatrix {
    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// y = A·x (sequential reference).
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[k] * x[self.cols[k] as usize];
            }
            *out = acc;
        }
        y
    }
}

/// Random square CSR matrix with ~`nnz_per_row` non-zeros per row (the
/// paper's generated matrices have 50 or 100 per row at size 10^6).
pub fn random_csr(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = Xoshiro256StarStar::stream(seed, 0xC58);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for _ in 0..n {
        // Poisson-ish variation: nnz/2 .. 3*nnz/2.
        let k = rng.next_range(
            (nnz_per_row / 2).max(1) as u64,
            (nnz_per_row * 3 / 2) as u64,
        ) as usize;
        let mut row: Vec<u32> = (0..k).map(|_| rng.next_index(n) as u32).collect();
        row.sort_unstable();
        row.dedup();
        for c in row {
            cols.push(c);
            vals.push(rng.next_f64() * 2.0 - 1.0);
        }
        row_ptr.push(cols.len());
    }
    CsrMatrix {
        n,
        row_ptr,
        cols,
        vals,
    }
}

/// Symmetric tridiagonal matrix (1-D Laplacian stencil): the structure of
/// many classic Harwell-Boeing test matrices.
pub fn tridiagonal(n: usize) -> CsrMatrix {
    assert!(n >= 2);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for i in 0..n {
        if i > 0 {
            cols.push((i - 1) as u32);
            vals.push(-1.0);
        }
        cols.push(i as u32);
        vals.push(2.0);
        if i + 1 < n {
            cols.push((i + 1) as u32);
            vals.push(-1.0);
        }
        row_ptr.push(cols.len());
    }
    CsrMatrix {
        n,
        row_ptr,
        cols,
        vals,
    }
}

/// Five-point 2-D Poisson stencil on a `g × g` grid (`n = g²` rows) — the
/// other canonical sparse structure in the Matrix Market collection.
pub fn stencil_5pt(g: usize) -> CsrMatrix {
    assert!(g >= 2);
    let n = g * g;
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for y in 0..g {
        for x in 0..g {
            let mut push = |xx: isize, yy: isize, v: f64| {
                if xx >= 0 && yy >= 0 && (xx as usize) < g && (yy as usize) < g {
                    cols.push((yy as usize * g + xx as usize) as u32);
                    vals.push(v);
                }
            };
            let (x, y) = (x as isize, y as isize);
            push(x, y - 1, -1.0);
            push(x - 1, y, -1.0);
            push(x, y, 4.0);
            push(x + 1, y, -1.0);
            push(x, y + 1, -1.0);
            row_ptr.push(cols.len());
        }
    }
    CsrMatrix {
        n,
        row_ptr,
        cols,
        vals,
    }
}

/// Parse a (coordinate, real, general/symmetric) Matrix Market file — the
/// format of the collection the paper draws its 30 matrices from.
pub fn parse_matrix_market(text: &str) -> Result<CsrMatrix, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty file")?;
    if !header.starts_with("%%MatrixMarket") {
        return Err("missing MatrixMarket header".into());
    }
    let symmetric = header.contains("symmetric");
    if !header.contains("coordinate") {
        return Err("only coordinate format supported".into());
    }
    let mut rest = lines.skip_while(|l| l.starts_with('%'));
    let dims = rest.next().ok_or("missing size line")?;
    let mut it = dims.split_whitespace();
    let rows: usize = it
        .next()
        .ok_or("bad size")?
        .parse()
        .map_err(|_| "bad rows")?;
    let cols_n: usize = it
        .next()
        .ok_or("bad size")?
        .parse()
        .map_err(|_| "bad cols")?;
    let nnz: usize = it
        .next()
        .ok_or("bad size")?
        .parse()
        .map_err(|_| "bad nnz")?;
    if rows != cols_n {
        return Err("only square matrices supported".into());
    }
    let mut triples: Vec<(u32, u32, f64)> = Vec::with_capacity(nnz);
    for line in rest {
        let mut it = line.split_whitespace();
        let r: usize = it
            .next()
            .ok_or("bad entry")?
            .parse()
            .map_err(|_| "bad row idx")?;
        let c: usize = it
            .next()
            .ok_or("bad entry")?
            .parse()
            .map_err(|_| "bad col idx")?;
        let v: f64 = match it.next() {
            Some(s) => s.parse().map_err(|_| "bad value")?,
            None => 1.0, // pattern matrices
        };
        if r == 0 || c == 0 || r > rows || c > rows {
            return Err(format!("entry ({r},{c}) out of bounds"));
        }
        triples.push(((r - 1) as u32, (c - 1) as u32, v));
        if symmetric && r != c {
            triples.push(((c - 1) as u32, (r - 1) as u32, v));
        }
    }
    triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
    let mut row_ptr = vec![0usize; rows + 1];
    let mut cols = Vec::with_capacity(triples.len());
    let mut vals = Vec::with_capacity(triples.len());
    for (r, c, v) in triples {
        row_ptr[r as usize + 1] += 1;
        cols.push(c);
        vals.push(v);
    }
    for i in 0..rows {
        row_ptr[i + 1] += row_ptr[i];
    }
    Ok(CsrMatrix {
        n: rows,
        row_ptr,
        cols,
        vals,
    })
}

/// A pointy octree node for the octree-update kernel.
#[derive(Clone, Debug)]
pub struct OctreeNode {
    /// Child indices into the arena (up to 8).
    pub children: Vec<u32>,
    /// Payload value the kernel updates.
    pub value: f64,
}

/// An octree stored as an arena; node 0 is the root.
#[derive(Clone, Debug)]
pub struct Octree {
    /// Arena of nodes.
    pub nodes: Vec<OctreeNode>,
}

/// Random octree of the given depth: each internal node has 1..=8 children
/// with decreasing probability of fullness (keeps depth-6 trees in the
/// thousands of nodes, like the paper's scenario).
pub fn random_octree(depth: u32, seed: u64) -> Octree {
    let mut rng = Xoshiro256StarStar::stream(seed, 0x0C7);
    let mut nodes = vec![OctreeNode {
        children: Vec::new(),
        value: rng.next_f64(),
    }];
    let mut frontier = vec![(0u32, 0u32)]; // (node, depth)
    while let Some((idx, d)) = frontier.pop() {
        if d >= depth {
            continue;
        }
        let n_children = 1 + rng.next_index(8);
        for _ in 0..n_children {
            // Thin out with depth so the tree doesn't explode to 8^depth.
            if d > 1 && !rng.chance(0.55) {
                continue;
            }
            let child = nodes.len() as u32;
            nodes.push(OctreeNode {
                children: Vec::new(),
                value: rng.next_f64(),
            });
            nodes[idx as usize].children.push(child);
            frontier.push((child, d + 1));
        }
    }
    Octree { nodes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_are_deterministic() {
        assert_eq!(random_array(100, 7), random_array(100, 7));
        assert_ne!(random_array(100, 7), random_array(100, 8));
    }

    #[test]
    fn graph_shape() {
        let g = random_graph(100, 200, 10, true, 3);
        assert_eq!(g.n(), 100);
        // connected backbone (99 edges) + filled to 200 undirected edges.
        assert_eq!(g.m_directed(), 2 * 200);
        for (u, a) in g.adj.iter().enumerate() {
            for &(v, w) in a {
                assert_ne!(u as u32, v);
                assert!((1..=10).contains(&w));
            }
        }
    }

    #[test]
    fn csr_multiply_matches_dense() {
        let m = random_csr(50, 5, 1);
        assert!(m.nnz() > 0);
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y = m.multiply(&x);
        // Spot-check one row against manual accumulation.
        let r = 10;
        let mut acc = 0.0;
        for k in m.row_ptr[r]..m.row_ptr[r + 1] {
            acc += m.vals[k] * x[m.cols[k] as usize];
        }
        assert_eq!(y[r], acc);
    }

    #[test]
    fn tridiagonal_structure() {
        let m = tridiagonal(5);
        assert_eq!(m.n, 5);
        assert_eq!(m.nnz(), 3 * 5 - 2);
        // A·1 = [1, 0, 0, 0, 1] for the 1-D Laplacian.
        let y = m.multiply(&[1.0; 5]);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn stencil_structure() {
        let g = 4;
        let m = stencil_5pt(g);
        assert_eq!(m.n, 16);
        // Interior rows have 5 entries; corners 3; edges 4.
        let row_len = |r: usize| m.row_ptr[r + 1] - m.row_ptr[r];
        assert_eq!(row_len(0), 3); // corner
        assert_eq!(row_len(1), 4); // edge
        assert_eq!(row_len(5), 5); // interior
                                   // Row sums: 0 in the interior (Laplacian), positive at borders.
        let y = m.multiply(&[1.0; 16]);
        assert_eq!(y[5], 0.0);
        assert!(y[0] > 0.0);
    }

    #[test]
    fn matrix_market_round_trip() {
        let text = "\
%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.0
2 2 3.0
3 1 -1.0
3 3 4.0
";
        let m = parse_matrix_market(text).unwrap();
        assert_eq!(m.n, 3);
        assert_eq!(m.nnz(), 4);
        let y = m.multiply(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![2.0, 3.0, 3.0]);
    }

    #[test]
    fn matrix_market_symmetric_mirrors() {
        let text = "\
%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 1.0
2 1 5.0
";
        let m = parse_matrix_market(text).unwrap();
        assert_eq!(m.nnz(), 3);
        let y = m.multiply(&[1.0, 0.0]);
        assert_eq!(y, vec![1.0, 5.0]);
    }

    #[test]
    fn matrix_market_rejects_garbage() {
        assert!(parse_matrix_market("").is_err());
        assert!(parse_matrix_market("%%MatrixMarket matrix array real general\n2 2\n").is_err());
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n"
        )
        .is_err());
    }

    #[test]
    fn octree_depth_bounded() {
        let t = random_octree(6, 42);
        assert!(t.nodes.len() > 50, "tree too small: {}", t.nodes.len());
        // Verify it is a tree: each node referenced at most once.
        let mut seen = vec![false; t.nodes.len()];
        seen[0] = true;
        for n in &t.nodes {
            for &c in &n.children {
                assert!(!seen[c as usize], "node {c} referenced twice");
                seen[c as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "orphan nodes");
    }

    #[test]
    fn bodies_in_unit_cube() {
        for b in random_bodies(64, 5) {
            for c in b.pos {
                assert!((0.0..1.0).contains(&c));
            }
            assert!(b.mass > 0.0);
        }
    }
}
