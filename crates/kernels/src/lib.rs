#![warn(missing_docs)]

//! # simany-kernels — the dwarf benchmark suite
//!
//! The paper evaluates SiMany on a set of dwarf-like, task-based kernels
//! chosen "following the dwarf approach's philosophy advocated by
//! researchers at Berkeley" (§V), most of them "notoriously difficult to
//! parallelize because of their complex control flow and/or data
//! structures":
//!
//! | Kernel | Paper workload | Character |
//! |---|---|---|
//! | [`quicksort`] | 100 k-element arrays (SM) / lists→BST (DM) | divide & conquer, limited parallelism |
//! | [`connected`] | graphs of 1000 nodes / 2000 edges | contended tag updates |
//! | [`dijkstra`] | graphs of 2000 nodes / ~3000 edges | speculative, super-linear potential |
//! | [`barnes_hut`] | 128–200 bodies, force phase | irregular tree traversals |
//! | [`spmxv`] | sparse matrices (Matrix Market + random) | regular, abundant parallelism |
//! | [`octree`] | depth-6 octrees, full update | recursive traversal |
//!
//! Every kernel provides: a deterministic workload generator, a sequential
//! reference implementation used to **verify the parallel output**, a
//! shared-memory task version and a distributed-memory task version (cells
//! moved by the run-time system), all annotated with instruction-class
//! block costs per paper §II.A.
//!
//! The [`DwarfKernel`] trait gives the benchmark harness a uniform
//! interface; [`all_kernels`] returns the whole suite.

pub mod annotate;
pub mod barnes_hut;
pub mod connected;
pub mod dijkstra;
pub mod octree;
pub mod protocols;
pub mod quicksort;
pub mod spmxv;
pub mod workloads;

use simany_runtime::{ProgramSpec, RunOutput, SimError};
use std::time::Duration;

/// Workload scale relative to the kernel's default size (1.0). The paper's
/// sizes are reachable with [`Scale::paper`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Default (CI-friendly) workload size.
    pub fn default_size() -> Self {
        Scale(1.0)
    }

    /// The paper's workload size.
    pub fn paper() -> Self {
        Scale(10.0)
    }

    /// Scale an element count, keeping at least `min`.
    pub fn apply(self, base: usize, min: usize) -> usize {
        ((base as f64 * self.0) as usize).max(min)
    }
}

/// Result of one simulated kernel run.
#[derive(Debug)]
pub struct KernelResult {
    /// Simulation output (virtual time, statistics).
    pub out: RunOutput,
    /// Did the parallel output match the sequential reference?
    pub verified: bool,
    /// Problem size indicator (elements / nodes / rows processed).
    pub work_items: u64,
}

impl KernelResult {
    /// Completion virtual time in cycles.
    pub fn cycles(&self) -> u64 {
        self.out.vtime_cycles()
    }
}

/// Uniform interface over the six dwarf kernels.
pub trait DwarfKernel: Send + Sync {
    /// Name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Simulate the kernel on the machine described by `spec`. The memory
    /// architecture in `spec.runtime.arch` selects the shared-memory or
    /// distributed-memory variant. Output is verified against the
    /// sequential reference.
    fn run_sim(&self, spec: ProgramSpec, scale: Scale, seed: u64)
        -> Result<KernelResult, SimError>;

    /// Execute the same computation natively, without simulation (the
    /// denominator of the paper's normalized simulation times, Fig. 7).
    /// Returns the wall-clock duration and a checksum-ish count to keep
    /// the optimizer honest.
    fn run_native(&self, scale: Scale, seed: u64) -> (Duration, u64);
}

/// The full suite, in the paper's figure order.
pub fn all_kernels() -> Vec<Box<dyn DwarfKernel>> {
    vec![
        Box::new(barnes_hut::BarnesHut),
        Box::new(connected::ConnectedComponents),
        Box::new(dijkstra::Dijkstra),
        Box::new(quicksort::Quicksort),
        Box::new(spmxv::SpMxV),
        Box::new(octree::OctreeUpdate),
    ]
}

/// Look a kernel up by (case-insensitive) name prefix.
pub fn kernel_by_name(name: &str) -> Option<Box<dyn DwarfKernel>> {
    let lower = name.to_lowercase();
    all_kernels()
        .into_iter()
        .find(|k| k.name().to_lowercase().starts_with(&lower))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_kernels() {
        let names: Vec<_> = all_kernels().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "Barnes-Hut",
                "Connected Components",
                "Dijkstra",
                "Quicksort",
                "SpMxV",
                "Octree"
            ]
        );
    }

    #[test]
    fn lookup_by_prefix() {
        assert_eq!(kernel_by_name("quick").unwrap().name(), "Quicksort");
        assert_eq!(kernel_by_name("BARNES").unwrap().name(), "Barnes-Hut");
        assert!(kernel_by_name("nonexistent").is_none());
    }

    #[test]
    fn scale_application() {
        assert_eq!(Scale(1.0).apply(100, 10), 100);
        assert_eq!(Scale(0.1).apply(100, 50), 50);
        assert_eq!(Scale::paper().apply(100, 10), 1000);
    }
}
