//! Parallel Quicksort (paper §V).
//!
//! Two variants, as in the paper:
//!
//! * **Shared memory** — "works on arrays and spawns a new task to handle
//!   one of the sub-arrays after each pivot step".
//! * **Distributed memory** — "an adaptation to lists, in order to avoid
//!   the transfer of whole sub-arrays to remote processing nodes. Pivot
//!   steps are distributed and they gradually construct a binary search
//!   tree. Browsing the list in order is then tantamount to traversing the
//!   constructed binary tree." Each sub-list travels with its task; a cell
//!   models the data movement cost.
//!
//! The theoretical ceiling the paper quotes — speedup ≤ `log2(n)/2` for
//! balanced arrays — emerges naturally: the first pivot pass over all `n`
//! elements is sequential.

use crate::annotate::{charge_loop, compare_swap_cost, sweep};
use crate::workloads::random_array;
use crate::{DwarfKernel, KernelResult, Scale};
use parking_lot::Mutex;
use simany_runtime::{run_program, GroupId, ProgramSpec, SimError, TaskCtx};
use simany_time::BlockCost;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default array size (paper: 100 000; `Scale::paper()` reaches it).
const BASE_N: usize = 20_000;
/// Below this length a task sorts its segment locally.
const CUTOFF: usize = 64;
/// Base of the simulated address range holding the array.
const ARRAY_BASE: u64 = 0x1000_0000;

/// The Quicksort kernel.
pub struct Quicksort;

impl DwarfKernel for Quicksort {
    fn name(&self) -> &'static str {
        "Quicksort"
    }

    fn run_sim(
        &self,
        spec: ProgramSpec,
        scale: Scale,
        seed: u64,
    ) -> Result<KernelResult, SimError> {
        let n = scale.apply(BASE_N, 256);
        let input = random_array(n, seed);
        let mut expected = input.clone();
        expected.sort_unstable();

        if spec.runtime.arch.is_distributed() {
            run_distributed(spec, input, expected)
        } else {
            run_shared(spec, input, expected)
        }
    }

    fn run_native(&self, scale: Scale, seed: u64) -> (Duration, u64) {
        let n = scale.apply(BASE_N, 256);
        let mut data = random_array(n, seed);
        let t0 = Instant::now();
        data.sort_unstable();
        (t0.elapsed(), data[n / 2])
    }
}

/// Host partition (Lomuto) returning (pivot index, swaps performed).
fn partition(data: &mut [u64]) -> (usize, u64) {
    let pivot = data[data.len() / 2];
    data.swap(data.len() / 2, data.len() - 1);
    let mut store = 0;
    let mut swaps = 1;
    for i in 0..data.len() - 1 {
        if data[i] < pivot {
            data.swap(i, store);
            store += 1;
            swaps += 1;
        }
    }
    let last = data.len() - 1;
    data.swap(store, last);
    (store, swaps + 1)
}

// ---------------------------------------------------------------------------
// Shared-memory variant
// ---------------------------------------------------------------------------

fn run_shared(
    spec: ProgramSpec,
    input: Vec<u64>,
    expected: Vec<u64>,
) -> Result<KernelResult, SimError> {
    let n = input.len();
    let data = Arc::new(Mutex::new(input));
    let result = Arc::clone(&data);
    let out = run_program(spec, move |tc| {
        let group = tc.make_group();
        qsort_sm(tc, &data, 0, n, group);
        tc.join(group);
    })?;
    let verified = *result.lock() == expected;
    Ok(KernelResult {
        out,
        verified,
        work_items: n as u64,
    })
}

fn qsort_sm(
    tc: &mut TaskCtx<'_>,
    data: &Arc<Mutex<Vec<u64>>>,
    lo: usize,
    hi: usize,
    group: GroupId,
) {
    let len = hi - lo;
    if len <= 1 {
        return;
    }
    if len <= CUTOFF {
        // Local sort: one read sweep + ~len·log2(len) compare/swaps.
        tc.scope(|tc| {
            sweep(
                tc,
                ARRAY_BASE + (lo as u64) * 8,
                len as u64,
                8,
                false,
                &BlockCost::new(),
            );
            let cmps = (len as u64) * (usize::BITS - len.leading_zeros()) as u64;
            charge_loop(tc, cmps, &compare_swap_cost());
        });
        data.lock()[lo..hi].sort_unstable();
        return;
    }
    // Pivot pass: host partition, then annotate the sweep + swaps.
    let (pivot_rel, swaps) = partition(&mut data.lock()[lo..hi]);
    tc.scope(|tc| {
        sweep(
            tc,
            ARRAY_BASE + (lo as u64) * 8,
            len as u64,
            8,
            false,
            &compare_swap_cost(),
        );
        // Swapped elements are written back.
        charge_loop(tc, swaps, &BlockCost::new().int_alu(4));
        sweep(
            tc,
            ARRAY_BASE + (lo as u64) * 8,
            swaps.min(len as u64),
            8,
            true,
            &BlockCost::new(),
        );
    });
    let mid = lo + pivot_rel;
    // Spawn one side (the paper spawns "a new task to handle one of the
    // sub-arrays"), recurse into the other.
    let data2 = Arc::clone(data);
    tc.spawn_or_run(group, move |tc: &mut TaskCtx<'_>| {
        qsort_sm(tc, &data2, mid + 1, hi, group);
    });
    qsort_sm(tc, data, lo, mid, group);
}

// ---------------------------------------------------------------------------
// Distributed-memory variant (lists + binary search tree)
// ---------------------------------------------------------------------------

/// Sorted runs keyed by their BST path (depth-first position): in-order
/// traversal of the constructed tree = ascending key order.
type Runs = Arc<Mutex<Vec<(u64, Vec<u64>)>>>;

fn run_distributed(
    spec: ProgramSpec,
    input: Vec<u64>,
    expected: Vec<u64>,
) -> Result<KernelResult, SimError> {
    let n = input.len();
    let runs: Runs = Arc::new(Mutex::new(Vec::new()));
    let runs2 = Arc::clone(&runs);
    let out = run_program(spec, move |tc| {
        let group = tc.make_group();
        // The whole list starts as one local cell.
        let cell = tc.alloc_cell((input.len() * 8) as u32);
        qsort_dm(tc, input, cell, &runs2, group);
        tc.join(group);
    })?;
    // In-order = ascending BST path order (heap numbering: left = 2k,
    // right = 2k+1; in-order is obtained by sorting on the path's in-order
    // rank, which we encode directly at emission time).
    let mut collected = runs.lock().clone();
    collected.sort_by_key(|&(k, _)| k);
    let sorted: Vec<u64> = collected.into_iter().flat_map(|(_, r)| r).collect();
    let verified = sorted == expected;
    Ok(KernelResult {
        out,
        verified,
        work_items: n as u64,
    })
}

/// Runs are keyed by their minimum element: the pivot steps partition the
/// value space into disjoint ranges (a BST over values), so sorting runs
/// by that key reproduces the in-order traversal of the constructed tree.
fn qsort_dm(
    tc: &mut TaskCtx<'_>,
    mut list: Vec<u64>,
    cell: simany_runtime::CellId,
    runs: &Runs,
    group: GroupId,
) {
    // Touch our list data: if the task migrated, the cell moves to us.
    tc.cell_access(cell);
    let len = list.len();
    if len <= CUTOFF {
        tc.scope(|tc| {
            let cmps = (len.max(2) as u64) * (usize::BITS - len.max(2).leading_zeros()) as u64;
            charge_loop(tc, cmps, &compare_swap_cost());
        });
        list.sort_unstable();
        let key = list.first().copied().unwrap_or(0);
        runs.lock().push((key, list));
        return;
    }
    // Distributed pivot step over the list: one pass, building two lists.
    tc.scope(|tc| {
        charge_loop(
            tc,
            len as u64,
            &compare_swap_cost().instr(simany_time::InstrClass::IntAlu, 2),
        );
    });
    let pivot = list[len / 2];
    let mut left = Vec::with_capacity(len / 2);
    let mut right = Vec::with_capacity(len / 2);
    let mut pivots = Vec::new();
    for v in list {
        match v.cmp(&pivot) {
            std::cmp::Ordering::Less => left.push(v),
            std::cmp::Ordering::Equal => pivots.push(v),
            std::cmp::Ordering::Greater => right.push(v),
        }
    }
    // The pivot run is emitted here (a BST node's key).
    runs.lock().push((pivot, pivots));

    let left_cell = tc.alloc_cell((left.len().max(1) * 8) as u32);
    let right_cell = tc.alloc_cell((right.len().max(1) * 8) as u32);
    let runs_l = Arc::clone(runs);
    let runs_r = Arc::clone(runs);
    if !right.is_empty() {
        tc.spawn_or_run(group, move |tc: &mut TaskCtx<'_>| {
            qsort_dm(tc, right, right_cell, &runs_r, group);
        });
    }
    if !left.is_empty() {
        tc.spawn_or_run(group, move |tc: &mut TaskCtx<'_>| {
            qsort_dm(tc, left, left_cell, &runs_l, group);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_runtime::RuntimeParams;
    use simany_topology::mesh_2d;

    fn small() -> Scale {
        Scale(0.02) // 400 elements
    }

    #[test]
    fn partition_is_correct() {
        let mut v = vec![5u64, 3, 8, 1, 9, 2, 7];
        let (p, _) = partition(&mut v);
        let pivot = v[p];
        assert!(v[..p].iter().all(|&x| x < pivot));
        assert!(v[p + 1..].iter().all(|&x| x >= pivot));
    }

    #[test]
    fn shared_memory_sorts_and_verifies() {
        let r = Quicksort
            .run_sim(ProgramSpec::new(mesh_2d(8)), small(), 42)
            .unwrap();
        assert!(r.verified, "parallel sort mismatch");
        assert!(r.cycles() > 0);
    }

    #[test]
    fn distributed_memory_sorts_and_verifies() {
        let mut spec = ProgramSpec::new(mesh_2d(8));
        spec.runtime = RuntimeParams::distributed_memory();
        let r = Quicksort.run_sim(spec, small(), 42).unwrap();
        assert!(r.verified, "distributed sort mismatch");
        assert!(r.out.rt.cell_remote + r.out.rt.cell_local > 0);
    }

    #[test]
    fn single_core_baseline_is_slower() {
        let base = Quicksort
            .run_sim(ProgramSpec::new(mesh_2d(1)), small(), 7)
            .unwrap();
        let par = Quicksort
            .run_sim(ProgramSpec::new(mesh_2d(16)), small(), 7)
            .unwrap();
        assert!(base.verified && par.verified);
        assert!(
            par.cycles() < base.cycles(),
            "no speedup: {} vs {}",
            par.cycles(),
            base.cycles()
        );
    }

    #[test]
    fn native_run_produces_time() {
        let (d, checksum) = Quicksort.run_native(small(), 3);
        assert!(d.as_nanos() > 0);
        assert!(checksum > 0);
    }
}
