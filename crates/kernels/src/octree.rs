//! Octree update traversal (paper §V).
//!
//! "Finally, we use a tree traversal algorithm that updates all objects
//! within an Octree structure. This scenario is typically used in gaming
//! or for graphics generation. We ran the experiments with 50 randomly
//! generated octrees of depth 6."
//!
//! Each node's payload is transformed independently (`v ← v·a + b`), so
//! the parallel result is bit-identical to the sequential one regardless
//! of traversal order. Subtrees near the root are conditionally spawned;
//! deep subtrees run inline.

use crate::annotate::gather;
use crate::workloads::{random_octree, Octree};
use crate::{DwarfKernel, KernelResult, Scale};
use parking_lot::Mutex;
use simany_runtime::{run_program, GroupId, ProgramSpec, SimError, TaskCtx};
use simany_time::BlockCost;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Paper depth.
const BASE_DEPTH: u32 = 6;
/// Spawn subtrees only above this depth.
const SPAWN_DEPTH: u32 = 4;
/// Simulated node array base address.
const NODES_BASE: u64 = 0x7000_0000;
/// Distributed memory: nodes grouped into cells of this many nodes.
const NODES_PER_CELL: usize = 32;

/// Update applied to every node payload.
fn update_value(v: f64) -> f64 {
    v * 1.0625 + 0.125
}

/// Per-node update cost: a small object transform (the gaming/graphics
/// scenario of the paper — e.g. a matrix-vector update per object) plus
/// child bookkeeping.
fn node_cost() -> BlockCost {
    BlockCost::new()
        .fp_mul(4)
        .fp_add(4)
        .int_alu(5)
        .cond_branches(2)
}

/// The octree-update kernel.
pub struct OctreeUpdate;

impl DwarfKernel for OctreeUpdate {
    fn name(&self) -> &'static str {
        "Octree"
    }

    fn run_sim(
        &self,
        spec: ProgramSpec,
        scale: Scale,
        seed: u64,
    ) -> Result<KernelResult, SimError> {
        // Scale deepens the tree (each level multiplies the node count).
        let depth = (BASE_DEPTH as f64 + scale.0.log2()).round().max(3.0) as u32;
        let tree = random_octree(depth, seed);
        let n = tree.nodes.len();
        let expected: Vec<f64> = tree.nodes.iter().map(|nd| update_value(nd.value)).collect();
        let values = Arc::new(Mutex::new(
            tree.nodes.iter().map(|nd| nd.value).collect::<Vec<f64>>(),
        ));
        let tree = Arc::new(tree);
        let distributed = spec.runtime.arch.is_distributed();

        let tree2 = Arc::clone(&tree);
        let values2 = Arc::clone(&values);
        let out = run_program(spec, move |tc| {
            let cells = if distributed {
                let groups = n.div_ceil(NODES_PER_CELL);
                Some(Arc::new(
                    (0..groups)
                        .map(|_| tc.alloc_cell((NODES_PER_CELL * 16) as u32))
                        .collect::<Vec<_>>(),
                ))
            } else {
                None
            };
            let group = tc.make_group();
            walk(
                tc,
                &tree2,
                &values2,
                cells.as_ref().map(|c| c.as_slice()),
                0,
                0,
                group,
            );
            tc.join(group);
        })?;

        let computed = values.lock().clone();
        let verified = computed == expected;
        Ok(KernelResult {
            out,
            verified,
            work_items: n as u64,
        })
    }

    fn run_native(&self, scale: Scale, seed: u64) -> (Duration, u64) {
        let depth = (BASE_DEPTH as f64 + scale.0.log2()).round().max(3.0) as u32;
        let mut tree = random_octree(depth, seed);
        let t0 = Instant::now();
        let mut stack = vec![0u32];
        let mut count = 0u64;
        while let Some(idx) = stack.pop() {
            let node = &mut tree.nodes[idx as usize];
            node.value = update_value(node.value);
            count += 1;
            stack.extend(node.children.iter().copied());
        }
        (t0.elapsed(), count)
    }
}

fn walk(
    tc: &mut TaskCtx<'_>,
    tree: &Arc<Octree>,
    values: &Arc<Mutex<Vec<f64>>>,
    cells: Option<&[simany_runtime::CellId]>,
    node: u32,
    depth: u32,
    group: GroupId,
) {
    // Timed access to the node, then the update.
    match cells {
        Some(cells) => tc.cell_access(cells[node as usize / NODES_PER_CELL]),
        None => {
            gather(tc, NODES_BASE + u64::from(node) * 16, false);
            gather(tc, NODES_BASE + u64::from(node) * 16, true);
        }
    }
    tc.compute(&node_cost());
    {
        let mut vals = values.lock();
        vals[node as usize] = update_value(vals[node as usize]);
    }
    let children = tree.nodes[node as usize].children.clone();
    for child in children {
        if depth < SPAWN_DEPTH {
            let tree2 = Arc::clone(tree);
            let values2 = Arc::clone(values);
            let cells2: Option<Vec<simany_runtime::CellId>> = cells.map(|c| c.to_vec());
            tc.spawn_or_run(group, move |tc: &mut TaskCtx<'_>| {
                walk(
                    tc,
                    &tree2,
                    &values2,
                    cells2.as_deref(),
                    child,
                    depth + 1,
                    group,
                );
            });
        } else {
            walk(tc, tree, values, cells, child, depth + 1, group);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_runtime::RuntimeParams;
    use simany_topology::mesh_2d;

    #[test]
    fn all_nodes_updated_exactly_once() {
        let r = OctreeUpdate
            .run_sim(ProgramSpec::new(mesh_2d(8)), Scale(0.5), 3)
            .unwrap();
        assert!(r.verified);
        assert!(r.work_items > 10);
    }

    #[test]
    fn distributed_variant_verifies() {
        let mut spec = ProgramSpec::new(mesh_2d(8));
        spec.runtime = RuntimeParams::distributed_memory();
        let r = OctreeUpdate.run_sim(spec, Scale(0.5), 3).unwrap();
        assert!(r.verified);
    }

    #[test]
    fn parallel_speedup_exists() {
        let base = OctreeUpdate
            .run_sim(ProgramSpec::new(mesh_2d(1)), Scale(1.0), 8)
            .unwrap();
        let par = OctreeUpdate
            .run_sim(ProgramSpec::new(mesh_2d(16)), Scale(1.0), 8)
            .unwrap();
        assert!(base.verified && par.verified);
        assert!(
            par.cycles() < base.cycles(),
            "no speedup: {} vs {}",
            par.cycles(),
            base.cycles()
        );
    }
}
