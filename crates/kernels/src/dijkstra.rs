//! Parallel Dijkstra / shortest paths (paper §V).
//!
//! "It bears some similarity with the connected components algorithm
//! except that already explored paths may have to be explored again when
//! reached with a lower value of the current distance computed. On the
//! other hand, a task encountering an already explored path close to the
//! optimal can terminate quickly and free a core so that it can be reused
//! for more interesting paths."
//!
//! This speculative label-correcting formulation is what gives the paper
//! its super-linear speedups (Fig. 8): more cores explore more paths
//! concurrently, which raises the chance of tagging nodes with near-optimal
//! distances early and pruning the remaining work.

use crate::annotate::{edge_visit_cost, gather};
use crate::workloads::{random_graph, Graph};
use crate::{DwarfKernel, KernelResult, Scale};
use parking_lot::Mutex;
use simany_runtime::{run_program, GroupId, ProgramSpec, SimError, TaskCtx};
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Paper workload: 2000 nodes, ~3000 edges.
const BASE_N: usize = 2000;
const BASE_M: usize = 3000;
const MAX_W: u32 = 100;
/// Simulated address of the distance array.
const DIST_BASE: u64 = 0x3000_0000;

/// The Dijkstra kernel.
pub struct Dijkstra;

impl DwarfKernel for Dijkstra {
    fn name(&self) -> &'static str {
        "Dijkstra"
    }

    fn run_sim(
        &self,
        spec: ProgramSpec,
        scale: Scale,
        seed: u64,
    ) -> Result<KernelResult, SimError> {
        let n = scale.apply(BASE_N, 64);
        let m = scale.apply(BASE_M, 96);
        let graph = Arc::new(random_graph(n, m, MAX_W, true, seed));
        let reference = sequential_dijkstra(&graph, 0);
        let dist = Arc::new(Mutex::new(vec![u64::MAX; n]));
        let distributed = spec.runtime.arch.is_distributed();

        let graph2 = Arc::clone(&graph);
        let dist2 = Arc::clone(&dist);
        let out = run_program(spec, move |tc| {
            let cells = if distributed {
                Some(Arc::new(
                    (0..n).map(|_| tc.alloc_cell(8)).collect::<Vec<_>>(),
                ))
            } else {
                None
            };
            let group = tc.make_group();
            explore(
                tc,
                &graph2,
                &dist2,
                cells.as_ref().map(|c| c.as_slice()),
                0,
                0,
                group,
            );
            tc.join(group);
        })?;

        let final_dist = dist.lock().clone();
        let verified = final_dist == reference;
        Ok(KernelResult {
            out,
            verified,
            work_items: n as u64,
        })
    }

    fn run_native(&self, scale: Scale, seed: u64) -> (Duration, u64) {
        let n = scale.apply(BASE_N, 64);
        let m = scale.apply(BASE_M, 96);
        let graph = random_graph(n, m, MAX_W, true, seed);
        let t0 = Instant::now();
        let dist = sequential_dijkstra(&graph, 0);
        let checksum = dist.iter().filter(|&&d| d != u64::MAX).sum::<u64>();
        (t0.elapsed(), checksum)
    }
}

/// Speculative relaxation task: try to improve `v`'s distance to `d`; on
/// success, propagate over its edges, spawning where the runtime allows.
fn explore(
    tc: &mut TaskCtx<'_>,
    graph: &Arc<Graph>,
    dist: &Arc<Mutex<Vec<u64>>>,
    cells: Option<&[simany_runtime::CellId]>,
    v: u32,
    d: u64,
    group: GroupId,
) {
    // Local work stack of (node, tentative distance) pairs.
    let mut stack = vec![(v, d)];
    while let Some((v, d)) = stack.pop() {
        touch_dist(tc, cells, v, false);
        tc.compute(&edge_visit_cost());
        let improved = {
            let mut dv = dist.lock();
            if d < dv[v as usize] {
                dv[v as usize] = d;
                true
            } else {
                false // near-optimal path already known: terminate quickly
            }
        };
        if !improved {
            continue;
        }
        touch_dist(tc, cells, v, true);
        for &(u, w) in &graph.adj[v as usize] {
            tc.compute(&edge_visit_cost());
            touch_dist(tc, cells, u, false);
            let nd = d + u64::from(w);
            let worth_it = dist.lock()[u as usize] > nd;
            if !worth_it {
                continue;
            }
            let graph2 = Arc::clone(graph);
            let dist2 = Arc::clone(dist);
            let cells2: Option<Vec<simany_runtime::CellId>> = cells.map(|c| c.to_vec());
            match tc.probe() {
                Some(target) => tc.spawn(
                    target,
                    Some(group),
                    Box::new(move |tc: &mut TaskCtx<'_>| {
                        explore(tc, &graph2, &dist2, cells2.as_deref(), u, nd, group);
                    }),
                ),
                None => stack.push((u, nd)),
            }
        }
    }
}

fn touch_dist(tc: &mut TaskCtx<'_>, cells: Option<&[simany_runtime::CellId]>, v: u32, write: bool) {
    match cells {
        Some(cells) => tc.cell_access(cells[v as usize]),
        None => gather(tc, DIST_BASE + u64::from(v) * 8, write),
    }
}

/// Sequential reference (binary-heap Dijkstra).
pub fn sequential_dijkstra(graph: &Graph, source: u32) -> Vec<u64> {
    let n = graph.n();
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0, source)));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for &(u, w) in &graph.adj[v as usize] {
            let nd = d + u64::from(w);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(std::cmp::Reverse((nd, u)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_runtime::RuntimeParams;
    use simany_topology::mesh_2d;

    fn small() -> Scale {
        Scale(0.05) // 100 nodes / 150 edges
    }

    #[test]
    fn sequential_reference_on_path() {
        let mut g = Graph {
            adj: vec![Vec::new(); 4],
        };
        for &(a, b, w) in &[(0u32, 1u32, 5u32), (1, 2, 3), (2, 3, 2), (0, 3, 20)] {
            g.adj[a as usize].push((b, w));
            g.adj[b as usize].push((a, w));
        }
        assert_eq!(sequential_dijkstra(&g, 0), vec![0, 5, 8, 10]);
    }

    #[test]
    fn parallel_distances_match_reference() {
        let r = Dijkstra
            .run_sim(ProgramSpec::new(mesh_2d(8)), small(), 21)
            .unwrap();
        assert!(r.verified);
    }

    #[test]
    fn distributed_variant_verifies() {
        let mut spec = ProgramSpec::new(mesh_2d(8));
        spec.runtime = RuntimeParams::distributed_memory();
        let r = Dijkstra.run_sim(spec, small(), 21).unwrap();
        assert!(r.verified);
        assert!(r.out.rt.cell_remote > 0);
    }

    #[test]
    fn more_cores_not_slower_on_average() {
        // Speculative SSSP is timing-sensitive; check a weak monotonicity:
        // 16 cores complete no slower than 2x the single-core time.
        let base = Dijkstra
            .run_sim(ProgramSpec::new(mesh_2d(1)), small(), 9)
            .unwrap();
        let par = Dijkstra
            .run_sim(ProgramSpec::new(mesh_2d(16)), small(), 9)
            .unwrap();
        assert!(base.verified && par.verified);
        assert!(par.cycles() < base.cycles() * 2);
    }
}
