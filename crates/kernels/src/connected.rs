//! Connected components (paper §V).
//!
//! "Since the graph topology is not known in advance, depth-first searches
//! are launched from lots of nodes in parallel, resulting in contention
//! when nodes belonging to the same component are being tagged repeatedly,
//! although the conditional spawning mitigates this issue."
//!
//! Implementation: min-label propagation. Every node starts tagged with
//! its own id; parallel DFS tasks push smaller labels over edges, so a
//! component converges to the minimum node id it contains. The repeated
//! re-tagging of nodes reached through different paths is exactly the
//! contention the paper describes, and is what makes the kernel's
//! scalability peak and then degrade.

use crate::annotate::{edge_visit_cost, gather};
use crate::workloads::{random_graph_components, Graph};
use crate::{DwarfKernel, KernelResult, Scale};
use parking_lot::Mutex;
use simany_runtime::{run_program, GroupId, ProgramSpec, SimError, TaskCtx};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Paper workload: 1000 nodes, 2000 edges.
const BASE_N: usize = 1000;
const BASE_M: usize = 2000;
/// Simulated address of the label array.
const LABELS_BASE: u64 = 0x2000_0000;

/// The connected-components kernel.
pub struct ConnectedComponents;

impl DwarfKernel for ConnectedComponents {
    fn name(&self) -> &'static str {
        "Connected Components"
    }

    fn run_sim(
        &self,
        spec: ProgramSpec,
        scale: Scale,
        seed: u64,
    ) -> Result<KernelResult, SimError> {
        let n = scale.apply(BASE_N, 64);
        let m = scale.apply(BASE_M, 128);
        let graph = Arc::new(random_graph_components(n, m, seed));
        let reference = union_find_components(&graph);
        let labels = Arc::new(Mutex::new((0..n as u32).collect::<Vec<u32>>()));
        let distributed = spec.runtime.arch.is_distributed();

        let graph2 = Arc::clone(&graph);
        let labels2 = Arc::clone(&labels);
        let out = run_program(spec, move |tc| {
            // In distributed memory every node's tag lives in its own cell,
            // home-distributed round-robin by allocation order on the root —
            // they migrate to whoever tags them (heavy traffic, the paper's
            // observed collapse).
            let cells = if distributed {
                Some(Arc::new(
                    (0..n).map(|_| tc.alloc_cell(8)).collect::<Vec<_>>(),
                ))
            } else {
                None
            };
            let group = tc.make_group();
            // Launch DFS from every node in parallel (conditional spawning
            // bounds the real task count).
            for s in 0..n as u32 {
                let graph = Arc::clone(&graph2);
                let labels = Arc::clone(&labels2);
                let cells = cells.clone();
                tc.spawn_or_run(group, move |tc: &mut TaskCtx<'_>| {
                    explore(
                        tc,
                        &graph,
                        &labels,
                        cells.as_ref().map(|c| c.as_slice()),
                        s,
                        s,
                        group,
                    );
                });
            }
            tc.join(group);
        })?;

        let final_labels = labels.lock().clone();
        let verified = partitions_equal(&final_labels, &reference);
        Ok(KernelResult {
            out,
            verified,
            work_items: n as u64,
        })
    }

    fn run_native(&self, scale: Scale, seed: u64) -> (Duration, u64) {
        let n = scale.apply(BASE_N, 64);
        let m = scale.apply(BASE_M, 128);
        let graph = random_graph_components(n, m, seed);
        let t0 = Instant::now();
        let comps = union_find_components(&graph);
        let distinct = {
            let mut c = comps.clone();
            c.sort_unstable();
            c.dedup();
            c.len() as u64
        };
        (t0.elapsed(), distinct)
    }
}

/// One DFS task: propagate `lbl` from `start` through every node whose
/// current tag is larger, spawning further tasks along the way.
fn explore(
    tc: &mut TaskCtx<'_>,
    graph: &Arc<Graph>,
    labels: &Arc<Mutex<Vec<u32>>>,
    cells: Option<&[simany_runtime::CellId]>,
    start: u32,
    lbl: u32,
    group: GroupId,
) {
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        // Tag check + update (the contended access of the paper).
        touch_tag(tc, cells, v, false);
        let improved = {
            let mut tags = labels.lock();
            if tags[v as usize] < lbl || (tags[v as usize] == lbl && v != start) {
                // A smaller label won, or this wave already tagged it.
                false
            } else {
                tags[v as usize] = lbl;
                true
            }
        };
        tc.compute(&edge_visit_cost());
        if !improved {
            continue;
        }
        touch_tag(tc, cells, v, true);
        for &(u, _) in &graph.adj[v as usize] {
            tc.compute(&edge_visit_cost());
            touch_tag(tc, cells, u, false);
            let worth_it = labels.lock()[u as usize] > lbl;
            if !worth_it {
                continue;
            }
            // Try to hand the sub-search to a neighbor core; continue
            // locally when the probe fails.
            let graph2 = Arc::clone(graph);
            let labels2 = Arc::clone(labels);
            let cells2: Option<Vec<simany_runtime::CellId>> = cells.map(|c| c.to_vec());
            match tc.probe() {
                Some(target) => {
                    tc.spawn(
                        target,
                        Some(group),
                        Box::new(move |tc: &mut TaskCtx<'_>| {
                            explore(tc, &graph2, &labels2, cells2.as_deref(), u, lbl, group);
                        }),
                    );
                }
                None => stack.push(u),
            }
        }
    }
}

/// Timed access to node `v`'s tag: a shared-memory load/store, or a cell
/// access in the distributed-memory variant.
fn touch_tag(tc: &mut TaskCtx<'_>, cells: Option<&[simany_runtime::CellId]>, v: u32, write: bool) {
    match cells {
        Some(cells) => tc.cell_access(cells[v as usize]),
        None => gather(tc, LABELS_BASE + u64::from(v) * 8, write),
    }
}

/// Sequential reference: union-find.
pub fn union_find_components(graph: &Graph) -> Vec<u32> {
    let n = graph.n();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (u, adjacency) in graph.adj.iter().enumerate() {
        for &(v, _) in adjacency {
            let ru = find(&mut parent, u as u32);
            let rv = find(&mut parent, v);
            if ru != rv {
                // Smaller id becomes the root, so every root is the minimum
                // id of its component — directly comparable to min-label
                // propagation.
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent[hi as usize] = lo;
            }
        }
    }
    (0..n as u32).map(|x| find(&mut parent, x)).collect()
}

/// Two labelings describe the same partition iff they agree on
/// same-component relations; with min-label propagation the labels should
/// even be identical to the union-find roots when the union-find also
/// resolves to minimum ids (which ours does).
fn partitions_equal(a: &[u32], b: &[u32]) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_runtime::RuntimeParams;
    use simany_topology::mesh_2d;

    fn small() -> Scale {
        Scale(0.1) // 100 nodes / 200 edges
    }

    #[test]
    fn union_find_reference_sane() {
        // Two triangles, disjoint.
        let mut g = Graph {
            adj: vec![Vec::new(); 6],
        };
        for &(a, b) in &[(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.adj[a as usize].push((b, 1));
            g.adj[b as usize].push((a, 1));
        }
        let c = union_find_components(&g);
        assert_eq!(c, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn parallel_labels_match_union_find() {
        let r = ConnectedComponents
            .run_sim(ProgramSpec::new(mesh_2d(8)), small(), 11)
            .unwrap();
        assert!(r.verified);
    }

    #[test]
    fn distributed_variant_verifies_and_moves_cells() {
        let mut spec = ProgramSpec::new(mesh_2d(8));
        spec.runtime = RuntimeParams::distributed_memory();
        let r = ConnectedComponents.run_sim(spec, small(), 11).unwrap();
        assert!(r.verified);
        assert!(r.out.rt.cell_remote > 0, "expected tag cells to migrate");
    }

    #[test]
    fn deterministic_virtual_time() {
        let a = ConnectedComponents
            .run_sim(ProgramSpec::new(mesh_2d(8)), small(), 5)
            .unwrap();
        let b = ConnectedComponents
            .run_sim(ProgramSpec::new(mesh_2d(8)), small(), 5)
            .unwrap();
        assert_eq!(a.cycles(), b.cycles());
    }
}
