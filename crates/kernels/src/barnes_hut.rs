//! Barnes-Hut N-body force phase (paper §V).
//!
//! "It partitions space by building a hierarchical tree in which each
//! internal node represents the center of mass of all the bodies in the
//! underlying subtree. In a second phase, the force on each body B is
//! computed by traversing the tree starting at the root. This computation
//! is independent of that of other bodies and can be performed in
//! parallel. [...] Only the scalability of the second phase is reported,
//! assuming that the built tree has been broadcasted to all cores before
//! it starts."
//!
//! The tree build runs on the host (it is outside the measured phase);
//! force traversals are the simulated tasks, annotated with floating-point
//! instruction classes and tree-node memory accesses.

use crate::annotate::gather;
use crate::workloads::{random_bodies, Body};
use crate::{DwarfKernel, KernelResult, Scale};
use parking_lot::Mutex;
use simany_runtime::{run_program, GroupId, ProgramSpec, SimError, TaskCtx};
use simany_time::BlockCost;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Paper workloads use 128 and 200 bodies; default in between.
const BASE_BODIES: usize = 160;
/// Barnes-Hut opening angle.
const THETA: f64 = 0.5;
/// Softening to avoid singularities.
const EPS2: f64 = 1e-6;
/// Tasks compute forces for blocks of this many bodies.
const BODY_BLOCK: usize = 1;
/// Simulated address of the tree-node array.
const TREE_BASE: u64 = 0x4000_0000;
/// In distributed memory, tree nodes are grouped into cells of this many
/// nodes; traversals fetch the groups they visit.
const NODES_PER_CELL: usize = 16;

/// An octree node: either a leaf holding one body or an internal cube with
/// up to 8 children and an aggregated center of mass.
#[derive(Clone, Debug)]
pub struct BhNode {
    /// Cube center.
    pub center: [f64; 3],
    /// Cube half-width.
    pub half: f64,
    /// Aggregate mass.
    pub mass: f64,
    /// Center of mass.
    pub com: [f64; 3],
    /// Child node indices (0 = absent).
    pub children: [u32; 8],
    /// Body index for leaves.
    pub body: Option<u32>,
}

/// The Barnes-Hut octree over a set of bodies.
pub struct BhTree {
    /// Node arena; index 0 is the root.
    pub nodes: Vec<BhNode>,
}

impl BhTree {
    /// Build the tree (host-side; outside the measured phase).
    pub fn build(bodies: &[Body]) -> BhTree {
        let mut tree = BhTree {
            nodes: vec![BhNode {
                center: [0.5, 0.5, 0.5],
                half: 0.5,
                mass: 0.0,
                com: [0.0; 3],
                children: [0; 8],
                body: None,
            }],
        };
        for (i, b) in bodies.iter().enumerate() {
            tree.insert(0, i as u32, b, bodies, 0);
        }
        tree.summarize(0, bodies);
        tree
    }

    fn octant(center: &[f64; 3], p: &[f64; 3]) -> usize {
        (usize::from(p[0] >= center[0]))
            | (usize::from(p[1] >= center[1]) << 1)
            | (usize::from(p[2] >= center[2]) << 2)
    }

    fn child_cube(center: &[f64; 3], half: f64, oct: usize) -> ([f64; 3], f64) {
        let h = half / 2.0;
        let c = [
            center[0] + if oct & 1 != 0 { h } else { -h },
            center[1] + if oct & 2 != 0 { h } else { -h },
            center[2] + if oct & 4 != 0 { h } else { -h },
        ];
        (c, h)
    }

    fn insert(&mut self, node: u32, body_idx: u32, b: &Body, bodies: &[Body], depth: u32) {
        let n = node as usize;
        if self.nodes[n].body.is_none() && self.nodes[n].children.iter().all(|&c| c == 0) {
            // Empty leaf: claim it.
            self.nodes[n].body = Some(body_idx);
            return;
        }
        // Depth guard: co-located bodies pile up in one leaf.
        if depth > 48 {
            return;
        }
        if let Some(prev) = self.nodes[n].body.take() {
            // Split: push the previous occupant down.
            self.push_down(node, prev, &bodies[prev as usize], bodies, depth);
        }
        self.push_down(node, body_idx, b, bodies, depth);
    }

    fn push_down(&mut self, node: u32, body_idx: u32, b: &Body, bodies: &[Body], depth: u32) {
        let n = node as usize;
        let oct = Self::octant(&self.nodes[n].center, &b.pos);
        if self.nodes[n].children[oct] == 0 {
            let (c, h) = Self::child_cube(&self.nodes[n].center, self.nodes[n].half, oct);
            let idx = self.nodes.len() as u32;
            self.nodes.push(BhNode {
                center: c,
                half: h,
                mass: 0.0,
                com: [0.0; 3],
                children: [0; 8],
                body: None,
            });
            self.nodes[n].children[oct] = idx;
        }
        let child = self.nodes[n].children[oct];
        self.insert(child, body_idx, b, bodies, depth + 1);
    }

    fn summarize(&mut self, node: u32, bodies: &[Body]) -> (f64, [f64; 3]) {
        let n = node as usize;
        let mut mass = 0.0;
        let mut com = [0.0; 3];
        if let Some(b) = self.nodes[n].body {
            let body = &bodies[b as usize];
            mass += body.mass;
            for (c, p) in com.iter_mut().zip(body.pos) {
                *c += body.mass * p;
            }
        }
        for oct in 0..8 {
            let c = self.nodes[n].children[oct];
            if c != 0 {
                let (m, cc) = self.summarize(c, bodies);
                mass += m;
                for (c, p) in com.iter_mut().zip(cc) {
                    *c += m * p;
                }
            }
        }
        if mass > 0.0 {
            for c in &mut com {
                *c /= mass;
            }
        }
        self.nodes[n].mass = mass;
        self.nodes[n].com = com;
        (mass, com)
    }

    /// Force on `body` by Barnes-Hut traversal; `visit` is called per
    /// visited node (for timing instrumentation).
    pub fn force_on(
        &self,
        body: &Body,
        body_idx: u32,
        mut visit: impl FnMut(u32, bool),
    ) -> [f64; 3] {
        let mut acc = [0.0; 3];
        let mut stack = vec![0u32];
        while let Some(node) = stack.pop() {
            let n = &self.nodes[node as usize];
            if n.mass == 0.0 {
                continue;
            }
            if n.body == Some(body_idx) && n.children.iter().all(|&c| c == 0) {
                visit(node, false);
                continue;
            }
            let dx = n.com[0] - body.pos[0];
            let dy = n.com[1] - body.pos[1];
            let dz = n.com[2] - body.pos[2];
            let d2 = dx * dx + dy * dy + dz * dz + EPS2;
            let d = d2.sqrt();
            let is_leaf = n.children.iter().all(|&c| c == 0);
            if is_leaf || (n.half * 2.0) / d < THETA {
                // Far enough: use the aggregate.
                visit(node, true);
                let f = n.mass / (d2 * d);
                acc[0] += f * dx;
                acc[1] += f * dy;
                acc[2] += f * dz;
            } else {
                visit(node, false);
                for &c in &n.children {
                    if c != 0 {
                        stack.push(c);
                    }
                }
            }
        }
        acc
    }
}

/// Cost of evaluating one far-field interaction (distance + force):
/// ~9 fp add/sub, 9 fp mul, 1 divide+sqrt pair, a compare.
fn interaction_cost() -> BlockCost {
    BlockCost::new()
        .fp_add(9)
        .fp_mul(9)
        .fp_div(2)
        .cond_branches(1)
}

/// Cost of opening a node (distance test only).
fn open_cost() -> BlockCost {
    BlockCost::new()
        .fp_add(6)
        .fp_mul(4)
        .fp_div(1)
        .cond_branches(1)
}

/// The Barnes-Hut kernel (force phase).
pub struct BarnesHut;

impl DwarfKernel for BarnesHut {
    fn name(&self) -> &'static str {
        "Barnes-Hut"
    }

    fn run_sim(
        &self,
        spec: ProgramSpec,
        scale: Scale,
        seed: u64,
    ) -> Result<KernelResult, SimError> {
        let n = scale.apply(BASE_BODIES, 16);
        let bodies = Arc::new(random_bodies(n, seed));
        let tree = Arc::new(BhTree::build(&bodies));
        // Sequential reference: same traversal, no instrumentation.
        let reference: Vec<[f64; 3]> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| tree.force_on(b, i as u32, |_, _| {}))
            .collect();

        let forces = Arc::new(Mutex::new(vec![[0.0f64; 3]; n]));
        let distributed = spec.runtime.arch.is_distributed();
        let bodies2 = Arc::clone(&bodies);
        let tree2 = Arc::clone(&tree);
        let forces2 = Arc::clone(&forces);
        let out = run_program(spec, move |tc| {
            // Distributed memory: the tree is partitioned into node-group
            // cells which traversals must fetch ("tasks continuously
            // exchange vertex data").
            let cells = if distributed {
                let groups = tree2.nodes.len().div_ceil(NODES_PER_CELL);
                Some(Arc::new(
                    (0..groups)
                        .map(|_| tc.alloc_cell((NODES_PER_CELL * 64) as u32))
                        .collect::<Vec<_>>(),
                ))
            } else {
                None
            };
            let group = tc.make_group();
            force_range(
                tc,
                &tree2,
                &bodies2,
                &forces2,
                cells.as_ref().map(|c| c.as_slice()),
                0,
                n,
                group,
            );
            tc.join(group);
        })?;

        let computed = forces.lock().clone();
        let verified = computed
            .iter()
            .zip(&reference)
            .all(|(a, b)| a.iter().zip(b).all(|(x, y)| x == y));
        Ok(KernelResult {
            out,
            verified,
            work_items: n as u64,
        })
    }

    fn run_native(&self, scale: Scale, seed: u64) -> (Duration, u64) {
        let n = scale.apply(BASE_BODIES, 16);
        let bodies = random_bodies(n, seed);
        let tree = BhTree::build(&bodies);
        let t0 = Instant::now();
        let mut checksum = 0.0f64;
        for (i, b) in bodies.iter().enumerate() {
            let f = tree.force_on(b, i as u32, |_, _| {});
            checksum += f[0] + f[1] + f[2];
        }
        (t0.elapsed(), checksum.to_bits())
    }
}

/// Recursive block decomposition over the bodies.
#[allow(clippy::too_many_arguments)]
fn force_range(
    tc: &mut TaskCtx<'_>,
    tree: &Arc<BhTree>,
    bodies: &Arc<Vec<Body>>,
    forces: &Arc<Mutex<Vec<[f64; 3]>>>,
    cells: Option<&[simany_runtime::CellId]>,
    lo: usize,
    hi: usize,
    group: GroupId,
) {
    if hi - lo > BODY_BLOCK {
        let mid = lo + (hi - lo) / 2;
        let tree2 = Arc::clone(tree);
        let bodies2 = Arc::clone(bodies);
        let forces2 = Arc::clone(forces);
        let cells2: Option<Vec<simany_runtime::CellId>> = cells.map(|c| c.to_vec());
        tc.spawn_or_run(group, move |tc: &mut TaskCtx<'_>| {
            force_range(
                tc,
                &tree2,
                &bodies2,
                &forces2,
                cells2.as_deref(),
                mid,
                hi,
                group,
            );
        });
        force_range(tc, tree, bodies, forces, cells, lo, mid, group);
        return;
    }
    for i in lo..hi {
        tc.scope(|tc| {
            let body = bodies[i];
            // Traverse on the host, charging per visited node.
            let mut visits: Vec<(u32, bool)> = Vec::new();
            let f = tree.force_on(&body, i as u32, |node, far| visits.push((node, far)));
            for (node, far) in visits {
                match cells {
                    Some(cells) => tc.cell_access(cells[node as usize / NODES_PER_CELL]),
                    None => gather(tc, TREE_BASE + u64::from(node) * 64, false),
                }
                let cost = if far { interaction_cost() } else { open_cost() };
                tc.compute(&cost);
            }
            forces.lock()[i] = f;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_runtime::RuntimeParams;
    use simany_topology::mesh_2d;

    fn small() -> Scale {
        Scale(0.25) // 40 bodies
    }

    #[test]
    fn tree_mass_is_conserved() {
        let bodies = random_bodies(64, 3);
        let tree = BhTree::build(&bodies);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((tree.nodes[0].mass - total).abs() < 1e-9);
        // Center of mass inside the unit cube.
        for c in tree.nodes[0].com {
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn bh_force_approximates_direct_sum() {
        let bodies = random_bodies(64, 5);
        let tree = BhTree::build(&bodies);
        for (i, b) in bodies.iter().enumerate().take(8) {
            let bh = tree.force_on(b, i as u32, |_, _| {});
            // Direct sum.
            let mut exact = [0.0f64; 3];
            for (j, o) in bodies.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dx = o.pos[0] - b.pos[0];
                let dy = o.pos[1] - b.pos[1];
                let dz = o.pos[2] - b.pos[2];
                let d2 = dx * dx + dy * dy + dz * dz + EPS2;
                let d = d2.sqrt();
                let f = o.mass / (d2 * d);
                exact[0] += f * dx;
                exact[1] += f * dy;
                exact[2] += f * dz;
            }
            let err: f64 = (0..3).map(|d| (bh[d] - exact[d]).abs()).sum::<f64>()
                / exact.iter().map(|e| e.abs()).sum::<f64>().max(1e-12);
            assert!(err < 0.2, "body {i}: BH error {err}");
        }
    }

    #[test]
    fn parallel_forces_match_sequential_exactly() {
        let r = BarnesHut
            .run_sim(ProgramSpec::new(mesh_2d(8)), small(), 7)
            .unwrap();
        assert!(r.verified);
    }

    #[test]
    fn distributed_variant_moves_tree_cells() {
        let mut spec = ProgramSpec::new(mesh_2d(8));
        spec.runtime = RuntimeParams::distributed_memory();
        let r = BarnesHut.run_sim(spec, small(), 7).unwrap();
        assert!(r.verified);
        assert!(r.out.rt.cell_remote > 0);
    }

    #[test]
    fn near_ideal_speedup_at_low_core_counts() {
        // Paper: "the speedup is close to ideal until 16 cores".
        let base = BarnesHut
            .run_sim(ProgramSpec::new(mesh_2d(1)), Scale(1.0), 9)
            .unwrap();
        let par = BarnesHut
            .run_sim(ProgramSpec::new(mesh_2d(16)), Scale(1.0), 9)
            .unwrap();
        let speedup = base.cycles() as f64 / par.cycles() as f64;
        assert!(speedup > 4.0, "speedup only {speedup:.2} on 16 cores");
    }
}
