//! Timing-annotation helpers shared by the kernels.
//!
//! The paper's blocks are fine-grained (basic-block level); writing one
//! `compute` call per loop iteration would be both slow for the host and
//! too chatty. These helpers charge loop nests in line- or chunk-sized
//! blocks — coarse enough to be fast, fine enough (tens of cycles) to
//! stay well inside the spatial-synchronization window.

use simany_mem::Addr;
use simany_runtime::TaskCtx;
use simany_time::BlockCost;

/// Elements per annotation chunk for pure-compute loops.
pub const CHUNK: u64 = 32;

/// Charge a loop of `count` iterations costing `per_iter` each, in chunks.
pub fn charge_loop(tc: &mut TaskCtx<'_>, count: u64, per_iter: &BlockCost) {
    let mut remaining = count;
    while remaining > 0 {
        let n = remaining.min(CHUNK);
        tc.compute(&per_iter.times(n));
        remaining -= n;
    }
}

/// Sweep `n_elems` elements of `elem_bytes` starting at `base`: performs
/// one timed memory access per touched cache line (so cache and coherence
/// models see the traffic) and charges `per_elem` compute per element.
pub fn sweep(
    tc: &mut TaskCtx<'_>,
    base: Addr,
    n_elems: u64,
    elem_bytes: u64,
    write: bool,
    per_elem: &BlockCost,
) {
    if n_elems == 0 {
        return;
    }
    let line = u64::from(tc.params().mem.line_bytes);
    let start_line = base / line;
    let end_line = (base + n_elems * elem_bytes - 1) / line;
    let elems_per_line = (line / elem_bytes).max(1);
    let mut elems_left = n_elems;
    for l in start_line..=end_line {
        if write {
            tc.store(l * line);
        } else {
            tc.load(l * line);
        }
        let n = elems_left.min(elems_per_line);
        if n > 0 && !per_elem.is_empty() {
            tc.compute(&per_elem.times(n));
        }
        elems_left = elems_left.saturating_sub(elems_per_line);
    }
}

/// A single timed random (gather) access: every element access is its own
/// line touch.
pub fn gather(tc: &mut TaskCtx<'_>, addr: Addr, write: bool) {
    if write {
        tc.store(addr);
    } else {
        tc.load(addr);
    }
}

/// Common per-element cost of a compare-and-maybe-swap (sorting inner
/// loops): two int ops and one unpredictable conditional branch.
pub fn compare_swap_cost() -> BlockCost {
    BlockCost::new().int_alu(2).cond_branches(1)
}

/// Per-edge cost of graph traversal bookkeeping.
pub fn edge_visit_cost() -> BlockCost {
    BlockCost::new().int_alu(3).cond_branches(1).branches(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_runtime::{run_program, ProgramSpec};
    use simany_topology::mesh_2d;

    #[test]
    fn charge_loop_total_cost() {
        // 100 iterations of 2 int ops (no branches) = 200 cycles.
        let out = run_program(ProgramSpec::new(mesh_2d(4)), |tc| {
            charge_loop(tc, 100, &BlockCost::new().int_alu(2));
        })
        .unwrap();
        assert_eq!(out.vtime_cycles(), 200);
    }

    #[test]
    fn sweep_touches_each_line_once() {
        // 64 u64 elements = 512 bytes = 16 lines of 32B: 16 misses (10cy)
        // and no compute.
        let out = run_program(ProgramSpec::new(mesh_2d(4)), |tc| {
            sweep(tc, 0x1000, 64, 8, false, &BlockCost::new());
        })
        .unwrap();
        assert_eq!(out.rt.l1_misses, 16);
        assert_eq!(out.vtime_cycles(), 160);
    }

    #[test]
    fn sweep_with_compute() {
        // 8 elements on 2 lines + 1 int op each: 2*10 + 8 = 28 cycles.
        let out = run_program(ProgramSpec::new(mesh_2d(4)), |tc| {
            sweep(tc, 0, 8, 8, true, &BlockCost::new().int_alu(1));
        })
        .unwrap();
        assert_eq!(out.vtime_cycles(), 28);
        assert_eq!(out.rt.sm_stores, 2);
    }
}
