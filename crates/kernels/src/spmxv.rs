//! Sparse matrix–vector multiply (paper §V).
//!
//! "Matrices are specified in a row-oriented format alike to the
//! Harwell-Boeing format." The kernel computes `y = A·x` with recursive
//! row-block task decomposition; rows are independent, so parallelism is
//! abundant and regular — the paper's SpMxV "scales well up to 64 cores
//! and then suddenly tops, essentially because of the size of the datasets
//! we used".
//!
//! Workloads: deterministic random CSR matrices (the paper's generated set
//! has 50 or 100 non-zeros per row); user matrices can be loaded through
//! the Matrix-Market parser in [`crate::workloads`].

use crate::annotate::{gather, sweep};
use crate::workloads::{random_csr, CsrMatrix};
use crate::{DwarfKernel, KernelResult, Scale};
use parking_lot::Mutex;
use simany_runtime::{run_program, GroupId, ProgramSpec, SimError, TaskCtx};
use simany_time::BlockCost;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default matrix: 2000 rows with ~20 nnz/row (the paper's 10^6-row
/// matrices are reachable by cranking `Scale`, at commensurate host cost).
const BASE_N: usize = 2000;
const BASE_NNZ_PER_ROW: usize = 20;
/// Row-block size below which a task computes directly.
const ROW_BLOCK: usize = 8;
/// Simulated address spaces.
const VALS_BASE: u64 = 0x5000_0000;
const X_BASE: u64 = 0x6000_0000;
const Y_BASE: u64 = 0x6800_0000;
/// Distributed memory: `x` is partitioned into cells of this many entries.
const X_CELL_ELEMS: usize = 64;

/// The SpMxV kernel.
pub struct SpMxV;

impl DwarfKernel for SpMxV {
    fn name(&self) -> &'static str {
        "SpMxV"
    }

    fn run_sim(
        &self,
        spec: ProgramSpec,
        scale: Scale,
        seed: u64,
    ) -> Result<KernelResult, SimError> {
        let n = scale.apply(BASE_N, 128);
        let matrix = Arc::new(random_csr(n, BASE_NNZ_PER_ROW, seed));
        let x: Arc<Vec<f64>> = Arc::new((0..n).map(|i| (i as f64).sin()).collect());
        let expected = matrix.multiply(&x);
        let y = Arc::new(Mutex::new(vec![0.0f64; n]));
        let distributed = spec.runtime.arch.is_distributed();

        let m2 = Arc::clone(&matrix);
        let x2 = Arc::clone(&x);
        let y2 = Arc::clone(&y);
        let nnz = matrix.nnz() as u64;
        let out = run_program(spec, move |tc| {
            let cells = if distributed {
                let groups = n.div_ceil(X_CELL_ELEMS);
                Some(Arc::new(
                    (0..groups)
                        .map(|_| tc.alloc_cell((X_CELL_ELEMS * 8) as u32))
                        .collect::<Vec<_>>(),
                ))
            } else {
                None
            };
            let group = tc.make_group();
            rows_task(
                tc,
                &m2,
                &x2,
                &y2,
                cells.as_ref().map(|c| c.as_slice()),
                0,
                n,
                group,
            );
            tc.join(group);
        })?;

        // Row-parallel decomposition preserves per-row summation order:
        // results must match the sequential product bit-for-bit.
        let computed = y.lock().clone();
        let verified = computed == expected;
        Ok(KernelResult {
            out,
            verified,
            work_items: nnz,
        })
    }

    fn run_native(&self, scale: Scale, seed: u64) -> (Duration, u64) {
        let n = scale.apply(BASE_N, 128);
        let matrix = random_csr(n, BASE_NNZ_PER_ROW, seed);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let t0 = Instant::now();
        let y = matrix.multiply(&x);
        let checksum = y.iter().sum::<f64>().to_bits();
        (t0.elapsed(), checksum)
    }
}

impl SpMxV {
    /// Run the kernel on an explicit matrix (e.g. one loaded from a Matrix
    /// Market file via [`crate::workloads::parse_matrix_market`], or the
    /// structured generators). `x` defaults to `sin(i)` when `None`.
    pub fn run_with_matrix(
        spec: ProgramSpec,
        matrix: CsrMatrix,
        x: Option<Vec<f64>>,
    ) -> Result<KernelResult, SimError> {
        let n = matrix.n;
        let matrix = Arc::new(matrix);
        let x: Arc<Vec<f64>> =
            Arc::new(x.unwrap_or_else(|| (0..n).map(|i| (i as f64).sin()).collect()));
        assert_eq!(x.len(), n, "x length must match the matrix dimension");
        let expected = matrix.multiply(&x);
        let y = Arc::new(Mutex::new(vec![0.0f64; n]));
        let distributed = spec.runtime.arch.is_distributed();

        let m2 = Arc::clone(&matrix);
        let x2 = Arc::clone(&x);
        let y2 = Arc::clone(&y);
        let nnz = matrix.nnz() as u64;
        let out = run_program(spec, move |tc| {
            let cells = if distributed {
                let groups = n.div_ceil(X_CELL_ELEMS);
                Some(Arc::new(
                    (0..groups)
                        .map(|_| tc.alloc_cell((X_CELL_ELEMS * 8) as u32))
                        .collect::<Vec<_>>(),
                ))
            } else {
                None
            };
            let group = tc.make_group();
            rows_task(
                tc,
                &m2,
                &x2,
                &y2,
                cells.as_ref().map(|c| c.as_slice()),
                0,
                n,
                group,
            );
            tc.join(group);
        })?;
        let computed = y.lock().clone();
        let verified = computed == expected;
        Ok(KernelResult {
            out,
            verified,
            work_items: nnz,
        })
    }
}

/// Per-non-zero compute: one fp multiply, one fp add, index arithmetic.
fn nnz_cost() -> BlockCost {
    BlockCost::new().fp_mul(1).fp_add(1).int_alu(2)
}

#[allow(clippy::too_many_arguments)]
fn rows_task(
    tc: &mut TaskCtx<'_>,
    m: &Arc<CsrMatrix>,
    x: &Arc<Vec<f64>>,
    y: &Arc<Mutex<Vec<f64>>>,
    x_cells: Option<&[simany_runtime::CellId]>,
    lo: usize,
    hi: usize,
    group: GroupId,
) {
    if hi - lo > ROW_BLOCK {
        let mid = lo + (hi - lo) / 2;
        let m2 = Arc::clone(m);
        let x2 = Arc::clone(x);
        let y2 = Arc::clone(y);
        let cells2: Option<Vec<simany_runtime::CellId>> = x_cells.map(|c| c.to_vec());
        tc.spawn_or_run(group, move |tc: &mut TaskCtx<'_>| {
            rows_task(tc, &m2, &x2, &y2, cells2.as_deref(), mid, hi, group);
        });
        rows_task(tc, m, x, y, x_cells, lo, mid, group);
        return;
    }
    tc.scope(|tc| {
        for r in lo..hi {
            let start = m.row_ptr[r];
            let end = m.row_ptr[r + 1];
            let k = (end - start) as u64;
            // Stream vals+cols for the row (12 bytes per nnz), charge the
            // multiply-accumulate per element.
            sweep(tc, VALS_BASE + start as u64 * 12, k, 12, false, &nnz_cost());
            // Gather x[col]: random accesses (or x-block cell fetches).
            let mut acc = 0.0;
            match x_cells {
                Some(cells) => {
                    // Fetch each distinct x block the row needs once.
                    let mut last_block = usize::MAX;
                    for idx in start..end {
                        let col = m.cols[idx] as usize;
                        let block = col / X_CELL_ELEMS;
                        if block != last_block {
                            tc.cell_access(cells[block]);
                            last_block = block;
                        }
                        acc += m.vals[idx] * x[col];
                    }
                }
                None => {
                    for idx in start..end {
                        let col = m.cols[idx] as usize;
                        gather(tc, X_BASE + col as u64 * 8, false);
                        acc += m.vals[idx] * x[col];
                    }
                }
            }
            gather(tc, Y_BASE + r as u64 * 8, true);
            y.lock()[r] = acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_runtime::RuntimeParams;
    use simany_topology::mesh_2d;

    fn small() -> Scale {
        Scale(0.1) // 200 rows
    }

    #[test]
    fn parallel_product_is_bit_exact() {
        let r = SpMxV
            .run_sim(ProgramSpec::new(mesh_2d(8)), small(), 13)
            .unwrap();
        assert!(r.verified);
        assert!(r.work_items > 0);
    }

    #[test]
    fn distributed_variant_fetches_x_blocks() {
        let mut spec = ProgramSpec::new(mesh_2d(8));
        spec.runtime = RuntimeParams::distributed_memory();
        let r = SpMxV.run_sim(spec, small(), 13).unwrap();
        assert!(r.verified);
        assert!(r.out.rt.cell_remote + r.out.rt.cell_local > 0);
    }

    #[test]
    fn explicit_matrix_paths() {
        use crate::workloads::{parse_matrix_market, stencil_5pt, tridiagonal};
        // Structured generators.
        let r =
            SpMxV::run_with_matrix(ProgramSpec::new(mesh_2d(8)), tridiagonal(256), None).unwrap();
        assert!(r.verified);
        let r =
            SpMxV::run_with_matrix(ProgramSpec::new(mesh_2d(8)), stencil_5pt(16), None).unwrap();
        assert!(r.verified);
        // A hand-written Matrix Market file.
        let mm = "%%MatrixMarket matrix coordinate real symmetric\n4 4 5\n1 1 2.0\n2 2 2.0\n3 3 2.0\n4 4 2.0\n2 1 -1.0\n";
        let m = parse_matrix_market(mm).unwrap();
        let r =
            SpMxV::run_with_matrix(ProgramSpec::new(mesh_2d(4)), m, Some(vec![1.0; 4])).unwrap();
        assert!(r.verified);
    }

    #[test]
    fn scales_with_core_count() {
        // 1000 rows = ~31 leaf row-blocks: enough parallelism for 16 cores.
        let base = SpMxV
            .run_sim(ProgramSpec::new(mesh_2d(1)), Scale(0.5), 4)
            .unwrap();
        let par = SpMxV
            .run_sim(ProgramSpec::new(mesh_2d(16)), Scale(0.5), 4)
            .unwrap();
        let speedup = base.cycles() as f64 / par.cycles() as f64;
        assert!(speedup > 3.0, "speedup only {speedup:.2} on 16 cores");
    }
}
