//! Chord-style DHT key lookup.
//!
//! Cores form a ring; key `k` is owned by core `k mod n`. Every core keeps
//! a finger table (`me + 2^j mod n`) and forwards lookups greedily without
//! overshooting the owner. Resilience machinery, in escalation order:
//!
//! 1. **Retry-with-backoff** on each hop (the runtime's `RetryPolicy`
//!    inside `send_app`).
//! 2. **Timeout-driven re-issue**: the origin keeps a deadline per
//!    outstanding lookup; an expiry re-routes through an *alternate*
//!    finger (each attempt skips one more preferred entry).
//! 3. **Graceful degradation to flooding**: after `MAX_ATTEMPTS` expiries
//!    — or when every usable finger is marked dead — the lookup is
//!    broadcast over the remaining fingers with a TTL and a seen-set for
//!    duplicate suppression.
//!
//! A finger is marked dead when a send to it exhausts its retries, and
//! revived when any message from that core arrives (the table heals after
//! a partition heals). Safety check: every resolved lookup must name the
//! true owner (`key mod n`).

use crate::protocols::{ProtocolKernel, ProtocolMetrics, ProtocolOutcome};
use crate::Scale;
use parking_lot::Mutex;
use simany_core::{SimError, VDuration, VirtualTime};
use simany_runtime::{run_program, AppMsg, ProgramSpec, TaskCtx};
use simany_topology::CoreId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Tick length in cycles.
const TICK: u64 = 2_000;
/// Base number of ticks (scaled by [`Scale`]).
const BASE_TICKS: usize = 32;
/// Lookups issued per node.
const LOOKUPS_PER_NODE: usize = 2;
/// Re-issue timeout in cycles.
const TIMEOUT: u64 = 8_000;
/// Expiries before a lookup degrades to flooding.
const MAX_ATTEMPTS: u32 = 3;

const TAG_LOOKUP: u32 = 1;
const TAG_RESULT: u32 = 2;
const TAG_FLOOD: u32 = 3;

/// An outstanding lookup at its origin.
struct Pending {
    key: u64,
    issued: VirtualTime,
    deadline: VirtualTime,
    attempt: u32,
}

/// Per-node outcome, written once by the owning node task.
#[derive(Clone, Default)]
struct NodeSlot {
    issued: u64,
    resolved: u64,
    sent: u64,
    reissues: u64,
    floods: u64,
    wrong_owner: u64,
    latencies: Vec<u64>,
    crashed: bool,
}

/// Routing + protocol state of one node.
struct Node {
    me: u64,
    n: u64,
    /// Finger targets, sorted by decreasing clockwise advance.
    fingers: Vec<u64>,
    alive: Vec<bool>,
    pending: BTreeMap<u64, Pending>,
    next_seq: u64,
    /// `(origin, seq, attempt)` flood waves already relayed by this node.
    /// Keying the *wave* (not just the lookup) means a re-issued flood is
    /// not suppressed by its predecessor's traces.
    seen: BTreeSet<(u64, u64, u64)>,
    slot: NodeSlot,
}

impl Node {
    fn new(me: u64, n: u64) -> Self {
        let mut fingers: Vec<u64> = Vec::new();
        let mut step = 1u64;
        while step < n {
            let f = (me + step) % n;
            if f != me && !fingers.contains(&f) {
                fingers.push(f);
            }
            step *= 2;
        }
        // Longest stride first: greedy routing tries the biggest
        // non-overshooting jump.
        fingers.sort_by_key(|&f| std::cmp::Reverse((f + n - me) % n));
        let alive = vec![true; fingers.len()];
        Node {
            me,
            n,
            fingers,
            alive,
            pending: BTreeMap::new(),
            next_seq: 0,
            seen: BTreeSet::new(),
            slot: NodeSlot::default(),
        }
    }

    fn owner(&self, key: u64) -> u64 {
        key % self.n
    }

    /// Clockwise ring distance from `me` to `c`.
    fn advance(&self, c: u64) -> u64 {
        (c + self.n - self.me) % self.n
    }

    fn flood_ttl(&self) -> u64 {
        (64 - (self.n.max(2) - 1).leading_zeros() as u64) + 2
    }

    fn send(&mut self, tc: &mut TaskCtx<'_>, dst: u64, tag: u32, data: [u64; 4]) -> bool {
        self.slot.sent += 1;
        let ok = tc.send_app(CoreId(dst as u32), tag, data);
        // The engine's send model tells the sender each attempt's fate, so
        // the finger table tracks reachability exactly: a failed send
        // marks the finger dead, a successful one revives it.
        if let Some(i) = self.fingers.iter().position(|&f| f == dst) {
            self.alive[i] = ok;
        }
        ok
    }

    /// Route a lookup one hop toward `key`'s owner. `attempt` doubles as
    /// the alternate-route selector (skip that many preferred fingers)
    /// and as the flood-wave id. Falls back to flooding when no candidate
    /// finger accepts the message.
    fn route_lookup(
        &mut self,
        tc: &mut TaskCtx<'_>,
        key: u64,
        origin: u64,
        seq: u64,
        attempt: u64,
    ) {
        let owner = self.owner(key);
        if owner == self.me {
            self.deliver_result(tc, key, origin, seq);
            return;
        }
        let budget = self.advance(owner);
        let candidates: Vec<u64> = self
            .fingers
            .iter()
            .enumerate()
            .filter(|&(i, &f)| self.alive[i] && self.advance(f) <= budget)
            .map(|(_, &f)| f)
            .collect();
        for f in candidates.into_iter().skip(attempt as usize) {
            if self.send(tc, f, TAG_LOOKUP, [key, origin, seq, attempt]) {
                return;
            }
        }
        // The table has decayed (or every usable entry was skipped):
        // degrade to scoped flooding.
        self.slot.floods += 1;
        self.flood(tc, key, origin, seq, self.flood_ttl(), attempt);
    }

    /// Owner-side delivery: answer the origin (or resolve locally).
    fn deliver_result(&mut self, tc: &mut TaskCtx<'_>, key: u64, origin: u64, seq: u64) {
        if origin == self.me {
            self.resolve(tc, key, self.me, seq);
        } else {
            self.send(tc, origin, TAG_RESULT, [key, self.me, seq, 0]);
        }
    }

    /// Broadcast a lookup wave over *every* finger — dead ones included:
    /// flooding is the desperate mode, and probing a dead finger is how
    /// the table discovers a healed partition.
    fn flood(
        &mut self,
        tc: &mut TaskCtx<'_>,
        key: u64,
        origin: u64,
        seq: u64,
        ttl: u64,
        wave: u64,
    ) {
        self.seen.insert((origin, seq, wave));
        for i in 0..self.fingers.len() {
            let f = self.fingers[i];
            self.send(tc, f, TAG_FLOOD, [key, origin, seq, ttl | (wave << 32)]);
        }
    }

    /// Origin-side resolution of lookup `seq` answered by `responder`.
    fn resolve(&mut self, tc: &mut TaskCtx<'_>, key: u64, responder: u64, seq: u64) {
        let Some(p) = self.pending.remove(&seq) else {
            return; // Stale duplicate (re-issue raced the original).
        };
        if responder != self.owner(key) || p.key != key {
            self.slot.wrong_owner += 1;
            return;
        }
        self.slot.resolved += 1;
        self.slot
            .latencies
            .push(tc.now().saturating_since(p.issued).cycles());
    }

    fn handle(&mut self, tc: &mut TaskCtx<'_>, m: AppMsg) {
        tc.work(30);
        // Hearing from a finger proves it reachable again.
        let from = u64::from(m.from.0);
        if let Some(i) = self.fingers.iter().position(|&f| f == from) {
            self.alive[i] = true;
        }
        match m.tag {
            TAG_LOOKUP => self.route_lookup(tc, m.data[0], m.data[1], m.data[2], m.data[3]),
            TAG_RESULT => self.resolve(tc, m.data[0], m.data[1], m.data[2]),
            TAG_FLOOD => {
                let (key, origin, seq) = (m.data[0], m.data[1], m.data[2]);
                let ttl = m.data[3] & 0xffff_ffff;
                let wave = m.data[3] >> 32;
                if self.seen.contains(&(origin, seq, wave)) {
                    return;
                }
                if self.owner(key) == self.me {
                    self.seen.insert((origin, seq, wave));
                    self.deliver_result(tc, key, origin, seq);
                } else if ttl > 0 {
                    self.flood(tc, key, origin, seq, ttl - 1, wave);
                }
            }
            _ => {}
        }
    }

    fn issue(&mut self, tc: &mut TaskCtx<'_>) {
        let key = tc.rand_below(self.n * 64);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slot.issued += 1;
        let now = tc.now();
        self.pending.insert(
            seq,
            Pending {
                key,
                issued: now,
                deadline: now + VDuration::from_cycles(TIMEOUT),
                attempt: 0,
            },
        );
        self.route_lookup(tc, key, self.me, seq, 0);
    }

    /// Expire overdue lookups: re-issue through an alternate finger, then
    /// degrade to flooding past the attempt budget.
    fn check_timeouts(&mut self, tc: &mut TaskCtx<'_>) {
        let now = tc.now();
        let overdue: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&s, _)| s)
            .collect();
        for seq in overdue {
            let (key, attempt) = {
                let p = self.pending.get_mut(&seq).expect("overdue pending");
                p.attempt += 1;
                p.deadline = now + VDuration::from_cycles(TIMEOUT);
                (p.key, p.attempt)
            };
            self.slot.reissues += 1;
            if attempt > MAX_ATTEMPTS {
                self.slot.floods += 1;
                let ttl = self.flood_ttl();
                self.flood(tc, key, self.me, seq, ttl, u64::from(attempt));
            } else {
                self.route_lookup(tc, key, self.me, seq, u64::from(attempt));
            }
        }
    }
}

/// The DHT lookup protocol workload.
pub struct DhtLookup;

impl ProtocolKernel for DhtLookup {
    fn name(&self) -> &'static str {
        "DHT Lookup"
    }

    fn run_sim(
        &self,
        spec: ProgramSpec,
        scale: Scale,
        _seed: u64,
    ) -> Result<ProtocolOutcome, SimError> {
        let n = spec.topo.n_cores() as usize;
        let ticks = scale.apply(BASE_TICKS, 8);
        let slots = Arc::new(Mutex::new(vec![NodeSlot::default(); n]));

        let slots2 = Arc::clone(&slots);
        let out = run_program(spec, move |tc| {
            let group = tc.make_group();
            for k in 1..n as u32 {
                let slots = Arc::clone(&slots2);
                tc.spawn_pinned(
                    CoreId(k),
                    Some(group),
                    "dht-node",
                    Box::new(move |tc: &mut TaskCtx<'_>| {
                        let slot = node_loop(tc, ticks);
                        slots.lock()[tc.core().index()] = slot;
                    }),
                );
            }
            let slot = node_loop(tc, ticks);
            slots2.lock()[0] = slot;
            tc.join(group);
        })?;

        let slots = slots.lock();
        let mut latencies = Vec::new();
        for s in slots.iter() {
            latencies.extend_from_slice(&s.latencies);
        }
        let delivered: u64 = slots.iter().map(|s| s.resolved).sum();
        let verified = slots.iter().all(|s| s.wrong_owner == 0);
        let metrics = ProtocolMetrics {
            expected: slots.iter().map(|s| s.issued).sum(),
            delivered,
            payload_msgs: slots.iter().map(|s| s.sent).sum(),
            reissues: slots.iter().map(|s| s.reissues).sum(),
            degraded: slots.iter().map(|s| s.floods).sum(),
            leader_changes: 0,
            latencies,
        };
        Ok(ProtocolOutcome {
            out,
            verified,
            metrics,
        })
    }
}

fn node_loop(tc: &mut TaskCtx<'_>, ticks: usize) -> NodeSlot {
    let n = u64::from(tc.n_cores());
    let me = u64::from(tc.core().0);
    let mut node = Node::new(me, n);
    for r in 0..ticks {
        if tc.core_failed() {
            node.slot.crashed = true;
            return node.slot;
        }
        let tick = VirtualTime::from_cycles((r as u64 + 1) * TICK);
        while let Some(m) = tc.recv_deadline(tick) {
            node.handle(tc, m);
        }
        node.check_timeouts(tc);
        // Each node issues its lookups early, leaving the rest of the
        // horizon for retries to ride out partitions.
        if (1..1 + 2 * LOOKUPS_PER_NODE).contains(&r) && (r - 1) % 2 == 0 {
            node.issue(tc);
        }
    }
    node.slot
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_core::FaultPlanBuilder;
    use simany_topology::mesh_2d;

    #[test]
    fn finger_tables_route_without_overshooting() {
        let node = Node::new(3, 16);
        // Fingers of 3 on a 16-ring: 4, 5, 7, 11 (advance 1, 2, 4, 8).
        assert_eq!(node.fingers, vec![11, 7, 5, 4]);
        assert_eq!(node.owner(35), 3);
        assert_eq!(node.advance(11), 8);
    }

    #[test]
    fn dht_resolves_all_lookups_on_a_healthy_mesh() {
        let o = DhtLookup
            .run_sim(ProgramSpec::new(mesh_2d(16)), Scale(0.5), 7)
            .unwrap();
        assert!(o.verified, "every result must come from the true owner");
        assert_eq!(o.metrics.expected, 32, "2 lookups x 16 nodes");
        assert!(
            (o.metrics.coverage() - 1.0).abs() < 1e-9,
            "healthy mesh resolves everything: {}/{}",
            o.metrics.delivered,
            o.metrics.expected
        );
    }

    #[test]
    fn dht_reissues_and_recovers_across_a_partition() {
        let topo = mesh_2d(16);
        let plan = FaultPlanBuilder::new()
            .partition_halves(
                &topo,
                VirtualTime::from_cycles(5_000),
                Some(VirtualTime::from_cycles(30_000)),
            )
            .build(&topo);
        let mut spec = ProgramSpec::new(topo);
        spec.engine = spec
            .engine
            .with_fault_plan(Arc::new(plan))
            .with_sanitize(true);
        let o = DhtLookup.run_sim(spec, Scale(1.0), 7).unwrap();
        assert!(o.verified);
        assert!(
            o.metrics.reissues > 0,
            "cross-partition lookups must time out and re-issue"
        );
        assert!(
            o.metrics.coverage() > 0.9,
            "post-heal retries should resolve nearly everything: {}/{}",
            o.metrics.delivered,
            o.metrics.expected
        );
    }

    #[test]
    fn dht_is_deterministic() {
        let run = || {
            DhtLookup
                .run_sim(ProgramSpec::new(mesh_2d(16)), Scale(0.5), 11)
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.metrics.delivered, b.metrics.delivered);
        assert_eq!(a.metrics.payload_msgs, b.metrics.payload_msgs);
        assert_eq!(a.metrics.latencies, b.metrics.latencies);
    }
}
