//! Epidemic gossip / rumor broadcast.
//!
//! Core 0 starts with a rumor; every informed node pushes it to `FANOUT`
//! uniformly-random peers each round. Duplicate receipts are suppressed
//! (counted, not re-recorded), lost sends are retried by the runtime's
//! exponential-backoff policy, and a node whose core the fault plan kills
//! falls silent (crash-stop). The protocol's resilience signature is its
//! *delivery coverage* (fraction of nodes informed by the horizon) and the
//! distribution of *first-receipt latencies* — under a partition, the cut
//! half plateaus at zero coverage until the heal, then the epidemic wave
//! resumes and the latency tail stretches by the partition length.

use crate::protocols::{ProtocolKernel, ProtocolMetrics, ProtocolOutcome};
use crate::Scale;
use parking_lot::Mutex;
use simany_core::{SimError, VirtualTime};
use simany_runtime::{run_program, ProgramSpec, TaskCtx};
use simany_topology::CoreId;
use std::sync::Arc;

/// Gossip round length in cycles.
const PERIOD: u64 = 2_000;
/// Peers pushed to per informed node per round.
const FANOUT: u64 = 2;
/// Base number of rounds (scaled by [`Scale`]).
const BASE_ROUNDS: usize = 32;
/// Payload integrity sentinel carried by every rumor copy.
const MAGIC: u64 = 0x9E37_79B9_7F4A_7C15;
/// The rumor message tag.
const TAG_RUMOR: u32 = 1;

/// Per-node outcome, written once by the owning node task.
#[derive(Clone, Copy, Default)]
struct NodeSlot {
    informed: bool,
    /// First-receipt latency (cycles since the rumor's birth).
    latency: u64,
    /// Duplicate rumor copies received after the first.
    dups: u64,
    /// Rumor copies pushed out.
    sent: u64,
    /// Every received copy carried the intact payload sentinel.
    intact: bool,
    crashed: bool,
}

/// The epidemic gossip protocol workload.
pub struct Gossip;

impl ProtocolKernel for Gossip {
    fn name(&self) -> &'static str {
        "Gossip"
    }

    fn run_sim(
        &self,
        spec: ProgramSpec,
        scale: Scale,
        _seed: u64,
    ) -> Result<ProtocolOutcome, SimError> {
        let n = spec.topo.n_cores() as usize;
        let rounds = scale.apply(BASE_ROUNDS, 8);
        let slots = Arc::new(Mutex::new(vec![NodeSlot::default(); n]));

        let slots2 = Arc::clone(&slots);
        let out = run_program(spec, move |tc| {
            let group = tc.make_group();
            for k in 1..n as u32 {
                let slots = Arc::clone(&slots2);
                tc.spawn_pinned(
                    CoreId(k),
                    Some(group),
                    "gossip-node",
                    Box::new(move |tc: &mut TaskCtx<'_>| {
                        let slot = node_loop(tc, rounds, None);
                        slots.lock()[tc.core().index()] = slot;
                    }),
                );
            }
            // The root doubles as node 0, the rumor's origin. Its birth
            // stamp is the end-to-end latency reference for every node.
            let birth = tc.now();
            let slot = node_loop(tc, rounds, Some(birth));
            slots2.lock()[0] = slot;
            tc.join(group);
        })?;

        let slots = slots.lock();
        let delivered = slots.iter().filter(|s| s.informed).count() as u64;
        let latencies: Vec<u64> = slots
            .iter()
            .filter(|s| s.informed)
            .map(|s| s.latency)
            .collect();
        let verified = delivered >= 1
            && slots.iter().filter(|s| s.informed).all(|s| s.intact)
            && delivered as usize == latencies.len();
        let metrics = ProtocolMetrics {
            expected: n as u64,
            delivered,
            payload_msgs: slots.iter().map(|s| s.sent).sum(),
            // Backoff retransmissions of dropped rumor pushes.
            reissues: out.rt.send_retries,
            degraded: slots.iter().filter(|s| s.crashed).count() as u64,
            leader_changes: 0,
            latencies,
        };
        Ok(ProtocolOutcome {
            out,
            verified,
            metrics,
        })
    }
}

/// One gossip node: `origin` is `Some(birth)` on node 0 (informed from the
/// start), `None` elsewhere.
fn node_loop(tc: &mut TaskCtx<'_>, rounds: usize, origin: Option<VirtualTime>) -> NodeSlot {
    let n = u64::from(tc.n_cores());
    let me = u64::from(tc.core().0);
    let mut slot = NodeSlot {
        intact: true,
        ..NodeSlot::default()
    };
    // The rumor's birth stamp, learned on first receipt (origin knows it).
    let mut stamp: u64 = 0;
    if let Some(birth) = origin {
        slot.informed = true;
        slot.latency = 0;
        stamp = birth.ticks();
    }
    for r in 0..rounds {
        if tc.core_failed() {
            slot.crashed = true;
            return slot;
        }
        let tick = VirtualTime::from_cycles((r as u64 + 1) * PERIOD);
        // Drain every rumor copy arriving before this round's tick.
        while let Some(m) = tc.recv_deadline(tick) {
            if m.tag != TAG_RUMOR {
                continue;
            }
            tc.work(20);
            if m.data[1] != MAGIC {
                slot.intact = false;
            }
            if slot.informed {
                slot.dups += 1;
            } else {
                slot.informed = true;
                stamp = m.data[0];
                slot.latency = tc.now().saturating_since(VirtualTime(stamp)).cycles();
            }
        }
        // Informed nodes push the rumor to FANOUT random peers.
        if slot.informed && n > 1 {
            for _ in 0..FANOUT {
                let pick = tc.rand_below(n - 1);
                let peer = if pick >= me { pick + 1 } else { pick };
                tc.send_app(CoreId(peer as u32), TAG_RUMOR, [stamp, MAGIC, 0, 0]);
                slot.sent += 1;
            }
        }
    }
    if tc.core_failed() {
        slot.crashed = true;
    }
    slot
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_core::FaultPlanBuilder;
    use simany_topology::mesh_2d;

    #[test]
    fn gossip_saturates_a_healthy_mesh() {
        let o = Gossip
            .run_sim(ProgramSpec::new(mesh_2d(16)), Scale(0.5), 7)
            .unwrap();
        assert!(o.verified);
        assert_eq!(o.metrics.delivered, 16, "healthy mesh must reach everyone");
        assert!((o.metrics.coverage() - 1.0).abs() < 1e-9);
        assert_eq!(o.metrics.latencies.len(), 16);
    }

    #[test]
    fn gossip_survives_partition_then_heal() {
        let topo = mesh_2d(16);
        let plan = FaultPlanBuilder::new()
            .partition_halves(
                &topo,
                VirtualTime::from_cycles(5_000),
                Some(VirtualTime::from_cycles(30_000)),
            )
            .build(&topo);
        let mut spec = ProgramSpec::new(topo);
        spec.engine = spec
            .engine
            .with_fault_plan(Arc::new(plan))
            .with_sanitize(true);
        let o = Gossip.run_sim(spec, Scale(1.0), 7).unwrap();
        assert!(o.verified);
        // 32 rounds x 2000 cycles = 64k horizon: plenty of post-heal mixing.
        assert_eq!(o.metrics.delivered, 16, "coverage must recover after heal");
        // The cut half's first receipts happen after the heal.
        assert!(
            o.metrics.latencies.iter().any(|&l| l > 30_000),
            "some latencies should reflect the partition"
        );
    }

    #[test]
    fn gossip_is_deterministic() {
        let run = || {
            Gossip
                .run_sim(ProgramSpec::new(mesh_2d(16)), Scale(0.5), 11)
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.metrics.delivered, b.metrics.delivered);
        assert_eq!(a.metrics.payload_msgs, b.metrics.payload_msgs);
        assert_eq!(a.metrics.latencies, b.metrics.latencies);
    }
}
