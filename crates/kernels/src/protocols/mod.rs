//! # Protocol workload pack — the resilience testbed
//!
//! Where the dwarf kernels stress the simulator's *performance* fidelity,
//! these workloads stress its *fault* fidelity: three classic distributed
//! protocols whose entire point is to make progress while the fault plan
//! partitions the mesh, drops messages and kills cores underneath them.
//!
//! * [`gossip`] — epidemic rumor spreading with per-round fanout,
//!   duplicate suppression and retry-with-backoff on dropped sends.
//! * [`dht`] — Chord-style key lookup over per-core finger tables, with
//!   timeout-driven re-issue through alternate fingers and graceful
//!   degradation to scoped flooding when the table decays.
//! * [`quorum`] — a Raft-flavored leader/quorum protocol: heartbeats,
//!   term-numbered elections and majority commit, surviving partitions
//!   and leader churn.
//!
//! All three are ordinary task programs over [`TaskCtx`]'s protocol seam
//! (`send_app` / `recv_deadline` / `core_failed`): node tasks are pinned
//! one-per-core with `spawn_pinned`, exchange `AppMsg`s whose losses are
//! decided by the active fault plan, and time their re-issues with the
//! fault-immune self-send deadline timer. Every protocol follows the
//! simulator's determinism contract — node state lives in `BTreeMap`s /
//! `BTreeSet`s, randomness comes from the per-task PRNG — so a run is
//! bit-identical for a fixed `(seed, threads)` and across thread counts.
//!
//! [`TaskCtx`]: simany_runtime::TaskCtx

pub mod dht;
pub mod gossip;
pub mod quorum;

use crate::Scale;
use simany_runtime::{RunOutput, SimError};

/// Resilience metrics one protocol run reports. The raw latency samples
/// are kept so callers (bench / simulate) can summarize them with
/// whatever percentile machinery they carry — this crate stays free of a
/// stats dependency.
#[derive(Clone, Debug, Default)]
pub struct ProtocolMetrics {
    /// Payloads the protocol set out to deliver: rumor × node pairs,
    /// lookups issued, commands proposed.
    pub expected: u64,
    /// Payloads actually delivered / resolved / committed.
    pub delivered: u64,
    /// Application messages spent in total (`send_app` calls).
    pub payload_msgs: u64,
    /// Timeout-driven re-issues (lookup retries, election restarts).
    pub reissues: u64,
    /// Operations that fell back to a degraded mode (flooding after the
    /// finger table decayed, elections forced by leader loss).
    pub degraded: u64,
    /// Distinct `(term, leader)` pairs observed (quorum; 0 elsewhere).
    pub leader_changes: u64,
    /// End-to-end latency of each delivered payload, in cycles.
    pub latencies: Vec<u64>,
}

impl ProtocolMetrics {
    /// Delivery coverage in `[0, 1]`; 1.0 when nothing was expected.
    pub fn coverage(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.expected as f64
        }
    }

    /// Messages spent per delivered payload (the cost of resilience).
    pub fn msgs_per_delivery(&self) -> f64 {
        if self.delivered == 0 {
            self.payload_msgs as f64
        } else {
            self.payload_msgs as f64 / self.delivered as f64
        }
    }
}

/// Result of one simulated protocol run.
#[derive(Debug)]
pub struct ProtocolOutcome {
    /// Simulation output (virtual time, engine + runtime statistics).
    pub out: RunOutput,
    /// Protocol-level safety checks passed (owner correctness, at most
    /// one leader per term, rumor payload integrity).
    pub verified: bool,
    /// Resilience metrics.
    pub metrics: ProtocolMetrics,
}

impl ProtocolOutcome {
    /// Completion virtual time in cycles.
    pub fn cycles(&self) -> u64 {
        self.out.vtime_cycles()
    }
}

/// Uniform interface over the protocol workloads (the resilience
/// counterpart of [`crate::DwarfKernel`]).
pub trait ProtocolKernel: Send + Sync {
    /// Display name ("Gossip", "DHT Lookup", "Quorum").
    fn name(&self) -> &'static str;

    /// Simulate the protocol on the machine described by `spec`. `scale`
    /// stretches the protocol horizon (rounds / ticks); the fault plan —
    /// if any — rides in `spec.engine.fault`.
    fn run_sim(
        &self,
        spec: simany_runtime::ProgramSpec,
        scale: Scale,
        seed: u64,
    ) -> Result<ProtocolOutcome, SimError>;
}

/// The protocol pack, in fixed order.
pub fn all_protocols() -> Vec<Box<dyn ProtocolKernel>> {
    vec![
        Box::new(gossip::Gossip),
        Box::new(dht::DhtLookup),
        Box::new(quorum::Quorum),
    ]
}

/// Look a protocol up by (case-insensitive) name prefix.
pub fn protocol_by_name(name: &str) -> Option<Box<dyn ProtocolKernel>> {
    let lower = name.to_lowercase();
    all_protocols()
        .into_iter()
        .find(|p| p.name().to_lowercase().starts_with(&lower))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_has_three_protocols() {
        let names: Vec<_> = all_protocols().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["Gossip", "DHT Lookup", "Quorum"]);
    }

    #[test]
    fn protocol_lookup_by_prefix() {
        assert_eq!(protocol_by_name("gos").unwrap().name(), "Gossip");
        assert_eq!(protocol_by_name("DHT").unwrap().name(), "DHT Lookup");
        assert_eq!(protocol_by_name("quo").unwrap().name(), "Quorum");
        assert!(protocol_by_name("paxos").is_none());
        // No collision with the dwarf suite's prefixes.
        for p in all_protocols() {
            assert!(crate::kernel_by_name(p.name()).is_none());
        }
    }

    #[test]
    fn metrics_ratios_are_safe() {
        let m = ProtocolMetrics::default();
        assert!((m.coverage() - 1.0).abs() < 1e-9);
        assert_eq!(m.msgs_per_delivery(), 0.0);
        let m = ProtocolMetrics {
            expected: 10,
            delivered: 8,
            payload_msgs: 40,
            ..Default::default()
        };
        assert!((m.coverage() - 0.8).abs() < 1e-9);
        assert!((m.msgs_per_delivery() - 5.0).abs() < 1e-9);
    }
}
