//! Quorum / leader protocol (Raft-flavored).
//!
//! Every core is a voter. A leader emits periodic heartbeats and proposes
//! commands, which commit once a majority of acknowledgements arrive.
//! Followers whose randomized election timeout expires start a
//! term-numbered election (`VOTE_REQ` / `VOTE_GRANT`, one vote per term);
//! a candidate with a majority becomes the new leader. Under a partition
//! the minority side can elect nobody and commits nothing — the classic
//! quorum-safety property — while the majority side keeps committing;
//! leader churn (the old leader isolated, a new one elected at a higher
//! term) is survived by term comparison. Safety check after the run:
//! across every node's observations, **at most one leader per term**.

use crate::protocols::{ProtocolKernel, ProtocolMetrics, ProtocolOutcome};
use crate::Scale;
use parking_lot::Mutex;
use simany_core::{SimError, VDuration, VirtualTime};
use simany_runtime::{run_program, AppMsg, ProgramSpec, TaskCtx};
use simany_topology::CoreId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Tick length in cycles.
const TICK: u64 = 1_000;
/// Base number of ticks (scaled by [`Scale`]).
const BASE_TICKS: usize = 64;
/// Leader heartbeat period, in ticks.
const HEARTBEAT_EVERY: usize = 2;
/// Leader proposal period, in ticks.
const PROPOSE_EVERY: usize = 4;
/// Election timeout: base + uniform jitter, in cycles.
const ELECTION_BASE: u64 = 6_000;
const ELECTION_JITTER: u64 = 4_000;

const TAG_VOTE_REQ: u32 = 1;
const TAG_VOTE_GRANT: u32 = 2;
const TAG_HEARTBEAT: u32 = 3;
const TAG_APPEND: u32 = 4;
const TAG_ACK: u32 = 5;

#[derive(Clone, Copy, PartialEq)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

/// Per-node outcome, written once by the owning node task.
#[derive(Clone, Default)]
struct NodeSlot {
    proposals: u64,
    commits: u64,
    elections: u64,
    sent: u64,
    latencies: Vec<u64>,
    /// `(term, leader)` pairs this node observed (heartbeats + own wins).
    observed: BTreeSet<(u64, u64)>,
    crashed: bool,
}

struct Node {
    me: u64,
    n: u64,
    role: Role,
    term: u64,
    voted_for: Option<u64>,
    leader: Option<u64>,
    election_deadline: VirtualTime,
    /// Grants received for my candidacy in the current term.
    votes: BTreeSet<u64>,
    /// Highest commit index learned (leader's committed count).
    commit_index: u64,
    /// Leader-side: next proposal index.
    next_index: u64,
    /// Leader-side: proposals awaiting a majority of acks.
    pending: BTreeMap<u64, (VirtualTime, BTreeSet<u64>)>,
    slot: NodeSlot,
}

impl Node {
    fn majority(&self) -> usize {
        (self.n / 2 + 1) as usize
    }

    fn reset_election_deadline(&mut self, tc: &mut TaskCtx<'_>) {
        let jitter = tc.rand_below(ELECTION_JITTER);
        self.election_deadline = tc.now() + VDuration::from_cycles(ELECTION_BASE + jitter);
    }

    fn send_all(&mut self, tc: &mut TaskCtx<'_>, tag: u32, data: [u64; 4]) {
        for c in 0..self.n {
            if c != self.me {
                self.slot.sent += 1;
                tc.send_app(CoreId(c as u32), tag, data);
            }
        }
    }

    fn send_one(&mut self, tc: &mut TaskCtx<'_>, dst: u64, tag: u32, data: [u64; 4]) {
        self.slot.sent += 1;
        tc.send_app(CoreId(dst as u32), tag, data);
    }

    /// Step down if a message carries a newer term.
    fn observe_term(&mut self, term: u64) {
        if term > self.term {
            self.term = term;
            self.role = Role::Follower;
            self.voted_for = None;
            self.leader = None;
            self.votes.clear();
            self.pending.clear();
        }
    }

    fn become_leader(&mut self, tc: &mut TaskCtx<'_>) {
        self.role = Role::Leader;
        self.leader = Some(self.me);
        self.slot.observed.insert((self.term, self.me));
        // Assert authority immediately.
        let hb = [self.term, self.me, self.commit_index, 0];
        self.send_all(tc, TAG_HEARTBEAT, hb);
    }

    fn start_election(&mut self, tc: &mut TaskCtx<'_>) {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.me);
        self.leader = None;
        self.votes = BTreeSet::from([self.me]);
        self.pending.clear();
        self.slot.elections += 1;
        self.reset_election_deadline(tc);
        if self.votes.len() >= self.majority() {
            self.become_leader(tc); // n == 1
        } else {
            self.send_all(tc, TAG_VOTE_REQ, [self.term, 0, 0, 0]);
        }
    }

    fn propose(&mut self, tc: &mut TaskCtx<'_>) {
        let index = self.next_index;
        self.next_index += 1;
        self.slot.proposals += 1;
        let now = tc.now();
        let mut acks = BTreeSet::from([self.me]);
        if acks.len() >= self.majority() {
            // n == 1: self-ack commits instantly.
            self.commit(tc, now);
        } else {
            acks.insert(self.me);
            self.pending.insert(index, (now, acks));
            self.send_all(tc, TAG_APPEND, [self.term, index, now.ticks(), 0]);
        }
    }

    fn commit(&mut self, tc: &mut TaskCtx<'_>, proposed: VirtualTime) {
        self.slot.commits += 1;
        self.commit_index += 1;
        self.slot
            .latencies
            .push(tc.now().saturating_since(proposed).cycles());
    }

    fn handle(&mut self, tc: &mut TaskCtx<'_>, m: AppMsg) {
        tc.work(25);
        let from = u64::from(m.from.0);
        let term = m.data[0];
        self.observe_term(term);
        match m.tag {
            TAG_VOTE_REQ
                if term == self.term
                    && (self.voted_for.is_none() || self.voted_for == Some(from)) =>
            {
                self.voted_for = Some(from);
                self.reset_election_deadline(tc);
                self.send_one(tc, from, TAG_VOTE_GRANT, [term, 0, 0, 0]);
            }
            TAG_VOTE_GRANT if self.role == Role::Candidate && term == self.term => {
                self.votes.insert(from);
                if self.votes.len() >= self.majority() {
                    self.become_leader(tc);
                }
            }
            TAG_HEARTBEAT if term == self.term => {
                let leader = m.data[1];
                if leader != self.me {
                    self.role = Role::Follower;
                }
                self.leader = Some(leader);
                self.slot.observed.insert((term, leader));
                self.commit_index = self.commit_index.max(m.data[2]);
                self.reset_election_deadline(tc);
            }
            TAG_APPEND if term == self.term => {
                if from != self.me {
                    self.role = Role::Follower;
                    self.leader = Some(from);
                    self.slot.observed.insert((term, from));
                }
                self.reset_election_deadline(tc);
                self.send_one(tc, from, TAG_ACK, [term, m.data[1], m.data[2], 0]);
            }
            TAG_ACK if self.role == Role::Leader && term == self.term => {
                let index = m.data[1];
                let majority = self.majority();
                if let Some((proposed, acks)) = self.pending.get_mut(&index) {
                    acks.insert(from);
                    if acks.len() >= majority {
                        let proposed = *proposed;
                        self.pending.remove(&index);
                        self.commit(tc, proposed);
                    }
                }
            }
            _ => {}
        }
    }
}

/// The quorum / leader protocol workload.
pub struct Quorum;

impl ProtocolKernel for Quorum {
    fn name(&self) -> &'static str {
        "Quorum"
    }

    fn run_sim(
        &self,
        spec: ProgramSpec,
        scale: Scale,
        _seed: u64,
    ) -> Result<ProtocolOutcome, SimError> {
        let n = spec.topo.n_cores() as usize;
        let ticks = scale.apply(BASE_TICKS, 16);
        let slots = Arc::new(Mutex::new(vec![NodeSlot::default(); n]));

        let slots2 = Arc::clone(&slots);
        let out = run_program(spec, move |tc| {
            let group = tc.make_group();
            for k in 1..n as u32 {
                let slots = Arc::clone(&slots2);
                tc.spawn_pinned(
                    CoreId(k),
                    Some(group),
                    "quorum-node",
                    Box::new(move |tc: &mut TaskCtx<'_>| {
                        let slot = node_loop(tc, ticks);
                        slots.lock()[tc.core().index()] = slot;
                    }),
                );
            }
            let slot = node_loop(tc, ticks);
            slots2.lock()[0] = slot;
            tc.join(group);
        })?;

        let slots = slots.lock();
        // Safety: merge every node's observations; a term with two
        // distinct leaders is a split-brain violation.
        let mut observed: BTreeSet<(u64, u64)> = BTreeSet::new();
        for s in slots.iter() {
            observed.extend(s.observed.iter().copied());
        }
        let mut terms_seen: BTreeSet<u64> = BTreeSet::new();
        let mut split_brain = false;
        for &(term, _) in &observed {
            if !terms_seen.insert(term) {
                split_brain = true;
            }
        }
        let mut latencies = Vec::new();
        for s in slots.iter() {
            latencies.extend_from_slice(&s.latencies);
        }
        let metrics = ProtocolMetrics {
            expected: slots.iter().map(|s| s.proposals).sum(),
            delivered: slots.iter().map(|s| s.commits).sum(),
            payload_msgs: slots.iter().map(|s| s.sent).sum(),
            reissues: out.rt.send_retries,
            degraded: slots.iter().map(|s| s.elections).sum(),
            leader_changes: observed.len() as u64,
            latencies,
        };
        Ok(ProtocolOutcome {
            out,
            verified: !split_brain,
            metrics,
        })
    }
}

fn node_loop(tc: &mut TaskCtx<'_>, ticks: usize) -> NodeSlot {
    let n = u64::from(tc.n_cores());
    let me = u64::from(tc.core().0);
    let mut node = Node {
        me,
        n,
        role: Role::Follower,
        term: 0,
        voted_for: None,
        leader: None,
        election_deadline: VirtualTime::ZERO,
        votes: BTreeSet::new(),
        commit_index: 0,
        next_index: 1,
        pending: BTreeMap::new(),
        slot: NodeSlot::default(),
    };
    node.reset_election_deadline(tc);
    for r in 0..ticks {
        if tc.core_failed() {
            node.slot.crashed = true;
            return node.slot;
        }
        let tick = VirtualTime::from_cycles((r as u64 + 1) * TICK);
        while let Some(m) = tc.recv_deadline(tick) {
            node.handle(tc, m);
        }
        if node.role == Role::Leader {
            if r % HEARTBEAT_EVERY == 0 {
                let hb = [node.term, node.me, node.commit_index, 0];
                node.send_all(tc, TAG_HEARTBEAT, hb);
            }
            if r % PROPOSE_EVERY == 1 {
                node.propose(tc);
            }
        } else if tc.now() >= node.election_deadline {
            node.start_election(tc);
        }
    }
    node.slot
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_core::FaultPlanBuilder;
    use simany_topology::mesh_2d;

    #[test]
    fn quorum_elects_and_commits_on_a_healthy_mesh() {
        let o = Quorum
            .run_sim(ProgramSpec::new(mesh_2d(16)), Scale(1.0), 7)
            .unwrap();
        assert!(o.verified, "at most one leader per term");
        assert!(o.metrics.degraded >= 1, "someone must win an election");
        assert!(o.metrics.delivered > 0, "the leader must commit commands");
        assert!(o.metrics.coverage() > 0.5);
        assert!(o.metrics.leader_changes >= 1);
    }

    #[test]
    fn quorum_survives_partition_and_leader_churn() {
        let topo = mesh_2d(16);
        let plan = FaultPlanBuilder::new()
            .partition_halves(
                &topo,
                VirtualTime::from_cycles(15_000),
                Some(VirtualTime::from_cycles(40_000)),
            )
            .build(&topo);
        let mut spec = ProgramSpec::new(topo);
        spec.engine = spec
            .engine
            .with_fault_plan(Arc::new(plan))
            .with_sanitize(true);
        let o = Quorum.run_sim(spec, Scale(1.0), 7).unwrap();
        assert!(
            o.verified,
            "no split brain: a 8/8 partition leaves no majority on either side \
             until the heal, and term numbering serializes later leaders"
        );
        assert!(o.metrics.delivered > 0, "commits must resume post-heal");
    }

    #[test]
    fn quorum_is_deterministic() {
        let run = || {
            Quorum
                .run_sim(ProgramSpec::new(mesh_2d(16)), Scale(0.5), 11)
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.metrics.delivered, b.metrics.delivered);
        assert_eq!(a.metrics.leader_changes, b.metrics.leader_changes);
        assert_eq!(a.metrics.latencies, b.metrics.latencies);
    }
}
