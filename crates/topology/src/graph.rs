//! Core identifiers and the interconnect graph.
//!
//! The topology is a set of cores connected by *directed* links: every
//! physical (undirected) wire between two cores is represented as two
//! directed links so that the network model can account for contention in
//! each direction independently (paper §VII: "we do model contention on
//! individual links").

use simany_time::VDuration;
use std::fmt;

/// Identifier of a simulated core. Cores are numbered `0..n_cores`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Index into dense per-core arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a *directed* link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Index into dense per-link arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Properties of one directed link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkProps {
    /// Source core.
    pub src: CoreId,
    /// Destination core.
    pub dst: CoreId,
    /// Base traversal latency of the link.
    pub latency: VDuration,
    /// Bandwidth in bytes per cycle (serialization delay of a message of
    /// `s` bytes is `ceil(s / bandwidth)` cycles).
    pub bandwidth_bytes_per_cycle: u32,
}

/// The interconnect graph: cores plus directed links with per-link latency
/// and bandwidth.
///
/// Construction happens through builder-style `add_*` calls or
/// the ready-made shapes in [`crate::builders`]; afterwards the topology is
/// immutable and shared by the network model, the spatial-synchronization
/// machinery (which needs neighbor sets) and the routing tables.
#[derive(Clone, Debug)]
pub struct Topology {
    n_cores: u32,
    /// Adjacency: for each core, its outgoing `(neighbor, link)` pairs,
    /// sorted by neighbor id for determinism.
    adj: Vec<Vec<(CoreId, LinkId)>>,
    links: Vec<LinkProps>,
    /// Optional hierarchical region (chiplet / cluster) id per core; empty
    /// when the topology has no region structure. Regions are advisory
    /// metadata for partitioners and reporting — they never affect routing
    /// or timing, so attaching them cannot perturb a simulation.
    regions: Vec<u32>,
    n_regions: u32,
}

/// Default link latency used by builders when none is specified: 1 cycle
/// (paper §V: "the base link traversal latency between two cores is set to
/// 1 cycle").
pub const DEFAULT_LINK_LATENCY: VDuration = VDuration::from_cycles(1);

/// Default link bandwidth used by builders: 128 bytes/cycle (paper §V).
pub const DEFAULT_LINK_BANDWIDTH: u32 = 128;

impl Topology {
    /// Create a topology with `n_cores` cores and no links yet.
    pub fn new(n_cores: u32) -> Self {
        assert!(n_cores > 0, "a topology needs at least one core");
        Topology {
            n_cores,
            adj: vec![Vec::new(); n_cores as usize],
            links: Vec::new(),
            regions: Vec::new(),
            n_regions: 0,
        }
    }

    /// Attach hierarchical region metadata: `regions[i]` is the region
    /// (chiplet, cluster) id of core `i`. Region ids must be dense
    /// (`0..max+1`). Regions are advisory: the BFS partitioner uses them to
    /// keep tiles within region boundaries, nothing else reads them.
    pub fn set_regions(&mut self, regions: Vec<u32>) {
        assert_eq!(
            regions.len(),
            self.n_cores as usize,
            "one region id per core"
        );
        self.n_regions = regions.iter().copied().max().map_or(0, |m| m + 1);
        self.regions = regions;
    }

    /// Number of regions (0 when the topology has no region structure).
    #[inline]
    pub fn n_regions(&self) -> u32 {
        self.n_regions
    }

    /// Region id of `core`, if the topology carries region metadata.
    #[inline]
    pub fn region_of(&self, core: CoreId) -> Option<u32> {
        self.regions.get(core.index()).copied()
    }

    /// Number of cores.
    #[inline]
    pub fn n_cores(&self) -> u32 {
        self.n_cores
    }

    /// Iterate over all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.n_cores).map(CoreId)
    }

    /// Number of directed links.
    #[inline]
    pub fn n_links(&self) -> u32 {
        self.links.len() as u32
    }

    /// Properties of a directed link.
    #[inline]
    pub fn link(&self, id: LinkId) -> &LinkProps {
        &self.links[id.index()]
    }

    /// All directed links.
    pub fn links(&self) -> &[LinkProps] {
        &self.links
    }

    /// Outgoing `(neighbor, link)` pairs of `core`, sorted by neighbor id.
    #[inline]
    pub fn neighbors(&self, core: CoreId) -> &[(CoreId, LinkId)] {
        &self.adj[core.index()]
    }

    /// Degree (number of neighbors) of `core`.
    #[inline]
    pub fn degree(&self, core: CoreId) -> usize {
        self.adj[core.index()].len()
    }

    /// True iff `a` and `b` are directly connected.
    pub fn are_neighbors(&self, a: CoreId, b: CoreId) -> bool {
        self.adj[a.index()]
            .binary_search_by_key(&b, |&(n, _)| n)
            .is_ok()
    }

    /// The directed link from `a` to `b`, if any.
    pub fn link_between(&self, a: CoreId, b: CoreId) -> Option<LinkId> {
        self.adj[a.index()]
            .binary_search_by_key(&b, |&(n, _)| n)
            .ok()
            .map(|i| self.adj[a.index()][i].1)
    }

    /// Add a single directed link; returns its id. Panics on self-loops,
    /// out-of-range cores or duplicate links.
    pub fn add_directed_link(
        &mut self,
        src: CoreId,
        dst: CoreId,
        latency: VDuration,
        bandwidth: u32,
    ) -> LinkId {
        assert!(src != dst, "self-loop link {src}");
        assert!(
            src.0 < self.n_cores && dst.0 < self.n_cores,
            "core out of range"
        );
        assert!(bandwidth > 0, "link bandwidth must be non-zero");
        assert!(
            !self.are_neighbors(src, dst),
            "duplicate link {src} -> {dst}"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkProps {
            src,
            dst,
            latency,
            bandwidth_bytes_per_cycle: bandwidth,
        });
        let row = &mut self.adj[src.index()];
        let pos = row.partition_point(|&(n, _)| n < dst);
        row.insert(pos, (dst, id));
        id
    }

    /// Add a bidirectional connection (two directed links with identical
    /// properties); returns both ids.
    pub fn add_link(
        &mut self,
        a: CoreId,
        b: CoreId,
        latency: VDuration,
        bandwidth: u32,
    ) -> (LinkId, LinkId) {
        let ab = self.add_directed_link(a, b, latency, bandwidth);
        let ba = self.add_directed_link(b, a, latency, bandwidth);
        (ab, ba)
    }

    /// Add a bidirectional connection with the paper's default latency
    /// (1 cycle) and bandwidth (128 B/cy).
    pub fn add_default_link(&mut self, a: CoreId, b: CoreId) -> (LinkId, LinkId) {
        self.add_link(a, b, DEFAULT_LINK_LATENCY, DEFAULT_LINK_BANDWIDTH)
    }

    /// Override the latency/bandwidth of the directed link `a -> b` (and its
    /// reverse when `both_directions`).
    pub fn set_link_props(
        &mut self,
        a: CoreId,
        b: CoreId,
        latency: VDuration,
        bandwidth: u32,
        both_directions: bool,
    ) {
        assert!(bandwidth > 0, "link bandwidth must be non-zero");
        let ab = self
            .link_between(a, b)
            .unwrap_or_else(|| panic!("no link {a} -> {b}"));
        self.links[ab.index()].latency = latency;
        self.links[ab.index()].bandwidth_bytes_per_cycle = bandwidth;
        if both_directions {
            let ba = self
                .link_between(b, a)
                .unwrap_or_else(|| panic!("no link {b} -> {a}"));
            self.links[ba.index()].latency = latency;
            self.links[ba.index()].bandwidth_bytes_per_cycle = bandwidth;
        }
    }

    /// True iff every core can reach every other core.
    pub fn is_connected(&self) -> bool {
        if self.n_cores == 1 {
            return true;
        }
        let mut seen = vec![false; self.n_cores as usize];
        let mut stack = vec![CoreId(0)];
        seen[0] = true;
        let mut count = 1u32;
        while let Some(c) = stack.pop() {
            for &(n, _) in self.neighbors(c) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.n_cores
    }

    /// Hop distances from `src` to every core (BFS, `u32::MAX` when
    /// unreachable).
    pub fn hop_distances(&self, src: CoreId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n_cores as usize];
        dist[src.index()] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        while let Some(c) = queue.pop_front() {
            let d = dist[c.index()];
            for &(n, _) in self.neighbors(c) {
                if dist[n.index()] == u32::MAX {
                    dist[n.index()] = d + 1;
                    queue.push_back(n);
                }
            }
        }
        dist
    }

    /// Graph diameter in hops (largest topological distance between two
    /// cores). This bounds the global drift between any two cores at
    /// `diameter × T` under spatial synchronization (paper §II.A). Panics if
    /// the graph is disconnected.
    pub fn diameter_hops(&self) -> u32 {
        let mut max = 0;
        for c in self.cores() {
            let d = self.hop_distances(c);
            for &v in &d {
                assert!(v != u32::MAX, "diameter of a disconnected topology");
                max = max.max(v);
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut t = Topology::new(3);
        t.add_default_link(CoreId(0), CoreId(1));
        t.add_default_link(CoreId(1), CoreId(2));
        t.add_default_link(CoreId(2), CoreId(0));
        t
    }

    #[test]
    fn links_are_directed_pairs() {
        let t = triangle();
        assert_eq!(t.n_links(), 6);
        assert!(t.are_neighbors(CoreId(0), CoreId(1)));
        assert!(t.are_neighbors(CoreId(1), CoreId(0)));
        let ab = t.link_between(CoreId(0), CoreId(1)).unwrap();
        let ba = t.link_between(CoreId(1), CoreId(0)).unwrap();
        assert_ne!(ab, ba);
        assert_eq!(t.link(ab).src, CoreId(0));
        assert_eq!(t.link(ab).dst, CoreId(1));
    }

    #[test]
    fn neighbors_sorted_for_determinism() {
        let mut t = Topology::new(4);
        t.add_default_link(CoreId(0), CoreId(3));
        t.add_default_link(CoreId(0), CoreId(1));
        t.add_default_link(CoreId(0), CoreId(2));
        let ns: Vec<u32> = t.neighbors(CoreId(0)).iter().map(|&(n, _)| n.0).collect();
        assert_eq!(ns, vec![1, 2, 3]);
    }

    #[test]
    fn connectivity_and_bfs() {
        let t = triangle();
        assert!(t.is_connected());
        assert_eq!(t.hop_distances(CoreId(0)), vec![0, 1, 1]);
        assert_eq!(t.diameter_hops(), 1);

        let mut line = Topology::new(3);
        line.add_default_link(CoreId(0), CoreId(1));
        assert!(!line.is_connected());
        let d = line.hop_distances(CoreId(0));
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn set_link_props_overrides() {
        let mut t = triangle();
        t.set_link_props(CoreId(0), CoreId(1), VDuration::from_cycles(9), 64, true);
        let ab = t.link_between(CoreId(0), CoreId(1)).unwrap();
        let ba = t.link_between(CoreId(1), CoreId(0)).unwrap();
        assert_eq!(t.link(ab).latency, VDuration::from_cycles(9));
        assert_eq!(t.link(ba).bandwidth_bytes_per_cycle, 64);
        // Other links untouched.
        let bc = t.link_between(CoreId(1), CoreId(2)).unwrap();
        assert_eq!(t.link(bc).latency, DEFAULT_LINK_LATENCY);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_link_rejected() {
        let mut t = triangle();
        t.add_default_link(CoreId(0), CoreId(1));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut t = Topology::new(2);
        t.add_default_link(CoreId(0), CoreId(0));
    }

    #[test]
    fn regions_attach_and_read_back() {
        let mut t = triangle();
        assert_eq!(t.n_regions(), 0);
        assert_eq!(t.region_of(CoreId(0)), None);
        t.set_regions(vec![0, 0, 1]);
        assert_eq!(t.n_regions(), 2);
        assert_eq!(t.region_of(CoreId(1)), Some(0));
        assert_eq!(t.region_of(CoreId(2)), Some(1));
    }

    #[test]
    fn single_core_topology_is_connected() {
        let t = Topology::new(1);
        assert!(t.is_connected());
        assert_eq!(t.diameter_hops(), 0);
        assert_eq!(t.degree(CoreId(0)), 0);
    }
}
