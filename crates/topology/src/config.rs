//! Text configuration format for topologies.
//!
//! The paper specifies network topology "in a configuration file as an
//! adjacency matrix that gives the connections between the cores", with
//! per-link latency and bandwidth independently tunable. The format here is
//! line-oriented plain text:
//!
//! ```text
//! # comments start with '#'; blank lines are ignored
//! cores 4
//! default latency=1 bandwidth=128
//! matrix
//! 0 1 0 1
//! 1 0 1 0
//! 0 1 0 1
//! 1 0 1 0
//! # optional per-link overrides (applied to both directions):
//! link 0 1 latency=0.5 bandwidth=256
//! # extra links not present in the matrix may also be declared:
//! link 0 2 latency=4
//! ```
//!
//! Latencies are in cycles and may use the `.5` half-cycle granularity of
//! the simulator's tick; bandwidth is in bytes per cycle.

use crate::graph::{CoreId, Topology, DEFAULT_LINK_BANDWIDTH, DEFAULT_LINK_LATENCY};
use simany_time::{VDuration, TICKS_PER_CYCLE};
use std::fmt;

/// Error produced while parsing a topology configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number of the offending line (0 for file-level errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "topology config: {}", self.message)
        } else {
            write!(f, "topology config line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parse a latency expressed in cycles (integer or `.5` steps) into ticks.
fn parse_latency(s: &str, line: usize) -> Result<VDuration, ConfigError> {
    let val: f64 = s
        .parse()
        .map_err(|_| err(line, format!("invalid latency '{s}'")))?;
    if val < 0.0 || !val.is_finite() {
        return Err(err(line, format!("latency '{s}' must be non-negative")));
    }
    let ticks = val * TICKS_PER_CYCLE as f64;
    if (ticks - ticks.round()).abs() > 1e-9 {
        return Err(err(
            line,
            format!("latency '{s}' is not representable in half-cycle ticks"),
        ));
    }
    Ok(VDuration(ticks.round() as u64))
}

fn parse_kv(tok: &str, line: usize) -> Result<(&str, &str), ConfigError> {
    tok.split_once('=')
        .ok_or_else(|| err(line, format!("expected key=value, got '{tok}'")))
}

/// Parse a topology from the configuration text format.
pub fn parse_topology(text: &str) -> Result<Topology, ConfigError> {
    let mut n_cores: Option<u32> = None;
    let mut default_latency = DEFAULT_LINK_LATENCY;
    let mut default_bw = DEFAULT_LINK_BANDWIDTH;
    let mut topo: Option<Topology> = None;
    let mut lines = text.lines().enumerate().peekable();

    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let keyword = toks.next().unwrap();
        match keyword {
            "cores" => {
                let n: u32 = toks
                    .next()
                    .ok_or_else(|| err(lineno, "missing core count"))?
                    .parse()
                    .map_err(|_| err(lineno, "invalid core count"))?;
                if n == 0 {
                    return Err(err(lineno, "core count must be positive"));
                }
                n_cores = Some(n);
                topo = Some(Topology::new(n));
            }
            "default" => {
                for tok in toks {
                    let (k, v) = parse_kv(tok, lineno)?;
                    match k {
                        "latency" => default_latency = parse_latency(v, lineno)?,
                        "bandwidth" => {
                            default_bw = v.parse().map_err(|_| err(lineno, "invalid bandwidth"))?;
                            if default_bw == 0 {
                                return Err(err(lineno, "bandwidth must be non-zero"));
                            }
                        }
                        other => return Err(err(lineno, format!("unknown key '{other}'"))),
                    }
                }
            }
            "matrix" => {
                let n = n_cores.ok_or_else(|| err(lineno, "'matrix' before 'cores'"))? as usize;
                let t = topo.as_mut().unwrap();
                for row in 0..n {
                    let (ridx, raw_row) = lines
                        .next()
                        .ok_or_else(|| err(lineno, format!("matrix truncated at row {row}")))?;
                    let rno = ridx + 1;
                    let row_line = raw_row.split('#').next().unwrap_or("").trim();
                    let entries: Vec<&str> = row_line.split_whitespace().collect();
                    if entries.len() != n {
                        return Err(err(
                            rno,
                            format!("matrix row has {} entries, expected {n}", entries.len()),
                        ));
                    }
                    for (col, e) in entries.iter().enumerate() {
                        let bit: u8 = e
                            .parse()
                            .map_err(|_| err(rno, format!("invalid matrix entry '{e}'")))?;
                        match bit {
                            0 => {}
                            1 => {
                                if row == col {
                                    return Err(err(rno, "self-loop on matrix diagonal"));
                                }
                                let (a, b) = (CoreId(row as u32), CoreId(col as u32));
                                // The matrix of an undirected topology is
                                // symmetric; add each pair once.
                                if !t.are_neighbors(a, b) {
                                    t.add_directed_link(a, b, default_latency, default_bw);
                                }
                            }
                            _ => {
                                return Err(err(
                                    rno,
                                    format!("matrix entry must be 0 or 1, got '{e}'"),
                                ))
                            }
                        }
                    }
                }
            }
            "link" => {
                let t = topo
                    .as_mut()
                    .ok_or_else(|| err(lineno, "'link' before 'cores'"))?;
                let a: u32 = toks
                    .next()
                    .ok_or_else(|| err(lineno, "missing link endpoint"))?
                    .parse()
                    .map_err(|_| err(lineno, "invalid link endpoint"))?;
                let b: u32 = toks
                    .next()
                    .ok_or_else(|| err(lineno, "missing link endpoint"))?
                    .parse()
                    .map_err(|_| err(lineno, "invalid link endpoint"))?;
                let n = n_cores.unwrap();
                if a >= n || b >= n {
                    return Err(err(lineno, format!("link endpoint out of range ({a},{b})")));
                }
                if a == b {
                    return Err(err(lineno, "self-loop link"));
                }
                let mut latency = default_latency;
                let mut bw = default_bw;
                for tok in toks {
                    let (k, v) = parse_kv(tok, lineno)?;
                    match k {
                        "latency" => latency = parse_latency(v, lineno)?,
                        "bandwidth" => {
                            bw = v.parse().map_err(|_| err(lineno, "invalid bandwidth"))?;
                            if bw == 0 {
                                return Err(err(lineno, "bandwidth must be non-zero"));
                            }
                        }
                        other => return Err(err(lineno, format!("unknown key '{other}'"))),
                    }
                }
                let (a, b) = (CoreId(a), CoreId(b));
                if t.are_neighbors(a, b) {
                    t.set_link_props(a, b, latency, bw, true);
                } else {
                    t.add_link(a, b, latency, bw);
                }
            }
            other => return Err(err(lineno, format!("unknown keyword '{other}'"))),
        }
    }

    let topo = topo.ok_or_else(|| err(0, "missing 'cores' declaration"))?;
    if !topo.is_connected() {
        return Err(err(0, "topology is not connected"));
    }
    Ok(topo)
}

/// Serialize a topology back to the configuration format (matrix plus
/// overrides for links that differ from the most common latency/bandwidth).
pub fn format_topology(topo: &Topology) -> String {
    use std::collections::HashMap;
    use std::fmt::Write as _;
    let n = topo.n_cores();
    // Most common (latency, bandwidth) pair becomes the default.
    let mut counts: HashMap<(u64, u32), usize> = HashMap::new();
    for l in topo.links() {
        *counts
            .entry((l.latency.ticks(), l.bandwidth_bytes_per_cycle))
            .or_default() += 1;
    }
    let (&(def_lat, def_bw), _) = counts
        .iter()
        .max_by_key(|(k, v)| (**v, std::cmp::Reverse(k.0)))
        .unwrap_or((&(DEFAULT_LINK_LATENCY.ticks(), DEFAULT_LINK_BANDWIDTH), &0));

    let mut out = String::new();
    let _ = writeln!(out, "cores {n}");
    let _ = writeln!(
        out,
        "default latency={} bandwidth={def_bw}",
        def_lat as f64 / TICKS_PER_CYCLE as f64
    );
    let _ = writeln!(out, "matrix");
    for a in 0..n {
        let row: Vec<&str> = (0..n)
            .map(|b| {
                if topo.are_neighbors(CoreId(a), CoreId(b)) {
                    "1"
                } else {
                    "0"
                }
            })
            .collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    for l in topo.links() {
        if l.src < l.dst && (l.latency.ticks() != def_lat || l.bandwidth_bytes_per_cycle != def_bw)
        {
            let _ = writeln!(
                out,
                "link {} {} latency={} bandwidth={}",
                l.src.0,
                l.dst.0,
                l.latency.ticks() as f64 / TICKS_PER_CYCLE as f64,
                l.bandwidth_bytes_per_cycle
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{clustered_mesh, mesh_2d, ClusterParams};

    const SAMPLE: &str = "\
# a 4-core ring with one fast chord
cores 4
default latency=1 bandwidth=128
matrix
0 1 0 1
1 0 1 0
0 1 0 1
1 0 1 0
link 0 2 latency=0.5 bandwidth=256
";

    #[test]
    fn parse_sample() {
        let t = parse_topology(SAMPLE).unwrap();
        assert_eq!(t.n_cores(), 4);
        assert!(t.are_neighbors(CoreId(0), CoreId(2)));
        let chord = t.link_between(CoreId(0), CoreId(2)).unwrap();
        assert_eq!(t.link(chord).latency, VDuration::from_half_cycles(1));
        assert_eq!(t.link(chord).bandwidth_bytes_per_cycle, 256);
        let ringl = t.link_between(CoreId(0), CoreId(1)).unwrap();
        assert_eq!(t.link(ringl).latency, VDuration::from_cycles(1));
    }

    #[test]
    fn link_override_of_matrix_edge() {
        let cfg = "cores 2\nmatrix\n0 1\n1 0\nlink 0 1 latency=4\n";
        let t = parse_topology(cfg).unwrap();
        let l = t.link_between(CoreId(0), CoreId(1)).unwrap();
        assert_eq!(t.link(l).latency, VDuration::from_cycles(4));
        let r = t.link_between(CoreId(1), CoreId(0)).unwrap();
        assert_eq!(t.link(r).latency, VDuration::from_cycles(4));
    }

    #[test]
    fn round_trip_mesh() {
        let orig = mesh_2d(16);
        let text = format_topology(&orig);
        let parsed = parse_topology(&text).unwrap();
        assert_eq!(parsed.n_cores(), orig.n_cores());
        assert_eq!(parsed.n_links(), orig.n_links());
        for a in orig.cores() {
            for b in orig.cores() {
                assert_eq!(orig.are_neighbors(a, b), parsed.are_neighbors(a, b));
                if let Some(l) = orig.link_between(a, b) {
                    let p = parsed.link_between(a, b).unwrap();
                    assert_eq!(orig.link(l).latency, parsed.link(p).latency);
                }
            }
        }
    }

    #[test]
    fn round_trip_clustered() {
        let orig = clustered_mesh(16, ClusterParams::paper(4));
        let text = format_topology(&orig);
        let parsed = parse_topology(&text).unwrap();
        for a in orig.cores() {
            for b in orig.cores() {
                if let Some(l) = orig.link_between(a, b) {
                    let p = parsed.link_between(a, b).unwrap();
                    assert_eq!(orig.link(l).latency, parsed.link(p).latency, "{a}->{b}");
                }
            }
        }
    }

    #[test]
    fn error_cases() {
        assert!(parse_topology("").unwrap_err().message.contains("cores"));
        assert!(parse_topology("cores 0").is_err());
        assert!(parse_topology("matrix")
            .unwrap_err()
            .message
            .contains("before"));
        assert!(parse_topology("cores 2\nmatrix\n0 1\n").is_err()); // truncated
        assert!(parse_topology("cores 2\nmatrix\n0 2\n2 0\n").is_err()); // bad entry
        assert!(parse_topology("cores 2\nmatrix\n1 1\n1 1\n").is_err()); // diagonal
        assert!(parse_topology("cores 2\nlink 0 0\n").is_err()); // self loop
        assert!(parse_topology("cores 2\nlink 0 5\n").is_err()); // range
        assert!(parse_topology("cores 2\nmatrix\n0 1\n1 0\nlink 0 1 latency=0.3\n").is_err());
        assert!(parse_topology("cores 3\nmatrix\n0 1 0\n1 0 0\n0 0 0\n").is_err()); // disconnected
        assert!(parse_topology("bogus 3").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let cfg = "\n# hi\ncores 2\n\nmatrix # the matrix\n0 1 # row\n1 0\n";
        assert!(parse_topology(cfg).is_ok());
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_topology("cores 2\nmatrix\n0 1\n1 junk\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(format!("{e}").contains("line 4"));
    }
}
