//! Deterministic minimal-latency routing.
//!
//! Messages traverse the interconnect hop by hop; the network model charges
//! every traversed link (paper §II.A: "the sum of all delays induced by all
//! the components traversed is added to a core's virtual time"). Routes are
//! fixed, minimal-total-latency paths with deterministic tie-breaking
//! (lowest next-hop id), computed once per topology: this mirrors the
//! deterministic (dimension-ordered-like) routing of real meshes and keeps
//! simulations reproducible.

use crate::graph::{CoreId, LinkId, Topology};
use simany_time::VDuration;
use std::collections::BinaryHeap;

/// All-pairs next-hop routing table.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    n: u32,
    /// `next_hop[dst][src]` = link to take from `src` toward `dst`
    /// (`u32::MAX` encodes "src == dst").
    next_hop: Vec<Vec<u32>>,
    /// `dist[dst][src]` = total path latency in ticks.
    dist: Vec<Vec<u64>>,
    /// Hop counts, same layout.
    hops: Vec<Vec<u32>>,
}

impl RoutingTable {
    /// Build the table with one Dijkstra pass per destination, following
    /// reverse links (link latencies are symmetric per construction in the
    /// builders; for asymmetric topologies the route is minimal w.r.t. the
    /// forward direction because we relax over incoming links).
    pub fn build(topo: &Topology) -> Self {
        assert!(topo.is_connected(), "cannot route a disconnected topology");
        let n = topo.n_cores();
        let mut next_hop = Vec::with_capacity(n as usize);
        let mut dist = Vec::with_capacity(n as usize);
        let mut hops = Vec::with_capacity(n as usize);
        // Reverse adjacency: incoming (pred, link) pairs per core.
        let mut rev: Vec<Vec<(CoreId, LinkId)>> = vec![Vec::new(); n as usize];
        for (i, l) in topo.links().iter().enumerate() {
            rev[l.dst.index()].push((l.src, LinkId(i as u32)));
        }
        for dst in topo.cores() {
            let (nh, d, h) = dijkstra_to(topo, &rev, dst);
            next_hop.push(nh);
            dist.push(d);
            hops.push(h);
        }
        RoutingTable {
            n,
            next_hop,
            dist,
            hops,
        }
    }

    /// Rebuild the table while avoiding every link flagged in `dead`
    /// (indexed by link id). Unlike [`RoutingTable::build`] this accepts a
    /// disconnected residual graph: the second return value is `true` when
    /// at least one ordered pair of cores has no surviving route (the
    /// machine is partitioned). Use [`RoutingTable::reachable`] before
    /// walking a route on a table built this way.
    pub fn build_avoiding(topo: &Topology, dead: &[bool]) -> (Self, bool) {
        assert_eq!(
            dead.len(),
            topo.n_links() as usize,
            "dead-link mask must cover every link"
        );
        let n = topo.n_cores();
        let mut next_hop = Vec::with_capacity(n as usize);
        let mut dist = Vec::with_capacity(n as usize);
        let mut hops = Vec::with_capacity(n as usize);
        let mut rev: Vec<Vec<(CoreId, LinkId)>> = vec![Vec::new(); n as usize];
        for (i, l) in topo.links().iter().enumerate() {
            if !dead[i] {
                rev[l.dst.index()].push((l.src, LinkId(i as u32)));
            }
        }
        let mut partitioned = false;
        for dst in topo.cores() {
            let (nh, d, h) = dijkstra_to(topo, &rev, dst);
            partitioned |= d.contains(&u64::MAX);
            next_hop.push(nh);
            dist.push(d);
            hops.push(h);
        }
        (
            RoutingTable {
                n,
                next_hop,
                dist,
                hops,
            },
            partitioned,
        )
    }

    /// True iff a route from `src` to `dst` exists in this table (always
    /// true for tables built with [`RoutingTable::build`], which asserts
    /// connectivity; may be false for [`RoutingTable::build_avoiding`]).
    #[inline]
    pub fn reachable(&self, src: CoreId, dst: CoreId) -> bool {
        self.dist[dst.index()][src.index()] != u64::MAX
    }

    /// The link to take from `src` toward `dst`; `None` when `src == dst`.
    #[inline]
    pub fn next_link(&self, src: CoreId, dst: CoreId) -> Option<LinkId> {
        let v = self.next_hop[dst.index()][src.index()];
        if v == u32::MAX {
            None
        } else {
            Some(LinkId(v))
        }
    }

    /// Total path latency from `src` to `dst` (sum of link latencies; no
    /// contention or serialization).
    #[inline]
    pub fn path_latency(&self, src: CoreId, dst: CoreId) -> VDuration {
        VDuration(self.dist[dst.index()][src.index()])
    }

    /// Number of hops on the route from `src` to `dst`.
    #[inline]
    pub fn path_hops(&self, src: CoreId, dst: CoreId) -> u32 {
        self.hops[dst.index()][src.index()]
    }

    /// Materialize the full route as a list of links.
    pub fn route(&self, topo: &Topology, src: CoreId, dst: CoreId) -> Vec<LinkId> {
        let mut out = Vec::with_capacity(self.path_hops(src, dst) as usize);
        let mut cur = src;
        while cur != dst {
            let link = self.next_link(cur, dst).expect("route must make progress");
            out.push(link);
            cur = topo.link(link).dst;
        }
        out
    }

    /// Weighted diameter: the largest path latency between any two cores.
    pub fn weighted_diameter(&self) -> VDuration {
        let mut max = 0u64;
        for row in &self.dist {
            for &v in row {
                max = max.max(v);
            }
        }
        VDuration(max)
    }

    /// Number of cores covered by this table.
    pub fn n_cores(&self) -> u32 {
        self.n
    }
}

/// Largest core count for which [`Routes::for_topology`] materializes the
/// dense all-pairs [`RoutingTable`]. Above this, the O(n²) table (16 bytes
/// per ordered pair) stops being viable — a 4096-core machine would already
/// need ~270 MB — and routing switches to [`LazyRoutes`], which computes
/// per-destination rows on demand. Both modes answer every query
/// identically (same Dijkstra, same tie-breaking), so the threshold cannot
/// affect simulation results.
pub const DENSE_ROUTING_MAX: u32 = 2048;

/// Most recently used per-destination rows kept by [`LazyRoutes`]. Each row
/// is O(n); the cap bounds lazy-mode memory at `ROW_CACHE_CAP` rows.
const ROW_CACHE_CAP: usize = 8;

/// One per-destination routing row: for every source core, the outgoing
/// link toward the destination, the path latency and the hop count —
/// exactly one row of the dense [`RoutingTable`].
#[derive(Debug)]
struct RouteRow {
    next: Vec<u32>,
    dist: Vec<u64>,
    hops: Vec<u32>,
}

/// On-demand routing for topologies too large for the dense all-pairs
/// table: per-destination rows are computed with the *same* reverse-links
/// Dijkstra (and the same deterministic tie-breaking) as
/// [`RoutingTable::build`], then kept in a small MRU cache. Query results
/// are bit-identical to the dense table's.
#[derive(Debug)]
pub struct LazyRoutes {
    n: u32,
    /// Reverse adjacency: incoming `(pred, link)` pairs per core, shared by
    /// every row computation.
    rev: Vec<Vec<(CoreId, LinkId)>>,
    cache: std::sync::Mutex<RowCache>,
}

#[derive(Debug, Default)]
struct RowCache {
    rows: std::collections::HashMap<u32, std::sync::Arc<RouteRow>>,
    /// Insertion order for FIFO eviction.
    order: std::collections::VecDeque<u32>,
}

impl LazyRoutes {
    /// Prepare lazy routing for `topo` (builds only the reverse adjacency;
    /// no Dijkstra runs until a route is first queried).
    pub fn new(topo: &Topology) -> Self {
        assert!(topo.is_connected(), "cannot route a disconnected topology");
        let n = topo.n_cores();
        let mut rev: Vec<Vec<(CoreId, LinkId)>> = vec![Vec::new(); n as usize];
        for (i, l) in topo.links().iter().enumerate() {
            rev[l.dst.index()].push((l.src, LinkId(i as u32)));
        }
        LazyRoutes {
            n,
            rev,
            cache: std::sync::Mutex::new(RowCache::default()),
        }
    }

    fn row(&self, topo: &Topology, dst: CoreId) -> std::sync::Arc<RouteRow> {
        let mut cache = self.cache.lock().expect("route cache poisoned");
        if let Some(row) = cache.rows.get(&dst.0) {
            return std::sync::Arc::clone(row);
        }
        let (next, dist, hops) = dijkstra_to(topo, &self.rev, dst);
        let row = std::sync::Arc::new(RouteRow { next, dist, hops });
        if cache.order.len() >= ROW_CACHE_CAP {
            if let Some(evict) = cache.order.pop_front() {
                cache.rows.remove(&evict);
            }
        }
        cache.order.push_back(dst.0);
        cache.rows.insert(dst.0, std::sync::Arc::clone(&row));
        row
    }
}

/// Routing for a topology, in whichever representation its size calls for:
/// the dense all-pairs [`RoutingTable`] up to [`DENSE_ROUTING_MAX`] cores,
/// [`LazyRoutes`] beyond. Access queries through [`Routes::view`], which
/// pairs the representation with its topology.
#[derive(Debug)]
pub enum Routes {
    /// Dense all-pairs table (small machines).
    Dense(RoutingTable),
    /// On-demand per-destination rows (large machines).
    Lazy(LazyRoutes),
}

impl Routes {
    /// Pick the representation for `topo` by size. Both representations
    /// answer identically, so this choice is invisible to simulations.
    pub fn for_topology(topo: &Topology) -> Self {
        if topo.n_cores() <= DENSE_ROUTING_MAX {
            Routes::Dense(RoutingTable::build(topo))
        } else {
            Routes::Lazy(LazyRoutes::new(topo))
        }
    }

    /// A query view over these routes for `topo` (the topology they were
    /// built from).
    pub fn view<'a>(&'a self, topo: &'a Topology) -> RoutesView<'a> {
        match self {
            Routes::Dense(rt) => RoutesView {
                inner: ViewInner::Dense(rt),
            },
            Routes::Lazy(lz) => RoutesView {
                inner: ViewInner::Lazy(lz, topo),
            },
        }
    }
}

/// A borrowed query handle answering next-hop/latency/hops questions,
/// independent of the underlying representation. Obtained from
/// [`Routes::view`] or [`RoutesView::from_table`].
#[derive(Clone, Copy, Debug)]
pub struct RoutesView<'a> {
    inner: ViewInner<'a>,
}

#[derive(Clone, Copy, Debug)]
enum ViewInner<'a> {
    Dense(&'a RoutingTable),
    Lazy(&'a LazyRoutes, &'a Topology),
}

impl<'a> RoutesView<'a> {
    /// View a plain dense table (e.g. a fault epoch's rerouted table).
    pub fn from_table(rt: &'a RoutingTable) -> Self {
        RoutesView {
            inner: ViewInner::Dense(rt),
        }
    }

    /// The link to take from `src` toward `dst`; `None` when `src == dst`.
    pub fn next_link(&self, src: CoreId, dst: CoreId) -> Option<LinkId> {
        match self.inner {
            ViewInner::Dense(rt) => rt.next_link(src, dst),
            ViewInner::Lazy(lz, topo) => {
                if src == dst {
                    return None;
                }
                let v = lz.row(topo, dst).next[src.index()];
                if v == u32::MAX {
                    None
                } else {
                    Some(LinkId(v))
                }
            }
        }
    }

    /// Total path latency from `src` to `dst`.
    pub fn path_latency(&self, src: CoreId, dst: CoreId) -> VDuration {
        match self.inner {
            ViewInner::Dense(rt) => rt.path_latency(src, dst),
            ViewInner::Lazy(lz, topo) => VDuration(lz.row(topo, dst).dist[src.index()]),
        }
    }

    /// Number of hops on the route from `src` to `dst`.
    pub fn path_hops(&self, src: CoreId, dst: CoreId) -> u32 {
        match self.inner {
            ViewInner::Dense(rt) => rt.path_hops(src, dst),
            ViewInner::Lazy(lz, topo) => lz.row(topo, dst).hops[src.index()],
        }
    }

    /// True iff a route from `src` to `dst` exists.
    pub fn reachable(&self, src: CoreId, dst: CoreId) -> bool {
        match self.inner {
            ViewInner::Dense(rt) => rt.reachable(src, dst),
            ViewInner::Lazy(lz, topo) => lz.row(topo, dst).dist[src.index()] != u64::MAX,
        }
    }

    /// Number of cores covered.
    pub fn n_cores(&self) -> u32 {
        match self.inner {
            ViewInner::Dense(rt) => rt.n_cores(),
            ViewInner::Lazy(lz, _) => lz.n,
        }
    }
}

/// Dijkstra from every core *to* `dst` over incoming links. Returns, per
/// source core: the outgoing link toward `dst`, the distance in ticks, and
/// the hop count. Ties broken by (hops, next-hop link id) for determinism.
fn dijkstra_to(
    topo: &Topology,
    rev: &[Vec<(CoreId, LinkId)>],
    dst: CoreId,
) -> (Vec<u32>, Vec<u64>, Vec<u32>) {
    let n = topo.n_cores() as usize;
    let mut dist = vec![u64::MAX; n];
    let mut hops = vec![u32::MAX; n];
    let mut next = vec![u32::MAX; n];
    dist[dst.index()] = 0;
    hops[dst.index()] = 0;

    // Max-heap of Reverse((dist, hops, core)).
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32, u32)>> = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0, 0, dst.0)));
    while let Some(std::cmp::Reverse((d, h, c))) = heap.pop() {
        let c = CoreId(c);
        if d > dist[c.index()] || (d == dist[c.index()] && h > hops[c.index()]) {
            continue;
        }
        for &(pred, link) in &rev[c.index()] {
            let w = topo.link(link).latency.ticks();
            let nd = d + w;
            let nh = h + 1;
            let better = nd < dist[pred.index()]
                || (nd == dist[pred.index()] && nh < hops[pred.index()])
                || (nd == dist[pred.index()]
                    && nh == hops[pred.index()]
                    && link.0 < next[pred.index()]);
            if better {
                dist[pred.index()] = nd;
                hops[pred.index()] = nh;
                next[pred.index()] = link.0;
                heap.push(std::cmp::Reverse((nd, nh, pred.0)));
            }
        }
    }
    (next, dist, hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{clustered_mesh, mesh_2d, ring, ClusterParams};

    #[test]
    fn mesh_routes_are_minimal() {
        let topo = mesh_2d(16); // 4x4
        let rt = RoutingTable::build(&topo);
        // Opposite corners: 3+3 hops, 6 cycles at 1 cy/link.
        assert_eq!(rt.path_hops(CoreId(0), CoreId(15)), 6);
        assert_eq!(
            rt.path_latency(CoreId(0), CoreId(15)),
            VDuration::from_cycles(6)
        );
        assert_eq!(rt.path_hops(CoreId(5), CoreId(5)), 0);
        assert!(rt.next_link(CoreId(5), CoreId(5)).is_none());
    }

    #[test]
    fn route_materialization_is_valid() {
        let topo = mesh_2d(64);
        let rt = RoutingTable::build(&topo);
        for (s, d) in [(0u32, 63u32), (7, 56), (12, 12), (1, 62)] {
            let route = rt.route(&topo, CoreId(s), CoreId(d));
            assert_eq!(route.len() as u32, rt.path_hops(CoreId(s), CoreId(d)));
            let mut cur = CoreId(s);
            let mut total = VDuration::ZERO;
            for link in route {
                let props = topo.link(link);
                assert_eq!(props.src, cur, "route must chain");
                cur = props.dst;
                total += props.latency;
            }
            assert_eq!(cur, CoreId(d), "route must reach destination");
            assert_eq!(total, rt.path_latency(CoreId(s), CoreId(d)));
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let topo = mesh_2d(36);
        let a = RoutingTable::build(&topo);
        let b = RoutingTable::build(&topo);
        for s in topo.cores() {
            for d in topo.cores() {
                assert_eq!(a.next_link(s, d), b.next_link(s, d));
            }
        }
    }

    #[test]
    fn clustered_routing_prefers_low_latency() {
        // On a clustered mesh, a path through the cluster interior (0.5
        // cy/link) can beat a hop-shorter path crossing boundaries (4 cy).
        let topo = clustered_mesh(64, ClusterParams::paper(4));
        let rt = RoutingTable::build(&topo);
        // Within one 4x4 tile: corner (0,0) to (3,3) = 6 fast hops = 3 cy.
        let inside = rt.path_latency(CoreId(0), CoreId(27)); // (3,3) = 3*8+3
        assert_eq!(inside, VDuration::from_cycles(3));
        // Crossing: (0,0) to (4,0) requires exactly one slow link plus three
        // fast hops along the row: 3 * 0.5 + 4 = 5.5 cycles.
        let crossing = rt.path_latency(CoreId(0), CoreId(4));
        assert_eq!(crossing, VDuration::from_half_cycles(11));
    }

    #[test]
    fn weighted_diameter_mesh() {
        let topo = mesh_2d(16);
        let rt = RoutingTable::build(&topo);
        assert_eq!(rt.weighted_diameter(), VDuration::from_cycles(6));
    }

    #[test]
    fn ring_routes_take_short_side() {
        let topo = ring(8);
        let rt = RoutingTable::build(&topo);
        assert_eq!(rt.path_hops(CoreId(0), CoreId(3)), 3);
        assert_eq!(rt.path_hops(CoreId(0), CoreId(5)), 3); // around the back
        assert_eq!(rt.path_hops(CoreId(0), CoreId(4)), 4);
    }

    #[test]
    fn build_avoiding_reroutes_around_dead_links() {
        let topo = mesh_2d(16); // 4x4
        let full = RoutingTable::build(&topo);
        // Kill both directions of the 0<->1 link: 0 -> 1 must detour.
        let mut dead = vec![false; topo.n_links() as usize];
        dead[topo.link_between(CoreId(0), CoreId(1)).unwrap().index()] = true;
        dead[topo.link_between(CoreId(1), CoreId(0)).unwrap().index()] = true;
        let (rt, partitioned) = RoutingTable::build_avoiding(&topo, &dead);
        assert!(!partitioned, "a mesh survives one dead link");
        assert!(rt.reachable(CoreId(0), CoreId(1)));
        assert_eq!(rt.path_hops(CoreId(0), CoreId(1)), 3); // 0-4-5-1
        assert!(rt.path_hops(CoreId(0), CoreId(1)) > full.path_hops(CoreId(0), CoreId(1)));
        for link in rt.route(&topo, CoreId(0), CoreId(1)) {
            assert!(!dead[link.index()], "route over a dead link");
        }
    }

    #[test]
    fn build_avoiding_reports_partition() {
        // A 4-ring with both directions of two opposite edges cut splits in
        // two.
        let topo = ring(4);
        let mut dead = vec![false; topo.n_links() as usize];
        for (u, v) in [(0u32, 1u32), (2, 3)] {
            dead[topo.link_between(CoreId(u), CoreId(v)).unwrap().index()] = true;
            dead[topo.link_between(CoreId(v), CoreId(u)).unwrap().index()] = true;
        }
        let (rt, partitioned) = RoutingTable::build_avoiding(&topo, &dead);
        assert!(partitioned);
        assert!(!rt.reachable(CoreId(0), CoreId(1)));
        assert!(rt.reachable(CoreId(1), CoreId(2)));
        assert!(rt.reachable(CoreId(0), CoreId(0)));
    }

    #[test]
    fn build_avoiding_nothing_matches_build() {
        let topo = mesh_2d(16);
        let full = RoutingTable::build(&topo);
        let dead = vec![false; topo.n_links() as usize];
        let (rt, partitioned) = RoutingTable::build_avoiding(&topo, &dead);
        assert!(!partitioned);
        for s in topo.cores() {
            for d in topo.cores() {
                assert_eq!(full.next_link(s, d), rt.next_link(s, d));
                assert!(rt.reachable(s, d));
            }
        }
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_topology_rejected() {
        let mut t = Topology::new(3);
        t.add_default_link(CoreId(0), CoreId(1));
        let _ = RoutingTable::build(&t);
    }

    #[test]
    fn lazy_routes_match_dense_bit_exactly() {
        let topo = clustered_mesh(64, ClusterParams::paper(4));
        let dense = RoutingTable::build(&topo);
        let lazy = Routes::Lazy(LazyRoutes::new(&topo));
        let view = lazy.view(&topo);
        for s in topo.cores() {
            for d in topo.cores() {
                assert_eq!(view.next_link(s, d), dense.next_link(s, d));
                assert_eq!(view.path_latency(s, d), dense.path_latency(s, d));
                assert_eq!(view.path_hops(s, d), dense.path_hops(s, d));
                assert!(view.reachable(s, d));
            }
        }
    }

    #[test]
    fn lazy_row_cache_evicts_and_recomputes_consistently() {
        let topo = mesh_2d(64);
        let dense = RoutingTable::build(&topo);
        let lazy = Routes::for_topology(&topo); // small: dense
        assert!(matches!(lazy, Routes::Dense(_)));
        let lz = LazyRoutes::new(&topo);
        let routes = Routes::Lazy(lz);
        let view = routes.view(&topo);
        // Touch far more destinations than the cache cap, twice.
        for _ in 0..2 {
            for d in topo.cores() {
                assert_eq!(
                    view.path_latency(CoreId(0), d),
                    dense.path_latency(CoreId(0), d)
                );
            }
        }
    }

    #[test]
    fn for_topology_switches_representation_by_size() {
        assert!(matches!(
            Routes::for_topology(&mesh_2d(16)),
            Routes::Dense(_)
        ));
        assert!(matches!(
            Routes::for_topology(&ring(DENSE_ROUTING_MAX + 1)),
            Routes::Lazy(_)
        ));
    }
}
