#![warn(missing_docs)]

//! # simany-topology — interconnect topologies for SiMany
//!
//! SiMany treats the on-chip network as a first-class, fully configurable
//! object: the topology is "specified in a configuration file as an adjacency
//! matrix", and "the latency and bandwidth of individual links are also
//! independently tunable" (paper §III, *Architecture Variability*). This
//! crate provides:
//!
//! * [`Topology`] — a directed-link graph over cores with per-link latency
//!   and bandwidth ([`graph`]).
//! * Builders for the architectures the paper explores — uniform 2D meshes,
//!   clustered meshes, plus extras (torus, ring, star, hypercube,
//!   fully-connected) ([`builders`]).
//! * Deterministic minimal-latency routing tables and graph metrics such as
//!   the diameter, which bounds the global virtual-time drift
//!   (`diameter × T`) ([`routing`]).
//! * A small text configuration format for adjacency matrices with link
//!   overrides ([`config`]).
//! * A deterministic BFS/strip partitioner splitting the core set into
//!   contiguous tiles for the engine's parallel host execution
//!   ([`partition`]).

pub mod builders;
pub mod config;
pub mod graph;
pub mod partition;
pub mod routing;

pub use builders::{
    chiplet_mesh, cluster_of_clusters, clustered_mesh, fully_connected, hypercube, mesh_2d,
    mesh_3d, ring, star, torus_2d, ChipletParams, ClusterParams, HierarchyParams,
};
pub use config::{format_topology, parse_topology, ConfigError};
pub use graph::{CoreId, LinkId, LinkProps, Topology};
pub use partition::{partition_bfs, Partition};
pub use routing::{LazyRoutes, Routes, RoutesView, RoutingTable, DENSE_ROUTING_MAX};
