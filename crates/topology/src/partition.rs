//! Topology partitioning for parallel host execution.
//!
//! The engine's parallel mode (see `simany-core`) assigns each *tile* — a
//! contiguous region of the interconnect — to a dedicated host worker and
//! lets at most one activity per tile execute concurrently. Contiguity
//! matters: spatial synchronization is purely local, so cores deep inside a
//! tile interact only with cores of the same tile, and cross-tile effects
//! are confined to the tile boundary.
//!
//! The partitioner cuts a BFS order of the adjacency into equal-size
//! chunks. BFS from core 0 keeps each chunk connected on meshes and tori
//! (a strip partition), degrades gracefully on irregular graphs, and is
//! fully deterministic: neighbor lists are sorted, so the visit order — and
//! therefore the partition — depends only on the topology and the tile
//! count.

use crate::graph::{CoreId, Topology};
use std::collections::VecDeque;

/// A partition of a topology's cores into `n_tiles` contiguous tiles.
#[derive(Clone, Debug)]
pub struct Partition {
    tile_of: Vec<u32>,
    tiles: Vec<Vec<CoreId>>,
    boundary: Vec<bool>,
}

impl Partition {
    /// Number of tiles.
    pub fn n_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Tile index of `core`.
    pub fn tile_of(&self, core: CoreId) -> usize {
        self.tile_of[core.index()] as usize
    }

    /// The cores of tile `t`, in BFS order.
    pub fn tile(&self, t: usize) -> &[CoreId] {
        &self.tiles[t]
    }

    /// True iff `core` has a topological neighbor in a different tile.
    ///
    /// O(1): the partitioner precomputes a boundary bitmap, so the hot
    /// paths of the parallel engine (per-message tile routing, publish
    /// gating) never rescan adjacency lists. The `topo` argument is kept
    /// for API stability and consistency checking in debug builds.
    pub fn is_boundary(&self, topo: &Topology, core: CoreId) -> bool {
        debug_assert_eq!(
            self.boundary[core.index()],
            topo.neighbors(core)
                .iter()
                .any(|&(n, _)| self.tile_of[n.index()] != self.tile_of[core.index()]),
            "boundary bitmap out of sync with the topology"
        );
        let _ = topo;
        self.boundary[core.index()]
    }

    /// Number of boundary cores (cores with a neighbor in another tile) —
    /// the surface area the parallel engine's cross-tile machinery pays
    /// for. Interior cores take none of the phase-B replay cost.
    pub fn boundary_count(&self) -> usize {
        self.boundary.iter().filter(|&&b| b).count()
    }
}

/// Partition `topo` into (at most) `n_tiles` contiguous tiles by cutting a
/// BFS order into balanced chunks. `n_tiles` is clamped to the core count;
/// requesting zero tiles yields one. Tile sizes differ by at most one.
/// Disconnected topologies are handled by restarting the BFS from the
/// lowest-numbered unvisited core.
pub fn partition_bfs(topo: &Topology, n_tiles: usize) -> Partition {
    let n = topo.n_cores() as usize;
    let k = n_tiles.clamp(1, n.max(1));
    let mut order: Vec<CoreId> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        queue.push_back(CoreId(start as u32));
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for &(m, _) in topo.neighbors(c) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    queue.push_back(m);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    let mut tile_of = vec![0u32; n];
    let mut tiles = Vec::with_capacity(k);
    for t in 0..k {
        // Balanced chunk boundaries: floor(i*n/k) splits any n into k
        // parts whose sizes differ by at most one.
        let lo = t * n / k;
        let hi = (t + 1) * n / k;
        let chunk: Vec<CoreId> = order[lo..hi].to_vec();
        for &c in &chunk {
            tile_of[c.index()] = t as u32;
        }
        tiles.push(chunk);
    }
    let boundary: Vec<bool> = (0..n)
        .map(|c| {
            let t = tile_of[c];
            topo.neighbors(CoreId(c as u32))
                .iter()
                .any(|&(m, _)| tile_of[m.index()] != t)
        })
        .collect();
    Partition {
        tile_of,
        tiles,
        boundary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{mesh_2d, ring};

    #[test]
    fn covers_every_core_exactly_once() {
        let topo = mesh_2d(64);
        let p = partition_bfs(&topo, 4);
        let mut count = vec![0u32; 64];
        for t in 0..p.n_tiles() {
            for &c in p.tile(t) {
                count[c.index()] += 1;
                assert_eq!(p.tile_of(c), t);
            }
        }
        assert!(count.iter().all(|&x| x == 1));
    }

    #[test]
    fn balanced_within_one() {
        for (n, k) in [(64usize, 3usize), (64, 7), (10, 4), (5, 8)] {
            let topo = ring(n as u32);
            let p = partition_bfs(&topo, k);
            let sizes: Vec<usize> = (0..p.n_tiles()).map(|t| p.tile(t).len()).collect();
            let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced tiles: {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn clamps_tile_count() {
        let topo = ring(4);
        assert_eq!(partition_bfs(&topo, 0).n_tiles(), 1);
        assert_eq!(partition_bfs(&topo, 100).n_tiles(), 4);
    }

    #[test]
    fn deterministic() {
        let topo = mesh_2d(256);
        let a = partition_bfs(&topo, 6);
        let b = partition_bfs(&topo, 6);
        for c in 0..256 {
            assert_eq!(a.tile_of(CoreId(c)), b.tile_of(CoreId(c)));
        }
    }

    #[test]
    fn boundary_detection() {
        let topo = ring(8);
        let p = partition_bfs(&topo, 2);
        let boundary: Vec<bool> = (0..8).map(|c| p.is_boundary(&topo, CoreId(c))).collect();
        // A 2-tile ring split has exactly two cut edges = four boundary cores.
        assert_eq!(boundary.iter().filter(|&&b| b).count(), 4);
        assert_eq!(p.boundary_count(), 4);
    }

    #[test]
    fn single_tile_has_no_boundary() {
        let topo = mesh_2d(16);
        let p = partition_bfs(&topo, 1);
        assert_eq!(p.boundary_count(), 0);
        for c in 0..16 {
            assert!(!p.is_boundary(&topo, CoreId(c)));
        }
    }
}
