//! Topology partitioning for parallel host execution.
//!
//! The engine's parallel mode (see `simany-core`) assigns each *tile* — a
//! contiguous region of the interconnect — to a dedicated host worker and
//! lets at most one activity per tile execute concurrently. Contiguity
//! matters: spatial synchronization is purely local, so cores deep inside a
//! tile interact only with cores of the same tile, and cross-tile effects
//! are confined to the tile boundary.
//!
//! The partitioner cuts a BFS order of the adjacency into equal-size
//! chunks. BFS from core 0 keeps each chunk connected on meshes and tori
//! (a strip partition), degrades gracefully on irregular graphs, and is
//! fully deterministic: neighbor lists are sorted, so the visit order — and
//! therefore the partition — depends only on the topology and the tile
//! count.

use crate::graph::{CoreId, Topology};
use std::collections::VecDeque;

/// A partition of a topology's cores into `n_tiles` contiguous tiles.
#[derive(Clone, Debug)]
pub struct Partition {
    tile_of: Vec<u32>,
    tiles: Vec<Vec<CoreId>>,
    boundary: Vec<bool>,
}

impl Partition {
    /// Number of tiles.
    pub fn n_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Tile index of `core`.
    pub fn tile_of(&self, core: CoreId) -> usize {
        self.tile_of[core.index()] as usize
    }

    /// The cores of tile `t`, in BFS order.
    pub fn tile(&self, t: usize) -> &[CoreId] {
        &self.tiles[t]
    }

    /// True iff `core` has a topological neighbor in a different tile.
    ///
    /// O(1): the partitioner precomputes a boundary bitmap, so the hot
    /// paths of the parallel engine (per-message tile routing, publish
    /// gating) never rescan adjacency lists. The `topo` argument is kept
    /// for API stability and consistency checking in debug builds.
    pub fn is_boundary(&self, topo: &Topology, core: CoreId) -> bool {
        debug_assert_eq!(
            self.boundary[core.index()],
            topo.neighbors(core)
                .iter()
                .any(|&(n, _)| self.tile_of[n.index()] != self.tile_of[core.index()]),
            "boundary bitmap out of sync with the topology"
        );
        let _ = topo;
        self.boundary[core.index()]
    }

    /// Number of boundary cores (cores with a neighbor in another tile) —
    /// the surface area the parallel engine's cross-tile machinery pays
    /// for. Interior cores take none of the phase-B replay cost.
    pub fn boundary_count(&self) -> usize {
        self.boundary.iter().filter(|&&b| b).count()
    }
}

/// Partition `topo` into (at most) `n_tiles` contiguous tiles by cutting a
/// BFS order into balanced chunks. `n_tiles` is clamped to the core count;
/// requesting zero tiles yields one. Tile sizes differ by at most one.
/// Disconnected topologies are handled by restarting the BFS from the
/// lowest-numbered unvisited core.
///
/// When the topology carries region metadata (see
/// [`Topology::set_regions`]) and more than one tile is requested, the
/// partition is region-aware: with `n_tiles >= n_regions` every tile lies
/// entirely inside one region (tiles never straddle a chiplet boundary —
/// regions are split internally when they get several tiles); with fewer
/// tiles than regions, whole regions are packed so cuts still fall on
/// region boundaries. Region-free topologies partition exactly as before.
pub fn partition_bfs(topo: &Topology, n_tiles: usize) -> Partition {
    let n = topo.n_cores() as usize;
    let k = n_tiles.clamp(1, n.max(1));
    if topo.n_regions() > 1 && k > 1 {
        return partition_regions(topo, k);
    }
    let order = bfs_order(topo, |_| true);
    let mut tile_of = vec![0u32; n];
    let mut tiles = Vec::with_capacity(k);
    for t in 0..k {
        // Balanced chunk boundaries: floor(i*n/k) splits any n into k
        // parts whose sizes differ by at most one.
        let lo = t * n / k;
        let hi = (t + 1) * n / k;
        let chunk: Vec<CoreId> = order[lo..hi].to_vec();
        for &c in &chunk {
            tile_of[c.index()] = t as u32;
        }
        tiles.push(chunk);
    }
    finish(topo, tile_of, tiles)
}

/// BFS visit order over the cores accepted by `keep`, restarting from the
/// lowest-numbered unvisited accepted core (handles disconnected graphs and
/// region-restricted traversals alike). Fully deterministic: neighbor lists
/// are sorted.
fn bfs_order(topo: &Topology, keep: impl Fn(CoreId) -> bool) -> Vec<CoreId> {
    let n = topo.n_cores() as usize;
    let mut order: Vec<CoreId> = Vec::new();
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        let s = CoreId(start as u32);
        if seen[start] || !keep(s) {
            continue;
        }
        seen[start] = true;
        queue.push_back(s);
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for &(m, _) in topo.neighbors(c) {
                if !seen[m.index()] && keep(m) {
                    seen[m.index()] = true;
                    queue.push_back(m);
                }
            }
        }
    }
    order
}

/// Region-aware partition: BFS orders are computed *within* each region, so
/// no traversal ever crosses a chiplet boundary; tiles are then allocated
/// to regions (largest-remainder shares when `k >= n_regions`, whole-region
/// packing otherwise) and each region's order is chunked independently.
fn partition_regions(topo: &Topology, k: usize) -> Partition {
    let n = topo.n_cores() as usize;
    let r = topo.n_regions() as usize;
    let orders: Vec<Vec<CoreId>> = (0..r)
        .map(|reg| bfs_order(topo, |c| topo.region_of(c) == Some(reg as u32)))
        .collect();
    debug_assert_eq!(orders.iter().map(Vec::len).sum::<usize>(), n);
    let mut tile_of = vec![0u32; n];
    let mut tiles: Vec<Vec<CoreId>> = Vec::new();
    if k >= r {
        // Largest-remainder tile shares, at least one tile per region.
        let mut share: Vec<usize> = orders.iter().map(|o| k * o.len() / n).collect();
        for s in share.iter_mut() {
            *s = (*s).max(1);
        }
        // Distribute (or claw back) the difference deterministically by
        // fractional remainder, region id breaking ties.
        let mut total: usize = share.iter().sum();
        let mut by_rem: Vec<usize> = (0..r).collect();
        by_rem.sort_by_key(|&reg| {
            let rem = (k * orders[reg].len()) % n;
            (std::cmp::Reverse(rem), reg)
        });
        let mut i = 0;
        while total < k {
            let reg = by_rem[i % r];
            share[reg] += 1;
            total += 1;
            i += 1;
        }
        i = 0;
        while total > k {
            let reg = by_rem[r - 1 - (i % r)];
            // Never drop a region to zero tiles, and never give a region
            // more tiles than cores.
            if share[reg] > 1 {
                share[reg] -= 1;
                total -= 1;
            }
            i += 1;
        }
        for (reg, order) in orders.iter().enumerate() {
            let s = share[reg].min(order.len().max(1));
            for t in 0..s {
                let lo = t * order.len() / s;
                let hi = (t + 1) * order.len() / s;
                let chunk: Vec<CoreId> = order[lo..hi].to_vec();
                for &c in &chunk {
                    tile_of[c.index()] = tiles.len() as u32;
                }
                tiles.push(chunk);
            }
        }
    } else {
        // Fewer tiles than regions: pack whole regions, cutting the region
        // sequence at balanced cumulative-size boundaries.
        let mut start = 0usize; // cumulative cores already assigned
        let mut cur: Vec<CoreId> = Vec::new();
        let mut cur_tile = 0usize;
        for order in orders.iter() {
            // The tile that owns this region: the chunk whose balanced
            // range [t*n/k, (t+1)*n/k) contains the region's start.
            let t = (start * k / n).min(k - 1);
            if t != cur_tile && !cur.is_empty() {
                for &c in &cur {
                    tile_of[c.index()] = tiles.len() as u32;
                }
                tiles.push(std::mem::take(&mut cur));
            }
            cur_tile = t;
            cur.extend_from_slice(order);
            start += order.len();
        }
        if !cur.is_empty() {
            for &c in &cur {
                tile_of[c.index()] = tiles.len() as u32;
            }
            tiles.push(cur);
        }
    }
    finish(topo, tile_of, tiles)
}

fn finish(topo: &Topology, tile_of: Vec<u32>, tiles: Vec<Vec<CoreId>>) -> Partition {
    let n = topo.n_cores() as usize;
    let boundary: Vec<bool> = (0..n)
        .map(|c| {
            let t = tile_of[c];
            topo.neighbors(CoreId(c as u32))
                .iter()
                .any(|&(m, _)| tile_of[m.index()] != t)
        })
        .collect();
    Partition {
        tile_of,
        tiles,
        boundary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{mesh_2d, ring};

    #[test]
    fn covers_every_core_exactly_once() {
        let topo = mesh_2d(64);
        let p = partition_bfs(&topo, 4);
        let mut count = vec![0u32; 64];
        for t in 0..p.n_tiles() {
            for &c in p.tile(t) {
                count[c.index()] += 1;
                assert_eq!(p.tile_of(c), t);
            }
        }
        assert!(count.iter().all(|&x| x == 1));
    }

    #[test]
    fn balanced_within_one() {
        for (n, k) in [(64usize, 3usize), (64, 7), (10, 4), (5, 8)] {
            let topo = ring(n as u32);
            let p = partition_bfs(&topo, k);
            let sizes: Vec<usize> = (0..p.n_tiles()).map(|t| p.tile(t).len()).collect();
            let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced tiles: {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn clamps_tile_count() {
        let topo = ring(4);
        assert_eq!(partition_bfs(&topo, 0).n_tiles(), 1);
        assert_eq!(partition_bfs(&topo, 100).n_tiles(), 4);
    }

    #[test]
    fn deterministic() {
        let topo = mesh_2d(256);
        let a = partition_bfs(&topo, 6);
        let b = partition_bfs(&topo, 6);
        for c in 0..256 {
            assert_eq!(a.tile_of(CoreId(c)), b.tile_of(CoreId(c)));
        }
    }

    #[test]
    fn boundary_detection() {
        let topo = ring(8);
        let p = partition_bfs(&topo, 2);
        let boundary: Vec<bool> = (0..8).map(|c| p.is_boundary(&topo, CoreId(c))).collect();
        // A 2-tile ring split has exactly two cut edges = four boundary cores.
        assert_eq!(boundary.iter().filter(|&&b| b).count(), 4);
        assert_eq!(p.boundary_count(), 4);
    }

    #[test]
    fn tiles_never_straddle_chiplet_boundaries() {
        use crate::builders::{chiplet_mesh, ChipletParams};
        let topo = chiplet_mesh(2, 2, 4, 4, ChipletParams::default());
        for k in [4usize, 5, 8, 16] {
            let p = partition_bfs(&topo, k);
            let mut count = vec![0u32; 64];
            for t in 0..p.n_tiles() {
                let regions: std::collections::BTreeSet<_> = p
                    .tile(t)
                    .iter()
                    .map(|&c| topo.region_of(c).unwrap())
                    .collect();
                assert_eq!(regions.len(), 1, "tile {t} straddles chiplets (k={k})");
                for &c in p.tile(t) {
                    count[c.index()] += 1;
                }
            }
            assert!(count.iter().all(|&x| x == 1), "not a partition (k={k})");
        }
    }

    #[test]
    fn fewer_tiles_than_regions_pack_whole_regions() {
        use crate::builders::{chiplet_mesh, ChipletParams};
        let topo = chiplet_mesh(2, 2, 4, 4, ChipletParams::default());
        let p = partition_bfs(&topo, 2);
        // Every region must live entirely inside one tile.
        for reg in 0..topo.n_regions() {
            let tiles: std::collections::BTreeSet<_> = topo
                .cores()
                .filter(|&c| topo.region_of(c) == Some(reg))
                .map(|c| p.tile_of(c))
                .collect();
            assert_eq!(tiles.len(), 1, "region {reg} split across tiles");
        }
        let total: usize = (0..p.n_tiles()).map(|t| p.tile(t).len()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn region_tiles_balanced_and_deterministic() {
        use crate::builders::{chiplet_mesh, ChipletParams};
        let topo = chiplet_mesh(2, 2, 16, 16, ChipletParams::default());
        let p = partition_bfs(&topo, 8);
        assert_eq!(p.n_tiles(), 8);
        let sizes: Vec<usize> = (0..8).map(|t| p.tile(t).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1024);
        assert!(sizes.iter().all(|&s| s == 128), "unbalanced: {sizes:?}");
        let q = partition_bfs(&topo, 8);
        for c in topo.cores() {
            assert_eq!(p.tile_of(c), q.tile_of(c));
        }
    }

    #[test]
    fn single_tile_has_no_boundary() {
        let topo = mesh_2d(16);
        let p = partition_bfs(&topo, 1);
        assert_eq!(p.boundary_count(), 0);
        for c in 0..16 {
            assert!(!p.is_boundary(&topo, CoreId(c)));
        }
    }
}
