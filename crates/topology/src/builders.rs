//! Ready-made topology shapes.
//!
//! The paper's experiments use uniform 2D meshes of 8, 64, 256 and 1024
//! cores, clustered variants with 4 or 8 clusters, and polymorphic meshes
//! (which reuse the mesh shape and differ only in per-core speed, see
//! `simany_time::CoreSpeed`). A handful of extra classic shapes (torus,
//! ring, star, hypercube, fully-connected) round out the exploration space —
//! the paper stresses that "SiMany can handle arbitrary network
//! organizations".

use crate::graph::{CoreId, Topology, DEFAULT_LINK_BANDWIDTH, DEFAULT_LINK_LATENCY};
use simany_time::VDuration;

/// Nearly square factorization of `n`: `(w, h)` with `w * h == n` and
/// `w >= h`, `w - h` minimal. Used to lay out `n`-core meshes even when `n`
/// is not a perfect square (e.g. 8 cores -> 4×2).
pub fn mesh_dims(n: u32) -> (u32, u32) {
    assert!(n > 0);
    let mut best = (n, 1);
    let mut h = 1;
    while h * h <= n {
        if n.is_multiple_of(h) {
            best = (n / h, h);
        }
        h += 1;
    }
    best
}

/// Uniform 2D mesh of `n` cores with default link parameters (1-cycle
/// latency, 128 B/cy). `n` is factored into the most-square grid.
pub fn mesh_2d(n: u32) -> Topology {
    mesh_2d_with(n, DEFAULT_LINK_LATENCY, DEFAULT_LINK_BANDWIDTH)
}

/// Uniform 2D mesh with explicit link parameters.
pub fn mesh_2d_with(n: u32, latency: VDuration, bandwidth: u32) -> Topology {
    let (w, h) = mesh_dims(n);
    let mut t = Topology::new(n);
    let id = |x: u32, y: u32| CoreId(y * w + x);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                t.add_link(id(x, y), id(x + 1, y), latency, bandwidth);
            }
            if y + 1 < h {
                t.add_link(id(x, y), id(x, y + 1), latency, bandwidth);
            }
        }
    }
    t
}

/// 2D torus (mesh with wrap-around links).
pub fn torus_2d(n: u32) -> Topology {
    let (w, h) = mesh_dims(n);
    let mut t = Topology::new(n);
    let id = |x: u32, y: u32| CoreId(y * w + x);
    for y in 0..h {
        for x in 0..w {
            let right = id((x + 1) % w, y);
            let down = id(x, (y + 1) % h);
            if right != id(x, y) && !t.are_neighbors(id(x, y), right) {
                t.add_default_link(id(x, y), right);
            }
            if down != id(x, y) && !t.are_neighbors(id(x, y), down) {
                t.add_default_link(id(x, y), down);
            }
        }
    }
    t
}

/// Bidirectional ring of `n` cores.
pub fn ring(n: u32) -> Topology {
    assert!(n >= 2, "a ring needs at least two cores");
    let mut t = Topology::new(n);
    for i in 0..n {
        let next = (i + 1) % n;
        if !t.are_neighbors(CoreId(i), CoreId(next)) {
            t.add_default_link(CoreId(i), CoreId(next));
        }
    }
    t
}

/// Star: core 0 is the hub, all others are leaves.
pub fn star(n: u32) -> Topology {
    assert!(n >= 2, "a star needs at least two cores");
    let mut t = Topology::new(n);
    for i in 1..n {
        t.add_default_link(CoreId(0), CoreId(i));
    }
    t
}

/// Fully connected graph (every pair directly linked).
pub fn fully_connected(n: u32) -> Topology {
    let mut t = Topology::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            t.add_default_link(CoreId(a), CoreId(b));
        }
    }
    t
}

/// Hypercube of dimension `dim` (`2^dim` cores).
pub fn hypercube(dim: u32) -> Topology {
    assert!(dim <= 16, "hypercube dimension too large");
    let n = 1u32 << dim;
    let mut t = Topology::new(n);
    for a in 0..n {
        for bit in 0..dim {
            let b = a ^ (1 << bit);
            if a < b {
                t.add_default_link(CoreId(a), CoreId(b));
            }
        }
    }
    t
}

/// Nearly cubic factorization of `n`: `(x, y, z)` with `x·y·z == n`,
/// minimizing the largest dimension.
pub fn mesh_dims_3d(n: u32) -> (u32, u32, u32) {
    assert!(n > 0);
    let mut best = (n, 1, 1);
    let score = |d: (u32, u32, u32)| d.0.max(d.1).max(d.2);
    let mut a = 1;
    while a * a * a <= n {
        if n.is_multiple_of(a) {
            let rest = n / a;
            let mut b = a;
            while b * b <= rest {
                if rest.is_multiple_of(b) {
                    let cand = (rest / b, b, a);
                    if score(cand) < score(best) {
                        best = cand;
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Uniform 3D mesh of `n` cores (default link parameters). Many-core
/// proposals beyond the paper's 2D meshes commonly assume stacked 3D
/// grids; `n` is factored into the most-cubic shape.
pub fn mesh_3d(n: u32) -> Topology {
    let (w, h, d) = mesh_dims_3d(n);
    let mut t = Topology::new(n);
    let id = |x: u32, y: u32, z: u32| CoreId(z * w * h + y * w + x);
    for z in 0..d {
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    t.add_default_link(id(x, y, z), id(x + 1, y, z));
                }
                if y + 1 < h {
                    t.add_default_link(id(x, y, z), id(x, y + 1, z));
                }
                if z + 1 < d {
                    t.add_default_link(id(x, y, z), id(x, y, z + 1));
                }
            }
        }
    }
    t
}

/// Parameters for clustered meshes (paper §V, *Architecture Exploration*).
///
/// The paper splits the same number of cores into 4 or 8 clusters; links
/// *between* clusters are slow (4× the base latency = 4 cycles) while links
/// *inside* a cluster are fast (half a cycle).
#[derive(Clone, Copy, Debug)]
pub struct ClusterParams {
    /// Number of clusters; must divide the core count.
    pub n_clusters: u32,
    /// Latency of links inside a cluster (default: 0.5 cycles).
    pub intra_latency: VDuration,
    /// Latency of links between clusters (default: 4 cycles).
    pub inter_latency: VDuration,
    /// Bandwidth of every link (default: 128 B/cy).
    pub bandwidth: u32,
}

impl ClusterParams {
    /// The paper's parameters with the given number of clusters.
    pub fn paper(n_clusters: u32) -> Self {
        ClusterParams {
            n_clusters,
            intra_latency: VDuration::from_half_cycles(1),
            inter_latency: VDuration::from_cycles(4),
            bandwidth: DEFAULT_LINK_BANDWIDTH,
        }
    }
}

/// Clustered 2D mesh: `n` cores arranged as a global 2D mesh whose links are
/// classified as intra- or inter-cluster.
///
/// Clusters are contiguous sub-meshes: the global `w × h` grid is cut into a
/// `cw × ch` grid of cluster tiles. A mesh link whose endpoints fall in the
/// same tile gets `intra_latency`; a link crossing a tile boundary gets
/// `inter_latency`. This preserves the paper's setup: same core count and
/// mesh shape as the uniform machine, only link latencies change.
pub fn clustered_mesh(n: u32, params: ClusterParams) -> Topology {
    assert!(
        params.n_clusters > 0 && n.is_multiple_of(params.n_clusters),
        "cluster count {} must divide core count {n}",
        params.n_clusters
    );
    let (w, h) = mesh_dims(n);
    let (cw, ch) = mesh_dims(params.n_clusters);
    assert!(
        w % cw == 0 && h % ch == 0,
        "cluster grid {cw}x{ch} must tile mesh {w}x{h}"
    );
    let tile_w = w / cw;
    let tile_h = h / ch;
    let cluster_of = |x: u32, y: u32| (y / tile_h) * cw + (x / tile_w);

    let mut t = Topology::new(n);
    let id = |x: u32, y: u32| CoreId(y * w + x);
    let connect = |t: &mut Topology, x0: u32, y0: u32, x1: u32, y1: u32| {
        let lat = if cluster_of(x0, y0) == cluster_of(x1, y1) {
            params.intra_latency
        } else {
            params.inter_latency
        };
        t.add_link(id(x0, y0), id(x1, y1), lat, params.bandwidth);
    };
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                connect(&mut t, x, y, x + 1, y);
            }
            if y + 1 < h {
                connect(&mut t, x, y, x, y + 1);
            }
        }
    }
    t
}

/// Cluster index of each core for a `clustered_mesh` with the same
/// parameters (useful for schedulers and reporting).
pub fn cluster_assignment(n: u32, n_clusters: u32) -> Vec<u32> {
    let (w, h) = mesh_dims(n);
    let (cw, ch) = mesh_dims(n_clusters);
    let tile_w = w / cw;
    let tile_h = h / ch;
    let mut out = Vec::with_capacity(n as usize);
    for y in 0..h {
        for x in 0..w {
            out.push((y / tile_h) * cw + (x / tile_w));
        }
    }
    out
}

/// Parameters for multi-chip hierarchical topologies ([`chiplet_mesh`],
/// [`cluster_of_clusters`]): the latency/bandwidth contrast between on-chip
/// wires and the slower, narrower links that cross a chiplet or package
/// boundary.
#[derive(Clone, Copy, Debug)]
pub struct ChipletParams {
    /// Latency of links inside one chiplet (default: 1 cycle).
    pub intra_latency: VDuration,
    /// Latency of links between adjacent chiplets (default: 4 cycles).
    pub inter_latency: VDuration,
    /// Bandwidth of on-chip links (default: 128 B/cy).
    pub intra_bandwidth: u32,
    /// Bandwidth of inter-chip links (default: 32 B/cy — crossing a package
    /// boundary is both slower and narrower).
    pub inter_bandwidth: u32,
}

impl Default for ChipletParams {
    fn default() -> Self {
        ChipletParams {
            intra_latency: DEFAULT_LINK_LATENCY,
            inter_latency: VDuration::from_cycles(4),
            intra_bandwidth: DEFAULT_LINK_BANDWIDTH,
            inter_bandwidth: 32,
        }
    }
}

/// Hierarchical multi-chip mesh: a `chips_x × chips_y` grid of chiplets,
/// each an internal `chip_w × chip_h` mesh, joined by slower inter-chip
/// links between facing border cores.
///
/// Core ids are chip-major (all cores of chiplet 0, then chiplet 1, ...),
/// so each chiplet occupies a contiguous id range; within a chiplet, local
/// ids are row-major. The chiplet index is attached as the core's region
/// (see [`Topology::set_regions`]), which lets the BFS partitioner keep
/// host-parallel tiles from straddling chiplet boundaries.
pub fn chiplet_mesh(
    chips_x: u32,
    chips_y: u32,
    chip_w: u32,
    chip_h: u32,
    params: ChipletParams,
) -> Topology {
    assert!(chips_x > 0 && chips_y > 0, "need at least one chiplet");
    assert!(chip_w > 0 && chip_h > 0, "chiplets need at least one core");
    let per_chip = chip_w * chip_h;
    let n = chips_x * chips_y * per_chip;
    let mut t = Topology::new(n);
    let chip = |cx: u32, cy: u32| cy * chips_x + cx;
    let id = |cx: u32, cy: u32, x: u32, y: u32| CoreId(chip(cx, cy) * per_chip + y * chip_w + x);
    for cy in 0..chips_y {
        for cx in 0..chips_x {
            // Internal mesh of this chiplet.
            for y in 0..chip_h {
                for x in 0..chip_w {
                    if x + 1 < chip_w {
                        t.add_link(
                            id(cx, cy, x, y),
                            id(cx, cy, x + 1, y),
                            params.intra_latency,
                            params.intra_bandwidth,
                        );
                    }
                    if y + 1 < chip_h {
                        t.add_link(
                            id(cx, cy, x, y),
                            id(cx, cy, x, y + 1),
                            params.intra_latency,
                            params.intra_bandwidth,
                        );
                    }
                }
            }
            // Inter-chip links between facing borders.
            if cx + 1 < chips_x {
                for y in 0..chip_h {
                    t.add_link(
                        id(cx, cy, chip_w - 1, y),
                        id(cx + 1, cy, 0, y),
                        params.inter_latency,
                        params.inter_bandwidth,
                    );
                }
            }
            if cy + 1 < chips_y {
                for x in 0..chip_w {
                    t.add_link(
                        id(cx, cy, x, chip_h - 1),
                        id(cx, cy + 1, x, 0),
                        params.inter_latency,
                        params.inter_bandwidth,
                    );
                }
            }
        }
    }
    let regions = (0..n).map(|i| i / per_chip).collect();
    t.set_regions(regions);
    t
}

/// Parameters for [`cluster_of_clusters`]: link latency at each level of
/// the hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyParams {
    /// Latency inside a leaf cluster (default: 0.5 cycles).
    pub intra_latency: VDuration,
    /// Latency between leaf clusters of the same group (default: 4 cycles).
    pub mid_latency: VDuration,
    /// Latency between groups (default: 16 cycles).
    pub outer_latency: VDuration,
    /// Bandwidth of every link (default: 128 B/cy).
    pub bandwidth: u32,
}

impl Default for HierarchyParams {
    fn default() -> Self {
        HierarchyParams {
            intra_latency: VDuration::from_half_cycles(1),
            mid_latency: VDuration::from_cycles(4),
            outer_latency: VDuration::from_cycles(16),
            bandwidth: DEFAULT_LINK_BANDWIDTH,
        }
    }
}

/// Cluster-of-clusters: `groups × leaves_per_group` leaf clusters, each an
/// internal mesh of `cores_per_leaf` cores. Within a group, the hub core
/// (local id 0) of every leaf is fully connected to every other leaf's hub
/// at `mid_latency`; the hub of each group's first leaf is fully connected
/// to the other group hubs at `outer_latency`.
///
/// Core ids are leaf-major (contiguous per leaf), and the leaf index is
/// attached as the core's region, so partition tiles respect leaf-cluster
/// boundaries exactly as for [`chiplet_mesh`].
pub fn cluster_of_clusters(
    groups: u32,
    leaves_per_group: u32,
    cores_per_leaf: u32,
    params: HierarchyParams,
) -> Topology {
    assert!(groups > 0 && leaves_per_group > 0, "empty hierarchy");
    assert!(cores_per_leaf > 0, "leaves need at least one core");
    let n_leaves = groups * leaves_per_group;
    let n = n_leaves * cores_per_leaf;
    let mut t = Topology::new(n);
    let leaf_base = |g: u32, l: u32| (g * leaves_per_group + l) * cores_per_leaf;
    // Leaf-internal meshes.
    let (w, h) = mesh_dims(cores_per_leaf);
    for leaf in 0..n_leaves {
        let base = leaf * cores_per_leaf;
        let id = |x: u32, y: u32| CoreId(base + y * w + x);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    t.add_link(
                        id(x, y),
                        id(x + 1, y),
                        params.intra_latency,
                        params.bandwidth,
                    );
                }
                if y + 1 < h {
                    t.add_link(
                        id(x, y),
                        id(x, y + 1),
                        params.intra_latency,
                        params.bandwidth,
                    );
                }
            }
        }
    }
    // Mid level: leaf hubs fully connected within each group.
    for g in 0..groups {
        for a in 0..leaves_per_group {
            for b in (a + 1)..leaves_per_group {
                t.add_link(
                    CoreId(leaf_base(g, a)),
                    CoreId(leaf_base(g, b)),
                    params.mid_latency,
                    params.bandwidth,
                );
            }
        }
    }
    // Outer level: group hubs fully connected.
    for a in 0..groups {
        for b in (a + 1)..groups {
            t.add_link(
                CoreId(leaf_base(a, 0)),
                CoreId(leaf_base(b, 0)),
                params.outer_latency,
                params.bandwidth,
            );
        }
    }
    let regions = (0..n).map(|i| i / cores_per_leaf).collect();
    t.set_regions(regions);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_dims_square_and_rectangular() {
        assert_eq!(mesh_dims(64), (8, 8));
        assert_eq!(mesh_dims(8), (4, 2));
        assert_eq!(mesh_dims(1024), (32, 32));
        assert_eq!(mesh_dims(256), (16, 16));
        assert_eq!(mesh_dims(1), (1, 1));
        assert_eq!(mesh_dims(7), (7, 1));
    }

    #[test]
    fn mesh_2d_structure() {
        let t = mesh_2d(64);
        assert_eq!(t.n_cores(), 64);
        // 2*w*h - w - h undirected edges, times 2 directions.
        assert_eq!(t.n_links(), 2 * (2 * 64 - 8 - 8));
        assert!(t.is_connected());
        // Mesh diameter = (w-1) + (h-1).
        assert_eq!(t.diameter_hops(), 14);
        // Corner degree 2, center degree 4.
        assert_eq!(t.degree(CoreId(0)), 2);
        assert_eq!(t.degree(CoreId(9)), 4);
    }

    #[test]
    fn rectangular_mesh_8_cores() {
        let t = mesh_2d(8); // 4x2
        assert!(t.is_connected());
        assert_eq!(t.diameter_hops(), 4);
    }

    #[test]
    fn torus_has_no_corners() {
        let t = torus_2d(16); // 4x4
        assert!(t.is_connected());
        for c in t.cores() {
            assert_eq!(t.degree(c), 4);
        }
        assert_eq!(t.diameter_hops(), 4); // 2+2
    }

    #[test]
    fn ring_structure() {
        let t = ring(8);
        assert!(t.is_connected());
        for c in t.cores() {
            assert_eq!(t.degree(c), 2);
        }
        assert_eq!(t.diameter_hops(), 4);
        // Tiny ring of 2 degenerates into a single pair.
        let t2 = ring(2);
        assert_eq!(t2.degree(CoreId(0)), 1);
    }

    #[test]
    fn star_structure() {
        let t = star(9);
        assert_eq!(t.degree(CoreId(0)), 8);
        for i in 1..9 {
            assert_eq!(t.degree(CoreId(i)), 1);
        }
        assert_eq!(t.diameter_hops(), 2);
    }

    #[test]
    fn fully_connected_diameter_one() {
        let t = fully_connected(6);
        assert_eq!(t.diameter_hops(), 1);
        assert_eq!(t.n_links(), 6 * 5);
    }

    #[test]
    fn hypercube_structure() {
        let t = hypercube(4);
        assert_eq!(t.n_cores(), 16);
        for c in t.cores() {
            assert_eq!(t.degree(c), 4);
        }
        assert_eq!(t.diameter_hops(), 4);
    }

    #[test]
    fn mesh_3d_structure() {
        assert_eq!(mesh_dims_3d(64), (4, 4, 4));
        assert_eq!(mesh_dims_3d(8), (2, 2, 2));
        assert_eq!(mesh_dims_3d(12), (3, 2, 2));
        let t = mesh_3d(64);
        assert!(t.is_connected());
        // 4x4x4 mesh: diameter 3+3+3 = 9 (vs 14 for the 8x8 2D mesh).
        assert_eq!(t.diameter_hops(), 9);
        // Corner degree 3, interior degree 6.
        assert_eq!(t.degree(CoreId(0)), 3);
        let interior = CoreId(16 + 4 + 1); // (1,1,1)
        assert_eq!(t.degree(interior), 6);
        // Undirected edges: 3 * 4^2 * 3 = 144; directed = 288.
        assert_eq!(t.n_links(), 288);
    }

    #[test]
    fn clustered_mesh_latencies() {
        let t = clustered_mesh(64, ClusterParams::paper(4));
        assert!(t.is_connected());
        assert_eq!(t.n_links(), mesh_2d(64).n_links());
        // Count fast and slow links.
        let fast = t
            .links()
            .iter()
            .filter(|l| l.latency == VDuration::from_half_cycles(1))
            .count();
        let slow = t
            .links()
            .iter()
            .filter(|l| l.latency == VDuration::from_cycles(4))
            .count();
        assert_eq!(fast + slow, t.n_links() as usize);
        // 4 clusters on an 8x8 mesh: each 4x4 tile has 24 internal undirected
        // edges => 96 fast links per tile-set = 4*24*2 = 192 directed fast.
        assert_eq!(fast, 192);
        // Boundary: 8 vertical + 8 horizontal crossing edges = 16 undirected.
        assert_eq!(slow, 32);
    }

    #[test]
    fn cluster_assignment_partitions_evenly() {
        let assign = cluster_assignment(64, 4);
        for k in 0..4 {
            assert_eq!(assign.iter().filter(|&&c| c == k).count(), 16);
        }
    }

    #[test]
    fn clustered_mesh_8_clusters() {
        let t = clustered_mesh(1024, ClusterParams::paper(8));
        assert!(t.is_connected());
        let assign = cluster_assignment(1024, 8);
        for k in 0..8 {
            assert_eq!(assign.iter().filter(|&&c| c == k).count(), 128);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn clustered_mesh_rejects_bad_cluster_count() {
        clustered_mesh(10, ClusterParams::paper(3));
    }

    #[test]
    fn chiplet_mesh_structure() {
        // 2x2 chiplets of 4x4 cores = 64 cores, 4 regions.
        let t = chiplet_mesh(2, 2, 4, 4, ChipletParams::default());
        assert_eq!(t.n_cores(), 64);
        assert!(t.is_connected());
        assert_eq!(t.n_regions(), 4);
        // Chip-major contiguous regions.
        assert_eq!(t.region_of(CoreId(0)), Some(0));
        assert_eq!(t.region_of(CoreId(15)), Some(0));
        assert_eq!(t.region_of(CoreId(16)), Some(1));
        assert_eq!(t.region_of(CoreId(63)), Some(3));
        // Every link within one region is intra, every cross-region link is
        // inter (slower and narrower).
        let p = ChipletParams::default();
        for l in t.links() {
            if t.region_of(l.src) == t.region_of(l.dst) {
                assert_eq!(l.latency, p.intra_latency);
                assert_eq!(l.bandwidth_bytes_per_cycle, p.intra_bandwidth);
            } else {
                assert_eq!(l.latency, p.inter_latency);
                assert_eq!(l.bandwidth_bytes_per_cycle, p.inter_bandwidth);
            }
        }
        // Inter-chip undirected edges: 2 horizontal seams x 4 rows + 2
        // vertical seams x 4 cols = 16; times 2 directions = 32 links.
        let inter = t
            .links()
            .iter()
            .filter(|l| t.region_of(l.src) != t.region_of(l.dst))
            .count();
        assert_eq!(inter, 32);
    }

    #[test]
    fn cluster_of_clusters_structure() {
        let t = cluster_of_clusters(2, 3, 16, HierarchyParams::default());
        assert_eq!(t.n_cores(), 96);
        assert!(t.is_connected());
        assert_eq!(t.n_regions(), 6);
        let p = HierarchyParams::default();
        // Hub-to-hub latencies at each level.
        let mid = t.link_between(CoreId(0), CoreId(16)).unwrap();
        assert_eq!(t.link(mid).latency, p.mid_latency);
        let outer = t.link_between(CoreId(0), CoreId(48)).unwrap();
        assert_eq!(t.link(outer).latency, p.outer_latency);
        // Leaf interiors are fast.
        let intra = t.link_between(CoreId(1), CoreId(2)).unwrap();
        assert_eq!(t.link(intra).latency, p.intra_latency);
    }
}
