//! Property tests: routing over arbitrary random connected topologies.

use proptest::prelude::*;
use simany_time::VDuration;
use simany_topology::{CoreId, RoutingTable, Topology};

/// Build a random connected topology: a random spanning tree plus extra
/// edges, with random latencies in half-cycle ticks.
fn random_topology(n: u32, extra_edges: usize, seed: u64) -> Topology {
    use simany_time::Xoshiro256StarStar;
    let mut rng = Xoshiro256StarStar::seeded(seed);
    let mut t = Topology::new(n);
    // Spanning tree: connect i to a random earlier node.
    for i in 1..n {
        let j = rng.next_below(u64::from(i)) as u32;
        let lat = VDuration::from_half_cycles(rng.next_range(1, 8));
        t.add_link(CoreId(i), CoreId(j), lat, 64 + rng.next_below(128) as u32);
    }
    for _ in 0..extra_edges {
        let a = rng.next_below(u64::from(n)) as u32;
        let b = rng.next_below(u64::from(n)) as u32;
        if a != b && !t.are_neighbors(CoreId(a), CoreId(b)) {
            let lat = VDuration::from_half_cycles(rng.next_range(1, 8));
            t.add_link(CoreId(a), CoreId(b), lat, 64 + rng.next_below(128) as u32);
        }
    }
    t
}

/// Reference all-pairs shortest latency (Floyd-Warshall).
fn floyd_warshall(t: &Topology) -> Vec<Vec<u64>> {
    let n = t.n_cores() as usize;
    const INF: u64 = u64::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for l in t.links() {
        let (a, b) = (l.src.index(), l.dst.index());
        d[a][b] = d[a][b].min(l.latency.ticks());
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Routing tables produce valid, chained routes reaching the
    /// destination, with latencies matching the true shortest paths.
    #[test]
    fn routes_are_valid_and_minimal(
        n in 2u32..24,
        extra in 0usize..20,
        seed in 0u64..10_000,
    ) {
        let topo = random_topology(n, extra, seed);
        prop_assume!(topo.is_connected());
        let rt = RoutingTable::build(&topo);
        let reference = floyd_warshall(&topo);
        for s in topo.cores() {
            for d in topo.cores() {
                // Latency optimality against Floyd-Warshall.
                prop_assert_eq!(
                    rt.path_latency(s, d).ticks(),
                    reference[s.index()][d.index()],
                    "latency mismatch {} -> {}", s, d
                );
                // Route validity: chains over real links, reaches d.
                let route = rt.route(&topo, s, d);
                let mut cur = s;
                let mut total = VDuration::ZERO;
                for link in route {
                    let props = topo.link(link);
                    prop_assert_eq!(props.src, cur);
                    cur = props.dst;
                    total += props.latency;
                }
                prop_assert_eq!(cur, d);
                prop_assert_eq!(total, rt.path_latency(s, d));
            }
        }
    }

    /// The hop diameter bounds every route's hop count.
    #[test]
    fn diameter_bounds_hops(
        n in 2u32..16,
        extra in 0usize..10,
        seed in 0u64..10_000,
    ) {
        let topo = random_topology(n, extra, seed);
        prop_assume!(topo.is_connected());
        let rt = RoutingTable::build(&topo);
        let diameter = topo.diameter_hops();
        for s in topo.cores() {
            for d in topo.cores() {
                // Latency-minimal routes may take more hops than the
                // hop-minimal path, but never more than n - 1.
                prop_assert!(rt.path_hops(s, d) < n);
                let _ = diameter;
            }
        }
    }

    /// Every materialized route's per-hop latencies sum exactly to the
    /// table's `path_latency` on random connected topologies (the charge
    /// the interconnect model applies hop by hop matches the precomputed
    /// end-to-end figure).
    #[test]
    fn hop_latencies_sum_to_path_latency(
        n in 2u32..20,
        extra in 0usize..16,
        seed in 0u64..10_000,
    ) {
        let topo = random_topology(n, extra, seed);
        prop_assume!(topo.is_connected());
        let rt = RoutingTable::build(&topo);
        for s in topo.cores() {
            for d in topo.cores() {
                let total: VDuration = rt
                    .route(&topo, s, d)
                    .into_iter()
                    .map(|l| topo.link(l).latency)
                    .fold(VDuration::ZERO, |acc, x| acc + x);
                prop_assert_eq!(total, rt.path_latency(s, d));
            }
        }
    }

    /// Post-failure recompute (`build_avoiding`) never routes over a dead
    /// link: surviving routes chain over live links only and still sum to
    /// the recomputed latency, and the partition flag is set exactly when
    /// some pair became unreachable.
    #[test]
    fn recompute_never_routes_over_dead_links(
        n in 2u32..16,
        extra in 0usize..12,
        seed in 0u64..10_000,
        kills in 0usize..4,
    ) {
        use simany_time::Xoshiro256StarStar;
        let topo = random_topology(n, extra, seed);
        prop_assume!(topo.is_connected());
        // Kill a few random physical pairs (both directions together, as
        // the fault plan does).
        let mut rng = Xoshiro256StarStar::seeded(seed ^ 0xDEAD);
        let mut dead = vec![false; topo.n_links() as usize];
        for _ in 0..kills {
            let l = rng.next_below(u64::from(topo.n_links())) as usize;
            dead[l] = true;
            let props = topo.link(simany_topology::LinkId(l as u32));
            if let Some(back) = topo.link_between(props.dst, props.src) {
                dead[back.index()] = true;
            }
        }
        let (rt, partitioned) = RoutingTable::build_avoiding(&topo, &dead);
        let mut any_unreachable = false;
        for s in topo.cores() {
            for d in topo.cores() {
                if !rt.reachable(s, d) {
                    any_unreachable = true;
                    continue;
                }
                let route = rt.route(&topo, s, d);
                let mut cur = s;
                let mut total = VDuration::ZERO;
                for link in route {
                    prop_assert!(!dead[link.index()], "route {} -> {} crosses dead link", s, d);
                    let props = topo.link(link);
                    prop_assert_eq!(props.src, cur);
                    cur = props.dst;
                    total += props.latency;
                }
                prop_assert_eq!(cur, d);
                prop_assert_eq!(total, rt.path_latency(s, d));
            }
        }
        prop_assert_eq!(partitioned, any_unreachable);
    }

    /// Config round-trip preserves structure and link properties for
    /// arbitrary topologies.
    #[test]
    fn config_round_trip(
        n in 2u32..12,
        extra in 0usize..8,
        seed in 0u64..10_000,
    ) {
        let topo = random_topology(n, extra, seed);
        prop_assume!(topo.is_connected());
        let text = simany_topology::format_topology(&topo);
        let parsed = simany_topology::parse_topology(&text).unwrap();
        prop_assert_eq!(parsed.n_cores(), topo.n_cores());
        prop_assert_eq!(parsed.n_links(), topo.n_links());
        for a in topo.cores() {
            for b in topo.cores() {
                prop_assert_eq!(
                    topo.are_neighbors(a, b),
                    parsed.are_neighbors(a, b)
                );
                if let Some(l) = topo.link_between(a, b) {
                    let p = parsed.link_between(a, b).unwrap();
                    prop_assert_eq!(topo.link(l).latency, parsed.link(p).latency);
                    prop_assert_eq!(
                        topo.link(l).bandwidth_bytes_per_cycle,
                        parsed.link(p).bandwidth_bytes_per_cycle
                    );
                }
            }
        }
    }
}
