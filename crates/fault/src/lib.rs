#![warn(missing_docs)]

//! # simany-fault — deterministic, seeded fault-injection plans
//!
//! At the 1000+-core scale SiMany targets, link and core failures are the
//! norm, not the exception. This crate provides the *fault plan*: a
//! precompiled, bit-reproducible schedule of what goes wrong and when,
//! shared by the network model (`simany-net`), the engine (`simany-core`)
//! and the task run-time system (`simany-runtime`).
//!
//! A [`FaultPlan`] describes, against one specific [`Topology`]:
//!
//! * **Link failures and recoveries** at virtual-time instants. The plan
//!   precompiles one routing table per *epoch* (maximal interval with a
//!   constant dead-link set) via [`RoutingTable::build_avoiding`], so
//!   traffic reroutes around dead links — or the epoch is flagged as
//!   *partitioned* when some pair of cores has no surviving route.
//! * **Per-link message drop / delay / corruption probabilities**, sampled
//!   at send time from a dedicated PRNG stream owned by the network model.
//! * **Permanent core failures** at virtual-time instants: a failed core
//!   stops accepting new work (probes are denied, spawns and migrations
//!   avoid it) while its NoC router keeps forwarding traffic.
//!
//! Plans come from two sources: an explicit [`FaultPlanBuilder`] (exact
//! scripted scenarios, e.g. "cut the mesh in half at t = 0"), or
//! [`FaultPlan::sample`], which draws a random scenario from a
//! [`FaultConfig`] using `SplitMix64`-derived streams so the whole run
//! stays bit-reproducible from one seed.
//!
//! The **empty plan is free**: a plan with no faults compiles to a single
//! epoch with no routing override and no message-fault flags, and the
//! consumers are written so that this path performs no PRNG draws and no
//! extra arithmetic — results are bit-identical to a run with no plan at
//! all (asserted by the determinism suite).

use simany_time::prng::Xoshiro256StarStar;
use simany_time::{VDuration, VirtualTime};
use simany_topology::{CoreId, LinkId, RoutingTable, Topology};

/// PRNG stream index used by [`FaultPlan::sample`] (derived from the master
/// seed; distinct from every stream the engine or runtime uses).
pub const SAMPLE_STREAM: u64 = 0xFA01_75A3;

/// PRNG stream index the network model uses for per-message fault draws.
pub const NET_STREAM: u64 = 0xF_A017_04E7;

/// A fault plan referenced something the topology doesn't have, or carried
/// a nonsensical probability. Produced by [`FaultPlanBuilder::try_build`]
/// at compile time — a plan naming an out-of-range core or link would
/// otherwise be silently meaningless (or panic deep inside the network
/// model at some arbitrary send).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// A link event or per-link probability names a link the topology
    /// doesn't have.
    LinkOutOfRange {
        /// The offending link id.
        link: LinkId,
        /// Number of links in the topology the plan was compiled against.
        n_links: u32,
    },
    /// A core-failure entry names a core the topology doesn't have.
    CoreOutOfRange {
        /// The offending core id.
        core: CoreId,
        /// Number of cores in the topology the plan was compiled against.
        n_cores: u32,
    },
    /// A per-message probability is not a real number in `[0, 1]`.
    BadProbability {
        /// Which table the probability was destined for
        /// (`"drop"`/`"delay"`/`"corrupt"`).
        what: &'static str,
        /// The link the probability was attached to.
        link: LinkId,
        /// The offending value.
        p: f64,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultPlanError::LinkOutOfRange { link, n_links } => write!(
                f,
                "fault plan names {link:?}, but the topology has only {n_links} links"
            ),
            FaultPlanError::CoreOutOfRange { core, n_cores } => write!(
                f,
                "fault plan names {core:?}, but the topology has only {n_cores} cores"
            ),
            FaultPlanError::BadProbability { what, link, p } => write!(
                f,
                "fault plan sets {what} probability {p} on {link:?}; must be in [0, 1]"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// One maximal virtual-time interval with a constant dead-link set.
#[derive(Debug)]
struct Epoch {
    /// Links down during this epoch, ascending by id.
    dead_links: Vec<LinkId>,
    /// Dense per-link liveness mask (same indexing as `Topology::links`).
    dead: Vec<bool>,
    /// Routing recomputed around the dead links; `None` when nothing is
    /// dead (consumers fall back to their base table, keeping the
    /// empty-plan path untouched).
    routing: Option<RoutingTable>,
    /// True when some ordered pair of cores has no surviving route.
    partitioned: bool,
}

/// A compiled fault schedule for one topology. Build with
/// [`FaultPlanBuilder`] or [`FaultPlan::sample`]; share via `Arc` through
/// `EngineConfig`.
#[derive(Debug)]
pub struct FaultPlan {
    n_cores: u32,
    n_links: u32,
    /// Epoch start times, ascending; `boundaries[0] == ZERO`.
    boundaries: Vec<VirtualTime>,
    epochs: Vec<Epoch>,
    /// Per-link message-fault parameters (empty-plan fast path keys off
    /// `any_msg_faults`).
    drop_prob: Vec<f64>,
    delay_prob: Vec<f64>,
    delay: Vec<VDuration>,
    corrupt_prob: Vec<f64>,
    any_msg_faults: bool,
    /// Per-core permanent failure instants.
    core_fail_at: Vec<Option<VirtualTime>>,
    any_core_faults: bool,
}

impl FaultPlan {
    /// A plan with no faults at all (single epoch, no overrides). Running
    /// with this plan is bit-identical to running with no plan.
    pub fn empty(topo: &Topology) -> Self {
        FaultPlanBuilder::new().build(topo)
    }

    /// Sample a random fault scenario from `config`, deterministically from
    /// `seed` (an independent `SplitMix64`-derived stream, untouched by any
    /// other consumer of the master seed).
    ///
    /// Physical (bidirectional) link pairs fail together; core 0 is never
    /// failed by sampling so the root task always has a home — script that
    /// explicitly with [`FaultPlanBuilder::fail_core`] if needed.
    pub fn sample(topo: &Topology, config: &FaultConfig, seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::stream(seed, SAMPLE_STREAM);
        let mut b = FaultPlanBuilder::new();
        let horizon = config.horizon.cycles().max(1);
        for (i, l) in topo.links().iter().enumerate() {
            let link = LinkId(i as u32);
            // Sample each physical pair once, from its lower-id direction.
            if let Some(partner) = topo.link_between(l.dst, l.src) {
                if partner.index() < i {
                    continue;
                }
                if rng.chance(config.link_fail_prob) {
                    let at = VirtualTime::from_cycles(rng.next_below(horizon));
                    b = b.fail_link(link, at).fail_link(partner, at);
                    if let Some(repair) = config.repair_after {
                        b = b
                            .recover_link(link, at + repair)
                            .recover_link(partner, at + repair);
                    }
                }
            } else if rng.chance(config.link_fail_prob) {
                let at = VirtualTime::from_cycles(rng.next_below(horizon));
                b = b.fail_link(link, at);
                if let Some(repair) = config.repair_after {
                    b = b.recover_link(link, at + repair);
                }
            }
        }
        for i in 0..topo.n_links() {
            let link = LinkId(i);
            if config.drop_prob > 0.0 {
                b = b.drop_prob(link, config.drop_prob);
            }
            if config.delay_prob > 0.0 {
                b = b.delay(link, config.delay_prob, config.delay);
            }
            if config.corrupt_prob > 0.0 {
                b = b.corrupt_prob(link, config.corrupt_prob);
            }
        }
        for c in 1..topo.n_cores() {
            if rng.chance(config.core_fail_prob) {
                let at = VirtualTime::from_cycles(rng.next_below(horizon));
                b = b.fail_core(CoreId(c), at);
            }
        }
        // Scripted layers (no PRNG draws: the sampled scenario above is
        // bit-identical whether or not these are active).
        if let Some(at) = config.partition_at {
            b = b.partition_halves(topo, at, config.partition_heal);
        }
        if config.churn_cores > 0 {
            b = b.churn(
                topo,
                config.churn_start,
                config.churn_every,
                config.churn_cores,
            );
        }
        b.build(topo)
    }

    // ----- schedule queries -------------------------------------------------

    /// True iff the plan schedules no faults whatsoever.
    pub fn is_empty(&self) -> bool {
        self.epochs.len() == 1
            && self.epochs[0].dead_links.is_empty()
            && !self.any_msg_faults
            && !self.any_core_faults
    }

    /// Number of cores of the topology the plan was compiled against.
    pub fn n_cores(&self) -> u32 {
        self.n_cores
    }

    /// Number of links of the topology the plan was compiled against.
    pub fn n_links(&self) -> u32 {
        self.n_links
    }

    /// Number of epochs (constant-dead-set intervals); at least 1.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Index of the epoch containing virtual time `t`.
    #[inline]
    pub fn epoch_at(&self, t: VirtualTime) -> usize {
        // boundaries[0] == ZERO, so the partition point is at least 1.
        self.boundaries.partition_point(|&b| b <= t) - 1
    }

    /// Start time of epoch `e`.
    pub fn boundary(&self, e: usize) -> VirtualTime {
        self.boundaries[e]
    }

    /// Links down during epoch `e`, ascending by id.
    pub fn epoch_dead_links(&self, e: usize) -> &[LinkId] {
        &self.epochs[e].dead_links
    }

    /// True iff `link` is down during epoch `e`.
    #[inline]
    pub fn link_dead(&self, e: usize, link: LinkId) -> bool {
        self.epochs[e].dead[link.index()]
    }

    /// Routing table recomputed around epoch `e`'s dead links; `None` when
    /// nothing is dead (use the base table).
    #[inline]
    pub fn epoch_routing(&self, e: usize) -> Option<&RoutingTable> {
        self.epochs[e].routing.as_ref()
    }

    /// True iff epoch `e` leaves the machine partitioned.
    pub fn epoch_partitioned(&self, e: usize) -> bool {
        self.epochs[e].partitioned
    }

    // ----- message faults ---------------------------------------------------

    /// True iff any link has a nonzero drop/delay/corruption probability
    /// (consumers skip all per-message draws when false, keeping the
    /// empty-plan path bit-exact).
    #[inline]
    pub fn has_message_faults(&self) -> bool {
        self.any_msg_faults
    }

    /// Per-message drop probability of `link`.
    #[inline]
    pub fn drop_prob(&self, link: LinkId) -> f64 {
        self.drop_prob[link.index()]
    }

    /// Per-message extra-delay probability of `link`.
    #[inline]
    pub fn delay_prob(&self, link: LinkId) -> f64 {
        self.delay_prob[link.index()]
    }

    /// Extra delay charged when `link` delays a message.
    #[inline]
    pub fn delay_of(&self, link: LinkId) -> VDuration {
        self.delay[link.index()]
    }

    /// Per-message corruption probability of `link` (a corrupted message
    /// traverses — charging the links — and is discarded on arrival).
    #[inline]
    pub fn corrupt_prob(&self, link: LinkId) -> f64 {
        self.corrupt_prob[link.index()]
    }

    // ----- core failures ----------------------------------------------------

    /// True iff any core is scheduled to fail.
    #[inline]
    pub fn has_core_faults(&self) -> bool {
        self.any_core_faults
    }

    /// The instant `core` fails permanently, if scheduled.
    #[inline]
    pub fn core_fail_time(&self, core: CoreId) -> Option<VirtualTime> {
        self.core_fail_at[core.index()]
    }

    /// True iff `core` has failed by virtual time `t`.
    #[inline]
    pub fn core_failed(&self, core: CoreId, t: VirtualTime) -> bool {
        match self.core_fail_at[core.index()] {
            Some(at) => at <= t,
            None => false,
        }
    }
}

/// Knobs for [`FaultPlan::sample`].
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability that a physical link fails at some instant in the
    /// horizon.
    pub link_fail_prob: f64,
    /// Downtime before a failed link recovers; `None` = permanent failure.
    pub repair_after: Option<VDuration>,
    /// Uniform per-link per-message drop probability.
    pub drop_prob: f64,
    /// Uniform per-link per-message extra-delay probability.
    pub delay_prob: f64,
    /// The extra delay charged when a link delays a message.
    pub delay: VDuration,
    /// Uniform per-link per-message corruption probability.
    pub corrupt_prob: f64,
    /// Probability that a core (other than core 0) fails permanently at
    /// some instant in the horizon.
    pub core_fail_prob: f64,
    /// Failure instants are drawn uniformly from `[0, horizon)` cycles.
    pub horizon: VirtualTime,
    /// Scripted bisection: cut every link crossing the index-`n/2`
    /// boundary at this instant (see
    /// [`FaultPlanBuilder::partition_halves`]). Deterministic — layered on
    /// top of the sampled faults without consuming any PRNG draws.
    pub partition_at: Option<VirtualTime>,
    /// Heal the scripted bisection at this instant (`None` = permanent).
    pub partition_heal: Option<VirtualTime>,
    /// Scripted crash-stop churn: fail this many cores (never core 0),
    /// spread evenly over the id space, one every `churn_every` starting at
    /// `churn_start` (see [`FaultPlanBuilder::churn`]).
    pub churn_cores: u32,
    /// First scripted churn failure instant.
    pub churn_start: VirtualTime,
    /// Interval between scripted churn failures.
    pub churn_every: VDuration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            link_fail_prob: 0.0,
            repair_after: None,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay: VDuration::from_cycles(50),
            corrupt_prob: 0.0,
            core_fail_prob: 0.0,
            horizon: VirtualTime::from_cycles(1_000_000),
            partition_at: None,
            partition_heal: None,
            churn_cores: 0,
            churn_start: VirtualTime::from_cycles(10_000),
            churn_every: VDuration::from_cycles(10_000),
        }
    }
}

/// Explicit fault-schedule builder (scripted scenarios).
#[derive(Clone, Debug, Default)]
pub struct FaultPlanBuilder {
    link_events: Vec<(VirtualTime, LinkId, bool)>, // (at, link, down?)
    drop: Vec<(LinkId, f64)>,
    delay: Vec<(LinkId, f64, VDuration)>,
    corrupt: Vec<(LinkId, f64)>,
    core_fail: Vec<(CoreId, VirtualTime)>,
}

impl FaultPlanBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        FaultPlanBuilder::default()
    }

    /// Take `link` down at `at`.
    pub fn fail_link(mut self, link: LinkId, at: VirtualTime) -> Self {
        self.link_events.push((at, link, true));
        self
    }

    /// Bring `link` back up at `at`.
    pub fn recover_link(mut self, link: LinkId, at: VirtualTime) -> Self {
        self.link_events.push((at, link, false));
        self
    }

    /// Set the per-message drop probability of `link`.
    pub fn drop_prob(mut self, link: LinkId, p: f64) -> Self {
        self.drop.push((link, p));
        self
    }

    /// Set the per-message extra-delay probability and amount of `link`.
    pub fn delay(mut self, link: LinkId, p: f64, d: VDuration) -> Self {
        self.delay.push((link, p, d));
        self
    }

    /// Set the per-message corruption probability of `link`.
    pub fn corrupt_prob(mut self, link: LinkId, p: f64) -> Self {
        self.corrupt.push((link, p));
        self
    }

    /// Fail `core` permanently at `at`.
    pub fn fail_core(mut self, core: CoreId, at: VirtualTime) -> Self {
        self.core_fail.push((core, at));
        self
    }

    /// Script a clean bisection: every link crossing the index-`n/2`
    /// boundary (in both directions) goes down at `at`; with
    /// `heal = Some(t)` they all come back at `t`. The classic
    /// partition-then-heal scenario the resilience protocols are tested
    /// against — deterministic, no sampling.
    pub fn partition_halves(
        mut self,
        topo: &Topology,
        at: VirtualTime,
        heal: Option<VirtualTime>,
    ) -> Self {
        let half = topo.n_cores() / 2;
        let crosses = |c: CoreId| c.0 < half;
        for (i, l) in topo.links().iter().enumerate() {
            if crosses(l.src) != crosses(l.dst) {
                let link = LinkId(i as u32);
                self = self.fail_link(link, at);
                if let Some(h) = heal {
                    self = self.recover_link(link, h);
                }
            }
        }
        self
    }

    /// Script crash-stop churn: permanently fail `count` cores — never
    /// core 0 — spread evenly over the id space, one every `every` starting
    /// at `start`. Deterministic, no sampling; combine with
    /// [`FaultPlan::sample`]'s probabilistic knobs freely.
    pub fn churn(
        mut self,
        topo: &Topology,
        start: VirtualTime,
        every: VDuration,
        count: u32,
    ) -> Self {
        let n = topo.n_cores();
        if n <= 1 {
            return self;
        }
        for i in 0..count {
            // Even spread over [1, n): the i-th victim of `count`.
            let victim = 1 + (u64::from(i) * u64::from(n - 1) / u64::from(count.max(1))) as u32;
            let at = start + VDuration::from_cycles(every.cycles() * u64::from(i));
            self = self.fail_core(CoreId(victim.min(n - 1)), at);
        }
        self
    }

    /// Compile against `topo`, like [`Self::build`], but reject plans that
    /// reference out-of-range cores or nonexistent links — or carry
    /// non-real probabilities — with a typed [`FaultPlanError`] instead of
    /// panicking (or silently indexing past the tables at runtime).
    pub fn try_build(self, topo: &Topology) -> Result<FaultPlan, FaultPlanError> {
        let n_links = topo.n_links();
        let n_cores = topo.n_cores();
        let check_link = |link: LinkId| {
            if link.0 >= n_links {
                Err(FaultPlanError::LinkOutOfRange { link, n_links })
            } else {
                Ok(())
            }
        };
        let check_prob = |what: &'static str, link: LinkId, p: f64| {
            if !(0.0..=1.0).contains(&p) {
                Err(FaultPlanError::BadProbability { what, link, p })
            } else {
                Ok(())
            }
        };
        for &(_, link, _) in &self.link_events {
            check_link(link)?;
        }
        for &(link, p) in &self.drop {
            check_link(link)?;
            check_prob("drop", link, p)?;
        }
        for &(link, p, _) in &self.delay {
            check_link(link)?;
            check_prob("delay", link, p)?;
        }
        for &(link, p) in &self.corrupt {
            check_link(link)?;
            check_prob("corrupt", link, p)?;
        }
        for &(core, _) in &self.core_fail {
            if core.0 >= n_cores {
                return Err(FaultPlanError::CoreOutOfRange { core, n_cores });
            }
        }
        Ok(self.build_validated(topo))
    }

    /// Compile against `topo`: split the timeline into epochs, precompute
    /// per-epoch rerouting (and partition flags), and freeze the per-link
    /// probability tables. Panics on a plan [`Self::try_build`] would
    /// reject.
    pub fn build(self, topo: &Topology) -> FaultPlan {
        match self.try_build(topo) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    fn build_validated(self, topo: &Topology) -> FaultPlan {
        let n_links = topo.n_links() as usize;
        let n_cores = topo.n_cores() as usize;

        // Per-link event streams, time-ordered; on a tie a recovery wins
        // (down-then-up at the same instant leaves the link up).
        let mut events = self.link_events;
        events.sort_by_key(|&(at, link, down)| (at, link.0, !down));

        // Epoch boundaries: 0 plus every distinct event time.
        let mut boundaries = vec![VirtualTime::ZERO];
        for &(at, _, _) in &events {
            if *boundaries.last().expect("nonempty") != at {
                boundaries.push(at);
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();

        let mut epochs = Vec::with_capacity(boundaries.len());
        let mut dead = vec![false; n_links];
        let mut cursor = 0usize;
        for &start in &boundaries {
            while cursor < events.len() && events[cursor].0 <= start {
                let (_, link, down) = events[cursor];
                dead[link.index()] = down;
                cursor += 1;
            }
            let dead_links: Vec<LinkId> = dead
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d)
                .map(|(i, _)| LinkId(i as u32))
                .collect();
            let (routing, partitioned) = if dead_links.is_empty() {
                (None, false)
            } else {
                let (rt, part) = RoutingTable::build_avoiding(topo, &dead);
                (Some(rt), part)
            };
            epochs.push(Epoch {
                dead_links,
                dead: dead.clone(),
                routing,
                partitioned,
            });
        }

        let mut drop_prob = vec![0.0; n_links];
        for (link, p) in self.drop {
            drop_prob[link.index()] = p.clamp(0.0, 1.0);
        }
        let mut delay_prob = vec![0.0; n_links];
        let mut delay = vec![VDuration::ZERO; n_links];
        for (link, p, d) in self.delay {
            delay_prob[link.index()] = p.clamp(0.0, 1.0);
            delay[link.index()] = d;
        }
        let mut corrupt_prob = vec![0.0; n_links];
        for (link, p) in self.corrupt {
            corrupt_prob[link.index()] = p.clamp(0.0, 1.0);
        }
        let any_msg_faults = drop_prob.iter().any(|&p| p > 0.0)
            || delay_prob.iter().any(|&p| p > 0.0)
            || corrupt_prob.iter().any(|&p| p > 0.0);

        let mut core_fail_at = vec![None; n_cores];
        for (core, at) in self.core_fail {
            let slot = &mut core_fail_at[core.index()];
            // Earliest scheduled failure wins.
            *slot = Some(slot.map_or(at, |prev: VirtualTime| prev.min(at)));
        }
        let any_core_faults = core_fail_at.iter().any(|f| f.is_some());

        FaultPlan {
            n_cores: topo.n_cores(),
            n_links: topo.n_links(),
            boundaries,
            epochs,
            drop_prob,
            delay_prob,
            delay,
            corrupt_prob,
            any_msg_faults,
            core_fail_at,
            any_core_faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simany_topology::{mesh_2d, ring};

    fn t(c: u64) -> VirtualTime {
        VirtualTime::from_cycles(c)
    }

    #[test]
    fn empty_plan_is_single_live_epoch() {
        let topo = mesh_2d(16);
        let plan = FaultPlan::empty(&topo);
        assert!(plan.is_empty());
        assert_eq!(plan.epoch_count(), 1);
        assert_eq!(plan.epoch_at(VirtualTime::ZERO), 0);
        assert_eq!(plan.epoch_at(t(1_000_000)), 0);
        assert!(plan.epoch_routing(0).is_none());
        assert!(!plan.epoch_partitioned(0));
        assert!(!plan.has_message_faults());
        assert!(!plan.has_core_faults());
    }

    #[test]
    fn epochs_track_down_and_up() {
        let topo = mesh_2d(16);
        let link = LinkId(0);
        let plan = FaultPlanBuilder::new()
            .fail_link(link, t(100))
            .recover_link(link, t(300))
            .build(&topo);
        assert_eq!(plan.epoch_count(), 3);
        assert_eq!(plan.epoch_at(t(99)), 0);
        assert_eq!(plan.epoch_at(t(100)), 1);
        assert_eq!(plan.epoch_at(t(299)), 1);
        assert_eq!(plan.epoch_at(t(300)), 2);
        assert!(!plan.link_dead(0, link));
        assert!(plan.link_dead(1, link));
        assert!(!plan.link_dead(2, link));
        // Only the dead epoch carries a recomputed table.
        assert!(plan.epoch_routing(0).is_none());
        assert!(plan.epoch_routing(1).is_some());
        assert!(plan.epoch_routing(2).is_none());
        let rt = plan.epoch_routing(1).unwrap();
        let props = *topo.link(link);
        // The rerouted table avoids the dead link but still connects.
        assert!(rt.reachable(props.src, props.dst));
        for l in rt.route(&topo, props.src, props.dst) {
            assert_ne!(l, link);
        }
    }

    #[test]
    fn partition_flagged() {
        let topo = ring(4);
        let mut b = FaultPlanBuilder::new();
        for (u, v) in [(0u32, 1u32), (2, 3)] {
            b = b
                .fail_link(topo.link_between(CoreId(u), CoreId(v)).unwrap(), t(50))
                .fail_link(topo.link_between(CoreId(v), CoreId(u)).unwrap(), t(50));
        }
        let plan = b.build(&topo);
        assert_eq!(plan.epoch_count(), 2);
        assert!(!plan.epoch_partitioned(0));
        assert!(plan.epoch_partitioned(1));
        let rt = plan.epoch_routing(1).unwrap();
        assert!(!rt.reachable(CoreId(0), CoreId(1)));
        assert!(rt.reachable(CoreId(1), CoreId(2)));
    }

    #[test]
    fn core_failures_step_at_instant() {
        let topo = mesh_2d(4);
        let plan = FaultPlanBuilder::new()
            .fail_core(CoreId(2), t(500))
            .build(&topo);
        assert!(plan.has_core_faults());
        assert!(!plan.core_failed(CoreId(2), t(499)));
        assert!(plan.core_failed(CoreId(2), t(500)));
        assert!(!plan.core_failed(CoreId(1), t(10_000)));
        assert_eq!(plan.core_fail_time(CoreId(2)), Some(t(500)));
    }

    #[test]
    fn sampling_is_deterministic_and_pairs_links() {
        let topo = mesh_2d(16);
        let cfg = FaultConfig {
            link_fail_prob: 0.3,
            repair_after: Some(VDuration::from_cycles(1_000)),
            drop_prob: 0.05,
            core_fail_prob: 0.2,
            horizon: t(10_000),
            ..FaultConfig::default()
        };
        let a = FaultPlan::sample(&topo, &cfg, 42);
        let b = FaultPlan::sample(&topo, &cfg, 42);
        assert_eq!(a.boundaries, b.boundaries);
        for e in 0..a.epoch_count() {
            assert_eq!(a.epoch_dead_links(e), b.epoch_dead_links(e));
        }
        assert_eq!(a.core_fail_at, b.core_fail_at);
        let c = FaultPlan::sample(&topo, &cfg, 43);
        assert!(
            a.boundaries != c.boundaries || a.core_fail_at != c.core_fail_at,
            "different seeds should give different scenarios"
        );
        // Physical pairs fail together: whenever a link is dead in some
        // epoch, so is its reverse.
        for e in 0..a.epoch_count() {
            for &l in a.epoch_dead_links(e) {
                let props = *topo.link(l);
                let back = topo.link_between(props.dst, props.src).unwrap();
                assert!(a.link_dead(e, back), "pair of {l:?} not dead");
            }
        }
        // Core 0 is never failed by sampling.
        assert_eq!(a.core_fail_time(CoreId(0)), None);
        assert!(a.has_message_faults());
    }

    #[test]
    fn try_build_rejects_out_of_range_references() {
        let topo = mesh_2d(16);
        let bad_link = LinkId(topo.n_links() + 5);
        let err = FaultPlanBuilder::new()
            .fail_link(bad_link, t(10))
            .try_build(&topo)
            .unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::LinkOutOfRange {
                link: bad_link,
                n_links: topo.n_links()
            }
        );
        let err = FaultPlanBuilder::new()
            .drop_prob(LinkId(9999), 0.5)
            .try_build(&topo)
            .unwrap_err();
        assert!(matches!(err, FaultPlanError::LinkOutOfRange { .. }));
        let err = FaultPlanBuilder::new()
            .fail_core(CoreId(16), t(10))
            .try_build(&topo)
            .unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::CoreOutOfRange {
                core: CoreId(16),
                n_cores: 16
            }
        );
        let err = FaultPlanBuilder::new()
            .corrupt_prob(LinkId(0), f64::NAN)
            .try_build(&topo)
            .unwrap_err();
        assert!(matches!(
            err,
            FaultPlanError::BadProbability {
                what: "corrupt",
                ..
            }
        ));
        let err = FaultPlanBuilder::new()
            .delay(LinkId(0), 1.5, VDuration::from_cycles(10))
            .try_build(&topo)
            .unwrap_err();
        assert!(matches!(
            err,
            FaultPlanError::BadProbability { what: "delay", .. }
        ));
        // Errors render something a human can act on.
        assert!(err.to_string().contains("delay"));
        // The valid equivalents still build.
        assert!(FaultPlanBuilder::new()
            .fail_link(LinkId(0), t(10))
            .fail_core(CoreId(15), t(10))
            .drop_prob(LinkId(0), 1.0)
            .try_build(&topo)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "16 cores")]
    fn build_panics_with_typed_message() {
        let topo = mesh_2d(16);
        let _ = FaultPlanBuilder::new()
            .fail_core(CoreId(99), t(0))
            .build(&topo);
    }

    #[test]
    fn partition_halves_cuts_and_heals() {
        let topo = mesh_2d(16); // halves = {0..8} vs {8..16}
        let plan = FaultPlanBuilder::new()
            .partition_halves(&topo, t(100), Some(t(500)))
            .build(&topo);
        assert_eq!(plan.epoch_count(), 3);
        assert!(!plan.epoch_partitioned(0));
        assert!(plan.epoch_partitioned(plan.epoch_at(t(100))));
        assert!(!plan.epoch_partitioned(plan.epoch_at(t(500))));
        let rt = plan.epoch_routing(plan.epoch_at(t(200))).unwrap();
        assert!(!rt.reachable(CoreId(0), CoreId(15)));
        assert!(rt.reachable(CoreId(0), CoreId(7)));
        assert!(rt.reachable(CoreId(8), CoreId(15)));
    }

    #[test]
    fn churn_schedule_spreads_and_spares_core_zero() {
        let topo = mesh_2d(16);
        let plan = FaultPlanBuilder::new()
            .churn(&topo, t(1_000), VDuration::from_cycles(500), 4)
            .build(&topo);
        assert!(plan.has_core_faults());
        assert_eq!(plan.core_fail_time(CoreId(0)), None);
        let failed: Vec<u32> = (0..16)
            .filter(|&c| plan.core_fail_time(CoreId(c)).is_some())
            .collect();
        assert_eq!(failed.len(), 4, "churn of 4 distinct victims: {failed:?}");
        // One failure per period, starting at the start instant.
        let mut times: Vec<u64> = failed
            .iter()
            .map(|&c| plan.core_fail_time(CoreId(c)).unwrap().cycles())
            .collect();
        times.sort_unstable();
        assert_eq!(times, vec![1_000, 1_500, 2_000, 2_500]);
    }

    #[test]
    fn sampled_scenario_unchanged_by_scripted_layers() {
        let topo = mesh_2d(8);
        let base = FaultConfig {
            link_fail_prob: 0.2,
            drop_prob: 0.02,
            core_fail_prob: 0.1,
            horizon: t(10_000),
            ..FaultConfig::default()
        };
        let with_script = FaultConfig {
            partition_at: Some(t(50_000)),
            partition_heal: Some(t(60_000)),
            churn_cores: 2,
            churn_start: t(70_000),
            ..base
        };
        let a = FaultPlan::sample(&topo, &base, 7);
        let b = FaultPlan::sample(&topo, &with_script, 7);
        // The sampled draws are identical: every sampled core failure and
        // every pre-partition epoch matches.
        for c in 0..topo.n_cores() {
            let fa = a.core_fail_time(CoreId(c));
            let fb = b.core_fail_time(CoreId(c));
            if fa != fb {
                // Only scripted churn may add failures, never change one.
                assert!(fa.is_none() && fb.is_some());
                assert!(fb.unwrap() >= t(70_000));
            }
        }
        for e in 0..a.epoch_count() {
            if a.boundary(e) < t(50_000) {
                let eb = b.epoch_at(a.boundary(e));
                assert_eq!(a.epoch_dead_links(e), b.epoch_dead_links(eb));
            }
        }
        assert!(b.epoch_partitioned(b.epoch_at(t(55_000))));
    }

    #[test]
    fn same_instant_down_up_leaves_link_alive() {
        let topo = mesh_2d(4);
        let plan = FaultPlanBuilder::new()
            .fail_link(LinkId(1), t(10))
            .recover_link(LinkId(1), t(10))
            .build(&topo);
        let e = plan.epoch_at(t(10));
        assert!(!plan.link_dead(e, LinkId(1)));
    }
}
