#![warn(missing_docs)]

//! # simany-bench — the figure/table regeneration harness
//!
//! One function per experiment of the paper's evaluation section (§VI).
//! Each returns rendered Markdown; the `repro` binary drives them from the
//! command line:
//!
//! ```sh
//! cargo run --release -p simany-bench --bin repro -- all
//! cargo run --release -p simany-bench --bin repro -- fig5 --instances 5
//! ```
//!
//! Absolute numbers will not match the paper (different host, different
//! reference simulator, reduced default workload sizes — see
//! `EXPERIMENTS.md`); the *shapes* are the reproduction target: who wins,
//! by roughly what factor, where the crossovers fall.

use simany::experiment::{native_time, sweep, to_series, SweepPoint};
use simany::kernels::{all_kernels, DwarfKernel, Scale};
use simany::presets;
use simany::runtime::ProgramSpec;
use simany::stats::{f2, geomean, pct, pct_signed, power_law_fit, Table};
use std::fmt::Write as _;

/// Harness options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Workload instances per measured point (the paper uses 50; default 3
    /// keeps the full reproduction tractable).
    pub instances: u64,
    /// Workload scale for the validation (cycle-level) sweeps.
    pub scale: Scale,
    /// Workload scale for the large-machine sweeps (Figs. 7-13): big
    /// meshes need enough tasks for work to diffuse across the chip, just
    /// as the paper pairs its 10^6-row matrices with 1024-core machines.
    pub large_scale: Scale,
    /// Largest machine for the large-scale sweeps.
    pub max_cores: u32,
    /// Largest machine for the cycle-level validation sweeps.
    pub max_validation_cores: u32,
    /// Base seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            instances: 3,
            scale: Scale(0.5),
            large_scale: Scale(4.0),
            max_cores: 1024,
            max_validation_cores: 16,
            seed: 20_110_516, // IPDPS 2011 :-)
        }
    }
}

impl Options {
    fn large_counts(&self) -> Vec<u32> {
        presets::PAPER_CORE_COUNTS
            .iter()
            .copied()
            .filter(|&c| c <= self.max_cores)
            .collect()
    }

    fn validation_counts(&self) -> Vec<u32> {
        presets::VALIDATION_CORE_COUNTS
            .iter()
            .copied()
            .filter(|&c| c <= self.max_validation_cores)
            .collect()
    }
}

/// The four kernels of the validation figures (Fig. 5/6).
fn validation_kernels() -> Vec<Box<dyn DwarfKernel>> {
    ["Barnes-Hut", "Connected Components", "Quicksort", "SpMxV"]
        .iter()
        .map(|n| simany::kernels::kernel_by_name(n).expect("kernel"))
        .collect()
}

fn speedup_table(title: &str, cores: &[u32], rows: &[(String, Vec<SweepPoint>)]) -> String {
    let mut header: Vec<String> = vec!["kernel".into()];
    header.extend(cores.iter().map(|c| format!("{c} cores")));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for (name, points) in rows {
        let series = to_series(name, points);
        let mut cells = vec![name.clone()];
        for &c in cores {
            cells.push(series.speedup_at(c).map(f2).unwrap_or_else(|| "-".into()));
        }
        t.row(cells);
    }
    format!(
        "### {title}\n\n(virtual-time speedups vs 1 core)\n\n{}",
        t.to_markdown()
    )
}

/// Fig. 5 / Fig. 6: VT-vs-CL validation on uniform or polymorphic meshes,
/// including the geometric-mean error rows of §VI.
pub fn validation_figure(opts: &Options, polymorphic: bool) -> String {
    let cores = opts.validation_counts();
    type SpecFn = fn(u32) -> ProgramSpec;
    let (vt_spec, cl_spec): (SpecFn, SpecFn) = if polymorphic {
        (
            presets::polymorphic_sm_coherent,
            presets::cycle_level_polymorphic,
        )
    } else {
        (presets::uniform_mesh_sm_coherent, presets::cycle_level)
    };
    let title = if polymorphic {
        "Fig. 6 — Polymorphic 2D-mesh speedups, SiMany (VT) vs cycle-level (CL)"
    } else {
        "Fig. 5 — Regular 2D-mesh speedups, SiMany (VT) vs cycle-level (CL)"
    };

    let mut rows = Vec::new();
    let mut per_count_errors: Vec<Vec<f64>> = vec![Vec::new(); cores.len()];
    for kernel in validation_kernels() {
        let vt = sweep(
            kernel.as_ref(),
            &cores,
            vt_spec,
            opts.scale,
            opts.instances,
            opts.seed,
        )
        .expect("VT sweep failed");
        let cl = sweep(
            kernel.as_ref(),
            &cores,
            cl_spec,
            opts.scale,
            opts.instances,
            opts.seed,
        )
        .expect("CL sweep failed");
        let vt_s = to_series("vt", &vt);
        let cl_s = to_series("cl", &cl);
        for (i, &c) in cores.iter().enumerate() {
            if let (Some(a), Some(b)) = (vt_s.speedup_at(c), cl_s.speedup_at(c)) {
                if c > 1 {
                    per_count_errors[i].push((a - b).abs() / b.max(1e-12));
                }
            }
        }
        rows.push((format!("{} VT", kernel.name()), vt));
        rows.push((format!("{} CL", kernel.name()), cl));
    }

    let mut out = speedup_table(title, &cores, &rows);
    let _ = writeln!(out, "\nGeometric-mean VT-vs-CL speedup error:\n");
    let mut t = Table::new(&["cores", "geomean error"]);
    for (i, &c) in cores.iter().enumerate() {
        if c > 1 && !per_count_errors[i].is_empty() {
            t.row(vec![
                c.to_string(),
                pct(geomean(
                    &per_count_errors[i]
                        .iter()
                        .map(|e| e.max(1e-4))
                        .collect::<Vec<_>>(),
                )),
            ]);
        }
    }
    let _ = writeln!(out, "{}", t.to_markdown());
    out
}

/// Fig. 7: normalized simulation time (simulator wall clock over native
/// execution) for every kernel across the large sweep, plus the power-law
/// fit of the paper's "square law" observation.
pub fn fig7_simulation_time(opts: &Options) -> String {
    let cores = opts.large_counts();
    let mut header: Vec<String> = vec!["kernel (arch)".into()];
    header.extend(cores.iter().map(|c| format!("{c} cores")));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut fit_points: Vec<(f64, f64)> = Vec::new();
    let mut fit_points_regular: Vec<(f64, f64)> = Vec::new();
    for kernel in all_kernels() {
        let native = native_time(kernel.as_ref(), opts.large_scale, opts.instances, opts.seed);
        for (arch, spec_fn) in [
            ("SM", presets::uniform_mesh_sm as fn(u32) -> ProgramSpec),
            ("DM", presets::uniform_mesh_dm as fn(u32) -> ProgramSpec),
        ] {
            let points = sweep(
                kernel.as_ref(),
                &cores,
                spec_fn,
                opts.large_scale,
                opts.instances,
                opts.seed,
            )
            .expect("sweep failed");
            let mut cells = vec![format!("{} ({arch})", kernel.name())];
            for p in &points {
                let norm = simany::stats::normalized_time(p.sim_wall, native);
                if p.cores > 1 {
                    fit_points.push((p.cores as f64, norm.max(1e-6)));
                    if kernel.name() != "Dijkstra" {
                        fit_points_regular.push((p.cores as f64, norm.max(1e-6)));
                    }
                }
                cells.push(format!("{norm:.0}"));
            }
            t.row(cells);
        }
    }
    let (a, b) = power_law_fit(&fit_points);
    let (ar, br) = power_law_fit(&fit_points_regular);
    format!(
        "### Fig. 7 — Average normalized simulation time (wall / native)\n\n{}\n\
         Power-law fit over all kernels: `t_norm ≈ {a:.2} · cores^{b:.2}`; \
         excluding Dijkstra (whose speculative algorithm does *less* total \
         work as cores grow): `t_norm ≈ {ar:.2} · cores^{br:.2}` \
         (the paper reports a square law with a small coefficient).\n",
        t.to_markdown()
    )
}

/// Fig. 8 / Fig. 9: large-scale speedups on shared / distributed memory.
pub fn large_scale_figure(opts: &Options, distributed: bool) -> String {
    let cores = opts.large_counts();
    let (title, spec_fn): (&str, fn(u32) -> ProgramSpec) = if distributed {
        (
            "Fig. 9 — Regular 2D-mesh speedups (distributed memory)",
            presets::uniform_mesh_dm,
        )
    } else {
        (
            "Fig. 8 — Regular 2D-mesh speedups (shared memory)",
            presets::uniform_mesh_sm,
        )
    };
    let mut rows = Vec::new();
    for kernel in all_kernels() {
        let points = sweep(
            kernel.as_ref(),
            &cores,
            spec_fn,
            opts.large_scale,
            opts.instances,
            opts.seed,
        )
        .expect("sweep failed");
        rows.push((kernel.name().to_string(), points));
    }
    speedup_table(title, &cores, &rows)
}

/// Fig. 10 (table): virtual-time speedup variation as T varies, averaged
/// over the 64+-core machines, baseline T = 100.
/// Fig. 11 (table): simulation wall-time variation over the same sweep.
pub fn drift_tables(opts: &Options) -> String {
    let t_values = [50u64, 500, 1000];
    let cores: Vec<u32> = opts
        .large_counts()
        .into_iter()
        .filter(|&c| c >= 64)
        .collect();
    let cores = if cores.is_empty() {
        vec![opts.max_cores]
    } else {
        cores
    };

    let mut speed_t = Table::new(&[
        "T",
        "Barnes-Hut",
        "Connected Components",
        "Dijkstra",
        "Quicksort",
        "SpMxV",
        "Octree",
    ]);
    let mut wall_t = speed_t.clone();
    let kernels = all_kernels();

    // Baselines at T=100.
    let mut base: Vec<Vec<SweepPoint>> = Vec::new();
    for kernel in &kernels {
        base.push(
            sweep(
                kernel.as_ref(),
                &cores,
                presets::uniform_mesh_sm,
                opts.large_scale,
                opts.instances,
                opts.seed,
            )
            .expect("baseline sweep failed"),
        );
    }
    for t in t_values {
        let mut srow = vec![t.to_string()];
        let mut wrow = vec![t.to_string()];
        for (k, kernel) in kernels.iter().enumerate() {
            let points = sweep(
                kernel.as_ref(),
                &cores,
                |n| presets::with_drift(presets::uniform_mesh_sm(n), t),
                opts.large_scale,
                opts.instances,
                opts.seed,
            )
            .expect("drift sweep failed");
            // Mean relative variation of virtual speedup = inverse of the
            // cycles ratio; of wall time directly.
            let mut svar = 0.0;
            let mut wvar = 0.0;
            for (p, b) in points.iter().zip(&base[k]) {
                svar += b.cycles as f64 / p.cycles.max(1) as f64 - 1.0;
                wvar += p.sim_wall.as_secs_f64() / b.sim_wall.as_secs_f64().max(1e-9) - 1.0;
            }
            srow.push(pct_signed(svar / points.len() as f64));
            wrow.push(pct_signed(wvar / points.len() as f64));
        }
        speed_t.row(srow);
        wall_t.row(wrow);
    }
    format!(
        "### Fig. 10 — Virtual-speedup variation with T (baseline T = 100)\n\n{}\n\
         ### Fig. 11 — Simulation wall-time variation with T (baseline T = 100)\n\n{}",
        speed_t.to_markdown(),
        wall_t.to_markdown()
    )
}

/// Fig. 12: clustered meshes (distributed memory). Also reports the
/// per-kernel virtual-time change on the largest machine vs the uniform
/// mesh (the paper's −28.7 % / −25.6 % style numbers).
pub fn fig12_clusters(opts: &Options, n_clusters: u32) -> String {
    let cores: Vec<u32> = opts
        .large_counts()
        .into_iter()
        .filter(|&c| c >= n_clusters && c % n_clusters == 0)
        .collect();
    let mut rows = Vec::new();
    let mut deltas = Table::new(&["kernel", "Δ virtual time @ largest (clustered vs uniform)"]);
    for kernel in all_kernels() {
        let clustered = sweep(
            kernel.as_ref(),
            &cores,
            |n| presets::clustered_dm(n, n_clusters),
            opts.large_scale,
            opts.instances,
            opts.seed,
        )
        .expect("clustered sweep failed");
        let uniform = sweep(
            kernel.as_ref(),
            &cores,
            presets::uniform_mesh_dm,
            opts.large_scale,
            opts.instances,
            opts.seed,
        )
        .expect("uniform sweep failed");
        if let (Some(c), Some(u)) = (clustered.last(), uniform.last()) {
            // Crossover: the core count from which the clustered machine
            // beats the uniform one (paper: "the average turning point for
            // all benchmarks is around 78 cores").
            let uni_pts: Vec<(u32, u64)> = uniform.iter().map(|p| (p.cores, p.cycles)).collect();
            let clu_pts: Vec<(u32, u64)> = clustered.iter().map(|p| (p.cores, p.cycles)).collect();
            let turning = simany::stats::crossover(&uni_pts, &clu_pts)
                .map(|x| format!("{x:.0} cores"))
                .unwrap_or_else(|| "never".into());
            deltas.row(vec![
                format!("{} (turns at {turning})", kernel.name()),
                pct_signed(c.cycles as f64 / u.cycles.max(1) as f64 - 1.0),
            ]);
        }
        rows.push((kernel.name().to_string(), clustered));
    }
    // Speedups are relative to the *uniform* 1-core baseline: the paper's
    // clustered curves share the Fig. 9 baseline. Our sweep lacks a 1-core
    // clustered machine (1 core cannot be clustered), so report raw cycles.
    let mut header: Vec<String> = vec!["kernel".into()];
    header.extend(cores.iter().map(|c| format!("{c} cores")));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for (name, points) in &rows {
        let mut cells = vec![name.clone()];
        for p in points {
            cells.push(p.cycles.to_string());
        }
        t.row(cells);
    }
    format!(
        "### Fig. 12 — Clustered 2D mesh, {n_clusters} clusters (distributed memory)\n\n\
         (virtual completion cycles; lower is better)\n\n{}\n\
         Change at the largest machine vs the uniform mesh:\n\n{}",
        t.to_markdown(),
        deltas.to_markdown()
    )
}

/// Fig. 13: polymorphic meshes, distributed memory. Speedups are computed
/// against the *uniform* machine's 1-core baseline (a \"1-core polymorphic
/// machine\" would be a lone half-speed core), and the paper's comparison —
/// virtual-time change vs the uniform mesh, averaged over the two largest
/// machines (the −18.8 % claim of §VI) — is reported alongside.
pub fn fig13_polymorphic(opts: &Options) -> String {
    let cores = opts.large_counts();
    let mut t = {
        let mut header: Vec<String> = vec!["kernel".into()];
        header.extend(cores.iter().skip(1).map(|c| format!("{c} cores")));
        Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>())
    };
    let mut deltas = Table::new(&["kernel", "Δ virtual time vs uniform (avg of two largest)"]);
    for kernel in all_kernels() {
        let poly = sweep(
            kernel.as_ref(),
            &cores[1..],
            presets::polymorphic_dm,
            opts.large_scale,
            opts.instances,
            opts.seed,
        )
        .expect("polymorphic sweep failed");
        let uniform = sweep(
            kernel.as_ref(),
            &cores,
            presets::uniform_mesh_dm,
            opts.large_scale,
            opts.instances,
            opts.seed,
        )
        .expect("uniform sweep failed");
        let base = uniform.first().expect("1-core baseline").cycles as f64;
        let mut cells = vec![kernel.name().to_string()];
        for p in &poly {
            cells.push(f2(base / p.cycles.max(1) as f64));
        }
        t.row(cells);
        // Paper's metric: virtual execution time change at the two largest
        // machines vs the uniform mesh.
        let k = poly.len();
        if k >= 2 {
            let mut acc = 0.0;
            for i in [k - 2, k - 1] {
                // uniform[0] is the 1-core point; align by core count.
                let u = uniform
                    .iter()
                    .find(|u| u.cores == poly[i].cores)
                    .expect("aligned sweep");
                acc += poly[i].cycles as f64 / u.cycles.max(1) as f64 - 1.0;
            }
            deltas.row(vec![kernel.name().to_string(), pct_signed(acc / 2.0)]);
        }
    }
    format!(
        "### Fig. 13 — Polymorphic 2D-mesh speedups (distributed memory)\n\n\
         (speedups vs the uniform machine's 1-core baseline)\n\n{}\n\
         Virtual-time change vs the uniform mesh (paper §VI: −18.8 % on\n\
         average for the non-regular benchmarks at 256/1024 cores):\n\n{}",
        t.to_markdown(),
        deltas.to_markdown()
    )
}

/// Ablation (beyond the paper): the same workload under every
/// synchronization policy, comparing virtual results and wall time.
pub fn ablation_sync_policies(opts: &Options) -> String {
    use simany::core::{SyncPolicy, VDuration};
    let kernel = simany::kernels::kernel_by_name("Quicksort").expect("kernel");
    let n = 64.min(opts.max_cores);
    let policies: Vec<(&str, SyncPolicy)> = vec![
        (
            "Spatial T=100 (paper)",
            SyncPolicy::Spatial {
                t: VDuration::from_cycles(100),
            },
        ),
        (
            "BoundedSlack 100 (SlackSim-like)",
            SyncPolicy::BoundedSlack {
                window: VDuration::from_cycles(100),
            },
        ),
        (
            "RandomReferee 100 (LaxP2P-like)",
            SyncPolicy::RandomReferee {
                slack: VDuration::from_cycles(100),
            },
        ),
        ("Conservative (exact order)", SyncPolicy::Conservative),
        ("Unbounded (free run)", SyncPolicy::Unbounded),
    ];
    // Conservative ordering is the accuracy reference: it processes every
    // event in exact virtual-time order.
    let reference = {
        let mut spec = presets::uniform_mesh_sm(n);
        spec.engine.sync = SyncPolicy::Conservative;
        kernel
            .run_sim(spec, opts.scale, opts.seed)
            .expect("reference run failed")
            .cycles()
    };
    let mut t = Table::new(&[
        "policy",
        "virtual cycles",
        "vs exact order",
        "stalls",
        "wall",
    ]);
    for (name, policy) in policies {
        let mut spec = presets::uniform_mesh_sm(n);
        spec.engine.sync = policy;
        let r = kernel
            .run_sim(spec, opts.scale, opts.seed)
            .expect("ablation run failed");
        assert!(r.verified);
        t.row(vec![
            name.to_string(),
            r.cycles().to_string(),
            pct_signed(r.cycles() as f64 / reference.max(1) as f64 - 1.0),
            r.out.stats.stall_events.to_string(),
            format!("{:?}", r.out.stats.wall),
        ]);
    }
    format!(
        "### Ablation — synchronization policies (Quicksort, {n} cores)\n\n{}",
        t.to_markdown()
    )
}

/// Extension (the paper's future work, §VIII): "the results we obtained
/// for the polymorphic [...] architectures could be improved substantially
/// with specific scheduling policies that would take into account the
/// [...] computing power disparity among cores". Compare the default
/// least-loaded spawn policy against a speed-aware one on polymorphic
/// meshes.
pub fn extension_polymorphic_scheduling(opts: &Options) -> String {
    use simany::runtime::SpawnPolicy;
    let cores: Vec<u32> = opts.large_counts().into_iter().filter(|&c| c > 1).collect();
    let mut t = Table::new(&["kernel", "policy", "virtual cycles (per machine)"]);
    for kernel in all_kernels() {
        for (label, policy) in [
            ("least-loaded", SpawnPolicy::LeastLoaded),
            ("favor-fast", SpawnPolicy::FavorFast),
        ] {
            let points = sweep(
                kernel.as_ref(),
                &cores,
                |n| {
                    let mut spec = presets::polymorphic_sm(n);
                    spec.runtime.spawn_policy = policy;
                    spec
                },
                opts.large_scale,
                opts.instances,
                opts.seed,
            )
            .expect("policy sweep failed");
            let cells: Vec<String> = points
                .iter()
                .map(|p| format!("{}@{}", p.cycles, p.cores))
                .collect();
            t.row(vec![
                kernel.name().to_string(),
                label.to_string(),
                cells.join("  "),
            ]);
        }
    }
    format!(
        "### Extension — speed-aware task placement on polymorphic meshes (paper §VIII future work)\n\n{}",
        t.to_markdown()
    )
}

/// Extension (the paper's future work, §VIII): the "preliminary study"
/// of available host parallelism. The paper claims that "at least from
/// networks with 64 cores, there are enough cores verifying these
/// conditions [independently simulatable within their local time windows]
/// to keep all cores of current multi-core host machines busy". We sample
/// how many cores have runnable work per scheduler instant.
pub fn extension_host_parallelism(opts: &Options) -> String {
    let cores: Vec<u32> = opts.large_counts().into_iter().filter(|&c| c > 1).collect();
    let kernels = ["Barnes-Hut", "SpMxV", "Octree"];
    let mut t = Table::new(&["kernel", "machine", "mean avail. parallelism", "p10", "p90"]);
    for name in kernels {
        let kernel = simany::kernels::kernel_by_name(name).expect("kernel");
        for &n in &cores {
            let mut spec = presets::uniform_mesh_sm(n);
            spec.engine.parallelism_sample_every = 32;
            let r = kernel
                .run_sim(spec, opts.large_scale, opts.seed)
                .expect("parallelism run failed");
            assert!(r.verified);
            t.row(vec![
                name.to_string(),
                format!("{n} cores"),
                f2(r.out.stats.mean_parallelism()),
                r.out.stats.parallelism_percentile(10.0).to_string(),
                r.out.stats.parallelism_percentile(90.0).to_string(),
            ]);
        }
    }
    format!(
        "### Extension — available host parallelism (paper §VIII preliminary study)\n\n\
         How many simulated cores could be hosted concurrently, sampled every\n\
         32 scheduler picks. The paper expects 64+-core machines to keep an\n\
         8-16-core host busy.\n\n{}",
        t.to_markdown()
    )
}

/// Ablation (beyond the paper): timing-annotation granularity. The paper
/// allows "attribut[ing] approximate timings to coarse program parts at
/// once with very low overhead" (§II.A); coarse blocks simulate faster but
/// interact more bluntly with the drift window. Fixed total work per task,
/// varying chunk size.
pub fn ablation_annotation_granularity(opts: &Options) -> String {
    use simany::runtime::{run_program, TaskCtx};
    let n = 16u32;
    let total_work = 20_000u64;
    let mut t = Table::new(&[
        "chunk (cycles)",
        "virtual cycles",
        "stalls",
        "messages",
        "wall",
    ]);
    for chunk in [10u64, 50, 200, 1000, 5000] {
        let mut spec = presets::uniform_mesh_sm(n);
        spec.engine = spec.engine.with_seed(opts.seed);
        let out = run_program(spec, move |tc| {
            let g = tc.make_group();
            for _ in 0..12 {
                tc.spawn_or_run(g, move |tc: &mut TaskCtx<'_>| {
                    let mut left = total_work;
                    while left > 0 {
                        let step = left.min(chunk);
                        tc.work(step);
                        left -= step;
                    }
                });
            }
            tc.join(g);
        })
        .expect("granularity run failed");
        t.row(vec![
            chunk.to_string(),
            out.vtime_cycles().to_string(),
            out.stats.stall_events.to_string(),
            out.stats.net.messages.to_string(),
            format!("{:?}", out.stats.wall),
        ]);
    }
    format!(
        "### Ablation — annotation granularity ({n} cores, 12 × {total_work}-cycle tasks)\n\n{}",
        t.to_markdown()
    )
}

/// One configuration of the fast-path benchmark: the spatial-sync hot loop
/// itself, isolated. One activity per core of an `n`-core mesh executes
/// `reps` small timing annotations (heterogeneous step sizes keep a real
/// drift pattern flowing), with no messages or runtime protocol to dilute
/// the per-annotation engine cost.
fn fastpath_hot_loop(
    n: u32,
    reps: u64,
    t_cycles: u64,
    fast_path: bool,
    sanitize: bool,
    seed: u64,
) -> simany::core::SimStats {
    use simany::core::{simulate, CoreId, EngineConfig, Envelope, ExecCtx, Ops, RuntimeHooks};

    struct NoHooks;
    impl RuntimeHooks for NoHooks {
        fn on_message(&self, _: &mut Ops<'_>, _: Envelope) {}
        fn on_idle(&self, _: &mut Ops<'_>, _: CoreId) {}
        fn on_activity_end(&self, _: &mut Ops<'_>, _: CoreId, _: Box<dyn std::any::Any + Send>) {}
    }

    let config = EngineConfig::default()
        .with_drift_cycles(t_cycles)
        .with_seed(seed)
        .with_fast_path(fast_path)
        .with_sanitize(sanitize);
    simulate(
        simany::topology::mesh_2d(n),
        config,
        std::sync::Arc::new(NoHooks),
        |ops| {
            for c in 0..n {
                let step = 3 + u64::from(c % 5);
                ops.start_activity(
                    CoreId(c),
                    "hot-loop",
                    Box::new(()),
                    Box::new(move |ctx: &mut ExecCtx| {
                        for _ in 0..reps {
                            ctx.advance_cycles(step);
                        }
                    }),
                );
            }
        },
    )
    .expect("fast-path benchmark run failed")
}

/// PR 1 acceptance benchmark: wall-clock win of the drift-headroom fast
/// path on an annotation-dense 256-core mesh under spatial synchronization,
/// dumped to `BENCH_PR1.json` in the current directory. Also runs a full
/// kernel at the same machine size as a secondary (protocol-diluted) point.
pub fn fastpath_benchmark(opts: &Options) -> String {
    use simany::core::SyncPolicy;

    let n = 256u32;
    let reps = 20_000u64;
    // Wide enough that a granted core runs hundreds of annotations before
    // its next stall: the bench then measures per-annotation engine cost,
    // not condvar handoffs (which are identical with the fast path on or
    // off — the stall sequence is bit-exact).
    let t_cycles = 5_000u64;

    // Best-of-instances wall times (the standard noise-robust estimator
    // for a deterministic computation), alternating run order so warm-up
    // bias cannot favor either configuration.
    let mut best_on: Option<std::time::Duration> = None;
    let mut best_off: Option<std::time::Duration> = None;
    let mut stats_on = None;
    let mut stats_off = None;
    for i in 0..opts.instances.max(1) {
        let first_on = i % 2 == 0;
        let s_a = fastpath_hot_loop(n, reps, t_cycles, first_on, false, opts.seed);
        let s_b = fastpath_hot_loop(n, reps, t_cycles, !first_on, false, opts.seed);
        let (s_on, s_off) = if first_on { (s_a, s_b) } else { (s_b, s_a) };
        assert_eq!(
            s_on.final_vtime, s_off.final_vtime,
            "fast path changed the simulated outcome"
        );
        if best_on.is_none_or(|b| s_on.wall < b) {
            best_on = Some(s_on.wall);
            stats_on = Some(s_on);
        }
        if best_off.is_none_or(|b| s_off.wall < b) {
            best_off = Some(s_off.wall);
            stats_off = Some(s_off);
        }
    }
    let s_on = stats_on.expect("at least one instance");
    let s_off = stats_off.expect("at least one instance");
    let speedup = s_off.wall.as_secs_f64() / s_on.wall.as_secs_f64().max(1e-9);
    let fast_ratio = s_on.fast_path_advances as f64
        / (s_on.fast_path_advances + s_on.full_sync_checks).max(1) as f64;

    // Secondary point: a real kernel on the same machine (runtime protocol
    // and messages dilute the per-annotation win).
    let kernel = simany::kernels::kernel_by_name("Quicksort").expect("kernel");
    let kernel_run = |fast_path: bool| {
        let mut spec = presets::uniform_mesh_sm(n);
        spec.engine.sync = SyncPolicy::Spatial {
            t: simany::core::VDuration::from_cycles(t_cycles),
        };
        spec.engine = spec.engine.with_seed(opts.seed).with_fast_path(fast_path);
        kernel
            .run_sim(spec, opts.scale, opts.seed)
            .expect("kernel run failed")
    };
    let mut k_on = kernel_run(true);
    let mut k_off = kernel_run(false);
    for i in 1..opts.instances.max(1) {
        let first_on = i % 2 == 1;
        let a = kernel_run(first_on);
        let b = kernel_run(!first_on);
        let (on, off) = if first_on { (a, b) } else { (b, a) };
        if on.out.stats.wall < k_on.out.stats.wall {
            k_on = on;
        }
        if off.out.stats.wall < k_off.out.stats.wall {
            k_off = off;
        }
    }
    assert_eq!(
        k_on.cycles(),
        k_off.cycles(),
        "fast path changed kernel outcome"
    );
    let k_speedup =
        k_off.out.stats.wall.as_secs_f64() / k_on.out.stats.wall.as_secs_f64().max(1e-9);
    let k_ratio = k_on.out.stats.fast_path_advances as f64
        / (k_on.out.stats.fast_path_advances + k_on.out.stats.full_sync_checks).max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"fastpath_hot_loop\",\n  \"cores\": {n},\n  \"drift_t_cycles\": {t_cycles},\n  \"annotations\": {},\n  \"wall_ns_fast_on\": {},\n  \"wall_ns_fast_off\": {},\n  \"wall_speedup\": {speedup:.3},\n  \"fast_path_advances\": {},\n  \"full_sync_checks\": {},\n  \"fast_ratio\": {fast_ratio:.4},\n  \"publish_sweeps_fast_on\": {},\n  \"publish_sweeps_fast_off\": {},\n  \"floor_recomputes\": {},\n  \"final_vtime_cycles\": {},\n  \"kernel\": {{\n    \"name\": \"Quicksort\",\n    \"scale\": {},\n    \"wall_speedup\": {k_speedup:.3},\n    \"fast_ratio\": {k_ratio:.4},\n    \"final_vtime_cycles\": {}\n  }}\n}}\n",
        u64::from(n) * reps,
        s_on.wall.as_nanos(),
        s_off.wall.as_nanos(),
        s_on.fast_path_advances,
        s_on.full_sync_checks,
        s_on.publish_sweeps,
        s_off.publish_sweeps,
        s_on.floor_recomputes,
        s_on.final_vtime.cycles(),
        opts.scale.0,
        k_on.cycles(),
    );
    std::fs::write("BENCH_PR1.json", &json).expect("cannot write BENCH_PR1.json");

    let mut t = Table::new(&[
        "bench",
        "wall fast on",
        "wall fast off",
        "speedup",
        "fast ratio",
    ]);
    t.row(vec![
        format!("hot loop {n} cores × {reps} annotations"),
        format!("{:?}", s_on.wall),
        format!("{:?}", s_off.wall),
        f2(speedup),
        f2(fast_ratio),
    ]);
    t.row(vec![
        format!("Quicksort {n} cores, scale {}", opts.scale.0),
        format!("{:?}", k_on.out.stats.wall),
        format!("{:?}", k_off.out.stats.wall),
        f2(k_speedup),
        f2(k_ratio),
    ]);
    format!(
        "### Fast-path benchmark (PR 1) — results written to BENCH_PR1.json\n\n\
         publish sweeps with fast path on/off: {} / {} (flat sweeps while \
         the clock advances inside headroom = no allocation in the hot \
         path)\n\n{}",
        s_on.publish_sweeps,
        s_off.publish_sweeps,
        t.to_markdown()
    )
}

/// PR 2 acceptance benchmark: resilience under a seeded fault plan. Runs
/// Quicksort on a 256-core mesh, clean and with a `FaultPlan::sample`d
/// plan (link failures with repair, message drops, core failures), runs
/// the faulty configuration twice to prove determinism, and dumps wall
/// time plus the drop/retry/reroute counters to `BENCH_PR2.json`.
pub fn faults_benchmark(opts: &Options) -> String {
    use simany::fault::{FaultConfig, FaultPlan};
    use simany::prelude::{VDuration, VirtualTime};

    let n = 256u32;
    let cfg = FaultConfig {
        link_fail_prob: 0.15,
        repair_after: Some(VDuration::from_cycles(40_000)),
        drop_prob: 0.01,
        core_fail_prob: 0.03,
        horizon: VirtualTime::from_cycles(100_000),
        ..FaultConfig::default()
    };
    let kernel = simany::kernels::kernel_by_name("Quicksort").expect("kernel");
    let run = |faulty: bool| {
        let mut spec = presets::uniform_mesh_sm(n);
        spec.engine = spec.engine.with_seed(opts.seed);
        if faulty {
            let plan = FaultPlan::sample(&spec.topo, &cfg, opts.seed);
            spec.engine = spec.engine.with_fault_plan(std::sync::Arc::new(plan));
        }
        kernel
            .run_sim(spec, opts.scale, opts.seed)
            .expect("faults benchmark run failed")
    };

    let clean = run(false);
    let r1 = run(true);
    let r2 = run(true);
    assert_eq!(
        r1.cycles(),
        r2.cycles(),
        "same seed + same fault plan must reproduce the same virtual time"
    );
    assert_eq!(
        (
            r1.out.stats.msgs_dropped,
            r1.out.stats.msg_retries,
            r1.out.stats.reroutes,
            r1.out.stats.net.messages,
        ),
        (
            r2.out.stats.msgs_dropped,
            r2.out.stats.msg_retries,
            r2.out.stats.reroutes,
            r2.out.stats.net.messages,
        ),
        "same seed + same fault plan must reproduce the same counters"
    );
    assert!(r1.verified, "workload must still verify under faults");

    let s = &r1.out.stats;
    let json = format!(
        "{{\n  \"bench\": \"faults_quicksort\",\n  \"cores\": {n},\n  \"scale\": {},\n  \"seed\": {},\n  \"wall_ns_faulty\": {},\n  \"wall_ns_clean\": {},\n  \"final_vtime_faulty\": {},\n  \"final_vtime_clean\": {},\n  \"verified\": {},\n  \"msgs_dropped\": {},\n  \"msg_retries\": {},\n  \"reroutes\": {},\n  \"link_faults\": {},\n  \"core_failures\": {},\n  \"partitions_observed\": {},\n  \"send_retries\": {},\n  \"send_failures\": {},\n  \"fault_local_runs\": {},\n  \"messages\": {}\n}}\n",
        opts.scale.0,
        opts.seed,
        s.wall.as_nanos(),
        clean.out.stats.wall.as_nanos(),
        r1.cycles(),
        clean.cycles(),
        r1.verified,
        s.msgs_dropped,
        s.msg_retries,
        s.reroutes,
        s.link_faults,
        s.core_failures,
        s.partitions_observed,
        r1.out.rt.send_retries,
        r1.out.rt.send_failures,
        r1.out.rt.fault_local_runs,
        s.net.messages,
    );
    std::fs::write("BENCH_PR2.json", &json).expect("cannot write BENCH_PR2.json");

    let mut t = Table::new(&[
        "config",
        "virtual time",
        "wall",
        "drops",
        "retries",
        "reroutes",
    ]);
    t.row(vec![
        "clean".into(),
        clean.cycles().to_string(),
        format!("{:?}", clean.out.stats.wall),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    t.row(vec![
        "faulty (seeded plan)".into(),
        r1.cycles().to_string(),
        format!("{:?}", s.wall),
        s.msgs_dropped.to_string(),
        s.msg_retries.to_string(),
        s.reroutes.to_string(),
    ]);
    format!(
        "### Fault-injection benchmark (PR 2) — results written to BENCH_PR2.json\n\n\
         Quicksort, {n}-core mesh, seeded fault plan ({} link faults, {} core \
         failures, {} partitions observed); two faulty runs were bit-identical.\n\n{}",
        s.link_faults,
        s.core_failures,
        s.partitions_observed,
        t.to_markdown()
    )
}

/// PR 9 acceptance benchmark: the protocol workload pack under graded
/// fault intensities. Runs each protocol (gossip, DHT lookup, quorum) on
/// a 64-core mesh clean, under a partition-then-heal, under partition
/// plus sampled message drops, and under drops plus crash-stop churn.
/// Every faulty configuration runs twice and must be bit-identical
/// (virtual time, deliveries, message counts, every latency sample);
/// per-point resilience metrics are dumped to `BENCH_PR9.json`.
pub fn protocols_benchmark(opts: &Options) -> String {
    use simany::fault::{FaultConfig, FaultPlan};
    use simany::kernels::protocols::all_protocols;
    use simany::prelude::{VDuration, VirtualTime};
    use simany::stats::{LatencyDist, ResilienceReport};

    let n = 64u32;
    // Protocol horizons are rounds x period, so the benchmark needs
    // scale >= 1 for recovery to fit after the 30k-cycle heal.
    let scale = Scale(opts.scale.0.max(1.0));
    let horizon = VirtualTime::from_cycles(100_000);
    let partitioned = FaultConfig {
        partition_at: Some(VirtualTime::from_cycles(5_000)),
        partition_heal: Some(VirtualTime::from_cycles(30_000)),
        horizon,
        ..FaultConfig::default()
    };
    let intensities: Vec<(&str, Option<FaultConfig>)> = vec![
        ("clean", None),
        ("partition", Some(partitioned.clone())),
        (
            "partition+drop",
            Some(FaultConfig {
                drop_prob: 0.05,
                ..partitioned
            }),
        ),
        (
            "drop+churn",
            Some(FaultConfig {
                drop_prob: 0.15,
                churn_cores: 4,
                churn_every: VDuration::from_cycles(8_000),
                horizon,
                ..FaultConfig::default()
            }),
        ),
    ];

    let run = |protocol: &dyn simany::kernels::protocols::ProtocolKernel,
               cfg: Option<&FaultConfig>| {
        let mut spec = presets::uniform_mesh_sm(n);
        spec.engine = spec.engine.with_seed(opts.seed);
        if let Some(cfg) = cfg {
            let plan = FaultPlan::sample(&spec.topo, cfg, opts.seed);
            spec.engine = spec.engine.with_fault_plan(std::sync::Arc::new(plan));
        }
        protocol
            .run_sim(spec, scale, opts.seed)
            .expect("protocol benchmark run failed")
    };

    let mut reports: Vec<(String, String, ResilienceReport, u64)> = Vec::new();
    for protocol in all_protocols() {
        for (label, cfg) in &intensities {
            let o = run(protocol.as_ref(), cfg.as_ref());
            if cfg.is_some() {
                let o2 = run(protocol.as_ref(), cfg.as_ref());
                assert_eq!(
                    (o.cycles(), o.metrics.delivered, o.metrics.payload_msgs),
                    (o2.cycles(), o2.metrics.delivered, o2.metrics.payload_msgs),
                    "{} under '{label}' must be bit-identical across runs",
                    protocol.name()
                );
                assert_eq!(
                    o.metrics.latencies,
                    o2.metrics.latencies,
                    "{} under '{label}' must reproduce every latency sample",
                    protocol.name()
                );
            }
            assert!(
                o.verified,
                "{} failed its safety checks under '{label}'",
                protocol.name()
            );
            let m = &o.metrics;
            reports.push((
                protocol.name().to_string(),
                (*label).to_string(),
                ResilienceReport {
                    protocol: protocol.name().to_string(),
                    expected: m.expected,
                    delivered: m.delivered,
                    payload_msgs: m.payload_msgs,
                    reissues: m.reissues,
                    degraded: m.degraded,
                    leader_changes: m.leader_changes,
                    latency: LatencyDist::from_samples(&m.latencies),
                },
                o.cycles(),
            ));
        }
    }

    let points = reports
        .iter()
        .map(|(_, label, rep, cycles)| {
            format!(
                "    {{\n      \"intensity\": \"{label}\",\n      \
                 \"final_vtime\": {cycles},\n      \"report\": {}\n    }}",
                rep.to_json()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"protocols\",\n  \"cores\": {n},\n  \"scale\": {},\n  \
         \"seed\": {},\n  \"points\": [\n{points}\n  ]\n}}\n",
        scale.0, opts.seed,
    );
    std::fs::write("BENCH_PR9.json", &json).expect("cannot write BENCH_PR9.json");

    let mut t = Table::new(&[
        "protocol",
        "intensity",
        "coverage",
        "msgs/delivery",
        "reissues",
        "degraded",
        "latency p99",
    ]);
    for (name, label, rep, _) in &reports {
        t.row(vec![
            name.clone(),
            label.clone(),
            format!("{:.4}", rep.coverage()),
            f2(rep.msgs_per_delivery()),
            rep.reissues.to_string(),
            rep.degraded.to_string(),
            rep.latency.p99.to_string(),
        ]);
    }
    format!(
        "### Protocol resilience benchmark (PR 9) — results written to BENCH_PR9.json\n\n\
         Three protocols on a {n}-core mesh under {} fault intensities; every \
         faulty point ran twice bit-identically and passed its safety checks.\n\n{}",
        intensities.len(),
        t.to_markdown()
    )
}

/// PR 4 acceptance benchmark: wall-time overhead of the online invariant
/// sanitizer, on the same annotation-dense hot loop as the fast-path
/// benchmark (worst case for any per-decision checking: there is no
/// runtime protocol to hide behind) and on a real kernel. The sanitized
/// and plain runs must be bit-identical in virtual time and the sanitizer
/// must report zero violations; results are dumped to `BENCH_PR4.json`.
pub fn sanitizer_benchmark(opts: &Options) -> String {
    let n = 256u32;
    let reps = 20_000u64;
    let t_cycles = 5_000u64;

    // Best-of-instances wall times, alternating run order (same estimator
    // as the fast-path benchmark).
    let mut best_on: Option<std::time::Duration> = None;
    let mut best_off: Option<std::time::Duration> = None;
    let mut stats_on = None;
    let mut stats_off = None;
    for i in 0..opts.instances.max(1) {
        let first_on = i % 2 == 0;
        let s_a = fastpath_hot_loop(n, reps, t_cycles, true, first_on, opts.seed);
        let s_b = fastpath_hot_loop(n, reps, t_cycles, true, !first_on, opts.seed);
        let (s_on, s_off) = if first_on { (s_a, s_b) } else { (s_b, s_a) };
        assert_eq!(
            s_on.final_vtime, s_off.final_vtime,
            "sanitizer changed the simulated outcome"
        );
        assert_eq!(s_on.sanitizer_violations, 0, "sanitizer found violations");
        assert!(s_on.sanitizer_checks > 0, "sanitizer ran no checks");
        if best_on.is_none_or(|b| s_on.wall < b) {
            best_on = Some(s_on.wall);
            stats_on = Some(s_on);
        }
        if best_off.is_none_or(|b| s_off.wall < b) {
            best_off = Some(s_off.wall);
            stats_off = Some(s_off);
        }
    }
    let s_on = stats_on.expect("at least one instance");
    let s_off = stats_off.expect("at least one instance");
    let overhead = s_on.wall.as_secs_f64() / s_off.wall.as_secs_f64().max(1e-9) - 1.0;

    // Secondary point: a real kernel (protocol and messages dominate, so
    // the relative overhead should be smaller still).
    let kernel = simany::kernels::kernel_by_name("Quicksort").expect("kernel");
    let kernel_run = |sanitize: bool| {
        let mut spec = presets::uniform_mesh_sm(n);
        spec.engine = spec.engine.with_seed(opts.seed).with_sanitize(sanitize);
        kernel
            .run_sim(spec, opts.scale, opts.seed)
            .expect("kernel run failed")
    };
    let mut k_on = kernel_run(true);
    let mut k_off = kernel_run(false);
    for i in 1..opts.instances.max(1) {
        let first_on = i % 2 == 1;
        let a = kernel_run(first_on);
        let b = kernel_run(!first_on);
        let (on, off) = if first_on { (a, b) } else { (b, a) };
        if on.out.stats.wall < k_on.out.stats.wall {
            k_on = on;
        }
        if off.out.stats.wall < k_off.out.stats.wall {
            k_off = off;
        }
    }
    assert_eq!(
        k_on.cycles(),
        k_off.cycles(),
        "sanitizer changed kernel outcome"
    );
    assert_eq!(k_on.out.stats.sanitizer_violations, 0);
    let k_overhead =
        k_on.out.stats.wall.as_secs_f64() / k_off.out.stats.wall.as_secs_f64().max(1e-9) - 1.0;

    let json = format!(
        "{{\n  \"bench\": \"sanitizer_overhead\",\n  \"cores\": {n},\n  \"drift_t_cycles\": {t_cycles},\n  \"annotations\": {},\n  \"wall_ns_sanitize_on\": {},\n  \"wall_ns_sanitize_off\": {},\n  \"overhead\": {overhead:.4},\n  \"sanitizer_checks\": {},\n  \"sanitizer_violations\": {},\n  \"max_global_drift_cycles\": {},\n  \"final_vtime_cycles\": {},\n  \"kernel\": {{\n    \"name\": \"Quicksort\",\n    \"scale\": {},\n    \"wall_ns_sanitize_on\": {},\n    \"wall_ns_sanitize_off\": {},\n    \"overhead\": {k_overhead:.4},\n    \"sanitizer_checks\": {},\n    \"final_vtime_cycles\": {}\n  }}\n}}\n",
        u64::from(n) * reps,
        s_on.wall.as_nanos(),
        s_off.wall.as_nanos(),
        s_on.sanitizer_checks,
        s_on.sanitizer_violations,
        s_on.max_global_drift.cycles(),
        s_on.final_vtime.cycles(),
        opts.scale.0,
        k_on.out.stats.wall.as_nanos(),
        k_off.out.stats.wall.as_nanos(),
        k_on.out.stats.sanitizer_checks,
        k_on.cycles(),
    );
    std::fs::write("BENCH_PR4.json", &json).expect("cannot write BENCH_PR4.json");

    let mut t = Table::new(&[
        "bench",
        "wall sanitize on",
        "wall sanitize off",
        "overhead",
        "checks",
    ]);
    t.row(vec![
        format!("hot loop {n} cores × {reps} annotations"),
        format!("{:?}", s_on.wall),
        format!("{:?}", s_off.wall),
        pct_signed(overhead),
        s_on.sanitizer_checks.to_string(),
    ]);
    t.row(vec![
        format!("Quicksort {n} cores, scale {}", opts.scale.0),
        format!("{:?}", k_on.out.stats.wall),
        format!("{:?}", k_off.out.stats.wall),
        pct_signed(k_overhead),
        k_on.out.stats.sanitizer_checks.to_string(),
    ]);
    format!(
        "### Sanitizer benchmark (PR 4) — results written to BENCH_PR4.json\n\n\
         {} invariant checks, {} violations; max observed global drift {} \
         cycles (bound: diameter × T).\n\n{}",
        s_on.sanitizer_checks,
        s_on.sanitizer_violations,
        s_on.max_global_drift.cycles(),
        t.to_markdown()
    )
}

/// One configuration of the host-scaling benchmark: a grant-dense workload
/// on a large mesh. Every core runs `tasks_per_core` short activities of
/// `reps` annotations each (replenished through the idle hook), under
/// spatial sync with a window generous enough that checks pass confined —
/// the regime the epoch coordinator targets, where condvar handoffs
/// between the scheduler and task workers dominate wall time.
fn scaling_run(
    n: u32,
    tasks_per_core: u32,
    reps: u64,
    t_cycles: u64,
    threads: u32,
    seed: u64,
) -> simany::core::SimStats {
    use simany::core::{simulate, CoreId, EngineConfig, Envelope, ExecCtx, Ops, RuntimeHooks};

    struct Refill {
        reps: u64,
    }
    impl Refill {
        fn launch(&self, ops: &mut Ops<'_>, c: CoreId) {
            let reps = self.reps;
            let step = 3 + u64::from(c.0 % 5);
            ops.start_activity(
                c,
                "scaling",
                Box::new(()),
                Box::new(move |ctx: &mut ExecCtx| {
                    for _ in 0..reps {
                        ctx.advance_cycles(step);
                    }
                }),
            );
        }
    }
    impl RuntimeHooks for Refill {
        fn on_message(&self, _: &mut Ops<'_>, _: Envelope) {}
        fn on_idle(&self, ops: &mut Ops<'_>, c: CoreId) {
            ops.queue_hint_sub(c, 1);
            self.launch(ops, c);
        }
        fn on_activity_end(&self, _: &mut Ops<'_>, _: CoreId, _: Box<dyn std::any::Any + Send>) {}
    }

    let config = EngineConfig::default()
        .with_drift_cycles(t_cycles)
        .with_seed(seed)
        .with_threads(threads);
    simulate(
        simany::topology::mesh_2d(n),
        config,
        std::sync::Arc::new(Refill { reps }),
        move |ops| {
            for c in 0..n {
                ops.queue_hint_add(CoreId(c), tasks_per_core - 1);
            }
            for c in 0..n {
                Refill { reps }.launch(ops, CoreId(c));
            }
        },
    )
    .expect("scaling benchmark run failed")
}

/// PR 6 acceptance benchmark: wall-clock scaling of parallel host
/// execution with the host thread count, on a 1024-core mesh, under the
/// lock-free frame coordinator. Results are dumped to `BENCH_PR6.json`.
/// The virtual outcome must be identical at every thread count (the
/// workload is message-free, so even the policy-level latitude of
/// parallel mode cannot show), which doubles as an end-to-end
/// determinism check.
///
/// Each entry records whether the point was *undersubscribed* — more
/// simulator threads than host CPUs — because speedups measured in that
/// regime say nothing about the coordinator (PR 5's numbers were taken
/// on a 1-CPU host, which is why this PR re-records them with the flag).
pub fn scaling_benchmark(opts: &Options) -> String {
    let n = 1024u32;
    let tasks_per_core = 8u32;
    let reps = 48u64;
    let t_cycles = 20_000u64;
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());

    let threads_axis = [1u32, 2, 4, 8];
    let mut best: Vec<Option<simany::core::SimStats>> = vec![None; threads_axis.len()];
    for _ in 0..opts.instances.max(1) {
        for (i, &th) in threads_axis.iter().enumerate() {
            let s = scaling_run(n, tasks_per_core, reps, t_cycles, th, opts.seed);
            if best[i].as_ref().is_none_or(|b| s.wall < b.wall) {
                best[i] = Some(s);
            }
        }
    }
    let best: Vec<simany::core::SimStats> = best.into_iter().map(|s| s.unwrap()).collect();
    for s in &best[1..] {
        assert_eq!(
            s.final_vtime, best[0].final_vtime,
            "thread count changed the simulated outcome"
        );
    }
    let base = best[0].wall.as_secs_f64();

    let mut entries = String::new();
    let mut t = Table::new(&[
        "threads",
        "wall",
        "speedup vs 1",
        "epochs",
        "epoch grants",
        "picks",
    ]);
    for (i, s) in best.iter().enumerate() {
        let th = threads_axis[i];
        let speedup = base / s.wall.as_secs_f64().max(1e-9);
        entries.push_str(&format!(
            "    {{\n      \"threads\": {th},\n      \"undersubscribed\": {},\n      \
             \"wall_ns\": {},\n      \
             \"speedup_vs_1\": {speedup:.3},\n      \"parallel_epochs\": {},\n      \
             \"epoch_grants\": {},\n      \"scheduler_picks\": {},\n      \
             \"stall_events\": {},\n      \"phase_a_wall_ns\": {},\n      \
             \"phase_b_wall_ns\": {},\n      \"serial_tail_ns\": {},\n      \
             \"frame_spins\": {},\n      \"frame_parks\": {},\n      \
             \"sharded_replays\": {},\n      \"final_vtime_cycles\": {}\n    }}{}\n",
            th as usize > host_cpus,
            s.wall.as_nanos(),
            s.parallel_epochs,
            s.epoch_grants,
            s.scheduler_picks,
            s.stall_events,
            s.phase_a_wall_ns,
            s.phase_b_wall_ns,
            s.serial_tail_ns,
            s.frame_spins,
            s.frame_parks,
            s.sharded_replays,
            s.final_vtime.cycles(),
            if i + 1 < best.len() { "," } else { "" },
        ));
        t.row(vec![
            th.to_string(),
            format!("{:?}", s.wall),
            format!("{speedup:.2}x"),
            s.parallel_epochs.to_string(),
            s.epoch_grants.to_string(),
            s.scheduler_picks.to_string(),
        ]);
    }
    let json = format!(
        "{{\n  \"bench\": \"host_scaling\",\n  \"cores\": {n},\n  \
         \"tasks_per_core\": {tasks_per_core},\n  \"annotations_per_task\": {reps},\n  \
         \"drift_t_cycles\": {t_cycles},\n  \"host_cpus\": {host_cpus},\n  \
         \"instances\": {},\n  \"results\": [\n{entries}  ]\n}}\n",
        opts.instances.max(1),
    );
    std::fs::write("BENCH_PR6.json", &json).expect("cannot write BENCH_PR6.json");

    let s8 = &best[threads_axis.len() - 1];
    format!(
        "### Host-scaling benchmark (PR 6) — results written to BENCH_PR6.json\n\n\
         {n}-core mesh, {tasks_per_core} × {reps}-annotation tasks per core, \
         host has {host_cpus} CPU(s){}. 8 threads vs 1: {:.2}x.\n\n{}",
        if 8 > host_cpus {
            " — the wider points are undersubscribed; treat their speedups as noise"
        } else {
            ""
        },
        base / s8.wall.as_secs_f64().max(1e-9),
        t.to_markdown()
    )
}

/// PR 7 benchmark: run the EXPERIMENTS.md drift sweep (Figs. 10 & 11)
/// through the `simany-serve` sweep service — the committed
/// `examples/sweeps/drift.toml` spec — over a pool of `simulate` worker
/// processes with checkpoint-based preemption enabled. Records sweep
/// throughput (scenarios/hour), the dedup hit rate (the spec's baseline
/// block duplicates the drift block's T = 100 points on purpose) and the
/// preempt/resume counts to `BENCH_PR7.json`, plus a kernel × T
/// virtual-time table assembled from the streamed per-scenario results.
///
/// Needs the `simulate` binary next to `repro` (`cargo build --release
/// -p simany-bench` builds both), so it is not part of `repro all`.
pub fn sweep_benchmark(opts: &Options) -> String {
    use simany_serve::{ServeConfig, Service};

    let spec_path = [
        "examples/sweeps/drift.toml",
        "../examples/sweeps/drift.toml",
    ]
    .iter()
    .find(|p| std::path::Path::new(p).is_file())
    .expect("examples/sweeps/drift.toml not found; run from the repo root")
    .to_string();
    let out_dir = std::env::temp_dir().join(format!("simany-sweep-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);
    let workers = std::thread::available_parallelism().map_or(2, |p| p.get().min(4));

    let cfg = ServeConfig {
        spec_path,
        out_dir: out_dir.clone(),
        workers,
        checkpoint_every: Some(10_000),
        preempt_after: Some(2),
        max_resumes: 3,
        ..ServeConfig::default()
    };
    let mut svc = Service::new(cfg).expect("sweep service setup failed");
    let shutdown = std::sync::atomic::AtomicBool::new(false);
    let summary = svc.run(&shutdown).expect("sweep service run failed");
    assert_eq!(summary.failed, 0, "sweep scenarios failed");
    assert!(!summary.interrupted, "sweep was interrupted");
    assert_eq!(
        summary.scenarios,
        summary.completed + summary.dedup_hits as usize,
        "every scenario must map to a completed job"
    );

    // Assemble the kernel × T virtual-time table from the per-scenario
    // stream (label shape: `drift/kernel=K,drift=T`).
    let records = simany_serve::read_results(&out_dir.join("results.jsonl"))
        .expect("results.jsonl unreadable");
    let drifts = [50u64, 100, 500, 1000];
    let mut vt: std::collections::BTreeMap<String, std::collections::BTreeMap<u64, f64>> =
        std::collections::BTreeMap::new();
    for r in &records {
        let Some(label) = r.get("label").and_then(|v| v.as_str()) else {
            continue;
        };
        let Some(rest) = label.strip_prefix("drift/kernel=") else {
            continue;
        };
        let Some((kernel, drift)) = rest.split_once(",drift=") else {
            continue;
        };
        if let (Ok(t), Some(cycles)) = (
            drift.parse::<u64>(),
            r.get("final_vtime_cycles").and_then(|v| v.as_f64()),
        ) {
            vt.entry(kernel.to_string()).or_default().insert(t, cycles);
        }
    }
    let mut table = Table::new(&["kernel", "T=50", "T=100", "T=500", "T=1000"]);
    for (kernel, by_t) in &vt {
        let mut row = vec![kernel.clone()];
        for t in drifts {
            row.push(by_t.get(&t).map_or("-".into(), |c| format!("{c:.0}")));
        }
        table.row(row);
    }

    let per_hour = summary.scenarios as f64 / (summary.wall_secs / 3600.0).max(1e-9);
    let hit_rate = summary.dedup_hits as f64 / summary.scenarios.max(1) as f64;
    let json = format!(
        "{{\n  \"bench\": \"sweep_service\",\n  \"spec\": \"examples/sweeps/drift.toml\",\n  \
         \"workers\": {workers},\n  \"scenarios\": {},\n  \"unique_jobs\": {},\n  \
         \"dedup_hits\": {},\n  \"dedup_hit_rate\": {hit_rate:.4},\n  \"completed\": {},\n  \
         \"failed\": {},\n  \"preempts\": {},\n  \"resumes\": {},\n  \
         \"wall_secs\": {:.3},\n  \"scenarios_per_hour\": {per_hour:.1}\n}}\n",
        summary.scenarios,
        summary.unique_jobs,
        summary.dedup_hits,
        summary.completed,
        summary.failed,
        summary.preempts,
        summary.resumes,
        summary.wall_secs,
    );
    std::fs::write("BENCH_PR7.json", &json).expect("cannot write BENCH_PR7.json");
    let _ = opts; // sweep shape is fixed by the committed spec file
    let _ = std::fs::remove_dir_all(&out_dir);

    format!(
        "### Sweep-service benchmark (PR 7) — results written to BENCH_PR7.json\n\n\
         {} scenarios / {} unique jobs on {workers} workers: {:.1}s wall \
         ({per_hour:.0} scenarios/hour), dedup hit rate {:.1}%, {} preemptions / {} resumes.\n\n\
         Final virtual time (cycles) by kernel and drift bound T:\n\n{}",
        summary.scenarios,
        summary.unique_jobs,
        summary.wall_secs,
        hit_rate * 100.0,
        summary.preempts,
        summary.resumes,
        table.to_markdown()
    )
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where the proc filesystem is unavailable
/// (non-Linux hosts). Monotonic over the process lifetime: after several
/// runs in one process it reports the largest footprint any of them
/// reached.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One point of the memory-scale benchmark: a hierarchical chiplet mesh
/// where every core runs exactly one small message-free task, staggered
/// through `queue_hint` so activities materialize lazily instead of
/// allocating a million boxed closures up front. Returns the stats plus
/// the process peak RSS (bytes) observed right after the run.
fn scale_run(
    chips: u32,
    chip_side: u32,
    seed: u64,
    profile: bool,
) -> (simany::core::SimStats, u64) {
    use simany::core::{CoreId, EngineConfig, Envelope, ExecCtx, Ops, RuntimeHooks};

    struct OneShot;
    impl RuntimeHooks for OneShot {
        fn on_message(&self, _: &mut Ops<'_>, _: Envelope) {}
        fn on_idle(&self, ops: &mut Ops<'_>, c: CoreId) {
            ops.queue_hint_sub(c, 1);
            let step = 3 + u64::from(c.0 % 5);
            ops.start_activity(
                c,
                "scale",
                Box::new(()),
                Box::new(move |ctx: &mut ExecCtx| {
                    for _ in 0..16 {
                        ctx.advance_cycles(step);
                    }
                }),
            );
        }
        fn on_activity_end(&self, _: &mut Ops<'_>, _: CoreId, _: Box<dyn std::any::Any + Send>) {}
    }

    let topo = simany::topology::chiplet_mesh(
        chips,
        chips,
        chip_side,
        chip_side,
        simany::topology::ChipletParams::default(),
    );
    let n = topo.n_cores();
    let config = EngineConfig::default()
        .with_drift_cycles(10_000)
        .with_seed(seed)
        .with_profile_picks(profile);
    let stats = simany::core::simulate(topo, config, std::sync::Arc::new(OneShot), move |ops| {
        for c in 0..n {
            ops.queue_hint_add(CoreId(c), 1);
        }
    })
    .expect("scale benchmark run failed");
    (stats, peak_rss_bytes())
}

/// One measured point of the scale benchmark, with the PR 10 build/run
/// phase split and the pick-loop profile breakdown.
struct ScalePoint {
    chips: u32,
    cores: u32,
    stats: simany::core::SimStats,
    rss: u64,
}

impl ScalePoint {
    fn measure(chips: u32, side: u32, seed: u64) -> Self {
        let n = chips * chips * side * side;
        let (stats, rss) = scale_run(chips, side, seed, true);
        assert_eq!(
            stats.busy.n_cores,
            u64::from(n),
            "busy summary lost cores at n={n}"
        );
        assert_eq!(stats.busy.active, u64::from(n), "a core never ran its task");
        Self {
            chips,
            cores: n,
            stats,
            rss,
        }
    }

    /// Throughput over the run phase only — topology/core-state setup
    /// (`build_ns`) is excluded, so points of different sizes compare the
    /// per-event cost rather than allocator behaviour.
    fn run_cores_per_sec(&self) -> f64 {
        f64::from(self.cores) / (self.stats.run_ns.max(1) as f64 / 1e9)
    }

    fn wall_cores_per_sec(&self) -> f64 {
        f64::from(self.cores) / self.stats.wall.as_secs_f64().max(1e-9)
    }
}

/// Scale benchmark (PR 8, re-run under the PR 10 pick-loop work): one
/// small task on *every* core of hierarchical chiplet meshes up to a
/// million cores (16×16 chiplets of 64×64), sequentially. Each point now
/// records the build/run wall split and the pick-loop phase profile
/// (`profile_picks`), so the JSON shows *where* per-event time goes as
/// the core count grows. Results are dumped to `BENCH_PR10.json`.
///
/// Points run in ascending size, so each point's peak RSS is dominated by
/// its own footprint; the number is still process-cumulative (`VmHWM`),
/// which the JSON notes. Ignores `--max-cores` — the axis *is* the
/// experiment.
pub fn scale_benchmark(opts: &Options) -> String {
    // (chips per side, cores per chiplet side): 4×4, 8×8, 16×16 chiplets
    // of 64×64 cores = 65_536, 262_144, 1_048_576 cores.
    let points = [(4u32, 64u32), (8, 64), (16, 64)];

    let measured: Vec<ScalePoint> = points
        .iter()
        .map(|&(chips, side)| ScalePoint::measure(chips, side, opts.seed))
        .collect();

    let mut entries = String::new();
    let mut t = Table::new(&[
        "cores",
        "chiplets",
        "build",
        "run",
        "run cores/sec",
        "peak RSS",
        "bytes/core",
        "stale skips",
    ]);
    for (i, p) in measured.iter().enumerate() {
        let s = &p.stats;
        let n = p.cores;
        let bytes_per_core = p.rss as f64 / f64::from(n);
        entries.push_str(&format!(
            "    {{\n      \"cores\": {n},\n      \"chiplets\": {},\n      \
             \"wall_ns\": {},\n      \"build_ns\": {},\n      \"run_ns\": {},\n      \
             \"cores_per_sec\": {:.0},\n      \"run_cores_per_sec\": {:.0},\n      \
             \"peak_rss_bytes\": {},\n      \"rss_bytes_per_core\": {bytes_per_core:.1},\n      \
             \"scheduler_picks\": {},\n      \"peak_live_activities\": {},\n      \
             \"fast_path_advances\": {},\n      \"ready_stale_skipped\": {},\n      \
             \"prof_floor_ns\": {},\n      \"prof_pop_ns\": {},\n      \
             \"prof_overhead_ns\": {},\n      \"prof_action_ns\": {},\n      \
             \"final_vtime_cycles\": {}\n    }}{}\n",
            p.chips * p.chips,
            s.wall.as_nanos(),
            s.build_ns,
            s.run_ns,
            p.wall_cores_per_sec(),
            p.run_cores_per_sec(),
            p.rss,
            s.scheduler_picks,
            s.peak_live_activities,
            s.fast_path_advances,
            s.ready_stale_skipped,
            s.prof_floor_ns,
            s.prof_pop_ns,
            s.prof_overhead_ns,
            s.prof_action_ns,
            s.final_vtime.cycles(),
            if i + 1 < measured.len() { "," } else { "" },
        ));
        t.row(vec![
            n.to_string(),
            format!("{0}x{0}", p.chips),
            format!("{:.3}s", s.build_ns as f64 / 1e9),
            format!("{:.3}s", s.run_ns as f64 / 1e9),
            format!("{:.0}", p.run_cores_per_sec()),
            format!("{:.1} MB", p.rss as f64 / (1024.0 * 1024.0)),
            format!("{bytes_per_core:.0}"),
            s.ready_stale_skipped.to_string(),
        ]);
    }
    let json = format!(
        "{{\n  \"bench\": \"memory_scale\",\n  \
         \"note\": \"peak_rss_bytes is process-cumulative (VmHWM); points run ascending; \
         run_cores_per_sec excludes build_ns (topology + core-state setup)\",\n  \
         \"task_annotations_per_core\": 16,\n  \"threads\": 1,\n  \"seed\": {},\n  \
         \"results\": [\n{entries}  ]\n}}\n",
        opts.seed,
    );
    std::fs::write("BENCH_PR10.json", &json).expect("cannot write BENCH_PR10.json");

    let first = measured.first().expect("no scale points ran");
    let last = measured.last().expect("no scale points ran");
    let ratio = first.run_cores_per_sec() / last.run_cores_per_sec().max(1e-9);
    format!(
        "### Memory-scale benchmark (PR 10) — results written to BENCH_PR10.json\n\n\
         One task on every core of hierarchical chiplet meshes; largest point \
         {} cores at {:.0} run-phase cores/sec, peak RSS {:.1} MB \
         ({:.0} bytes/core, process-cumulative). Run-phase throughput at \
         {} cores is {ratio:.2}x slower than at {} cores.\n\n{}",
        last.cores,
        last.run_cores_per_sec(),
        last.rss as f64 / (1024.0 * 1024.0),
        last.rss as f64 / f64::from(last.cores),
        last.cores,
        first.cores,
        t.to_markdown()
    )
}

/// CI guard against O(cores) regressions on the per-event path: runs the
/// 65k- and 262k-core chiplet points and fails (panics, so `repro` exits
/// nonzero) if the larger point's *run-phase* throughput drops below 60%
/// of the smaller's. The build phase is excluded on purpose — setup cost
/// grows with the core count by nature; the per-event cost must not.
pub fn scale_regression_check(opts: &Options) -> String {
    let small = ScalePoint::measure(4, 64, opts.seed);
    let large = ScalePoint::measure(8, 64, opts.seed);
    let (s, l) = (small.run_cores_per_sec(), large.run_cores_per_sec());
    let ratio = l / s.max(1e-9);
    let verdict = format!(
        "### Scale-regression check\n\n\
         | cores | build | run | run cores/sec |\n|---|---|---|---|\n\
         | {} | {:.3}s | {:.3}s | {s:.0} |\n| {} | {:.3}s | {:.3}s | {l:.0} |\n\n\
         262k/65k run-phase throughput ratio: {ratio:.2} (floor 0.60)\n",
        small.cores,
        small.stats.build_ns as f64 / 1e9,
        small.stats.run_ns as f64 / 1e9,
        large.cores,
        large.stats.build_ns as f64 / 1e9,
        large.stats.run_ns as f64 / 1e9,
    );
    assert!(
        ratio >= 0.60,
        "scale regression: 262k-core run-phase throughput ({l:.0} cores/sec) fell below \
         60% of the 65k-core point's ({s:.0} cores/sec); ratio {ratio:.2}\n{verdict}"
    );
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Options {
        Options {
            instances: 1,
            scale: Scale(0.02),
            large_scale: Scale(0.02),
            max_cores: 8,
            max_validation_cores: 4,
            seed: 1,
        }
    }

    #[test]
    fn validation_figure_renders() {
        let md = validation_figure(&tiny(), false);
        assert!(md.contains("Fig. 5"));
        assert!(md.contains("Quicksort VT"));
        assert!(md.contains("geomean error"));
    }

    #[test]
    fn large_scale_figures_render() {
        let md = large_scale_figure(&tiny(), false);
        assert!(md.contains("Fig. 8"));
        assert!(md.contains("Octree"));
        let md = large_scale_figure(&tiny(), true);
        assert!(md.contains("Fig. 9"));
    }

    #[test]
    fn drift_tables_render() {
        let md = drift_tables(&tiny());
        assert!(md.contains("Fig. 10"));
        assert!(md.contains("Fig. 11"));
    }

    #[test]
    fn clusters_and_polymorphic_render() {
        let md = fig12_clusters(&tiny(), 4);
        assert!(md.contains("Fig. 12"));
        let md = fig13_polymorphic(&tiny());
        assert!(md.contains("Fig. 13"));
    }

    #[test]
    fn polymorphic_scheduling_extension_renders() {
        let md = extension_polymorphic_scheduling(&tiny());
        assert!(md.contains("favor-fast"));
    }

    #[test]
    fn host_parallelism_extension_renders() {
        let md = extension_host_parallelism(&tiny());
        assert!(md.contains("avail. parallelism"));
    }

    #[test]
    fn granularity_ablation_renders() {
        let md = ablation_annotation_granularity(&tiny());
        assert!(md.contains("annotation granularity"));
    }

    #[test]
    fn ablation_renders() {
        let md = ablation_sync_policies(&tiny());
        assert!(md.contains("Conservative"));
        assert!(md.contains("Unbounded"));
    }
}
